//! Scenario: synthesizing the WOM datapath's constant multiplier.
//!
//! The word-oriented π-test datapath needs `x ↦ 2·x` over GF(2⁴) (the
//! paper's generator `g = 1 + 2x + 2x²`), built from XOR gates only so it
//! can sit "inherently in the memory circuit" (§2). This example
//! synthesizes the network, prints the netlist, verifies it exhaustively
//! against the field, and compares naive vs CSE synthesis for a denser
//! constant in GF(2⁸).
//!
//! Run: `cargo run --release --example multiplier_synthesis`

use prt_gf::{mult_synth, SynthesisStrategy};
use prt_suite::prelude::*;

fn print_netlist(name: &str, net: &XorNetwork) {
    println!("{name}: {} XOR gates, depth {}", net.gate_count(), net.depth());
    for (i, gate) in net.gates().iter().enumerate() {
        let label = |s: usize| {
            if s < net.input_count() {
                format!("x{s}")
            } else {
                format!("t{}", s - net.input_count())
            }
        };
        println!("  t{i} = {} ^ {}", label(gate.a), label(gate.b));
    }
    for (bit, drv) in net.outputs().iter().enumerate() {
        let d = match drv {
            None => "0".to_string(),
            Some(s) if *s < net.input_count() => format!("x{s}"),
            Some(s) => format!("t{}", s - net.input_count()),
        };
        println!("  y{bit} = {d}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's multiplier: ·2 over GF(2⁴), p(z) = 1 + z + z⁴.
    let field = Field::new(4, 0b1_0011)?;
    let net = mult_synth::for_constant(&field, 2, SynthesisStrategy::Paar);
    print_netlist("x ↦ 2·x over GF(2⁴)", &net);

    // Exhaustive verification against the field (the netlist is hardware;
    // trust nothing).
    for x in 0..16u64 {
        assert_eq!(net.eval(x as u128) as u64, field.mul(2, x));
    }
    println!("verified against GF(2⁴) multiplication for all 16 inputs\n");

    // A dense constant in GF(2⁸): where CSE starts to pay.
    let f256 = Field::gf(8)?;
    let c = 0xB5;
    let matrix = mult_synth::mult_matrix(&f256, c);
    let naive = mult_synth::synthesize(&matrix, SynthesisStrategy::Naive);
    let cse = mult_synth::synthesize(&matrix, SynthesisStrategy::Paar);
    println!(
        "x ↦ {c:#x}·x over GF(2⁸): naive {} gates, CSE {} gates ({}% saved), depth {} → {}",
        naive.gate_count(),
        cse.gate_count(),
        100 * (naive.gate_count() - cse.gate_count()) / naive.gate_count(),
        naive.depth(),
        cse.depth()
    );
    for x in 0..256u64 {
        assert_eq!(cse.eval(x as u128) as u64, f256.mul(c, x));
    }
    println!("verified against GF(2⁸) multiplication for all 256 inputs");

    // Survey the whole field: the distribution a datapath generator would use.
    let survey = mult_synth::survey_field(&field);
    let worst = survey.iter().max_by_key(|s| s.paar_gates).expect("non-empty");
    println!(
        "\nGF(2⁴) survey: worst constant {} needs {} XOR gates (naive {})",
        worst.constant, worst.paar_gates, worst.naive_gates
    );
    Ok(())
}
