//! Scenario: from a failing signature to a repairable address.
//!
//! A production tester runs the BIST, reads back one `w`-bit MISR
//! signature, and must decide which spare row to burn. This example walks
//! the whole diagnosis pipeline on a 16-cell bit-oriented array:
//!
//! 1. compile the diagnostic March (March C-D) once and derive the
//!    fault-free reference signature *without a golden device*,
//! 2. build the fault dictionary over the paper-claim universe on the
//!    parallel campaign engine, with measured aliasing/ambiguity,
//! 3. take three field returns (a stuck-at, a distant idempotent
//!    coupling, a decoder shadow pair), detect them by signature only,
//!    and localize victim + aggressor with adaptive windowed probes,
//! 4. cross-check the hardware view: `BistController` in signature mode
//!    flags the same device.
//!
//! Run: `cargo run --release --example diagnosis [cells]`

use prt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let geom = Geometry::bom(n);
    let poly = Poly2::from_bits(0b1_0001_1011); // x⁸+x⁴+x³+x+1
    println!("diagnosis pipeline, {n}×1b array, 8-bit MISR compaction\n");

    // 1. Compile once; reference signature from the program's own
    //    expectations.
    let program = Executor::new().compile(&march_library::march_diag(), geom);
    let collector = SignatureCollector::new(&program, poly)?;
    println!(
        "diagnostic program: {} ({} ops, {} checked reads)",
        program.name(),
        program.ops().len(),
        collector.responses()
    );
    println!(
        "reference signature {:#04x}, analytic aliasing bound 2^-{} = {:.4}%",
        collector.reference(),
        collector.width(),
        collector.aliasing_bound() * 100.0
    );

    // 2. The dictionary: one signature-collecting campaign.
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    let dict = FaultDictionary::build(&universe, &program, poly, Parallelism::Auto)?;
    let s = dict.stats();
    println!("\nfault dictionary over the paper-claim universe:");
    println!(
        "  {} faults, {} stream-detected, {} escaped",
        s.universe, s.stream_detected, s.escaped
    );
    println!(
        "  {} distinct signatures, candidate sets mean {:.2} / max {}",
        s.distinct_signatures, s.mean_candidates, s.max_candidates
    );
    println!(
        "  measured aliasing {:.4}% (bound {:.4}%)",
        s.measured_aliasing * 100.0,
        s.analytic_aliasing_bound * 100.0
    );
    assert!(s.measured_aliasing <= s.analytic_aliasing_bound);

    // 3. Field returns.
    let returns: Vec<FaultKind> = vec![
        FaultKind::StuckAt { cell: 11 % n, bit: 0, value: 1 },
        FaultKind::CouplingIdempotent {
            agg_cell: 3 % n,
            agg_bit: 0,
            victim_cell: (n - 2).max(4),
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
            force: 1,
        },
        FaultKind::DecoderShadow { addr: 1, instead_cell: n / 2 + 1 },
    ];
    let localizer = Localizer::new(march_library::march_diag(), geom).with_dictionary(&dict);
    for fault in &returns {
        println!("\nfield return: {fault}");
        let mut device = Ram::new(geom);
        device.inject(fault.clone())?;
        // Signature-only detection, as the tester sees it.
        let obs = collector.collect(&program, &mut device)?;
        println!(
            "  signature {:#04x} vs reference {:#04x} → {}",
            obs.signature,
            collector.reference(),
            if obs.signature == collector.reference() { "PASS (escape!)" } else { "FAIL" }
        );
        let candidates = dict.candidate_faults(obs.signature);
        println!("  dictionary candidates: {}", candidates.len());
        // Adaptive localization.
        let d = localizer.diagnose(&mut device)?.expect("detected fault must localize");
        print!("  localized in {} probes: victim cell {}", d.probes(), d.victim());
        if let Some(a) = d.aggressor() {
            print!(", aggressor/partner {a}");
        }
        println!();
        match d.exact() {
            Some(f) => println!("  exact identification: {f}"),
            None => {
                println!(
                    "  observational equivalence class ({} candidates):",
                    d.candidates().len()
                );
                for c in d.candidates() {
                    println!("    {c}");
                }
            }
        }
        assert!(d.candidates().contains(fault), "true fault must survive");
    }

    // 4. The hardware view: the paper's π-test controller with the
    //    conventional MISR bolted on — same verdict, compaction in RTL
    //    reach.
    println!("\nhardware cross-check (BistController + MISR):");
    let pi = PiTest::figure_1a()?;
    let mut good = Ram::new(geom);
    let mut ctrl = BistController::new(pi.clone(), n)?.with_signature(poly)?;
    let clean = ctrl.clone();
    let pass = ctrl.run_to_completion(&mut good)?;
    println!(
        "  fault-free: Fin verdict {}, signature {:#04x} matches reference: {}",
        pass,
        ctrl.signature().unwrap(),
        ctrl.signature_matches().unwrap()
    );
    // A stuck value opposing the TDB content at its cell always reaches
    // the signature (a matched polarity would escape this single
    // iteration — the reason the paper's scheme runs three).
    let wrong = (pi.expected_sequence(n)[11 % n] ^ 1) as u8;
    let sa = FaultKind::StuckAt { cell: 11 % n, bit: 0, value: wrong };
    let mut bad = Ram::new(geom);
    bad.inject(sa.clone())?;
    let mut ctrl = clean.clone();
    let pass = ctrl.run_to_completion(&mut bad)?;
    println!("  {sa}: Fin verdict {pass}, signature match {}", ctrl.signature_matches().unwrap());
    assert_eq!(ctrl.signature_matches(), Some(pass));
    assert!(!pass, "opposing-polarity stuck-at must fail the iteration");

    println!("\ndiagnosis pipeline OK");
    Ok(())
}
