//! Scenario: qualifying a bit-oriented embedded SRAM macro.
//!
//! A BIST engineer wants to know, for a given array size, which PRT
//! schedule to burn into the controller: the paper's 3-iteration schedule,
//! the 4-iteration variant, or the synthesized full-coverage schedule —
//! and how each compares with a March C- baseline, in both coverage and
//! operation budget. This example runs the whole qualification flow.
//!
//! Run: `cargo run --release --example bom_selftest [cells]`

use prt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let geom = Geometry::bom(n);
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    println!("qualifying a {n}-cell BOM against {} fault instances\n", universe.len());

    let field = || Field::new(1, 0b11).expect("GF(2)");
    let candidates = vec![
        PrtScheme::standard3(field())?,
        PrtScheme::standard4(field())?,
        PrtScheme::full_coverage(field(), geom)?.0,
    ];

    println!("{:<28} {:>8} {:>10} {:>9}", "schedule", "ops", "coverage", "complete");
    for scheme in &candidates {
        let report = scheme.coverage(&universe);
        println!(
            "{:<28} {:>7}n {:>9.2}% {:>9}",
            scheme.name(),
            scheme.ops_per_cell(),
            report.overall_percent(),
            report.complete()
        );
    }

    // March C- baseline through the same coverage evaluator.
    let march = march_library::march_c_minus();
    let report =
        prt_march::coverage::evaluate(&march, &universe, &Executor::new().stop_at_first_mismatch());
    println!(
        "{:<28} {:>7}n {:>9.2}% {:>9}",
        march.name(),
        march.ops_per_cell(),
        report.overall_percent(),
        report.complete()
    );

    // The recommendation logic a qualification script would apply.
    let full = &candidates[2];
    println!(
        "\nrecommendation: {} — complete coverage at {}n using the memory's own\n\
         cells as generator and signature (no BIST data path), vs March C- at 10n\n\
         with an external comparator.",
        full.name(),
        full.ops_per_cell()
    );

    // Spot-check: inject one fault of each modelled kind and show verdicts.
    println!("\nspot checks (full-coverage schedule):");
    let probes: Vec<FaultKind> = vec![
        FaultKind::StuckAt { cell: n / 2, bit: 0, value: 1 },
        FaultKind::Transition { cell: 3, bit: 0, rising: false },
        FaultKind::StuckOpen { cell: n - 3 },
        FaultKind::DeceptiveRead { cell: 5, bit: 0 },
        FaultKind::WriteDisturb { cell: 2, bit: 0 },
        FaultKind::DecoderShadow { addr: 4, instead_cell: n - 2 },
        FaultKind::CouplingIdempotent {
            agg_cell: n - 4,
            agg_bit: 0,
            victim_cell: 1,
            victim_bit: 0,
            trigger: CouplingTrigger::Fall,
            force: 1,
        },
    ];
    for fault in probes {
        let mut ram = Ram::new(geom);
        ram.inject(fault.clone())?;
        let res = full.run(&mut ram)?;
        println!("  {fault}: detected = {}", res.detected());
        assert!(res.detected(), "full-coverage schedule must catch {fault}");
    }
    Ok(())
}
