//! Scenario: power-on self-test of a dual-port register file.
//!
//! A 4-bit-wide two-port memory (the paper's §4 setting) must self-test
//! within a cycle budget at power-on. The dual-port π-schedule issues both
//! operand reads simultaneously (Figure 2), cutting the iteration from
//! `3n` to `2n` cycles; the quad-port multi-LFSR variant halves it again.
//! This example runs the power-on flow, checks the budget, shows that a
//! marginal cell (simulated data-retention fault) is caught, and
//! demonstrates the **dual-port pre-read program mode**: the compiled
//! schedule fuses each wave-write's stale check into the write cycle, so
//! pre-read coverage (the distant-coupling blind-spot closer) comes at
//! plain-mode cycle cost.
//!
//! Run: `cargo run --release --example wom_dualport [cells]`

use prt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(257);
    let pi = PiTest::figure_1b()?;
    println!("power-on self-test, {n}×4b dual-port array, g(x) = 1 + 2x + 2x²\n");

    // Cycle budgets per schedule.
    let mut single = Ram::new(Geometry::wom(n, 4)?);
    let c1 = pi.run(&mut single)?.cycles();
    let mut dual = Ram::with_ports(Geometry::wom(n, 4)?, 2)?;
    let c2 = pi.run_dual_port(&mut dual)?.cycles();
    println!("single-port iteration: {c1} cycles (3n − 2)");
    println!("dual-port   iteration: {c2} cycles (2n − 2) → {:.2}× faster", c1 as f64 / c2 as f64);
    if n.is_multiple_of(2) {
        let mut quad = Ram::with_ports(Geometry::wom(n, 4)?, 4)?;
        let c4 = pi.run_quad_port(&mut quad)?.cycles();
        println!("quad-port multi-LFSR:  {c4} cycles (≈ n)");
    }

    // The ring closure doubles as a free consistency check when n−k is a
    // multiple of the period.
    if pi.ring_closes(n)? {
        println!("\nn − k is a multiple of the period: Fin must equal Init (pseudo-ring)");
        let mut ram = Ram::with_ports(Geometry::wom(n, 4)?, 2)?;
        let res = pi.run_dual_port(&mut ram)?;
        assert_eq!(res.fin(), pi.init());
        println!("ring closure verified on the dual-port schedule");
    }

    // A marginal cell: loses its charge after ~n operations.
    println!("\ninjecting a data-retention fault (decays to 0 after {} ops)…", 2 * n);
    let mut marginal = Ram::with_ports(Geometry::wom(n, 4)?, 2)?;
    marginal.inject(FaultKind::DataRetention {
        cell: 3,
        bit: 2,
        decays_to: 0,
        after: 2 * n as u64,
    })?;
    // One iteration writes cell 3 early and only reads it shortly after —
    // retention faults need a *delay*; the three-iteration scheme
    // re-reads every cell a full iteration later and catches the decay.
    let single_iter = pi.run_dual_port(&mut marginal)?;
    let mut marginal2 = Ram::new(Geometry::wom(n, 4)?);
    marginal2.inject(FaultKind::DataRetention {
        cell: 3,
        bit: 2,
        decays_to: 0,
        after: 2 * n as u64,
    })?;
    let field = Field::new(4, 0b1_0011)?;
    let scheme = PrtScheme::standard3(field)?;
    let multi = scheme.run(&mut marginal2)?;
    println!(
        "single iteration detected: {}   standard3 detected: {}",
        single_iter.detected(),
        multi.detected()
    );
    assert!(multi.detected(), "retention fault must be caught by the multi-iteration scheme");

    // ------------------------------------------------------------------
    // Dual-port pre-read program mode.
    //
    // A distant inversion coupling (aggressor far after the victim in the
    // trajectory) corrupts the victim after its operand reads; plain-mode
    // schedules overwrite the corruption before anything observes it. The
    // pre-read transformation catches it — and on two ports the compiled
    // program fuses each stale check into the wave-write cycle (the RAM
    // reads before it writes within a cycle), so the check is cycle-free.
    // ------------------------------------------------------------------
    let field = Field::new(4, 0b1_0011)?;
    let distant_cfin = FaultKind::CouplingInversion {
        agg_cell: 3 * n / 4,
        agg_bit: 1,
        victim_cell: n / 8,
        victim_bit: 1,
        trigger: CouplingTrigger::Rise,
    };
    println!("\ninjecting a distant CFin (aggressor {} → victim {})…", 3 * n / 4, n / 8);

    let plain = PrtScheme::plain(field.clone(), 3)?;
    let mut ram = Ram::with_ports(Geometry::wom(n, 4)?, 2)?;
    ram.inject(distant_cfin.clone())?;
    let plain_res = plain.run_dual_port(&mut ram)?;

    let preread = PrtScheme::standard3(field)?;
    let program = preread.compile_dual_port(Geometry::wom(n, 4)?)?;
    let mut ram = Ram::with_ports(Geometry::wom(n, 4)?, 2)?;
    ram.inject(distant_cfin)?;
    let preread_res = preread.run_dual_port(&mut ram)?;
    println!(
        "plain ×3 dual-port:    {} cycles, detected: {}",
        plain_res.cycles(),
        plain_res.detected()
    );
    println!(
        "standard3 dual-port:   {} cycles, detected: {}  (pre-read fused into write cycles)",
        preread_res.cycles(),
        preread_res.detected()
    );
    println!(
        "compiled program:      {} ops over {} port(s), ≈ {:.2} cycles/cell/iteration",
        program.ops().len(),
        program.ports(),
        preread_res.cycles() as f64 / (3.0 * n as f64)
    );
    assert!(!plain_res.detected(), "distant CFin escapes the plain dual-port schedule");
    assert!(preread_res.detected(), "dual-port pre-read must catch the distant CFin");
    Ok(())
}
