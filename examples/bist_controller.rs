//! Scenario: stepping the on-chip BIST controller cycle by cycle.
//!
//! The algorithmic runner (`PiTest::run`) answers *what* the π-test
//! computes; the [`BistController`] FSM shows *how the hardware does it*:
//! one memory cycle per state, operand shift register, XOR datapath,
//! comparator. This example single-steps the controller, prints the FSM
//! trace for a tiny array, then validates cycle counts and verdicts
//! against the algorithmic runner on a realistic size.
//!
//! Run: `cargo run --release --example bist_controller`

use prt_suite::prelude::*;
use prt_suite::prt_core::controller::CtrlState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FSM trace on a 5-cell bit-oriented array.
    let pi = PiTest::figure_1a()?;
    let mut ram = Ram::new(Geometry::bom(5));
    let mut ctrl = BistController::new(pi.clone(), 5)?;
    println!("cycle  state");
    while !ctrl.done() {
        let state = ctrl.state();
        ctrl.step(&mut ram)?;
        let label = match state {
            CtrlState::Seed { j } => format!("SEED[{j}]   write Init[{j}]"),
            CtrlState::Read { i } => format!("READ[{i}]   operand ← M[order[t+{i}]]"),
            CtrlState::Write => "WRITE     M[order[t+k]] ← e ⊕ Σ cᵢ·opᵢ".to_string(),
            CtrlState::Readback { j } => format!("FIN[{j}]    capture signature word {j}"),
            CtrlState::Done => unreachable!(),
        };
        println!("{:>5}  {label}", ctrl.cycles());
    }
    println!("verdict: pass = {}\n", ctrl.fin() == pi.fin_star(5));

    // Hardware/algorithm equivalence on a realistic array, with a fault.
    let n = 1024usize;
    let pi = PiTest::figure_1b()?;
    let mut clean_hw = Ram::new(Geometry::wom(n, 4)?);
    let mut ctrl = BistController::new(pi.clone(), n)?;
    let pass = ctrl.run_to_completion(&mut clean_hw)?;
    println!("{n}×4b fault-free: pass = {pass}, {} cycles (3n − 2 = {})", ctrl.cycles(), 3 * n - 2);

    let mut faulty_hw = Ram::new(Geometry::wom(n, 4)?);
    faulty_hw.inject(FaultKind::Transition { cell: 700, bit: 3, rising: true })?;
    let mut ctrl = BistController::new(pi.clone(), n)?;
    let pass = ctrl.run_to_completion(&mut faulty_hw)?;
    let mut sw = Ram::new(Geometry::wom(n, 4)?);
    sw.inject(FaultKind::Transition { cell: 700, bit: 3, rising: true })?;
    let algo = pi.run(&mut sw)?;
    println!(
        "TF↑ @ 700.3: controller pass = {pass}, algorithmic detected = {} → agree = {}",
        algo.detected(),
        pass != algo.detected()
    );
    assert_eq!(!pass, algo.detected());
    Ok(())
}
