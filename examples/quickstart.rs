//! Quickstart: pseudo-ring testing in five minutes.
//!
//! Builds the paper's two automata (Figure 1a and 1b), runs them on
//! fault-free and faulty memories, and shows the Fin/Fin* signature
//! mechanism and the pseudo-ring closure.
//!
//! Run: `cargo run --release --example quickstart`

use prt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 1a: bit-oriented memory ---------------------------------
    let pi = PiTest::figure_1a()?;
    println!("bit-oriented automaton: g(x) = 1 + x + x², period {}", pi.period()?);

    let mut good = Ram::new(Geometry::bom(32));
    let clean = pi.run(&mut good)?;
    println!(
        "fault-free run:  Fin = {:?}  Fin* = {:?}  detected = {}",
        clean.fin(),
        clean.fin_star(),
        clean.detected()
    );

    let mut bad = Ram::new(Geometry::bom(32));
    bad.inject(FaultKind::StuckAt { cell: 17, bit: 0, value: 0 })?;
    let caught = pi.run(&mut bad)?;
    println!(
        "SA0 @ cell 17:   Fin = {:?}  Fin* = {:?}  detected = {}",
        caught.fin(),
        caught.fin_star(),
        caught.detected()
    );

    // --- Figure 1b: word-oriented memory over GF(2⁴) ---------------------
    let pi = PiTest::figure_1b()?;
    let period = pi.period()? as usize;
    println!("\nword-oriented automaton: g(x) = 1 + 2x + 2x² over GF(2⁴), period {period}");
    let n = period + 2; // pseudo-ring closes exactly here
    let mut wom = Ram::new(Geometry::wom(n, 4)?);
    let res = pi.run(&mut wom)?;
    println!(
        "n = {n}: ring closed (Fin = Init)? {}  ops = {} (= 3n − 2)",
        res.fin() == pi.init(),
        res.ops()
    );

    // --- A complete self-test: the standard 3-iteration scheme ----------
    let scheme = PrtScheme::standard3(Field::new(1, 0b11)?)?;
    let mut victim = Ram::new(Geometry::bom(64));
    victim.inject(FaultKind::CouplingInversion {
        agg_cell: 40,
        agg_bit: 0,
        victim_cell: 9,
        victim_bit: 0,
        trigger: CouplingTrigger::Rise,
    })?;
    let verdict = scheme.run(&mut victim)?;
    println!(
        "\nstandard3 on a CFin-coupled memory: detected = {} (iteration {:?}), {} ops",
        verdict.detected(),
        verdict.first_detection(),
        verdict.ops()
    );
    Ok(())
}
