//! Scenario: exploring custom March algorithms.
//!
//! Test engineers often sketch March variants in van de Goor's notation and
//! want immediate coverage feedback. This example parses a notation string
//! from the command line (or demonstrates with March C- and a deliberately
//! weakened variant), measures coverage on the standard fault universe and
//! prints the per-class table.
//!
//! Run: `cargo run --release --example march_explorer -- '{c(w0); ⇑(r0,w1); ⇓(r1,w0)}'`

use prt_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10usize;
    let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
    let executor = Executor::new().stop_at_first_mismatch();

    let inputs: Vec<(String, String)> = match std::env::args().nth(1) {
        Some(notation) => vec![("user test".to_string(), notation)],
        None => vec![
            ("March C-".into(), "{c(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); c(r0)}".into()),
            // Same elements but ascending-only: loses some couplings.
            (
                "ascending-only".into(),
                "{c(w0); ⇑(r0,w1); ⇑(r1,w0); ⇑(r0,w1); ⇑(r1,w0); c(r0)}".into(),
            ),
            // ASCII notation works too.
            ("MATS+ (ascii)".into(), "{any(w0); up(r0,w1); down(r1,w0)}".into()),
        ],
    };

    for (name, notation) in inputs {
        let test = prt_march::parse(&name, &notation)?;
        println!("{name}: {test}   ({}n)", test.ops_per_cell());
        let report = prt_march::coverage::evaluate(&test, &universe, &executor);
        print!("  ");
        for row in report.rows() {
            print!("{} {:.0}%  ", row.class, row.percent());
        }
        println!("  overall {:.1}%\n", report.overall_percent());

        // Sanity: a fault-free memory must pass.
        let mut clean = Ram::new(Geometry::bom(n));
        assert!(!executor.run(&test, &mut clean).detected(), "false positive!");
    }

    println!("tip: orders ⇑/⇓ may be written as up/down, ^/v, or u/d.");
    Ok(())
}
