//! Chaos/resilience property suite: every injected failure — a worker
//! killed mid-chunk, a panicking lane batch, a cancellation firing at an
//! arbitrary point, a truncated or bit-flipped checkpoint file — must end
//! in either a **typed error** or a **correct resume**, never a wrong
//! coverage number. These are the acceptance tests of the resilient
//! campaign runtime: a campaign killed mid-run and resumed from its
//! checkpoint produces a report bit-identical to an uninterrupted run, at
//! any thread count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use prt_sim::chaos::{self, ChaosPlan};
use prt_sim::checkpoint;
use prt_suite::prelude::*;

/// Per-process unique checkpoint paths (proptest cases run many files).
static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_ckpt(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "prt-resilience-{}-{tag}-{}.ckpt",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The full mixed universe: every modelled fault family.
fn universe(n: usize) -> FaultUniverse {
    FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::full())
}

/// An interpreted (closure) runner — exercises the scalar campaign path.
fn toy_runner(ram: &mut Ram, _bg: u64) -> bool {
    let n = ram.geometry().cells();
    let mask = ram.geometry().data_mask();
    for a in 0..n {
        ram.write(a, 0);
    }
    for a in 0..n {
        if ram.read(a) != 0 {
            return true;
        }
        ram.write(a, mask);
    }
    (0..n).any(|a| {
        let got = ram.read(a) != mask;
        ram.write(a, 0);
        got
    })
}

/// A compiled March program — exercises the lane-batched campaign path.
fn march_program(geom: Geometry) -> TestProgram {
    Executor::new().compile(&march_library::march_c_minus(), geom)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot → restore returns the exact verdict prefix and cursor for
    /// any table content, prefix length and fingerprint.
    #[test]
    fn checkpoint_round_trip(
        verdicts in prop::collection::vec(any::<bool>(), 0..300),
        extra in 0usize..50,
        fingerprint in any::<u64>(),
    ) {
        let total = verdicts.len() + extra;
        let path = temp_ckpt("roundtrip");
        checkpoint::save_records(&path, fingerprint, total, &verdicts).unwrap();
        let loaded: Vec<bool> =
            checkpoint::load_records(&path, fingerprint, total).unwrap().unwrap();
        prop_assert_eq!(&loaded, &verdicts);
        prop_assert_eq!(checkpoint::peek_fingerprint(&path).unwrap(), fingerprint);
        // A cold start stays a cold start: the wrong-fingerprint and
        // wrong-universe loads are typed refusals, not empty resumes.
        let foreign: Result<Option<Vec<bool>>, _> =
            checkpoint::load_records(&path, fingerprint ^ 1, total);
        prop_assert!(matches!(foreign, Err(CheckpointError::FingerprintMismatch { .. })));
        let resized: Result<Option<Vec<bool>>, _> =
            checkpoint::load_records(&path, fingerprint, total + 1);
        prop_assert!(matches!(resized, Err(CheckpointError::Corrupt { .. })));
        let _ = std::fs::remove_file(&path);
    }

    /// Any strict truncation or single bit flip of a checkpoint file is
    /// rejected as corruption — never silently resumed from.
    #[test]
    fn damaged_checkpoint_is_rejected(
        verdicts in prop::collection::vec(any::<bool>(), 1..200),
        damage in any::<u64>(),
        truncate in any::<bool>(),
    ) {
        let total = verdicts.len();
        let path = temp_ckpt("damage");
        checkpoint::save_records(&path, 0xABCD, total, &verdicts).unwrap();
        let size = std::fs::metadata(&path).unwrap().len() as usize;
        if truncate {
            chaos::truncate_file(&path, damage as usize % size).unwrap();
        } else {
            chaos::flip_bit(&path, damage as usize % (size * 8)).unwrap();
        }
        let loaded: Result<Option<Vec<bool>>, _> =
            checkpoint::load_records(&path, 0xABCD, total);
        prop_assert!(
            matches!(loaded, Err(CheckpointError::Corrupt { .. })),
            "damaged checkpoint must be Corrupt, got {:?}",
            loaded
        );
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// THE acceptance property: a campaign killed mid-run (worker panic at
    /// an arbitrary trial) surfaces a typed `WorkerPanic` after saving its
    /// progress, and a resumed campaign — at a different thread count —
    /// produces a report bit-identical to an uninterrupted run.
    #[test]
    fn killed_campaign_resumes_bit_identically(
        n in 6usize..10,
        kill_pick in any::<u64>(),
        every in 5usize..60,
        threads in 1usize..5,
    ) {
        let u = universe(n);
        let baseline = Campaign::new(&u, toy_runner).with_name("resilient").run();
        let kill_at = kill_pick as usize % u.len();
        let path = temp_ckpt("kill");
        let plan = Arc::new(ChaosPlan::new().panic_on_trial(kill_at));
        let killed = Campaign::new(&u, toy_runner)
            .with_name("resilient")
            .with_parallelism(Parallelism::Threads(threads))
            .with_checkpoint(&path, every)
            .with_chaos(plan)
            .try_run();
        match killed {
            Err(CampaignError::WorkerPanic { ref payload, .. }) => {
                prop_assert!(payload.contains("chaos: injected panic"), "payload: {}", payload);
            }
            ref other => prop_assert!(false, "expected WorkerPanic, got {:?}", other),
        }
        let resumed = Campaign::new(&u, toy_runner)
            .with_name("resilient")
            .with_parallelism(Parallelism::Threads(threads % 4 + 1))
            .with_checkpoint(&path, every)
            .run();
        prop_assert_eq!(&baseline, &resumed);
        let _ = std::fs::remove_file(&path);
    }

    /// A cancellation firing at an arbitrary point yields an explicitly
    /// partial report (never a silently wrong total), and a fresh campaign
    /// resumes from the checkpoint to the exact uninterrupted report.
    #[test]
    fn cancelled_campaign_resumes_to_full_report(
        n in 6usize..9,
        after in any::<u64>(),
        every in 5usize..40,
    ) {
        let u = universe(n);
        let baseline = Campaign::new(&u, toy_runner).with_name("resilient").run();
        let token = CancelToken::new();
        let plan = Arc::new(ChaosPlan::new().cancel_after(after as usize % u.len() + 1, &token));
        let path = temp_ckpt("cancel");
        let stopped = Campaign::new(&u, toy_runner)
            .with_name("resilient")
            .with_parallelism(Parallelism::Sequential)
            .with_cancel(&token)
            .with_checkpoint(&path, every)
            .with_chaos(plan)
            .try_run()
            .unwrap();
        if let Some(partial) = stopped.partial() {
            prop_assert_eq!(partial.cause, StopCause::Cancelled);
            prop_assert!(partial.evaluated < u.len());
            prop_assert_eq!(partial.total, u.len());
            // The partial rows tally exactly the evaluated prefix.
            let tallied: usize = stopped.rows().iter().map(|r| r.total).sum();
            prop_assert_eq!(tallied, partial.evaluated);
        }
        let resumed = Campaign::new(&u, toy_runner)
            .with_name("resilient")
            .with_checkpoint(&path, every)
            .run();
        prop_assert_eq!(&baseline, &resumed);
        let _ = std::fs::remove_file(&path);
    }

    /// A lane batch killed mid-interpreter-pass degrades to the scalar
    /// oracle: the campaign completes with exact verdicts and a nonzero
    /// degradation counter — never a typed error, never wrong coverage.
    /// Batch boundaries depend on the lane-chunk width, so the kill
    /// target is computed from the width under test (not a hardcoded 64).
    #[test]
    fn killed_batch_degrades_to_exact_verdicts(
        n in 6usize..10,
        pick in any::<u64>(),
        threads in 1usize..5,
        width_pick in 0usize..3,
    ) {
        let width = [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512][width_pick];
        let u = universe(n);
        let prog = march_program(u.geometry());
        let clean = Campaign::new(&u, &prog).with_name("resilient").run();
        // Batches are contiguous lane-width chunks over the whole universe
        // (no partition predicate anymore) — batch b starts at b·lanes.
        let starts: Vec<usize> = (0..u.len()).step_by(width.lanes()).collect();
        let target = starts[pick as usize % starts.len()];
        let plan = Arc::new(ChaosPlan::new().panic_on_batch(target));
        let degraded = Campaign::new(&u, &prog)
            .with_name("resilient")
            .with_parallelism(Parallelism::Threads(threads))
            .with_lane_width(width)
            .with_chaos(plan)
            .run();
        prop_assert!(degraded.degraded_batches() >= 1, "batch kill must be counted");
        prop_assert!(degraded.partial().is_none(), "degradation is not a partial run");
        prop_assert_eq!(clean.rows(), degraded.rows());
    }

    /// WIDTH-CROSSING RESUME: the checkpoint fingerprint deliberately
    /// excludes the lane width, so a campaign checkpointed at one width
    /// resumes at ANOTHER width (and thread count) to a report
    /// bit-identical to an uninterrupted run — the lane width is a pure
    /// throughput knob, invisible in every output. The checkpoint is
    /// rewound to an arbitrary prefix, exactly the file a killed run
    /// leaves behind (its cursor need not sit on a lane-chunk boundary of
    /// either width).
    #[test]
    fn checkpoint_resumes_across_lane_widths(
        n in 6usize..10,
        cut_permille in 0usize..1000,
        every in 5usize..60,
        threads in 1usize..5,
        widths_pick in 0usize..6,
    ) {
        let pairs = [
            (LaneWidth::X64, LaneWidth::X256),
            (LaneWidth::X64, LaneWidth::X512),
            (LaneWidth::X256, LaneWidth::X64),
            (LaneWidth::X256, LaneWidth::X512),
            (LaneWidth::X512, LaneWidth::X64),
            (LaneWidth::X512, LaneWidth::X256),
        ];
        let (first_width, resume_width) = pairs[widths_pick];
        let u = universe(n);
        let prog = march_program(u.geometry());
        let baseline = Campaign::new(&u, &prog).with_name("resilient").run();
        let path = temp_ckpt("width");
        let full = Campaign::new(&u, &prog)
            .with_name("resilient")
            .with_lane_width(first_width)
            .with_checkpoint(&path, every)
            .run();
        prop_assert_eq!(&baseline, &full);
        let fp = checkpoint::peek_fingerprint(&path).unwrap();
        let saved: Vec<bool> = checkpoint::load_records(&path, fp, u.len()).unwrap().unwrap();
        let cut = saved.len() * cut_permille / 1000;
        checkpoint::save_records(&path, fp, u.len(), &saved[..cut]).unwrap();
        let resumed = Campaign::new(&u, &prog)
            .with_name("resilient")
            .with_parallelism(Parallelism::Threads(threads))
            .with_lane_width(resume_width)
            .with_checkpoint(&path, every)
            .run();
        prop_assert_eq!(&baseline, &resumed);
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The dictionary adoption of the checkpoint hook: a build interrupted
    /// at ANY prefix of its universe resumes to a dictionary bit-identical
    /// to the uninterrupted build.
    #[test]
    fn dictionary_resumes_from_any_prefix(cut_permille in 0usize..1000) {
        let geom = Geometry::bom(8);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&march_library::march_diag(), geom);
        let poly = Poly2::from_bits(0b1_0001_1011);
        let path = temp_ckpt("dict");
        let full = FaultDictionary::build_with_checkpoint(
            &u, &program, poly, Parallelism::Auto, &path, 40,
        )
        .unwrap();
        // Rewind the (completed) checkpoint to an arbitrary prefix —
        // exactly the file a killed build would have left behind.
        let fp = checkpoint::peek_fingerprint(&path).unwrap();
        let saved: Vec<Observation> =
            checkpoint::load_records(&path, fp, u.len()).unwrap().unwrap();
        let cut = saved.len() * cut_permille / 1000;
        checkpoint::save_records(&path, fp, u.len(), &saved[..cut]).unwrap();
        let resumed = FaultDictionary::build_with_checkpoint(
            &u, &program, poly, Parallelism::Threads(3), &path, 40,
        )
        .unwrap();
        prop_assert_eq!(full.observations(), resumed.observations());
        prop_assert_eq!(full.stats(), resumed.stats());
        let _ = std::fs::remove_file(&path);
    }
}

/// SERVICE CHAOS: a client killed mid-stream (connection dropped after
/// the first delta) must cancel its own job — the disconnect watchdog
/// fires the job's `CancelToken` — and leave the server fully
/// serviceable: a fresh client's job still completes, and the active-job
/// gauge drains back to zero. A dead client never pins the worker pool.
#[test]
fn client_killed_mid_stream_leaves_server_serviceable() {
    use prt_svc::{Client, Event, JobSpec, Server, ServerConfig, StopKind};

    let server = Server::spawn(ServerConfig {
        // Tiny segments so the victim's stream has many deltas in flight
        // and the cancellation provably lands mid-job.
        segment: 8,
        ..ServerConfig::default()
    })
    .expect("spawn service");
    let addr = server.addr();
    let job = JobSpec {
        family: "March C-".to_string(),
        cells: 48,
        width: 1,
        spec: UniverseSpec::full(),
        backgrounds: vec![0],
        lane_width: 0,
        deadline_ms: 0,
        segment: 0,
        topology: None,
    };

    // The victim: read exactly one delta, then drop the connection.
    {
        let client = Client::connect(addr).expect("victim connect");
        let mut stream = client.submit(&job).expect("victim submit");
        let first = stream.next_event().expect("victim first event");
        assert!(matches!(first, Some(Event::Delta(_))), "expected a first delta, got {first:?}");
        // `stream` drops here: the socket closes mid-job.
    }

    // The server must stay serviceable: a fresh client's job completes.
    let client = Client::connect(addr).expect("fresh connect");
    let stream = client.submit(&job).expect("fresh submit");
    let total = stream.total();
    let (deltas, done) = stream.drain().expect("fresh stream");
    assert_eq!(done.cause, StopKind::Complete);
    assert_eq!(done.evaluated, total);
    assert_eq!(deltas.last().expect("at least one delta").end, total);

    // The victim's cancellation lands and the job gauge drains to zero.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while server.active_jobs() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned job still active after 30s (gauge = {})",
            server.active_jobs()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

/// Deadlines produce explicitly partial reports, and `try_detections`
/// refuses to return a partial verdict vector (typed error instead) —
/// deterministic corner, no property sweep needed.
#[test]
fn deadline_yields_marked_partial_report() {
    let u = universe(8);
    let report = Campaign::new(&u, toy_runner)
        .with_deadline(std::time::Duration::ZERO)
        .try_run()
        .expect("a deadline stop is not an error for try_run");
    let partial = report.partial().expect("must be marked partial");
    assert_eq!(partial.cause, StopCause::DeadlineExceeded);
    assert!(!report.complete());
    match Campaign::new(&u, toy_runner).with_deadline(std::time::Duration::ZERO).try_detections() {
        Err(CampaignError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    };
}
