//! Integration tests reproducing the paper's figures end-to-end.

use prt_suite::prelude::*;

#[test]
fn figure_1a_cell_row() {
    // Memory contents after a BOM π-iteration: 0 1 1 | 0 1 1 | …
    let pi = PiTest::figure_1a().expect("automaton");
    let mut ram = Ram::new(Geometry::bom(12));
    pi.run(&mut ram).expect("run");
    let expect = [0u64, 1, 1, 0, 1, 1, 0, 1, 1, 0, 1, 1];
    for (c, &e) in expect.iter().enumerate() {
        assert_eq!(ram.peek(c), e, "cell {c}");
    }
}

#[test]
fn figure_1a_ring_closure_iff_period_divides() {
    let pi = PiTest::figure_1a().expect("automaton");
    for n in 4..40usize {
        let mut ram = Ram::new(Geometry::bom(n));
        let res = pi.run(&mut ram).expect("run");
        let closed = res.fin() == pi.init();
        assert_eq!(closed, (n - 2) % 3 == 0, "n={n}");
        assert!(!res.detected(), "fault-free run must pass, n={n}");
    }
}

#[test]
fn figure_1b_sequence_and_field() {
    let field = Field::new(4, 0b1_0011).expect("p(z)=1+z+z⁴");
    let g = PolyGf::new(&field, vec![1, 2, 2]).expect("g");
    assert!(g.is_irreducible(&field), "the paper's irreducibility statement");
    let pi = PiTest::figure_1b().expect("automaton");
    assert_eq!(&pi.expected_sequence(4), &[0, 1, 2, 6], "the figure's prefix");
    assert_eq!(pi.period().expect("period"), 255, "g is in fact primitive");
}

#[test]
fn figure_1b_ring_closure_on_memory() {
    let pi = PiTest::figure_1b().expect("automaton");
    let mut ram = Ram::new(Geometry::wom(257, 4).expect("geometry")); // 255 + k
    let res = pi.run(&mut ram).expect("run");
    assert_eq!(res.fin(), pi.init());
    assert!(!res.detected());
}

#[test]
fn figure_2_dual_port_equivalence_and_cycles() {
    let pi = PiTest::figure_1b().expect("automaton");
    for n in [16usize, 33, 128] {
        let mut single = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        let r1 = pi.run(&mut single).expect("run");
        let mut dual = Ram::with_ports(Geometry::wom(n, 4).expect("geometry"), 2).expect("ports");
        let r2 = pi.run_dual_port(&mut dual).expect("run");
        assert_eq!(r1.fin(), r2.fin(), "schedules must agree, n={n}");
        assert_eq!(r1.cycles(), 3 * n as u64 - 2);
        assert_eq!(r2.cycles(), 2 * n as u64 - 2);
        // Same storage left behind by both schedules.
        for c in 0..n {
            assert_eq!(single.peek(c), dual.peek(c), "cell {c}");
        }
    }
}

#[test]
fn memory_sequence_has_automaton_complexity() {
    // Berlekamp–Massey on the memory contents: exactly the k-stage LFSR.
    let pi = PiTest::figure_1b().expect("automaton");
    let mut ram = Ram::new(Geometry::wom(64, 4).expect("geometry"));
    pi.run(&mut ram).expect("run");
    let field = Field::new(4, 0b1_0011).expect("field");
    let words: Vec<u64> = (0..64).map(|c| ram.peek(c)).collect();
    let lc = prt_suite::prt_lfsr::linear_complexity_words(&field, &words);
    assert_eq!(lc.complexity, 2);
    assert_eq!(lc.connection, vec![1, 2, 2], "recovers g(x) itself");
}
