//! Physical-topology property tests: the `Topology` algebra (round-trip,
//! composition) and the scrambled-campaign acceptance sweep — under any
//! generated scramble, the sliced, full-pass-batched and scalar engines
//! must agree bit-exactly on every verdict, at every lane width and
//! thread count, and dictionary observations (per-fault MISR signatures)
//! must match between the batched and scalar builds. The identity
//! topology must be bit-identical to the pre-topology code paths,
//! checkpoints included; a checkpoint written under one scramble must
//! refuse to resume under another.

use proptest::prelude::*;
use prt_suite::prelude::*;

/// The scrambled mixed universe the campaign properties sweep: every
/// modelled family, enumerated over the physical coordinates of a
/// seed-generated topology and mapped back to logical addresses.
fn scrambled_universe(geom: Geometry, seed: u64) -> FaultUniverse {
    let spec = UniverseSpec {
        coupling_radius: Some(2),
        intra_word: geom.width() > 1,
        ..UniverseSpec::full()
    };
    FaultUniverse::enumerate_with(geom, &spec, Topology::generate(geom.cells(), seed))
}

/// `PRT_TEST_THREADS` pins the proptest-chosen worker count in CI, like
/// the batch differential sweeps.
fn test_threads(chosen: usize) -> usize {
    std::env::var("PRT_TEST_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(chosen)
}

fn temp_ckpt(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("prt-topology-{}-{name}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ROUND TRIP: `inv ∘ phys = id` and `phys ∘ inv = id` for generated
    /// topologies of arbitrary (not just power-of-two) size — and the
    /// forward map really is a permutation.
    #[test]
    fn generated_topologies_round_trip(n in 1usize..600, seed in any::<u64>()) {
        let t = Topology::generate(n, seed);
        prop_assert_eq!(t.cells(), n);
        let mut seen = vec![false; n];
        for a in 0..n {
            let p = t.to_physical(a);
            prop_assert!(p < n, "physical {p} out of range");
            prop_assert_eq!(t.to_logical(p), a, "inv ∘ phys must be identity");
            seen[p] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b), "forward map must be onto");
        for p in 0..n {
            prop_assert_eq!(t.to_physical(t.to_logical(p)), p, "phys ∘ inv must be identity");
        }
    }

    /// COMPOSITION: `compose` is associative and agrees with sequential
    /// application of the operands' maps.
    #[test]
    fn composition_is_associative(
        n in 1usize..200,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        s3 in any::<u64>(),
    ) {
        let a = Topology::generate(n, s1);
        let b = Topology::generate(n, s2);
        let c = Topology::generate(n, s3);
        let left = a.clone().compose(&b).unwrap().compose(&c).unwrap();
        let right = a.clone().compose(&b.clone().compose(&c).unwrap()).unwrap();
        for x in 0..n {
            let seq = c.to_physical(b.to_physical(a.to_physical(x)));
            prop_assert_eq!(left.to_physical(x), seq, "compose must apply left-to-right");
            prop_assert_eq!(right.to_physical(x), seq, "associativity");
            prop_assert_eq!(left.to_logical(seq), x, "composed inverse");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SCRAMBLED CAMPAIGNS: sliced == full == scalar verdicts, bit-exact,
    /// for random March families over scrambled mixed universes on BOM
    /// and WOM geometries, across lane widths and thread counts.
    #[test]
    fn scrambled_sliced_equals_full_equals_scalar(
        test_idx in 0usize..15,
        n in 2usize..12,
        wom in any::<bool>(),
        seed in any::<u64>(),
        threads in 1usize..5,
        width_idx in 0usize..3,
    ) {
        let geom = if wom { Geometry::wom(n, 4).expect("geometry") } else { Geometry::bom(n) };
        let u = scrambled_universe(geom, seed);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().stop_at_first_mismatch().compile(test, geom);
        let width = [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512][width_idx];
        let threads = test_threads(threads);
        let scalar = Campaign::new(&u, &program)
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        let full = Campaign::new(&u, &program)
            .with_slicing(false)
            .with_lane_width(width)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        let sliced = Campaign::new(&u, &program)
            .with_lane_width(width)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        for (i, s) in scalar.iter().enumerate() {
            prop_assert_eq!(
                *s, full[i],
                "{} seed={} {:?}: full-pass diverged on {}",
                test.name(), seed, width, u.faults()[i]
            );
            prop_assert_eq!(
                *s, sliced[i],
                "{} seed={} {:?}: sliced diverged on {}",
                test.name(), seed, width, u.faults()[i]
            );
        }
    }

    /// SCRAMBLED SIGNATURES: the batched dictionary build reproduces the
    /// scalar per-fault observations (MISR signature + execution summary)
    /// over scrambled universes, at multiple thread counts.
    #[test]
    fn scrambled_dictionary_observations_batch_equals_scalar(
        n in 2usize..10,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let geom = Geometry::bom(n);
        let u = scrambled_universe(geom, seed);
        let program = Executor::new().compile(&march_library::march_diag(), geom);
        let poly = Poly2::from_bits(0b1_0001_1011);
        let scalar = FaultDictionary::build_with_batching(
            &u, &program, poly, Parallelism::Sequential, false,
        ).expect("scalar build");
        let batched = FaultDictionary::build(
            &u, &program, poly, Parallelism::Threads(test_threads(threads)),
        ).expect("batched build");
        prop_assert_eq!(scalar.observations(), batched.observations(), "seed={}", seed);
        prop_assert_eq!(scalar.stats(), batched.stats(), "seed={}", seed);
        prop_assert_eq!(batched.topology(), u.topology());
    }
}

/// IDENTITY ≡ LEGACY: the identity topology yields bit-identical fault
/// lists, verdicts, coverage rows and checkpoint fingerprints to the
/// topology-free code path — a legacy checkpoint resumes under an
/// identity-topology campaign and vice versa.
#[test]
fn identity_topology_is_bit_identical_to_legacy() {
    let geom = Geometry::bom(12);
    let spec = UniverseSpec::full();
    let legacy = FaultUniverse::enumerate(geom, &spec);
    let id = FaultUniverse::enumerate_with(geom, &spec, Topology::identity(12));
    assert_eq!(legacy.faults(), id.faults(), "identity enumeration must be bit-identical");
    let program =
        Executor::new().stop_at_first_mismatch().compile(&march_library::march_c_minus(), geom);
    let a = Campaign::new(&legacy, &program).run();
    let b = Campaign::new(&id, &program).run();
    assert_eq!(a.rows(), b.rows(), "identity coverage must be bit-identical");
    // Checkpoint interchange: the fingerprints are equal, so a file
    // written by the legacy path is adopted by the identity-topology
    // campaign (and explicitly declaring identity changes nothing).
    let path = temp_ckpt("identity");
    let first = Campaign::new(&legacy, &program).with_checkpoint(&path, 16).run();
    let resumed = Campaign::new(&id, &program)
        .with_topology(Topology::identity(12))
        .with_checkpoint(&path, 16)
        .try_run()
        .expect("identity fingerprint must match the legacy checkpoint");
    assert_eq!(first.rows(), resumed.rows());
    let _ = std::fs::remove_file(&path);
}

/// CROSS-SCRAMBLE REFUSAL, through the `Campaign::new` inheritance path:
/// a checkpoint written by a campaign over one scrambled universe is
/// refused by a campaign over a differently-scrambled (or identity)
/// universe — no explicit `with_topology` call required.
#[test]
fn scrambled_checkpoint_refuses_other_topologies() {
    let geom = Geometry::bom(8);
    let spec = UniverseSpec::single_cell();
    let u1 = FaultUniverse::enumerate_with(geom, &spec, Topology::generate(8, 11));
    let u2 = FaultUniverse::enumerate_with(geom, &spec, Topology::generate(8, 12));
    assert_ne!(u1.topology(), u2.topology(), "seeds 11/12 must generate distinct scrambles");
    let program = Executor::new().stop_at_first_mismatch().compile(&march_library::mats(), geom);
    let path = temp_ckpt("cross");
    let first = Campaign::new(&u1, &program).with_checkpoint(&path, 16).run();
    for other in [&u2, &FaultUniverse::enumerate(geom, &spec)] {
        let err = Campaign::new(other, &program)
            .with_checkpoint(&path, 16)
            .try_run()
            .expect_err("a foreign-topology checkpoint must be refused");
        assert!(
            matches!(err, CampaignError::Checkpoint(CheckpointError::FingerprintMismatch { .. })),
            "expected FingerprintMismatch, got {err:?}"
        );
    }
    // The originating topology still resumes its own file.
    let again = Campaign::new(&u1, &program)
        .with_checkpoint(&path, 16)
        .try_run()
        .expect("same-topology resume");
    assert_eq!(first.rows(), again.rows());
    let _ = std::fs::remove_file(&path);
}
