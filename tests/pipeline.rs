//! Cross-crate pipeline tests: simulator → March → PRT → analysis working
//! together, plus complexity accounting across the stack.

use prt_suite::prelude::*;

#[test]
fn complexity_claims_measured_across_sizes() {
    let pi = PiTest::figure_1a().expect("automaton");
    for n in [8usize, 100, 1000] {
        let mut r1 = Ram::new(Geometry::bom(n));
        assert_eq!(pi.run(&mut r1).expect("run").ops(), 3 * n as u64 - 2);
        let mut r2 = Ram::with_ports(Geometry::bom(n), 2).expect("ports");
        assert_eq!(pi.run_dual_port(&mut r2).expect("run").cycles(), 2 * n as u64 - 2);
    }
    for test in march_library::all() {
        let n = 64usize;
        let mut ram = Ram::new(Geometry::bom(n));
        let outcome = Executor::new().run(&test, &mut ram);
        assert_eq!(
            outcome.ops(),
            test.ops_per_cell() as u64 * n as u64,
            "{} advertises {}n",
            test.name(),
            test.ops_per_cell()
        );
    }
}

#[test]
fn single_fault_consensus_on_random_instances() {
    // For each sampled fault: March SS (the strongest baseline) and the
    // PRT full-coverage schedule should both detect it — consensus between
    // two completely different engines doubles as a simulator check.
    let geom = Geometry::bom(12);
    let (prt, _) =
        PrtScheme::full_coverage(Field::new(1, 0b11).expect("GF(2)"), geom).expect("synthesis");
    let march = march_library::march_ss();
    let ex = Executor::new().stop_at_first_mismatch();
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim()).sample(150, 99);
    for (fault, _) in universe.instances() {
        let mut a = Ram::new(geom);
        a.inject(fault.clone()).expect("inject");
        let p = prt.run(&mut a).expect("run").detected();
        let mut b = Ram::new(geom);
        b.inject(fault.clone()).expect("inject");
        let m = ex.run(&march, &mut b).detected();
        assert!(p, "PRT missed {fault}");
        assert!(m, "March SS missed {fault}");
    }
}

#[test]
fn bist_cost_model_consistency() {
    use prt_suite::prt_core::bist::{MarchBist, PrtBist};
    let field = Field::new(4, 0b1_0011).expect("GF(16)");
    let mut last_ratio = f64::INFINITY;
    for log2 in [10u32, 14, 18, 22, 26, 30] {
        let geom = Geometry::wom(1 << log2, 4).expect("geometry");
        let prt = PrtBist::new(geom, &field, &[1, 2, 2]);
        let march = MarchBist::new(geom);
        let ratio = prt.overhead_ratio();
        assert!(ratio < last_ratio, "overhead must shrink with capacity");
        assert!(
            prt.bist_transistors() < march.bist_transistors(),
            "PRT must stay leaner than March BIST"
        );
        last_ratio = ratio;
    }
    // The paper's 2⁻²⁰ bound at 4 Gbit.
    let big = PrtBist::new(Geometry::wom(1 << 30, 4).expect("geometry"), &field, &[1, 2, 2]);
    assert!(big.meets_paper_bound());
}

#[test]
fn misr_vs_prt_signature_consistency() {
    // Compacting the π-wave responses into a MISR gives yet another
    // signature; on a fault it must disagree with the fault-free run
    // whenever PRT's Fin does (cross-check of the two observation paths).
    let pi = PiTest::figure_1b().expect("automaton");
    let n = 40usize;
    let misr_of = |ram: &mut Ram| -> u64 {
        let mut m = Misr::new(Poly2::from_bits(0b1_0011)).expect("misr");
        for c in 0..n {
            m.absorb(ram.peek(c));
        }
        m.signature()
    };
    let mut clean = Ram::new(Geometry::wom(n, 4).expect("geometry"));
    pi.run(&mut clean).expect("run");
    let golden = misr_of(&mut clean);
    for cell in [2usize, 17, 35] {
        let mut faulty = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        faulty.inject(FaultKind::StuckAt { cell, bit: 1, value: 1 }).expect("inject");
        let res = pi.run(&mut faulty).expect("run");
        let sig = misr_of(&mut faulty);
        if res.detected() {
            assert_ne!(sig, golden, "MISR must also see the corruption @{cell}");
        }
    }
}

#[test]
fn multi_fault_memories_still_detected() {
    // Real dies have fault clusters, not single faults; the schemes must
    // not cancel two faults against each other on these seeded examples.
    let field = Field::new(1, 0b11).expect("GF(2)");
    let scheme = PrtScheme::standard3(field).expect("scheme");
    let mut rng = SplitMix64::new(2024);
    for trial in 0..20 {
        let n = 24usize;
        let mut ram = Ram::new(Geometry::bom(n));
        // Two random stuck-at faults with random polarity.
        for _ in 0..2 {
            let cell = rng.next_below(n as u64) as usize;
            let value = (rng.next_u64() & 1) as u8;
            let _ = ram.inject(FaultKind::StuckAt { cell, bit: 0, value });
        }
        let res = scheme.run(&mut ram).expect("run");
        assert!(res.detected(), "trial {trial}: double-SAF escaped");
    }
}

#[test]
fn analysis_predictions_match_scheme_behaviour() {
    use prt_suite::prt_core::analysis;
    // Closed-form SAF p=1/2 per iteration → escape after the 3 independent
    // standard iterations ≈ 12.5%; the DETERMINISTIC standard3 does better:
    // zero escapes. Both facts together validate model and scheme.
    let p = analysis::bom_closed_forms()
        .into_iter()
        .find(|m| m.class == "SAF")
        .expect("SAF model")
        .p_detect;
    assert!((analysis::escape_probability(p, 3) - 0.125).abs() < 1e-12);
    let scheme = PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme");
    let spec = UniverseSpec { saf: true, ..UniverseSpec::default() };
    let u = FaultUniverse::enumerate(Geometry::bom(12), &spec);
    assert!(scheme.coverage(&u).complete());
}
