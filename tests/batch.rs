//! Batch-vs-scalar differential property tests: the lane-sliced batch
//! engine must produce **bit-identical verdicts** to the scalar campaign
//! engine, per fault, over full BOM/WOM universes, for every compiled
//! test family (March, π, PRT scheme, bit-plane scheme), every fault
//! family — including the read/write-logic (RDF/DRDF/IRF/WDF),
//! stuck-open and address-decoder families that batch since the decoder
//! model landed — any lane position and any thread count; and the
//! batched `map_trials` measurement mode must reproduce the scalar
//! per-fault MISR signatures exactly. The scalar path is the oracle —
//! these are the acceptance tests of the lane-sliced refactor.

use proptest::prelude::*;
use prt_suite::prelude::*;

fn gf16() -> Field {
    Field::new(4, 0b1_0011).expect("GF(16)")
}

/// The mixed universe every campaign property sweeps: **every** modelled
/// family — SAF/TF/CFin/CFid/CFst (intra-word included on WOM) plus AF,
/// SOF and the read/write-logic families. All of it batches now; the
/// sweep proves the per-lane decoder/sense/read-logic models against the
/// scalar oracle.
fn mixed_universe(geom: Geometry) -> FaultUniverse {
    let spec = UniverseSpec {
        coupling_radius: Some(2),
        intra_word: geom.width() > 1,
        ..UniverseSpec::full()
    };
    FaultUniverse::enumerate(geom, &spec)
}

/// Thread count for the batch differential sweeps: `PRT_TEST_THREADS`
/// overrides the proptest-chosen count, so CI pins every sweep to a fixed
/// multi-worker configuration (the thread-count-invariance guard).
fn test_threads(chosen: usize) -> usize {
    std::env::var("PRT_TEST_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(chosen)
}

/// Batched (given thread count) vs scalar-sequential verdicts of the same
/// campaign must be identical.
fn assert_batch_equals_scalar(universe: &FaultUniverse, program: &TestProgram, threads: usize) {
    let threads = test_threads(threads);
    let backgrounds = [program.background().unwrap_or(0)];
    let scalar = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_lane_batching(false)
        .with_parallelism(Parallelism::Sequential)
        .detections();
    let batched = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_parallelism(Parallelism::Threads(threads))
        .detections();
    for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
        assert_eq!(
            s,
            b,
            "{}: verdict diverged on {} (threads={})",
            program.name(),
            universe.faults()[i],
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BATCH ≡ SCALAR (March): every library algorithm, random geometry
    /// (BOM and 4-bit WOM), background and thread count, over the full
    /// mixed universe.
    #[test]
    fn march_batch_campaign_equals_scalar(
        test_idx in 0usize..15,
        bg in 0u64..16,
        n in 2usize..12,
        wom in any::<bool>(),
        threads in 1usize..5,
    ) {
        let geom = if wom { Geometry::wom(n, 4).expect("geometry") } else { Geometry::bom(n) };
        let bg = bg & geom.data_mask();
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let ex = Executor::new().with_background(bg).stop_at_first_mismatch();
        let program = ex.compile(test, geom);
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// BATCH ≡ SCALAR (March, multi-background WOM): the `ProgramBank`
    /// dispatch path with the per-fault early exit across backgrounds.
    #[test]
    fn march_multibackground_batch_equals_scalar(
        test_idx in 0usize..15,
        n in 2usize..10,
        threads in 1usize..5,
    ) {
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let ex = Executor::new().stop_at_first_mismatch();
        let bgs = prt_march::coverage::standard_backgrounds(4);
        let bank = prt_march::coverage::compile_bank(test, geom, &ex, &bgs);
        let threads = test_threads(threads);
        let scalar = Campaign::new(&u, &bank)
            .with_backgrounds(&bgs)
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        let batched = Campaign::new(&u, &bank)
            .with_backgrounds(&bgs)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        prop_assert_eq!(scalar, batched, "{} n={}", test.name(), n);
    }

    /// BATCH ≡ SCALAR (π-test): random seeds and sizes; the compiled π
    /// program exercises the accumulator ops (AccSet/ReadAcc/WriteAcc)
    /// whose lanes the batch interpreter widens to per-trial bit-planes.
    #[test]
    fn pi_batch_campaign_equals_scalar(
        s0 in 0u64..16,
        s1 in 0u64..16,
        n in 3usize..14,
        threads in 1usize..5,
    ) {
        let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1]).expect("config");
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let program = pi.compile(geom).expect("compile");
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// BATCH ≡ SCALAR (PRT schemes): the flat scheme program including
    /// stale-channel pre-reads and the final readback sweep.
    #[test]
    fn scheme_batch_campaign_equals_scalar(
        which in 0usize..4,
        n in 3usize..14,
        threads in 1usize..5,
    ) {
        let field = Field::new(1, 0b11).expect("GF(2)");
        let scheme = match which {
            0 => PrtScheme::standard3(field).expect("scheme"),
            1 => PrtScheme::standard4(field).expect("scheme"),
            2 => PrtScheme::plain(field, 3).expect("scheme"),
            _ => PrtScheme::plain(field, 5).expect("scheme"),
        };
        let geom = Geometry::bom(n);
        let u = mixed_universe(geom);
        let program = scheme.compile(geom).expect("compile");
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// BATCH ≡ SCALAR (bit-plane schemes): multi-round GF(2) plane
    /// programs on word-oriented memories.
    #[test]
    fn plane_batch_campaign_equals_scalar(
        rounds in 1usize..4,
        n in 3usize..10,
        threads in 1usize..5,
    ) {
        let scheme = PlaneScheme::standard(Poly2::from_bits(0b111), 4, rounds).expect("scheme");
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let program = scheme.compile(geom).expect("compile");
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// Any lane position, any chunk width: a single batchable fault placed
    /// in an arbitrary lane of an otherwise empty `LaneRam<K>` yields
    /// exactly the scalar verdict in exactly that lane — and nothing
    /// anywhere else. K = 1 probes the original 64-lane path; K = 8 probes
    /// the same fault in a high word of the 512-lane chunk.
    #[test]
    fn any_lane_position_matches_scalar(
        fault_pick in 0usize..100_000,
        lane in 0usize..LANES,
        test_idx in 0usize..15,
        n in 2usize..12,
    ) {
        fn check_at<const K: usize>(
            program: &TestProgram,
            fault: &FaultKind,
            lane: usize,
            want: bool,
        ) {
            let mut lanes = LaneRam::<K>::new(program.geometry());
            lanes.inject(fault.clone(), lane).expect("inject");
            let got = program.detect_batch(&mut lanes);
            assert_eq!(got.get(lane), want, "{fault} in lane {lane} (K={K})");
            assert_eq!(
                got & !LaneChunk::single(lane),
                LaneChunk::<K>::ZERO,
                "inactive lanes must stay silent (K={K})"
            );
        }
        let geom = Geometry::wom(n, 4).expect("geometry");
        // Every modelled family lane-batches: the whole universe is the pool.
        let batchable: Vec<FaultKind> = mixed_universe(geom).faults().to_vec();
        let fault = batchable[fault_pick % batchable.len()].clone();
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().stop_at_first_mismatch().compile(test, geom);
        let mut scalar = Ram::new(geom);
        scalar.inject(fault.clone()).expect("inject");
        let want = program.detect(&mut scalar);
        check_at::<1>(&program, &fault, lane, want);
        check_at::<8>(&program, &fault, lane + 7 * LANES, want);
    }

    /// WIDTH INVARIANCE: the campaign verdict table is bit-identical at
    /// every lane-chunk width (64 ≡ 256 ≡ 512 ≡ scalar), for random March
    /// programs, geometries and thread counts.
    #[test]
    fn campaign_verdicts_invariant_across_lane_widths(
        test_idx in 0usize..15,
        n in 2usize..12,
        wom in any::<bool>(),
        threads in 1usize..5,
    ) {
        let geom = if wom { Geometry::wom(n, 4).expect("geometry") } else { Geometry::bom(n) };
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().stop_at_first_mismatch().compile(test, geom);
        let scalar = Campaign::new(&u, &program)
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        let threads = test_threads(threads);
        for width in [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512] {
            let batched = Campaign::new(&u, &program)
                .with_lane_width(width)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            prop_assert_eq!(
                &scalar, &batched,
                "{} lanes={} threads={}", test.name(), width.lanes(), threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BATCHED MEASUREMENT ≡ SCALAR MEASUREMENT: `map_trials_batched`
    /// signature collection must reproduce, per fault index, the exact
    /// MISR signature and execution summary the scalar `collect` path
    /// measures — for random March programs, sizes and thread counts, at
    /// every lane-chunk width.
    #[test]
    fn signature_map_batched_equals_scalar(
        test_idx in 0usize..15,
        n in 2usize..10,
        threads in 1usize..5,
    ) {
        fn batched_at<const K: usize>(
            geom: Geometry,
            u: &FaultUniverse,
            collector: &SignatureCollector,
            program: &TestProgram,
            threads: usize,
        ) -> Vec<Observation> {
            prt_sim::map_trials_batched::<K, _, _, _>(
                geom,
                1,
                u.faults(),
                Parallelism::Threads(threads),
                |lanes, out| collector.collect_batch(program, lanes, out),
                |_, ram| collector.collect(program, ram).expect("single-port run"),
            )
        }
        let geom = Geometry::bom(n);
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().compile(test, geom);
        let collector = SignatureCollector::new(&program, Poly2::from_bits(0b1_0001_1011))
            .expect("collector");
        let threads = test_threads(threads);
        let scalar: Vec<Observation> =
            prt_sim::map_trials(geom, 1, u.len(), Parallelism::Sequential, |i, ram| {
                ram.inject(u.faults()[i].clone()).expect("valid");
                collector.collect(&program, ram).expect("single-port run")
            });
        for (lanes, batched) in [
            (64usize, batched_at::<1>(geom, &u, &collector, &program, threads)),
            (256, batched_at::<4>(geom, &u, &collector, &program, threads)),
            (512, batched_at::<8>(geom, &u, &collector, &program, threads)),
        ] {
            for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
                prop_assert_eq!(
                    s, b,
                    "{}: observation diverged on {} (lanes={}, threads={})",
                    test.name(), &u.faults()[i], lanes, threads
                );
            }
        }
    }
}

/// MULTI-PORT BATCH ≡ INTERPRETED ORACLE: the batched campaign verdicts
/// of the compiled dual- and quad-port π programs must match the
/// interpreted runners (`run_dual_port` / `run_quad_port`) fault for
/// fault — device errors (multi-port write-write conflicts under decoder
/// faults) escape on both sides. This is the acceptance property of the
/// `CycleN` batch interpreter: multi-port schedules used to be the whole
/// scalar remainder.
#[test]
fn multi_port_batch_matches_interpreted_oracle() {
    let pi = PiTest::new(gf16(), &[1, 2, 2], &[3, 7]).expect("config");
    let geom = Geometry::wom(12, 4).expect("geometry");
    let u = mixed_universe(geom);

    let dual = pi.compile_dual_port(geom, None).expect("compile dual");
    let dual_oracle: Vec<bool> = u
        .faults()
        .iter()
        .map(|f| {
            let mut ram = Ram::with_ports(geom, 2).expect("ports");
            ram.inject(f.clone()).expect("inject");
            pi.run_dual_port(&mut ram).map(|r| r.detected()).unwrap_or(false)
        })
        .collect();
    let quad = pi.compile_quad_port(geom).expect("compile quad");
    let quad_oracle: Vec<bool> = u
        .faults()
        .iter()
        .map(|f| {
            let mut ram = Ram::with_ports(geom, 4).expect("ports");
            ram.inject(f.clone()).expect("inject");
            pi.run_quad_port(&mut ram).map(|r| r.detected()).unwrap_or(false)
        })
        .collect();
    for threads in [1usize, 4] {
        for width in [LaneWidth::X64, LaneWidth::X512] {
            let got = Campaign::over(geom, u.faults(), &dual)
                .with_ports(2)
                .with_lane_width(width)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            assert_eq!(
                dual_oracle,
                got,
                "dual-port verdicts diverged (lanes={}, threads={threads})",
                width.lanes()
            );
            let got = Campaign::over(geom, u.faults(), &quad)
                .with_ports(4)
                .with_lane_width(width)
                .with_parallelism(Parallelism::Threads(threads))
                .detections();
            assert_eq!(
                quad_oracle,
                got,
                "quad-port verdicts diverged (lanes={}, threads={threads})",
                width.lanes()
            );
        }
    }
}

/// Every modelled fault family is lane-batchable: the whole mixed
/// universe injects into lane memories with **no scalar remainder**.
/// (The old `is_lane_batchable` partition predicate is gone — this
/// regression test is what proves the property it used to gate.)
#[test]
fn full_universe_is_entirely_batchable() {
    let u = mixed_universe(Geometry::wom(6, 4).expect("geometry"));
    for chunk in u.faults().chunks(LANES) {
        let mut lanes: LaneRam = LaneRam::new(u.geometry());
        for (lane, fault) in chunk.iter().enumerate() {
            lanes.inject(fault.clone(), lane).expect("every family injects");
        }
    }
}

/// A geometry-mismatched batch run is a LOUD configuration error — the
/// regression guard for the silent-zero-coverage bug, at the integration
/// level the campaign engine drives.
#[test]
#[should_panic(expected = "different geometry")]
fn geometry_mismatched_detect_batch_is_loud() {
    let program = Executor::new().compile(&march_library::march_c_minus(), Geometry::bom(16));
    let mut lanes: LaneRam = LaneRam::new(Geometry::bom(8));
    lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 0).expect("inject");
    let _ = program.detect_batch(&mut lanes);
}

/// BATCHED DICTIONARY ≡ SCALAR DICTIONARY: a `FaultDictionary` built on
/// the lane-batched `map_trials` mode must carry identical per-fault
/// signatures (and identical aggregate statistics) to the scalar build,
/// over a universe spanning every family.
#[test]
fn dictionary_build_batched_equals_scalar() {
    let geom = Geometry::bom(16);
    let u = mixed_universe(geom);
    let program = Executor::new().compile(&march_library::march_diag(), geom);
    let poly = Poly2::from_bits(0b1_0001_1011);
    let scalar =
        FaultDictionary::build_with_batching(&u, &program, poly, Parallelism::Sequential, false)
            .expect("scalar build");
    for threads in [1usize, 4] {
        let batched = FaultDictionary::build(&u, &program, poly, Parallelism::Threads(threads))
            .expect("batched build");
        for (i, (s, b)) in scalar.observations().iter().zip(batched.observations()).enumerate() {
            assert_eq!(
                s.signature,
                b.signature,
                "signature diverged on {} (threads={threads})",
                &u.faults()[i]
            );
            assert_eq!(s, b, "observation diverged on {}", &u.faults()[i]);
        }
        assert_eq!(scalar.stats(), batched.stats(), "threads={threads}");
    }
}

/// The aggregated coverage reports — the artifact campaigns publish —
/// must be identical between the batch and scalar engines for every
/// library March test over a mixed universe, at several thread counts.
#[test]
fn coverage_reports_identical_across_engines_and_threads() {
    let geom = Geometry::bom(16);
    let u = mixed_universe(geom);
    let ex = Executor::new().stop_at_first_mismatch();
    for test in march_library::all() {
        let program = ex.compile(&test, geom);
        let scalar = Campaign::new(&u, &program)
            .with_name(test.name())
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .run();
        for threads in [1usize, 3, 8] {
            let batched = Campaign::new(&u, &program)
                .with_name(test.name())
                .with_parallelism(Parallelism::Threads(threads))
                .run();
            assert_eq!(scalar, batched, "{} threads={threads}", test.name());
        }
    }
}
