//! Batch-vs-scalar differential property tests: the lane-sliced batch
//! engine must produce **bit-identical verdicts** to the scalar campaign
//! engine, per fault, over full BOM/WOM universes, for every compiled
//! test family (March, π, PRT scheme, bit-plane scheme), any lane
//! position and any thread count. The scalar path is the oracle — these
//! are the acceptance tests of the lane-sliced refactor.

use proptest::prelude::*;
use prt_suite::prelude::*;

fn gf16() -> Field {
    Field::new(4, 0b1_0011).expect("GF(16)")
}

/// The mixed universe every campaign property sweeps: batchable families
/// (SAF/TF/CFin/CFid/CFst, intra-word included on WOM) *plus* the
/// scalar-only remainder (AF, SOF, read/write-logic families), so the
/// lanes-of-64 partition and the scalar fallback are both exercised.
fn mixed_universe(geom: Geometry) -> FaultUniverse {
    let spec = UniverseSpec {
        coupling_radius: Some(2),
        intra_word: geom.width() > 1,
        ..UniverseSpec::full()
    };
    FaultUniverse::enumerate(geom, &spec)
}

/// Batched (given thread count) vs scalar-sequential verdicts of the same
/// campaign must be identical.
fn assert_batch_equals_scalar(universe: &FaultUniverse, program: &TestProgram, threads: usize) {
    let backgrounds = [program.background().unwrap_or(0)];
    let scalar = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_lane_batching(false)
        .with_parallelism(Parallelism::Sequential)
        .detections();
    let batched = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_parallelism(Parallelism::Threads(threads))
        .detections();
    for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
        assert_eq!(
            s,
            b,
            "{}: verdict diverged on {} (threads={})",
            program.name(),
            universe.faults()[i],
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BATCH ≡ SCALAR (March): every library algorithm, random geometry
    /// (BOM and 4-bit WOM), background and thread count, over the full
    /// mixed universe.
    #[test]
    fn march_batch_campaign_equals_scalar(
        test_idx in 0usize..15,
        bg in 0u64..16,
        n in 2usize..12,
        wom in any::<bool>(),
        threads in 1usize..5,
    ) {
        let geom = if wom { Geometry::wom(n, 4).expect("geometry") } else { Geometry::bom(n) };
        let bg = bg & geom.data_mask();
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let ex = Executor::new().with_background(bg).stop_at_first_mismatch();
        let program = ex.compile(test, geom);
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// BATCH ≡ SCALAR (March, multi-background WOM): the `ProgramBank`
    /// dispatch path with the per-fault early exit across backgrounds.
    #[test]
    fn march_multibackground_batch_equals_scalar(
        test_idx in 0usize..15,
        n in 2usize..10,
        threads in 1usize..5,
    ) {
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let ex = Executor::new().stop_at_first_mismatch();
        let bgs = prt_march::coverage::standard_backgrounds(4);
        let bank = prt_march::coverage::compile_bank(test, geom, &ex, &bgs);
        let scalar = Campaign::new(&u, &bank)
            .with_backgrounds(&bgs)
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        let batched = Campaign::new(&u, &bank)
            .with_backgrounds(&bgs)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        prop_assert_eq!(scalar, batched, "{} n={}", test.name(), n);
    }

    /// BATCH ≡ SCALAR (π-test): random seeds and sizes; the compiled π
    /// program exercises the accumulator ops (AccSet/ReadAcc/WriteAcc)
    /// whose lanes the batch interpreter widens to per-trial bit-planes.
    #[test]
    fn pi_batch_campaign_equals_scalar(
        s0 in 0u64..16,
        s1 in 0u64..16,
        n in 3usize..14,
        threads in 1usize..5,
    ) {
        let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1]).expect("config");
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let program = pi.compile(geom).expect("compile");
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// BATCH ≡ SCALAR (PRT schemes): the flat scheme program including
    /// stale-channel pre-reads and the final readback sweep.
    #[test]
    fn scheme_batch_campaign_equals_scalar(
        which in 0usize..4,
        n in 3usize..14,
        threads in 1usize..5,
    ) {
        let field = Field::new(1, 0b11).expect("GF(2)");
        let scheme = match which {
            0 => PrtScheme::standard3(field).expect("scheme"),
            1 => PrtScheme::standard4(field).expect("scheme"),
            2 => PrtScheme::plain(field, 3).expect("scheme"),
            _ => PrtScheme::plain(field, 5).expect("scheme"),
        };
        let geom = Geometry::bom(n);
        let u = mixed_universe(geom);
        let program = scheme.compile(geom).expect("compile");
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// BATCH ≡ SCALAR (bit-plane schemes): multi-round GF(2) plane
    /// programs on word-oriented memories.
    #[test]
    fn plane_batch_campaign_equals_scalar(
        rounds in 1usize..4,
        n in 3usize..10,
        threads in 1usize..5,
    ) {
        let scheme = PlaneScheme::standard(Poly2::from_bits(0b111), 4, rounds).expect("scheme");
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let program = scheme.compile(geom).expect("compile");
        assert_batch_equals_scalar(&u, &program, threads);
    }

    /// Any lane position: a single batchable fault placed in an arbitrary
    /// lane of an otherwise empty `LaneRam` yields exactly the scalar
    /// verdict in exactly that lane — and nothing anywhere else.
    #[test]
    fn any_lane_position_matches_scalar(
        fault_pick in 0usize..100_000,
        lane in 0usize..LANES,
        test_idx in 0usize..15,
        n in 2usize..12,
    ) {
        let geom = Geometry::wom(n, 4).expect("geometry");
        let batchable: Vec<FaultKind> = mixed_universe(geom)
            .faults()
            .iter()
            .filter(|f| is_lane_batchable(f))
            .cloned()
            .collect();
        let fault = batchable[fault_pick % batchable.len()].clone();
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().stop_at_first_mismatch().compile(test, geom);
        let mut lanes = LaneRam::new(geom);
        lanes.inject(fault.clone(), lane).expect("inject");
        let got = program.detect_batch(&mut lanes);
        let mut scalar = Ram::new(geom);
        scalar.inject(fault.clone()).expect("inject");
        let want = program.detect(&mut scalar);
        prop_assert_eq!((got >> lane) & 1 == 1, want, "{} in lane {}", &fault, lane);
        prop_assert_eq!(got & !(1u64 << lane), 0, "inactive lanes must stay silent");
    }
}

/// The aggregated coverage reports — the artifact campaigns publish —
/// must be identical between the batch and scalar engines for every
/// library March test over a mixed universe, at several thread counts.
#[test]
fn coverage_reports_identical_across_engines_and_threads() {
    let geom = Geometry::bom(16);
    let u = mixed_universe(geom);
    let ex = Executor::new().stop_at_first_mismatch();
    for test in march_library::all() {
        let program = ex.compile(&test, geom);
        let scalar = Campaign::new(&u, &program)
            .with_name(test.name())
            .with_lane_batching(false)
            .with_parallelism(Parallelism::Sequential)
            .run();
        for threads in [1usize, 3, 8] {
            let batched = Campaign::new(&u, &program)
                .with_name(test.name())
                .with_parallelism(Parallelism::Threads(threads))
                .run();
            assert_eq!(scalar, batched, "{} threads={threads}", test.name());
        }
    }
}
