//! Linked-fault analysis: two coupling faults sharing a victim can mask
//! each other — the classical reason March A/B exist despite March C-'s
//! complete *unlinked* coverage (van de Goor). The simulator composes
//! injected faults sequentially, so masking emerges naturally; these tests
//! measure it rather than assume it.

use prt_suite::prelude::*;

/// All ordered linked CFin pairs `⟨d₁⟩ a₁→v, ⟨d₂⟩ a₂→v` with distinct
/// aggressors on an `n`-cell BOM.
fn linked_cfin_pairs(n: usize) -> Vec<[FaultKind; 2]> {
    let mut out = Vec::new();
    let dirs = [CouplingTrigger::Rise, CouplingTrigger::Fall];
    for v in 0..n {
        for a1 in 0..n {
            for a2 in (a1 + 1)..n {
                if a1 == v || a2 == v {
                    continue;
                }
                for d1 in dirs {
                    for d2 in dirs {
                        out.push([
                            FaultKind::CouplingInversion {
                                agg_cell: a1,
                                agg_bit: 0,
                                victim_cell: v,
                                victim_bit: 0,
                                trigger: d1,
                            },
                            FaultKind::CouplingInversion {
                                agg_cell: a2,
                                agg_bit: 0,
                                victim_cell: v,
                                victim_bit: 0,
                                trigger: d2,
                            },
                        ]);
                    }
                }
            }
        }
    }
    out
}

fn march_coverage_on_pairs(test: &MarchTest, n: usize, pairs: &[[FaultKind; 2]]) -> (usize, usize) {
    let ex = Executor::new().stop_at_first_mismatch();
    let mut detected = 0;
    for pair in pairs {
        let mut ram = Ram::new(Geometry::bom(n));
        for f in pair {
            ram.inject(f.clone()).expect("valid");
        }
        if ex.run(test, &mut ram).detected() {
            detected += 1;
        }
    }
    (detected, pairs.len())
}

#[test]
fn linked_cfin_pairs_mask_each_other_for_march_c_minus() {
    let n = 8;
    let pairs = linked_cfin_pairs(n);
    let (c_minus, total) = march_coverage_on_pairs(&march_library::march_c_minus(), n, &pairs);
    // March C- covers 100% of UNLINKED CFin (E10) but linked pairs mask:
    assert!(c_minus < total, "some linked CFin pair must escape March C- ({c_minus}/{total})");
    // …while single-fault behaviour stays complete (sanity).
    let universe = FaultUniverse::enumerate(
        Geometry::bom(n),
        &UniverseSpec { cfin: true, ..UniverseSpec::default() },
    );
    let report = prt_march::coverage::evaluate(
        &march_library::march_c_minus(),
        &universe,
        &Executor::new().stop_at_first_mismatch(),
    );
    assert!(report.complete(), "unlinked CFin must stay at 100%");
}

#[test]
fn stronger_march_tests_and_prt_reduce_linked_escapes() {
    let n = 8;
    let pairs = linked_cfin_pairs(n);
    let (c_minus, total) = march_coverage_on_pairs(&march_library::march_c_minus(), n, &pairs);
    let (march_a, _) = march_coverage_on_pairs(&march_library::march_a(), n, &pairs);
    let (march_b, _) = march_coverage_on_pairs(&march_library::march_b(), n, &pairs);

    // The textbook motivation for March A/B: better linked-fault behaviour.
    assert!(
        march_a >= c_minus && march_b >= c_minus,
        "March A ({march_a}) and B ({march_b}) should not be worse than C- ({c_minus}) of {total}"
    );

    // PRT full-coverage schedule on the same linked pairs.
    let (scheme, _) =
        PrtScheme::full_coverage(Field::new(1, 0b11).expect("GF(2)"), Geometry::bom(n))
            .expect("synthesis");
    let mut prt_detected = 0;
    for pair in &pairs {
        let mut ram = Ram::new(Geometry::bom(n));
        for f in pair {
            ram.inject(f.clone()).expect("valid");
        }
        if scheme.run(&mut ram).expect("run").detected() {
            prt_detected += 1;
        }
    }
    assert!(
        prt_detected > c_minus,
        "pre-read PRT ({prt_detected}/{total}) should beat March C- ({c_minus}) on linked pairs: \
         the stale-value check observes intermediate corruption that in-element masking hides"
    );
}

#[test]
fn double_inversion_within_one_window_is_the_masking_mechanism() {
    // Construct the mechanism explicitly: two aggressors adjacent to the
    // victim's read window fire once each, restoring the victim before the
    // next read — a March element sees nothing.
    let n = 6;
    let mk = |a: usize| FaultKind::CouplingInversion {
        agg_cell: a,
        agg_bit: 0,
        victim_cell: 1,
        victim_bit: 0,
        trigger: CouplingTrigger::Rise,
    };
    // Sanity: each alone is detected by March C-.
    let ex = Executor::new().stop_at_first_mismatch();
    for a in [3usize, 4] {
        let mut ram = Ram::new(Geometry::bom(n));
        ram.inject(mk(a)).expect("valid");
        assert!(
            ex.run(&march_library::march_c_minus(), &mut ram).detected(),
            "single CFin {a}→1 must be detected"
        );
    }
    // Together they may or may not mask depending on element structure —
    // the aggregate masking existence is asserted by the pair sweep above;
    // here we just confirm the simulator composes both faults.
    let mut ram = Ram::new(Geometry::bom(n));
    ram.inject(mk(3)).expect("valid");
    ram.inject(mk(4)).expect("valid");
    ram.write(1, 0);
    ram.write(3, 1); // rise → victim flips to 1
    assert_eq!(ram.peek(1), 1);
    ram.write(4, 1); // rise → victim flips back to 0
    assert_eq!(ram.peek(1), 0, "double inversion must cancel in storage");
}
