//! End-to-end acceptance tests of the campaign service (`prt-svc`): an
//! in-process server, real TCP clients, and the batch-mode engines as
//! ground truth. The load-bearing properties:
//!
//! * **Streamed ≡ batch.** Two concurrent clients each receive a
//!   monotonically growing delta stream whose final per-class aggregate
//!   is bit-identical to the batch-mode [`Campaign`] report for the
//!   same job.
//! * **Caches cache.** A repeated dictionary query is served without a
//!   rebuild (the build counter is reported over the wire), and repeat
//!   jobs share one compiled program per configuration.
//! * **Lazy universes stream too.** A dense (coupling-free) spec — the
//!   path that shards through `LazyUniverse` without materializing the
//!   universe — produces the same aggregate as eager batch mode.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use prt_suite::prelude::*;
use prt_svc::{
    Client, CoverageDelta, JobDone, JobSpec, LookupSpec, Server, ServerConfig, ServerHandle,
    StopKind,
};

/// Per-process unique store directories.
static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_store(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "prt-service-{}-{tag}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn spawn_server(tag: &str) -> ServerHandle {
    Server::spawn(ServerConfig {
        segment: 64,
        shard: 256,
        store_dir: Some(temp_store(tag)),
        ..ServerConfig::default()
    })
    .expect("spawn service")
}

/// Drains one job's stream, asserting the deltas are an in-order tiling
/// of `[0, done.evaluated)`; returns the per-class aggregate.
fn drain_checked(
    addr: std::net::SocketAddr,
    job: &JobSpec,
) -> (BTreeMap<String, (u64, u64)>, Vec<CoverageDelta>, JobDone) {
    let client = Client::connect(addr).expect("connect");
    let stream = client.submit(job).expect("submit");
    let total = stream.total();
    let (deltas, done) = stream.drain().expect("stream");
    assert_eq!(done.total, total, "accepted total must match the terminal total");
    let mut cursor = 0u64;
    let mut aggregate: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (i, delta) in deltas.iter().enumerate() {
        assert_eq!(delta.seq, i as u64, "sequence numbers are dense from 0");
        assert_eq!(delta.start, cursor, "each delta starts where the last ended");
        assert!(delta.end > delta.start, "deltas carry at least one trial");
        cursor = delta.end;
        let mut in_delta = 0u64;
        for row in &delta.rows {
            assert!(row.detected <= row.total, "detected cannot exceed total");
            let entry = aggregate.entry(row.class.clone()).or_insert((0, 0));
            entry.0 += row.detected;
            entry.1 += row.total;
            in_delta += row.total;
        }
        assert_eq!(
            in_delta,
            delta.end - delta.start,
            "a delta's rows account for exactly its segment"
        );
    }
    assert_eq!(cursor, done.evaluated, "deltas tile the evaluated prefix exactly");
    (aggregate, deltas, done)
}

/// The batch-mode ground truth for the same job.
fn batch_aggregate(job: &JobSpec) -> BTreeMap<String, (u64, u64)> {
    let geom = Geometry::wom(job.cells as usize, job.width.max(1)).expect("geometry");
    let topology = job.topology.clone().unwrap_or_else(|| Topology::identity(geom.cells()));
    let universe = FaultUniverse::enumerate_with(geom, &job.spec, topology);
    let programs: Vec<(u64, TestProgram)> = job
        .backgrounds
        .iter()
        .map(|&bg| (bg, Executor::new().with_background(bg).compile(&resolve(&job.family), geom)))
        .collect();
    let bank = ProgramBank::new(programs);
    let report = Campaign::new(&universe, &bank).with_backgrounds(&job.backgrounds).run();
    assert!(report.partial().is_none(), "the uninterrupted batch oracle evaluates everything");
    report
        .rows()
        .iter()
        .map(|row| (row.class.to_string(), (row.detected as u64, row.total as u64)))
        .collect()
}

fn resolve(family: &str) -> MarchTest {
    march_library::all()
        .into_iter()
        .chain([march_library::march_diag()])
        .find(|t| t.name() == family)
        .expect("known family")
}

/// THE acceptance test: two concurrent clients, same job; both streams
/// tile monotonically and both aggregates equal the batch-mode report.
#[test]
fn concurrent_streams_aggregate_to_batch_report() {
    let server = spawn_server("concurrent");
    let addr = server.addr();
    let job = JobSpec {
        family: "March C-".to_string(),
        cells: 16,
        width: 1,
        spec: UniverseSpec::full(),
        backgrounds: vec![0, 0b1],
        lane_width: 0,
        deadline_ms: 0,
        segment: 64,
        topology: None,
    };
    let want = batch_aggregate(&job);

    let clients: Vec<_> = (0..2)
        .map(|_| {
            let job = job.clone();
            thread::spawn(move || drain_checked(addr, &job))
        })
        .collect();
    for handle in clients {
        let (aggregate, deltas, done) = handle.join().expect("client thread");
        assert_eq!(done.cause, StopKind::Complete);
        assert_eq!(done.evaluated, done.total);
        assert!(deltas.len() > 1, "a multi-segment job must stream more than one delta");
        assert_eq!(aggregate, want, "streamed aggregate must equal the batch report");
    }

    // Two concurrent identical jobs share compiled programs: one compile
    // per (family, geometry, background), not per job.
    assert_eq!(
        server.program_compiles(),
        job.backgrounds.len(),
        "concurrent identical jobs must share the compiled-program cache"
    );
}

/// A dense single-cell spec big enough to exercise the lazy universe
/// path shards without materializing, and still aggregates exactly to
/// the eager batch report.
#[test]
fn lazy_dense_universe_streams_exact_aggregate() {
    let server = spawn_server("lazy");
    let job = JobSpec {
        family: "MATS+".to_string(),
        cells: 512,
        width: 1,
        // Dense read/write families, no couplings ⇒ the server shards
        // through LazyUniverse (asserted structurally in crates/ram).
        spec: UniverseSpec::single_cell(),
        backgrounds: vec![0],
        lane_width: 0,
        deadline_ms: 0,
        segment: 128,
        topology: None,
    };
    let (aggregate, deltas, done) = drain_checked(server.addr(), &job);
    assert_eq!(done.cause, StopKind::Complete);
    assert!(
        deltas.len() as u64 >= done.total / 256,
        "shards must stream per-segment, not one terminal delta"
    );
    assert_eq!(aggregate, batch_aggregate(&job));
}

/// A v2 (topology-carrying) job over the wire: the server enumerates the
/// universe under the scramble and the streamed aggregate equals the
/// local scrambled batch report — while the identity-topology job on the
/// same connection config matches its own (different) baseline, and a
/// mis-sized topology is refused before any sweep starts.
#[test]
fn scrambled_job_streams_scrambled_universe() {
    let server = spawn_server("scrambled");
    let scramble = Topology::identity(64)
        .then_swizzle(Scrambler::reversed(6))
        .expect("64-cell swizzle")
        .then_fold()
        .expect("even fold");
    let job = JobSpec {
        family: "March C-".to_string(),
        cells: 64,
        width: 1,
        spec: UniverseSpec::paper_claim(),
        backgrounds: vec![0],
        lane_width: 0,
        deadline_ms: 0,
        segment: 64,
        topology: Some(scramble),
    };
    let (aggregate, _, done) = drain_checked(server.addr(), &job);
    assert_eq!(done.cause, StopKind::Complete);
    assert_eq!(aggregate, batch_aggregate(&job), "scrambled stream ≡ scrambled batch");

    // The identity job is a *different* sweep (the AF pairing moves), yet
    // the per-class totals agree — the scramble renames, never drops.
    let identity = JobSpec { topology: None, ..job.clone() };
    let (id_aggregate, _, id_done) = drain_checked(server.addr(), &identity);
    assert_eq!(id_done.cause, StopKind::Complete);
    assert_eq!(id_aggregate, batch_aggregate(&identity));
    assert_eq!(id_done.total, done.total, "a bijection cannot change the universe size");
    let totals = |m: &BTreeMap<String, (u64, u64)>| -> BTreeMap<String, u64> {
        m.iter().map(|(k, &(_, t))| (k.clone(), t)).collect()
    };
    assert_eq!(totals(&aggregate), totals(&id_aggregate));

    // A topology sized for the wrong device is refused up front.
    let wrong =
        JobSpec { topology: Some(Topology::identity(32).then_fold().expect("fold")), ..job };
    let client = Client::connect(server.addr()).expect("connect");
    let err = client.submit(&wrong).expect_err("mis-sized topology must be refused");
    assert!(err.to_string().contains("topology"), "unexpected refusal: {err}");
}

/// Cache semantics over the wire: a second identical dictionary query
/// answers from cache (no rebuild — the wire-reported build counter and
/// the server-side gauge agree), with the same candidate set; a fresh
/// signature query against the same dictionary also stays a cache hit.
#[test]
fn repeated_dictionary_query_is_served_from_cache() {
    let server = spawn_server("dict");
    let geom = Geometry::bom(12);
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    let program = Executor::new().compile(&resolve("March C-D"), geom);
    let poly = Poly2::from_bits(0b1_0001_1011);
    // Ground truth: the local dictionary build for the same key.
    let local =
        FaultDictionary::build(&universe, &program, poly, Parallelism::Auto).expect("local build");
    let failing = local
        .observations()
        .iter()
        .find(|o| o.signature != local.reference())
        .expect("some fault leaves a failing signature")
        .signature;

    let mut client = Client::connect(server.addr()).expect("connect");
    let lookup = LookupSpec {
        family: "March C-D".to_string(),
        cells: 12,
        width: 1,
        spec: UniverseSpec::paper_claim(),
        signature: failing,
        prefix_bits: 0,
    };
    let first = client.lookup(&lookup).expect("first lookup");
    assert_eq!(first.reference, local.reference());
    let want: Vec<u64> = local.candidates(failing).iter().map(|&i| i as u64).collect();
    assert_eq!(first.candidates, want, "served candidates must equal the local build");
    assert!(!first.candidates.is_empty());

    // The second identical query must not rebuild.
    let second = client.lookup(&lookup).expect("second lookup");
    assert_eq!(second.builds, first.builds, "repeat query must be a cache hit");
    assert_eq!(second.candidates, first.candidates);
    assert_eq!(server.dictionary_builds() as u64, second.builds);

    // A different signature against the same dictionary: still no rebuild.
    let other = client
        .lookup(&LookupSpec { signature: local.reference(), ..lookup.clone() })
        .expect("reference lookup");
    assert_eq!(other.builds, first.builds);
}

/// Malformed and unsatisfiable requests come back as typed server
/// errors, and the connection/session survives refusals that precede a
/// job acceptance.
#[test]
fn bad_requests_are_refused_with_typed_errors() {
    let server = spawn_server("refuse");
    let job = JobSpec {
        family: "No Such March".to_string(),
        cells: 8,
        width: 1,
        spec: UniverseSpec::single_cell(),
        backgrounds: vec![0],
        lane_width: 0,
        deadline_ms: 0,
        segment: 0,
        topology: None,
    };
    let client = Client::connect(server.addr()).expect("connect");
    match client.submit(&job) {
        Err(prt_svc::SvcError::Server { code: 1, message }) => {
            assert!(message.contains("No Such March"), "message names the family: {message}");
        }
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    // Unknown lane width, same story.
    let client = Client::connect(server.addr()).expect("connect");
    let bad_width = JobSpec { family: "MATS".into(), lane_width: 128, ..job.clone() };
    assert!(matches!(client.submit(&bad_width), Err(prt_svc::SvcError::Server { code: 1, .. })));
    // And the server still serves a well-formed job afterwards.
    let good = JobSpec { family: "MATS".into(), ..job };
    let (_aggregate, _deltas, done) = drain_checked(server.addr(), &good);
    assert_eq!(done.cause, StopKind::Complete);
}
