//! Integration tests for the diagnosis subsystem: the acceptance
//! criterion of the compaction/dictionary/localization pipeline on the
//! BOM n=16 paper-claim universe.

use prt_suite::prelude::*;

fn misr_poly() -> Poly2 {
    // x⁸ + x⁴ + x³ + x + 1 — an 8-bit irreducible compaction polynomial.
    Poly2::from_bits(0b1_0001_1011)
}

/// The expected victim address(es) of a fault — where windowed bisection
/// may legitimately converge.
fn victim_addresses(fault: &FaultKind) -> Vec<usize> {
    match *fault {
        FaultKind::StuckAt { cell, .. } | FaultKind::Transition { cell, .. } => vec![cell],
        FaultKind::CouplingInversion { victim_cell, .. }
        | FaultKind::CouplingIdempotent { victim_cell, .. }
        | FaultKind::CouplingState { victim_cell, .. } => vec![victim_cell],
        FaultKind::DecoderNoAccess { addr } => vec![addr],
        FaultKind::DecoderExtraCell { addr, extra_cell } => vec![addr, extra_cell],
        FaultKind::DecoderShadow { addr, instead_cell } => vec![addr, instead_cell],
        _ => unreachable!("paper-claim universe"),
    }
}

/// `true` when `candidates` is exactly the documented zero-reset
/// observational equivalence class of a bit-oriented memory: `SA0@c`,
/// `TF↑@c` and `AF-none@c` respond identically to every access sequence
/// when the cell can never be driven to 1, so no functional tester can
/// split them.
fn is_bom_zero_class(candidates: &[FaultKind], cell: usize) -> bool {
    candidates.len() == 3
        && candidates.contains(&FaultKind::StuckAt { cell, bit: 0, value: 0 })
        && candidates.contains(&FaultKind::Transition { cell, bit: 0, rising: true })
        && candidates.contains(&FaultKind::DecoderNoAccess { addr: cell })
}

#[test]
fn dictionary_plus_localization_resolves_the_bom16_universe() {
    // THE ACCEPTANCE CRITERION: on the BOM n=16 paper-claim universe,
    // every detected single-fault trial resolves to the exact victim cell
    // and fault family (coupling faults: victim + aggressor), up to
    // observational equivalence — and the measured MISR aliasing is
    // consistent with the 2⁻ʷ analytic bound.
    let geom = Geometry::bom(16);
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    let program = Executor::new().compile(&march_library::march_diag(), geom);
    let dict = FaultDictionary::build(&universe, &program, misr_poly(), Parallelism::Auto).unwrap();

    // Aliasing: measured over the whole universe, against 2⁻⁸.
    let stats = dict.stats();
    assert!(stats.stream_detected > 0);
    assert!(
        stats.measured_aliasing <= stats.analytic_aliasing_bound,
        "measured aliasing {} exceeds the 2^-w bound {}",
        stats.measured_aliasing,
        stats.analytic_aliasing_bound
    );

    let localizer = Localizer::new(march_library::march_diag(), geom).with_dictionary(&dict);
    let mut detected = 0usize;
    let mut exact = 0usize;
    for fault in universe.faults() {
        let mut ram = Ram::new(geom);
        ram.inject(fault.clone()).unwrap();
        let Some(d) = localizer.diagnose(&mut ram).unwrap() else {
            continue; // an escape of this program — nothing to diagnose
        };
        detected += 1;
        assert!(
            d.candidates().contains(fault),
            "{fault}: true fault eliminated (candidates {:?})",
            d.candidates()
        );
        assert!(
            victim_addresses(fault).contains(&d.victim()),
            "{fault}: bisection landed on cell {}",
            d.victim()
        );
        match fault {
            FaultKind::CouplingInversion { agg_cell, victim_cell, .. }
            | FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. }
            | FaultKind::CouplingState { agg_cell, victim_cell, .. } => {
                assert_eq!(d.victim(), *victim_cell, "{fault}: wrong victim");
                assert_eq!(d.aggressor(), Some(*agg_cell), "{fault}: wrong aggressor");
                assert_eq!(d.exact(), Some(fault), "{fault}: not exact ({:?})", d.candidates());
                assert_eq!(d.family(), Some(FaultFamily::Cf), "{fault}");
            }
            FaultKind::DecoderExtraCell { .. } => {
                assert_eq!(d.exact(), Some(fault), "{fault}: not exact ({:?})", d.candidates());
                assert_eq!(d.family(), Some(FaultFamily::Af), "{fault}");
            }
            FaultKind::DecoderShadow { addr, instead_cell } => {
                // A shadow pair is mutually indistinguishable: both
                // AF-shadow@a→i and AF-shadow@i→a make addresses a and i
                // select one shared cell — which physical cell that is
                // cannot be observed through the ports. Family and the
                // address pair still resolve exactly.
                let mirror = FaultKind::DecoderShadow { addr: *instead_cell, instead_cell: *addr };
                assert!(
                    d.candidates().iter().all(|c| c == fault || *c == mirror),
                    "{fault}: beyond the mirror class ({:?})",
                    d.candidates()
                );
                assert_eq!(d.family(), Some(FaultFamily::Af), "{fault}");
                let other = if d.victim() == *addr { *instead_cell } else { *addr };
                assert_eq!(d.aggressor(), Some(other), "{fault}: wrong partner");
            }
            other => {
                // Single-cell families and AF no-access: exact, except the
                // documented zero-reset equivalence class, which must be
                // reported whole.
                if d.exact().is_some() {
                    assert_eq!(d.exact(), Some(fault), "{fault}");
                    assert_eq!(d.family(), Some(FaultFamily::of(fault)), "{fault}");
                } else {
                    assert!(
                        is_bom_zero_class(d.candidates(), d.victim()),
                        "{other}: unexplained ambiguity {:?}",
                        d.candidates()
                    );
                }
            }
        }
        if d.exact().is_some() {
            exact += 1;
        }
    }
    // The diagnostic March detects (nearly) the whole universe, and the
    // overwhelming majority resolves to a singleton.
    assert!(detected * 10 >= universe.len() * 9, "{detected}/{} detected", universe.len());
    assert!(exact * 10 >= detected * 8, "{exact}/{detected} exact");
}

/// The victim bit-plane of a fault, when it has one.
fn victim_bit(fault: &FaultKind) -> Option<u32> {
    match *fault {
        FaultKind::StuckAt { bit, .. } | FaultKind::Transition { bit, .. } => Some(bit),
        FaultKind::CouplingInversion { victim_bit, .. }
        | FaultKind::CouplingIdempotent { victim_bit, .. }
        | FaultKind::CouplingState { victim_bit, .. } => Some(victim_bit),
        _ => None,
    }
}

#[test]
fn wom_diagnosis_resolves_bit_plane_victims_across_widths() {
    // Width sweep (the open ROADMAP follow-up): on word-oriented arrays
    // the Localizer must resolve not just the victim CELL but the victim
    // BIT-PLANE — every surviving candidate names the injected bit, for
    // single-cell and coupling faults at the low, middle and high planes
    // of 2-, 4- and 8-bit words.
    let n = 8usize;
    for w in [2u32, 4, 8] {
        let geom = Geometry::wom(n, w).unwrap();
        let localizer = Localizer::new(march_library::march_diag(), geom);
        let bits = [0, w / 2, w - 1];
        let mut faults: Vec<FaultKind> = Vec::new();
        for &bit in &bits {
            // SA1 is observationally unique on a zero-reset device.
            faults.push(FaultKind::StuckAt { cell: 3, bit, value: 1 });
            // Cross-cell idempotent coupling on the same plane (the
            // paper-claim pool enumerates same-bit pairs).
            faults.push(FaultKind::CouplingIdempotent {
                agg_cell: 1,
                agg_bit: bit,
                victim_cell: 5,
                victim_bit: bit,
                trigger: CouplingTrigger::Rise,
                force: 1,
            });
        }
        for fault in faults {
            let mut ram = Ram::new(geom);
            ram.inject(fault.clone()).unwrap();
            let d = localizer.diagnose(&mut ram).unwrap().unwrap_or_else(|| {
                panic!("w={w}: {fault} must be detected by the diagnostic March")
            });
            assert!(
                d.candidates().contains(&fault),
                "w={w}: {fault} eliminated ({:?})",
                d.candidates()
            );
            let bit = victim_bit(&fault).unwrap();
            assert!(
                d.candidates().iter().all(|c| victim_bit(c) == Some(bit)),
                "w={w}: {fault} not resolved to bit-plane {bit} ({:?})",
                d.candidates()
            );
            match fault {
                FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. } => {
                    // The victim bit-plane and both cells resolve exactly;
                    // the AGGRESSOR bit may stay ambiguous — full-word
                    // probes toggle every aggressor bit together, so CFid
                    // from sibling bits of one aggressor cell are
                    // observationally equivalent here.
                    assert_eq!(d.victim(), victim_cell, "w={w}");
                    assert_eq!(d.aggressor(), Some(agg_cell), "w={w}");
                    assert!(
                        d.candidates().iter().all(|c| matches!(
                            *c,
                            FaultKind::CouplingIdempotent {
                                agg_cell: a,
                                victim_cell: v,
                                victim_bit: vb,
                                trigger: CouplingTrigger::Rise,
                                force: 1,
                                ..
                            } if a == agg_cell && v == victim_cell && vb == bit
                        )),
                        "w={w}: {fault} beyond the sibling-aggressor-bit class ({:?})",
                        d.candidates()
                    );
                }
                _ => {
                    assert_eq!(
                        d.exact(),
                        Some(&fault),
                        "w={w}: {fault} not exact ({:?})",
                        d.candidates()
                    );
                }
            }
        }
        // SA0 collapses into its zero-reset equivalence class {SA0, TF↑}
        // *on the same bit-plane* — the class must still pin the plane.
        for &bit in &bits {
            let fault = FaultKind::StuckAt { cell: 6, bit, value: 0 };
            let mut ram = Ram::new(geom);
            ram.inject(fault.clone()).unwrap();
            let d = localizer.diagnose(&mut ram).unwrap().expect("SA0 is detected");
            assert_eq!(d.victim(), 6, "w={w} bit={bit}");
            assert!(d.candidates().contains(&fault), "w={w} bit={bit}: truth eliminated");
            assert!(
                d.candidates().iter().all(|c| victim_bit(c) == Some(bit)),
                "w={w}: SA0@6.{bit} class spans bit-planes ({:?})",
                d.candidates()
            );
        }
    }
}

#[test]
fn signature_only_tester_flow() {
    // End to end as a tester would run it: detect by signature, look up
    // candidates, localize — no per-read trace ever leaves the device.
    let geom = Geometry::bom(16);
    let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
    let program = Executor::new().compile(&march_library::march_diag(), geom);
    let dict = FaultDictionary::build(&universe, &program, misr_poly(), Parallelism::Auto).unwrap();
    let collector = dict.collector();

    let fault = FaultKind::CouplingState {
        agg_cell: 14,
        agg_bit: 0,
        agg_state: 1,
        victim_cell: 2,
        victim_bit: 0,
        force: 0,
    };
    let mut ram = Ram::new(geom);
    ram.inject(fault.clone()).unwrap();
    let obs = collector.collect(dict.program(), &mut ram).unwrap();
    assert_ne!(obs.signature, dict.reference(), "fault must fail the signature compare");
    let candidates = dict.candidate_faults(obs.signature);
    assert!(candidates.contains(&fault));

    let d = Localizer::new(march_library::march_diag(), geom)
        .with_dictionary(&dict)
        .diagnose(&mut ram)
        .unwrap()
        .expect("detected");
    assert_eq!((d.victim(), d.aggressor()), (2, Some(14)));
    assert_eq!(d.exact(), Some(&fault));
}
