//! Sliced ≡ full-pass differential property suite: activity-driven
//! program slicing must be **observationally invisible** — verdicts,
//! first-mismatch op indices, observed response streams, MISR
//! signatures, dictionary builds, coverage reports and checkpoints all
//! bit-identical to the full interpreter pass — across every compiled
//! test family, every fault family, every lane-chunk width and any
//! thread count. The full pass (`with_slicing(false)`) is the oracle —
//! these are the acceptance tests of the slicing layer, alongside the
//! locality-sorted chunk-assembly invariance the campaign scheduler
//! promises for reports and checkpoints.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use prt_sim::checkpoint;
use prt_suite::prelude::*;

/// Per-process unique checkpoint paths (proptest cases run many files).
static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_ckpt(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "prt-slicing-{}-{tag}-{}.ckpt",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The mixed universe every slicing property sweeps: every modelled
/// family — the single-cell families with tight spans, the coupling
/// families whose spans straddle aggressor/victim windows, and the
/// decoder/stuck-open/read-logic families with always-active footprints.
fn mixed_universe(geom: Geometry) -> FaultUniverse {
    let spec = UniverseSpec {
        coupling_radius: Some(2),
        intra_word: geom.width() > 1,
        ..UniverseSpec::full()
    };
    FaultUniverse::enumerate(geom, &spec)
}

/// Thread count for the differential sweeps: `PRT_TEST_THREADS`
/// overrides the proptest-chosen count, so CI pins every sweep to a
/// fixed multi-worker configuration.
fn test_threads(chosen: usize) -> usize {
    std::env::var("PRT_TEST_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(chosen)
}

/// Sliced and full-pass campaign verdicts over `universe` must be
/// identical — at the given width and thread count, and both must match
/// the scalar interpreter.
fn assert_sliced_equals_full(
    universe: &FaultUniverse,
    program: &TestProgram,
    width: LaneWidth,
    threads: usize,
) {
    let threads = test_threads(threads);
    let backgrounds = [program.background().unwrap_or(0)];
    let scalar = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_lane_batching(false)
        .with_parallelism(Parallelism::Sequential)
        .detections();
    let full = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_slicing(false)
        .with_lane_width(width)
        .with_parallelism(Parallelism::Threads(threads))
        .detections();
    let sliced = Campaign::new(universe, program)
        .with_backgrounds(&backgrounds)
        .with_slicing(true)
        .with_lane_width(width)
        .with_parallelism(Parallelism::Threads(threads))
        .detections();
    assert_eq!(scalar, full, "{}: full pass diverged from scalar", program.name());
    for (i, (f, s)) in full.iter().zip(&sliced).enumerate() {
        assert_eq!(
            f,
            s,
            "{}: sliced verdict diverged on {} (lanes={}, threads={})",
            program.name(),
            universe.faults()[i],
            width.lanes(),
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// SLICED ≡ FULL (March): every library algorithm, random geometry
    /// (BOM and 4-bit WOM), background, lane width and thread count,
    /// over the full mixed universe.
    #[test]
    fn march_sliced_campaign_equals_full(
        test_idx in 0usize..15,
        bg in 0u64..16,
        n in 2usize..12,
        wom in any::<bool>(),
        width_pick in 0usize..3,
        threads in 1usize..5,
    ) {
        let geom = if wom { Geometry::wom(n, 4).expect("geometry") } else { Geometry::bom(n) };
        let bg = bg & geom.data_mask();
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program =
            Executor::new().with_background(bg).stop_at_first_mismatch().compile(test, geom);
        let width = [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512][width_pick];
        assert_sliced_equals_full(&u, &program, width, threads);
    }

    /// SLICED ≡ FULL (π-test): the compiled π program exercises the
    /// accumulator ops the slicer must treat as always-active.
    #[test]
    fn pi_sliced_campaign_equals_full(
        s0 in 0u64..16,
        s1 in 0u64..16,
        n in 3usize..14,
        width_pick in 0usize..3,
        threads in 1usize..5,
    ) {
        let field = Field::new(4, 0b1_0011).expect("GF(16)");
        let pi = PiTest::new(field, &[1, 2, 2], &[s0, s1]).expect("config");
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let program = pi.compile(geom).expect("compile");
        let width = [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512][width_pick];
        assert_sliced_equals_full(&u, &program, width, threads);
    }

    /// SLICED ≡ FULL (PRT / bit-plane schemes): stale-channel pre-reads
    /// and multi-round plane programs.
    #[test]
    fn scheme_sliced_campaign_equals_full(
        which in 0usize..4,
        n in 3usize..12,
        width_pick in 0usize..3,
        threads in 1usize..5,
    ) {
        let width = [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512][width_pick];
        if which < 2 {
            let field = Field::new(1, 0b11).expect("GF(2)");
            let scheme = if which == 0 {
                PrtScheme::standard3(field).expect("scheme")
            } else {
                PrtScheme::standard4(field).expect("scheme")
            };
            let geom = Geometry::bom(n);
            let u = mixed_universe(geom);
            let program = scheme.compile(geom).expect("compile");
            assert_sliced_equals_full(&u, &program, width, threads);
        } else {
            let rounds = which - 1; // 1 or 2
            let scheme =
                PlaneScheme::standard(Poly2::from_bits(0b111), 4, rounds).expect("scheme");
            let geom = Geometry::wom(n, 4).expect("geometry");
            let u = mixed_universe(geom);
            let program = scheme.compile(geom).expect("compile");
            assert_sliced_equals_full(&u, &program, width, threads);
        }
    }

    /// SLICED ≡ FULL (multi-background): the `ProgramBank` dispatch path
    /// with the per-fault early exit across backgrounds — the sliced
    /// interpreter re-derives each background's activity index.
    #[test]
    fn multibackground_sliced_equals_full(
        test_idx in 0usize..15,
        n in 2usize..10,
        threads in 1usize..5,
    ) {
        let geom = Geometry::wom(n, 4).expect("geometry");
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let ex = Executor::new().stop_at_first_mismatch();
        let bgs = prt_march::coverage::standard_backgrounds(4);
        let bank = prt_march::coverage::compile_bank(test, geom, &ex, &bgs);
        let threads = test_threads(threads);
        let full = Campaign::new(&u, &bank)
            .with_backgrounds(&bgs)
            .with_slicing(false)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        let sliced = Campaign::new(&u, &bank)
            .with_backgrounds(&bgs)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        prop_assert_eq!(full, sliced, "{} n={}", test.name(), n);
    }

    /// SLICED OBSERVED ≡ FULL OBSERVED: at the interpreter level, the
    /// sliced observed pass must reproduce the full pass **exactly** —
    /// the observed response planes (gap reads spliced from the
    /// reference), every per-lane execution summary including the
    /// first-mismatch op index, and the detection chunk — for random
    /// fault chunks at both K = 1 and K = 8.
    #[test]
    fn sliced_observed_stream_is_bit_identical(
        test_idx in 0usize..15,
        n in 2usize..10,
        wom in any::<bool>(),
        offset in 0usize..64,
    ) {
        fn check_chunks<const K: usize>(program: &TestProgram, faults: &[FaultKind]) {
            let geom = program.geometry();
            let index = ActivityIndex::build(program);
            for chunk in faults.chunks(LaneRam::<K>::LANES) {
                let mut active = ActiveSet::new();
                for f in chunk {
                    active.insert_fault(f);
                }
                active.finalize(&index);
                let mut full_ram = LaneRam::<K>::new(geom);
                let mut sliced_ram = LaneRam::<K>::new(geom);
                for (lane, f) in chunk.iter().enumerate() {
                    full_ram.inject(f.clone(), lane).expect("inject");
                    sliced_ram.inject(f.clone(), lane).expect("inject");
                }
                let mut full_execs = vec![Execution::default(); LaneRam::<K>::LANES];
                let mut sliced_execs = full_execs.clone();
                let mut full_stream: Vec<Vec<u64>> = Vec::new();
                let mut sliced_stream: Vec<Vec<u64>> = Vec::new();
                let full_det =
                    program.execute_batch_observed(&mut full_ram, &mut full_execs, &mut |p| {
                        full_stream
                            .push((0..LaneRam::<K>::LANES).map(|l| lane_word(p, l)).collect());
                    });
                let sliced_det = program.execute_batch_observed_sliced(
                    &mut sliced_ram,
                    &index,
                    &active,
                    &mut sliced_execs,
                    &mut |p| {
                        sliced_stream
                            .push((0..LaneRam::<K>::LANES).map(|l| lane_word(p, l)).collect());
                    },
                );
                assert_eq!(full_det, sliced_det, "detection chunk diverged (K={K})");
                assert_eq!(full_execs, sliced_execs, "execution summaries diverged (K={K})");
                assert_eq!(
                    full_stream, sliced_stream,
                    "observed response planes diverged (K={K})"
                );
            }
        }
        let geom = if wom { Geometry::wom(n, 4).expect("geometry") } else { Geometry::bom(n) };
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().compile(test, geom);
        // Rotate the universe so chunks mix families across cases.
        let mut faults = u.faults().to_vec();
        let pivot = offset % faults.len().max(1);
        faults.rotate_left(pivot);
        check_chunks::<1>(&program, &faults);
        check_chunks::<8>(&program, &faults);
    }

    /// ASSEMBLY-ORDER INVARIANCE: the locality-sorted chunk assembly the
    /// sliced scheduler uses must be invisible in the published coverage
    /// report — sliced and full-pass runs (different batch compositions
    /// entirely) produce identical reports at any width/thread count,
    /// and so does a sliced run over a pre-shuffled fault list versus
    /// its own full-pass twin.
    #[test]
    fn reports_invariant_under_chunk_assembly(
        test_idx in 0usize..15,
        n in 4usize..10,
        seed in any::<u64>(),
        width_pick in 0usize..3,
        threads in 1usize..5,
    ) {
        let geom = Geometry::bom(n);
        let u = mixed_universe(geom);
        let tests = march_library::all();
        let test = &tests[test_idx % tests.len()];
        let program = Executor::new().stop_at_first_mismatch().compile(test, geom);
        let width = [LaneWidth::X64, LaneWidth::X256, LaneWidth::X512][width_pick];
        let threads = test_threads(threads);
        let full = Campaign::new(&u, &program)
            .with_name("assembly")
            .with_slicing(false)
            .with_lane_width(width)
            .with_parallelism(Parallelism::Threads(threads))
            .run();
        let sliced = Campaign::new(&u, &program)
            .with_name("assembly")
            .with_lane_width(width)
            .with_parallelism(Parallelism::Threads(threads))
            .run();
        prop_assert_eq!(&full, &sliced, "report changed under locality assembly");
        // A shuffled universe: chunk compositions change again; each
        // engine must still agree with the other on the permuted list.
        let mut shuffled = u.faults().to_vec();
        let mut rng = SplitMix64::new(seed);
        rng.shuffle(&mut shuffled);
        let full_shuffled = Campaign::over(geom, &shuffled, &program)
            .with_name("assembly")
            .with_slicing(false)
            .with_lane_width(width)
            .with_parallelism(Parallelism::Threads(threads))
            .run();
        let sliced_shuffled = Campaign::over(geom, &shuffled, &program)
            .with_name("assembly")
            .with_lane_width(width)
            .with_parallelism(Parallelism::Threads(threads))
            .run();
        prop_assert_eq!(&full_shuffled, &sliced_shuffled);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// CHECKPOINT INVARIANCE: slicing is deliberately excluded from the
    /// checkpoint fingerprint — a campaign checkpointed mid-run under one
    /// slicing setting resumes under the OTHER setting (and a different
    /// thread count) to a report bit-identical to an uninterrupted run,
    /// from any rewound prefix (a prefix that need not align with either
    /// engine's chunk boundaries).
    #[test]
    fn checkpoint_resumes_across_slicing_settings(
        n in 6usize..10,
        cut_permille in 0usize..1000,
        every in 5usize..60,
        threads in 1usize..5,
        first_sliced in any::<bool>(),
    ) {
        let u = mixed_universe(Geometry::bom(n));
        let program = Executor::new().compile(&march_library::march_c_minus(), u.geometry());
        let baseline = Campaign::new(&u, &program).with_name("sliced-ckpt").run();
        let path = temp_ckpt("slice");
        let full = Campaign::new(&u, &program)
            .with_name("sliced-ckpt")
            .with_slicing(first_sliced)
            .with_checkpoint(&path, every)
            .run();
        prop_assert_eq!(&baseline, &full);
        let fp = checkpoint::peek_fingerprint(&path).unwrap();
        let saved: Vec<bool> = checkpoint::load_records(&path, fp, u.len()).unwrap().unwrap();
        let cut = saved.len() * cut_permille / 1000;
        checkpoint::save_records(&path, fp, u.len(), &saved[..cut]).unwrap();
        let resumed = Campaign::new(&u, &program)
            .with_name("sliced-ckpt")
            .with_slicing(!first_sliced)
            .with_parallelism(Parallelism::Threads(test_threads(threads)))
            .with_checkpoint(&path, every)
            .run();
        prop_assert_eq!(&baseline, &resumed);
        let _ = std::fs::remove_file(&path);
    }

    /// SLICED DICTIONARY ≡ SCALAR DICTIONARY: the batched dictionary
    /// build slices through the `SignatureCollector`'s activity index —
    /// every per-fault signature, execution summary and the aggregate
    /// statistics must match the scalar build exactly.
    #[test]
    fn sliced_dictionary_build_equals_scalar(
        test_idx in 0usize..3,
        n in 6usize..14,
        threads in 1usize..5,
    ) {
        let geom = Geometry::bom(n);
        let u = mixed_universe(geom);
        let tests =
            [march_library::march_diag(), march_library::march_c_minus(), march_library::mats_plus()];
        let program = Executor::new().compile(&tests[test_idx], geom);
        let poly = Poly2::from_bits(0b1_0001_1011);
        let scalar = FaultDictionary::build_with_batching(
            &u, &program, poly, Parallelism::Sequential, false,
        )
        .expect("scalar build");
        let sliced =
            FaultDictionary::build(&u, &program, poly, Parallelism::Threads(test_threads(threads)))
                .expect("sliced batched build");
        for (i, (s, b)) in scalar.observations().iter().zip(sliced.observations()).enumerate() {
            prop_assert_eq!(
                s, b,
                "observation diverged on {} ({})", &u.faults()[i], tests[test_idx].name()
            );
        }
        prop_assert_eq!(scalar.stats(), sliced.stats());
    }
}

/// The single-thread fast path (no claim counter, no fan-out) is verdict-
/// and report-identical to the multi-worker schedule, sliced and full,
/// across widths — the guard for the `workers <= 1` bypass.
#[test]
fn single_thread_fast_path_matches_fanout() {
    let u = mixed_universe(Geometry::bom(12));
    let program = Executor::new().compile(&march_library::march_c_minus(), u.geometry());
    for slicing in [false, true] {
        for width in [LaneWidth::X64, LaneWidth::X512] {
            let sequential = Campaign::new(&u, &program)
                .with_name("fast-path")
                .with_slicing(slicing)
                .with_lane_width(width)
                .with_parallelism(Parallelism::Sequential)
                .run();
            let threaded = Campaign::new(&u, &program)
                .with_name("fast-path")
                .with_slicing(slicing)
                .with_lane_width(width)
                .with_parallelism(Parallelism::Threads(4))
                .run();
            assert_eq!(sequential, threaded, "slicing={slicing} lanes={}", width.lanes());
        }
    }
}
