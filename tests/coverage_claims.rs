//! Integration tests for the paper's §3 coverage claims (experiments
//! E3/E4/E10 in miniature).

use prt_suite::prelude::*;

fn gf2() -> Field {
    Field::new(1, 0b11).expect("GF(2)")
}

#[test]
fn simulator_calibration_march_textbook_table() {
    // The E10 validation in miniature: known March guarantees.
    let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::paper_claim());
    let ex = Executor::new().stop_at_first_mismatch();
    let check = |test: &MarchTest, complete: &[&str], incomplete: &[&str]| {
        let r = prt_march::coverage::evaluate(test, &universe, &ex);
        for c in complete {
            assert!(r.class(c).expect("class").complete(), "{} must fully cover {c}", test.name());
        }
        for c in incomplete {
            assert!(
                !r.class(c).expect("class").complete(),
                "{} should NOT fully cover {c}",
                test.name()
            );
        }
    };
    check(&march_library::mats_plus(), &["SAF", "AF"], &["TF"]);
    check(&march_library::mats_plus_plus(), &["SAF", "AF", "TF"], &["CFid"]);
    check(&march_library::march_x(), &["SAF", "AF", "TF", "CFin"], &["CFid"]);
    check(&march_library::march_c_minus(), &["SAF", "AF", "TF", "CFin", "CFid", "CFst"], &[]);
}

#[test]
fn standard3_reproduces_paper_claim_except_cfid() {
    let scheme = PrtScheme::standard3(gf2()).expect("scheme");
    let universe = FaultUniverse::enumerate(Geometry::bom(10), &UniverseSpec::paper_claim());
    let report = scheme.coverage(&universe);
    for class in ["SAF", "TF", "AF", "CFin", "CFst"] {
        assert!(
            report.class(class).expect("class").complete(),
            "standard3 must fully cover {class}"
        );
    }
    let cfid = report.class("CFid").expect("class");
    assert_eq!(cfid.detected * 2, cfid.total, "the structural 50% cap");
}

#[test]
fn full_coverage_scheme_is_complete_and_size_stable() {
    for n in [8usize, 14] {
        let (scheme, verified) =
            PrtScheme::full_coverage(gf2(), Geometry::bom(n)).expect("synthesis");
        assert!(verified > 0);
        assert_eq!(scheme.iterations().len(), 5, "5 iterations suffice at n={n}");
        let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        assert!(scheme.coverage(&universe).complete(), "n={n}");
    }
}

#[test]
fn full_coverage_also_handles_extended_fault_families() {
    // SOF/RDF/DRDF/IRF were not part of the synthesis target but fall out
    // for free (read-path corruption always propagates). WDF is the
    // interesting one: a write-disturb fires only on NON-transition writes,
    // and complement-structured TDBs transition on every write by design —
    // so WDF coverage needs one *repeated* iteration (same seed twice),
    // which makes every write a non-transition one.
    let (scheme, _) = PrtScheme::full_coverage(gf2(), Geometry::bom(10)).expect("synthesis");
    let spec = UniverseSpec {
        sof: true,
        rdf: true,
        drdf: true,
        irf: true,
        wdf: true,
        ..UniverseSpec::default()
    };
    let universe = FaultUniverse::enumerate(Geometry::bom(10), &spec);
    let report = scheme.coverage(&universe);
    for row in report.rows() {
        if row.class == "WDF" {
            assert!(!row.complete(), "WDF should expose the all-transition blind spot");
        } else {
            assert!(
                row.complete(),
                "{}: {}/{} — read-path faults are easy for π-tests",
                row.class,
                row.detected,
                row.total
            );
        }
    }
    // Remedy: append a repeat of the last iteration — every write becomes
    // a non-transition write, firing every WDF.
    let mut specs = scheme.iterations().to_vec();
    specs.push(specs.last().expect("non-empty").clone());
    let extended = PrtScheme::new(gf2(), scheme.feedback(), specs)
        .expect("extended scheme")
        .with_preread(true)
        .with_final_readback(true);
    let report = extended.coverage(&universe);
    assert!(
        report.class("WDF").expect("class").complete(),
        "a repeated iteration must complete WDF coverage"
    );
}

/// The three representative scrambles the topology re-evaluation sweeps:
/// identity, bit-reversal of the address lines, and a row/column
/// interleave. `cells` must be a square power of two.
fn representative_scrambles(cells: usize) -> [(&'static str, Topology); 3] {
    let bits = cells.trailing_zeros();
    assert_eq!(cells, 1 << bits, "bit-reversal needs a power-of-two space");
    let side = cells.isqrt();
    assert_eq!(side * side, cells, "the interleave here uses a square array");
    [
        ("identity", Topology::identity(cells)),
        (
            "bit-reversal",
            Topology::identity(cells).then_swizzle(Scrambler::reversed(bits)).expect("swizzle"),
        ),
        (
            "row/col-interleave",
            Topology::identity(cells).then_interleave(side, side).expect("interleave"),
        ),
    ]
}

#[test]
fn march_textbook_table_is_scramble_invariant() {
    // E10 re-evaluated under physical scrambling: the textbook March
    // guarantees quantify over ALL coupling pairs (paper_claim is
    // radius-free), so relabelling the cells must not change a single
    // entry of the table — including the deliberate "NOT covered" holes.
    let geom = Geometry::bom(16);
    let ex = Executor::new().stop_at_first_mismatch();
    for (scramble, topology) in representative_scrambles(geom.cells()) {
        let universe = FaultUniverse::enumerate_with(geom, &UniverseSpec::paper_claim(), topology);
        let check = |test: &MarchTest, complete: &[&str], incomplete: &[&str]| {
            let r = prt_march::coverage::evaluate(test, &universe, &ex);
            for c in complete {
                assert!(
                    r.class(c).expect("class").complete(),
                    "{} must fully cover {c} under {scramble}",
                    test.name()
                );
            }
            for c in incomplete {
                assert!(
                    !r.class(c).expect("class").complete(),
                    "{} should NOT fully cover {c} under {scramble}",
                    test.name()
                );
            }
        };
        check(&march_library::mats_plus(), &["SAF", "AF"], &["TF"]);
        check(&march_library::mats_plus_plus(), &["SAF", "AF", "TF"], &["CFid"]);
        check(&march_library::march_x(), &["SAF", "AF", "TF", "CFin"], &["CFid"]);
        check(&march_library::march_c_minus(), &["SAF", "AF", "TF", "CFin", "CFid", "CFst"], &[]);
    }
}

#[test]
fn standard3_claim_is_scramble_invariant() {
    // E3 re-evaluated under physical scrambling: the §3 claim (everything
    // complete except the structural 50% CFid cap) is address-blind, so
    // it must hold verbatim under every representative scramble.
    let scheme = PrtScheme::standard3(gf2()).expect("scheme");
    let geom = Geometry::bom(16);
    for (scramble, topology) in representative_scrambles(geom.cells()) {
        let universe = FaultUniverse::enumerate_with(geom, &UniverseSpec::paper_claim(), topology);
        let report = scheme.coverage(&universe);
        for class in ["SAF", "TF", "AF", "CFin", "CFst"] {
            assert!(
                report.class(class).expect("class").complete(),
                "standard3 must fully cover {class} under {scramble}"
            );
        }
        let cfid = report.class("CFid").expect("class");
        assert_eq!(
            cfid.detected * 2,
            cfid.total,
            "the 50% cap is structural, even under {scramble}"
        );
    }
}

#[test]
fn radius_limited_neighbourhoods_are_topology_dependent() {
    // The flip side: a radius-limited coupling universe selects aggressors
    // by PHYSICAL adjacency, so the enumerated fault set is a different
    // set (not a relabelling) under a non-trivial scramble — while the
    // per-class totals and the radius-free universes stay invariant.
    let geom = Geometry::bom(16);
    let radius1 = UniverseSpec { cfin: true, coupling_radius: Some(1), ..Default::default() };
    let reversal = Topology::identity(16).then_swizzle(Scrambler::reversed(4)).expect("swizzle");
    let identity = FaultUniverse::enumerate(geom, &radius1);
    let scrambled = FaultUniverse::enumerate_with(geom, &radius1, reversal.clone());
    assert_eq!(identity.census(), scrambled.census(), "per-class totals are scramble-invariant");
    let sorted = |u: &FaultUniverse| {
        let mut v: Vec<String> = u.faults().iter().map(|f| f.to_string()).collect();
        v.sort();
        v
    };
    assert_ne!(
        sorted(&identity),
        sorted(&scrambled),
        "radius-1 aggressor pairs must follow physical adjacency"
    );
    // Radius-free coupling quantifies over all ordered pairs, so the same
    // scramble only permutes the enumeration — equal as sets.
    let free = UniverseSpec { cfin: true, ..Default::default() };
    assert_eq!(
        sorted(&FaultUniverse::enumerate(geom, &free)),
        sorted(&FaultUniverse::enumerate_with(geom, &free, reversal)),
        "all-pairs claims are scramble-invariant"
    );
    // And the E10 workhorse still covers whichever neighbourhood the
    // topology selects: the claim "March C- covers CFin" is invariant even
    // though the universe it is evaluated on is not.
    let ex = Executor::new().stop_at_first_mismatch();
    for (u, scramble) in [(&identity, "identity"), (&scrambled, "bit-reversal")] {
        assert!(
            prt_march::coverage::evaluate(&march_library::march_c_minus(), u, &ex).complete(),
            "March C- must cover the radius-1 universe under {scramble}"
        );
    }
}

#[test]
fn prt_and_march_agree_on_fault_free_memories() {
    let scheme = PrtScheme::standard3(gf2()).expect("scheme");
    let march = march_library::march_c_minus();
    let ex = Executor::new();
    for n in [5usize, 16, 31] {
        let mut a = Ram::new(Geometry::bom(n));
        assert!(!scheme.run(&mut a).expect("run").detected(), "PRT false positive n={n}");
        let mut b = Ram::new(Geometry::bom(n));
        assert!(!ex.run(&march, &mut b).detected(), "March false positive n={n}");
    }
}

#[test]
fn wom_standard3_on_word_universe() {
    let field = Field::new(4, 0b1_0011).expect("GF(16)");
    let scheme = PrtScheme::standard3(field).expect("scheme");
    let spec = UniverseSpec {
        saf: true,
        tf: true,
        af: true,
        coupling_radius: Some(2),
        cfin: true,
        ..UniverseSpec::default()
    };
    let universe = FaultUniverse::enumerate(Geometry::wom(8, 4).expect("geometry"), &spec);
    let report = scheme.coverage(&universe);
    assert!(report.complete(), "SAF/TF/AF/CFin must be complete on WOM");
}

#[test]
fn dual_port_scheme_coverage_equals_single_port() {
    // The Figure 2 schedule must not lose detection power.
    let scheme = PrtScheme::plain(gf2(), 4).expect("scheme");
    let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
    for (fault, _) in universe.instances() {
        let mut single = Ram::new(Geometry::bom(8));
        single.inject(fault.clone()).expect("inject");
        let s = scheme.run(&mut single).expect("run").detected();
        let mut dual = Ram::with_ports(Geometry::bom(8), 2).expect("ports");
        dual.inject(fault.clone()).expect("inject");
        let d = scheme.run_dual_port(&mut dual).expect("run").detected();
        assert_eq!(s, d, "verdicts differ for {fault}");
    }
}
