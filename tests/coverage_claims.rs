//! Integration tests for the paper's §3 coverage claims (experiments
//! E3/E4/E10 in miniature).

use prt_suite::prelude::*;

fn gf2() -> Field {
    Field::new(1, 0b11).expect("GF(2)")
}

#[test]
fn simulator_calibration_march_textbook_table() {
    // The E10 validation in miniature: known March guarantees.
    let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::paper_claim());
    let ex = Executor::new().stop_at_first_mismatch();
    let check = |test: &MarchTest, complete: &[&str], incomplete: &[&str]| {
        let r = prt_march::coverage::evaluate(test, &universe, &ex);
        for c in complete {
            assert!(r.class(c).expect("class").complete(), "{} must fully cover {c}", test.name());
        }
        for c in incomplete {
            assert!(
                !r.class(c).expect("class").complete(),
                "{} should NOT fully cover {c}",
                test.name()
            );
        }
    };
    check(&march_library::mats_plus(), &["SAF", "AF"], &["TF"]);
    check(&march_library::mats_plus_plus(), &["SAF", "AF", "TF"], &["CFid"]);
    check(&march_library::march_x(), &["SAF", "AF", "TF", "CFin"], &["CFid"]);
    check(&march_library::march_c_minus(), &["SAF", "AF", "TF", "CFin", "CFid", "CFst"], &[]);
}

#[test]
fn standard3_reproduces_paper_claim_except_cfid() {
    let scheme = PrtScheme::standard3(gf2()).expect("scheme");
    let universe = FaultUniverse::enumerate(Geometry::bom(10), &UniverseSpec::paper_claim());
    let report = scheme.coverage(&universe);
    for class in ["SAF", "TF", "AF", "CFin", "CFst"] {
        assert!(
            report.class(class).expect("class").complete(),
            "standard3 must fully cover {class}"
        );
    }
    let cfid = report.class("CFid").expect("class");
    assert_eq!(cfid.detected * 2, cfid.total, "the structural 50% cap");
}

#[test]
fn full_coverage_scheme_is_complete_and_size_stable() {
    for n in [8usize, 14] {
        let (scheme, verified) =
            PrtScheme::full_coverage(gf2(), Geometry::bom(n)).expect("synthesis");
        assert!(verified > 0);
        assert_eq!(scheme.iterations().len(), 5, "5 iterations suffice at n={n}");
        let universe = FaultUniverse::enumerate(Geometry::bom(n), &UniverseSpec::paper_claim());
        assert!(scheme.coverage(&universe).complete(), "n={n}");
    }
}

#[test]
fn full_coverage_also_handles_extended_fault_families() {
    // SOF/RDF/DRDF/IRF were not part of the synthesis target but fall out
    // for free (read-path corruption always propagates). WDF is the
    // interesting one: a write-disturb fires only on NON-transition writes,
    // and complement-structured TDBs transition on every write by design —
    // so WDF coverage needs one *repeated* iteration (same seed twice),
    // which makes every write a non-transition one.
    let (scheme, _) = PrtScheme::full_coverage(gf2(), Geometry::bom(10)).expect("synthesis");
    let spec = UniverseSpec {
        sof: true,
        rdf: true,
        drdf: true,
        irf: true,
        wdf: true,
        ..UniverseSpec::default()
    };
    let universe = FaultUniverse::enumerate(Geometry::bom(10), &spec);
    let report = scheme.coverage(&universe);
    for row in report.rows() {
        if row.class == "WDF" {
            assert!(!row.complete(), "WDF should expose the all-transition blind spot");
        } else {
            assert!(
                row.complete(),
                "{}: {}/{} — read-path faults are easy for π-tests",
                row.class,
                row.detected,
                row.total
            );
        }
    }
    // Remedy: append a repeat of the last iteration — every write becomes
    // a non-transition write, firing every WDF.
    let mut specs = scheme.iterations().to_vec();
    specs.push(specs.last().expect("non-empty").clone());
    let extended = PrtScheme::new(gf2(), scheme.feedback(), specs)
        .expect("extended scheme")
        .with_preread(true)
        .with_final_readback(true);
    let report = extended.coverage(&universe);
    assert!(
        report.class("WDF").expect("class").complete(),
        "a repeated iteration must complete WDF coverage"
    );
}

#[test]
fn prt_and_march_agree_on_fault_free_memories() {
    let scheme = PrtScheme::standard3(gf2()).expect("scheme");
    let march = march_library::march_c_minus();
    let ex = Executor::new();
    for n in [5usize, 16, 31] {
        let mut a = Ram::new(Geometry::bom(n));
        assert!(!scheme.run(&mut a).expect("run").detected(), "PRT false positive n={n}");
        let mut b = Ram::new(Geometry::bom(n));
        assert!(!ex.run(&march, &mut b).detected(), "March false positive n={n}");
    }
}

#[test]
fn wom_standard3_on_word_universe() {
    let field = Field::new(4, 0b1_0011).expect("GF(16)");
    let scheme = PrtScheme::standard3(field).expect("scheme");
    let spec = UniverseSpec {
        saf: true,
        tf: true,
        af: true,
        coupling_radius: Some(2),
        cfin: true,
        ..UniverseSpec::default()
    };
    let universe = FaultUniverse::enumerate(Geometry::wom(8, 4).expect("geometry"), &spec);
    let report = scheme.coverage(&universe);
    assert!(report.complete(), "SAF/TF/AF/CFin must be complete on WOM");
}

#[test]
fn dual_port_scheme_coverage_equals_single_port() {
    // The Figure 2 schedule must not lose detection power.
    let scheme = PrtScheme::plain(gf2(), 4).expect("scheme");
    let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
    for (fault, _) in universe.instances() {
        let mut single = Ram::new(Geometry::bom(8));
        single.inject(fault.clone()).expect("inject");
        let s = scheme.run(&mut single).expect("run").detected();
        let mut dual = Ram::with_ports(Geometry::bom(8), 2).expect("ports");
        dual.inject(fault.clone()).expect("inject");
        let d = scheme.run_dual_port(&mut dual).expect("run").detected();
        assert_eq!(s, d, "verdicts differ for {fault}");
    }
}
