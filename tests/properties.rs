//! Property-based integration tests (proptest) for the core invariants.

use proptest::prelude::*;
use prt_suite::prelude::*;

fn gf16() -> Field {
    Field::new(4, 0b1_0011).expect("GF(16)")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fault-free π-iteration leaves exactly the reference LFSR sequence
    /// in memory, for arbitrary seeds and sizes.
    #[test]
    fn pi_iteration_equals_software_lfsr(
        s0 in 0u64..16,
        s1 in 0u64..16,
        n in 3usize..64,
    ) {
        prop_assume!(s0 != 0 || s1 != 0);
        let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1]).expect("config");
        let mut ram = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        let res = pi.run(&mut ram).expect("run");
        prop_assert!(!res.detected());
        let expect = pi.expected_sequence(n);
        for (c, &e) in expect.iter().enumerate() {
            prop_assert_eq!(ram.peek(c), e, "cell {}", c);
        }
    }

    /// Sequence superposition: the π-wave is GF-linear in its seed.
    #[test]
    fn pi_wave_linearity(
        a0 in 0u64..16, a1 in 0u64..16,
        b0 in 0u64..16, b1 in 0u64..16,
    ) {
        let n = 24usize;
        let run = |s0, s1| -> Vec<u64> {
            let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1]).expect("config");
            pi.expected_sequence(n)
        };
        let sa = run(a0, a1);
        let sb = run(b0, b1);
        let sab = run(a0 ^ b0, a1 ^ b1);
        for t in 0..n {
            prop_assert_eq!(sa[t] ^ sb[t], sab[t]);
        }
    }

    /// Any single stuck bit whose polarity disagrees with the TDB at its
    /// cell reaches Fin — invertible error propagation.
    #[test]
    fn wrong_polarity_saf_always_detected(
        cell in 0usize..32,
        bit in 0u32..4,
        s0 in 0u64..16,
        s1 in 1u64..16,
    ) {
        let n = 32usize;
        let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1]).expect("config");
        let expect = pi.expected_sequence(n);
        let wrong = ((expect[cell] >> bit) & 1) ^ 1;
        let mut ram = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        ram.inject(FaultKind::StuckAt { cell, bit, value: wrong as u8 }).expect("inject");
        let res = pi.run(&mut ram).expect("run");
        prop_assert!(res.detected(), "SA{} @ {}.{} escaped", wrong, cell, bit);
    }

    /// The March executor never reports a fault on a fault-free memory,
    /// for any library test, background and size.
    #[test]
    fn march_no_false_positives(
        test_idx in 0usize..15,
        bg in 0u64..16,
        n in 2usize..48,
    ) {
        let tests = march_library::all();
        let test = &tests[test_idx];
        let mut ram = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        let outcome = Executor::new().with_background(bg).run(test, &mut ram);
        prop_assert!(!outcome.detected(), "{} bg={:x} n={}", test.name(), bg, n);
        prop_assert_eq!(outcome.ops(), test.total_ops(n));
    }

    /// PRT schemes never report a fault on a fault-free memory either —
    /// including pre-read and final-readback channels.
    #[test]
    fn prt_no_false_positives(n in 3usize..48, which in 0usize..3) {
        let field = Field::new(1, 0b11).expect("GF(2)");
        let scheme = match which {
            0 => PrtScheme::standard3(field).expect("scheme"),
            1 => PrtScheme::standard4(field).expect("scheme"),
            _ => PrtScheme::plain(field, 5).expect("scheme"),
        };
        let mut ram = Ram::new(Geometry::bom(n));
        prop_assert!(!scheme.run(&mut ram).expect("run").detected());
    }

    /// Trajectories are permutations, and a fault-free run under ANY
    /// trajectory passes.
    #[test]
    fn any_trajectory_is_clean(seed in 0u64..1000, n in 3usize..48) {
        let pi = PiTest::figure_1a()
            .expect("automaton")
            .with_trajectory(Trajectory::Random(seed));
        let order = Trajectory::Random(seed).order(n);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let mut ram = Ram::new(Geometry::bom(n));
        prop_assert!(!pi.run(&mut ram).expect("run").detected());
    }

    /// Dual-port and single-port schedules write identical memory images
    /// and identical signatures for arbitrary seeds.
    #[test]
    fn dual_port_equals_single_port(s0 in 0u64..16, s1 in 0u64..16, n in 3usize..40) {
        let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1]).expect("config");
        let mut a = Ram::new(Geometry::wom(n, 4).expect("geometry"));
        let ra = pi.run(&mut a).expect("run");
        let mut b = Ram::with_ports(Geometry::wom(n, 4).expect("geometry"), 2).expect("ports");
        let rb = pi.run_dual_port(&mut b).expect("run");
        prop_assert_eq!(ra.fin(), rb.fin());
        for c in 0..n {
            prop_assert_eq!(a.peek(c), b.peek(c));
        }
    }

    /// COMPILED ≡ INTERPRETED (March): for random library tests, random
    /// backgrounds, sizes, executor modes and random fault instances, the
    /// compiled program reproduces the interpreted executor's outcome —
    /// verdict, mismatch location and op count.
    #[test]
    fn march_compiled_program_equals_interpreted(
        test_idx in 0usize..15,
        bg in 0u64..16,
        n in 2usize..24,
        fault_pick in 0usize..100_000,
        stop in proptest::prelude::any::<bool>(),
    ) {
        let geom = Geometry::wom(n, 4).expect("geometry");
        let spec = UniverseSpec {
            coupling_radius: Some(2), intra_word: true, ..UniverseSpec::paper_claim()
        };
        let u = FaultUniverse::enumerate(geom, &spec);
        let fault = u.faults()[fault_pick % u.len()].clone();
        let tests = march_library::all();
        let test = &tests[test_idx];
        let mut ex = Executor::new().with_background(bg);
        if stop {
            ex = ex.stop_at_first_mismatch();
        }
        let program = ex.compile(test, geom);
        let mut a = Ram::new(geom);
        a.inject(fault.clone()).expect("inject");
        let mut b = Ram::new(geom);
        b.inject(fault).expect("inject");
        let interpreted = ex.run(test, &mut a);
        let compiled = ex.run_compiled(&program, &mut b);
        prop_assert_eq!(interpreted, compiled, "{} bg={:x} n={}", test.name(), bg, n);
    }

    /// COMPILED ≡ INTERPRETED (π-test): random seeds, trajectories, sizes
    /// and faults — identical verdict, `Fin`, op count and memory image.
    #[test]
    fn pi_compiled_program_equals_interpreted(
        s0 in 0u64..16,
        s1 in 0u64..16,
        n in 3usize..32,
        traj_seed in 0u64..500,
        fault_pick in 0usize..100_000,
    ) {
        let traj = match traj_seed % 3 {
            0 => Trajectory::Up,
            1 => Trajectory::Down,
            _ => Trajectory::Random(traj_seed),
        };
        let pi = PiTest::new(gf16(), &[1, 2, 2], &[s0, s1])
            .expect("config")
            .with_trajectory(traj);
        let geom = Geometry::wom(n, 4).expect("geometry");
        let spec = UniverseSpec {
            coupling_radius: Some(2), intra_word: true, ..UniverseSpec::paper_claim()
        };
        let u = FaultUniverse::enumerate(geom, &spec);
        let fault = u.faults()[fault_pick % u.len()].clone();
        let program = pi.compile(geom).expect("compile");
        let mut a = Ram::new(geom);
        a.inject(fault.clone()).expect("inject");
        let mut b = Ram::new(geom);
        b.inject(fault).expect("inject");
        let interpreted = pi.run(&mut a).expect("run");
        let mut fin = Vec::new();
        let exec = program.execute(&mut b, false, Some(&mut fin)).expect("execute");
        prop_assert_eq!(interpreted.detected(), exec.detected());
        prop_assert_eq!(interpreted.fin(), &fin[..]);
        prop_assert_eq!(interpreted.ops(), exec.ops);
        for c in 0..n {
            prop_assert_eq!(a.peek(c), b.peek(c), "cell {}", c);
        }
    }

    /// COMPILED ≡ INTERPRETED (PRT schemes, pre-read + readback channels
    /// included): random scheme family, size and fault — identical
    /// verdict.
    #[test]
    fn scheme_compiled_program_equals_interpreted(
        which in 0usize..4,
        n in 3usize..20,
        fault_pick in 0usize..100_000,
    ) {
        let field = Field::new(1, 0b11).expect("GF(2)");
        let scheme = match which {
            0 => PrtScheme::standard3(field).expect("scheme"),
            1 => PrtScheme::standard4(field).expect("scheme"),
            2 => PrtScheme::plain(field, 3).expect("scheme"),
            _ => PrtScheme::plain(field, 5).expect("scheme"),
        };
        let geom = Geometry::bom(n);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let fault = u.faults()[fault_pick % u.len()].clone();
        let program = scheme.compile(geom).expect("compile");
        let mut a = Ram::new(geom);
        a.inject(fault.clone()).expect("inject");
        let mut b = Ram::new(geom);
        b.inject(fault).expect("inject");
        let interpreted = scheme.run(&mut a).expect("run").detected();
        prop_assert_eq!(interpreted, program.detect(&mut b), "{} n={}", scheme.name(), n);
    }

    /// COMPILED ≡ INTERPRETED (bit-plane schemes): random seeding policy,
    /// rounds, width and fault — identical any-round verdict.
    #[test]
    fn plane_compiled_program_equals_interpreted(
        seed in 0u64..1000,
        rounds in 1usize..5,
        n in 3usize..16,
        fault_pick in 0usize..100_000,
    ) {
        let scheme = PlaneScheme::standard(Poly2::from_bits(0b111), 4, rounds)
            .expect("scheme");
        let geom = Geometry::wom(n, 4).expect("geometry");
        let spec = UniverseSpec {
            coupling_radius: Some(2), intra_word: true, ..UniverseSpec::paper_claim()
        };
        let u = FaultUniverse::enumerate(geom, &spec);
        let fault = u.faults()[(fault_pick ^ seed as usize) % u.len()].clone();
        let program = scheme.compile(geom).expect("compile");
        let mut a = Ram::new(geom);
        a.inject(fault.clone()).expect("inject");
        let mut b = Ram::new(geom);
        b.inject(fault).expect("inject");
        let interpreted = scheme.run(&mut a).expect("run").iter().any(|r| r.detected());
        prop_assert_eq!(interpreted, program.detect(&mut b), "rounds={} n={}", rounds, n);
    }

    /// Campaigns over compiled programs are verdict-identical to the
    /// pre-refactor interpreted campaign path, for any thread count.
    #[test]
    fn compiled_campaign_equals_interpreted_campaign(
        n in 4usize..14,
        threads in 1usize..5,
    ) {
        let geom = Geometry::bom(n);
        let u = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let scheme = PrtScheme::standard3(Field::new(1, 0b11).expect("GF(2)")).expect("scheme");
        let program = scheme.compile(geom).expect("compile");
        let compiled = Campaign::new(&u, &program)
            .with_parallelism(Parallelism::Threads(threads))
            .detections();
        let interpreted = Campaign::new(&u, &scheme)
            .with_parallelism(Parallelism::Sequential)
            .detections();
        prop_assert_eq!(compiled, interpreted);
    }

    /// The affine (complemented) iteration really is the bitwise complement
    /// of the plain one.
    #[test]
    fn complement_iteration_is_bitwise_not(s0 in 0u64..16, s1 in 0u64..16, n in 3usize..40) {
        let field = gf16();
        let mask = field.mask();
        let plain = PiTest::new(field.clone(), &[1, 2, 2], &[s0, s1]).expect("config");
        let e = field.mul(mask, field.add(1, field.add(2, 2)));
        let compl = PiTest::new(field, &[1, 2, 2], &[s0 ^ mask, s1 ^ mask])
            .expect("config")
            .with_affine(e)
            .expect("affine");
        let sp = plain.expected_sequence(n);
        let sc = compl.expected_sequence(n);
        for t in 0..n {
            prop_assert_eq!(sp[t] ^ mask, sc[t], "t={}", t);
        }
    }
}
