//! Response compaction: MISR signatures of compiled-program runs.
//!
//! A production BIST does not ship a per-read comparator trace to the
//! tester — it compacts the response stream into a `w`-bit [`Misr`]
//! signature and compares *once*. This module is that compaction path for
//! any compiled [`TestProgram`]: the interpreter's checked-read
//! observations ([`TestProgram::execute_observed`]) feed the register, and
//! the fault-free **reference signature** comes straight from the
//! program's baked-in expectations ([`TestProgram::expected_responses`]) —
//! computed once at configuration time, no golden device run needed.

use crate::DiagError;
use prt_gf::Poly2;
use prt_lfsr::Misr;
use prt_ram::{
    lane_word, ActiveSet, ActivityIndex, Execution, LaneChunk, LaneRam, Ram, RamError, TestProgram,
};
use std::sync::Arc;

/// One observed run: the compacted signature plus the full channel counts
/// of the execution that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// The compacted MISR signature of the checked-read response stream.
    pub signature: u64,
    /// The execution summary (mismatch counts, ops, cycles).
    pub exec: Execution,
}

impl Observation {
    /// `true` when the raw response stream differed from the fault-free
    /// one (some checked read mismatched) — detection at *comparator*
    /// resolution, before compaction.
    pub fn stream_differs(&self) -> bool {
        self.exec.detected()
    }
}

/// Dictionary-build checkpoints: one observation per simulated fault —
/// signature, channel counts and the optional first mismatch, flattened
/// to ten words ([`FaultDictionary::build_with_checkpoint`] resumes an
/// interrupted universe sweep from these).
///
/// [`FaultDictionary::build_with_checkpoint`]: crate::FaultDictionary::build_with_checkpoint
impl prt_sim::checkpoint::CheckpointRecord for Observation {
    const KIND: u32 = 2;
    const WORDS: usize = 10;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.signature);
        out.push(self.exec.mismatches);
        out.push(self.exec.stale_errors);
        match &self.exec.first_mismatch {
            Some(m) => {
                out.push(1);
                out.push(m.op_index as u64);
                out.push(m.addr as u64);
                out.push(m.expected);
                out.push(m.got);
            }
            None => out.extend_from_slice(&[0; 5]),
        }
        out.push(self.exec.ops);
        out.push(self.exec.cycles);
    }

    fn decode(words: &[u64]) -> Option<Observation> {
        let [signature, mismatches, stale_errors, has_first, op_index, addr, expected, got, ops, cycles] =
            *words
        else {
            return None;
        };
        let first_mismatch = match has_first {
            0 if (op_index, addr, expected, got) == (0, 0, 0, 0) => None,
            1 => Some(prt_ram::OpMismatch {
                op_index: usize::try_from(op_index).ok()?,
                addr: usize::try_from(addr).ok()?,
                expected,
                got,
            }),
            _ => return None,
        };
        Some(Observation {
            signature,
            exec: Execution { mismatches, stale_errors, first_mismatch, ops, cycles },
        })
    }
}

/// Compacts every checked-read response of one compiled program through a
/// MISR, with the fault-free reference signature precomputed from the
/// program's expectations.
///
/// # Example
///
/// ```
/// use prt_diag::SignatureCollector;
/// use prt_gf::Poly2;
/// use prt_march::{library, Executor};
/// use prt_ram::{FaultKind, Geometry, Ram};
///
/// let geom = Geometry::bom(16);
/// let program = Executor::new().compile(&library::march_diag(), geom);
/// let collector = SignatureCollector::new(&program, Poly2::from_bits(0b1_0001_1011))?;
///
/// let mut good = Ram::new(geom);
/// assert_eq!(collector.collect(&program, &mut good)?.signature, collector.reference());
///
/// let mut bad = Ram::new(geom);
/// bad.inject(FaultKind::StuckAt { cell: 9, bit: 0, value: 1 })?;
/// assert_ne!(collector.collect(&program, &mut bad)?.signature, collector.reference());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SignatureCollector {
    poly: Poly2,
    width: u32,
    responses: u64,
    reference: u64,
    /// Activity index of the program the collector was built for — the
    /// batched path slices with it whenever it still matches the program
    /// handed to [`SignatureCollector::collect_batch`]. Shared with the
    /// program's own cache ([`TestProgram::activity_index`]).
    index: Arc<ActivityIndex>,
}

impl SignatureCollector {
    /// Builds a collector for `program` over the MISR polynomial `poly`:
    /// the reference signature is the compaction of
    /// [`TestProgram::expected_responses`].
    ///
    /// # Errors
    ///
    /// [`DiagError::Lfsr`] for a degenerate polynomial.
    pub fn new(program: &TestProgram, poly: Poly2) -> Result<SignatureCollector, DiagError> {
        let mut reference = Misr::new(poly)?;
        for expect in program.expected_responses() {
            reference.absorb(expect);
        }
        Ok(SignatureCollector {
            poly,
            width: reference.width(),
            responses: reference.absorbed(),
            reference: reference.signature(),
            index: program.activity_index(),
        })
    }

    /// The MISR polynomial the collector compacts with.
    pub fn poly(&self) -> Poly2 {
        self.poly
    }

    /// Register width `w`.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Checked-read responses one run absorbs.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// The fault-free reference signature.
    pub fn reference(&self) -> u64 {
        self.reference
    }

    /// The analytic aliasing bound `2⁻ʷ` — the probability a *random*
    /// error stream compacts to the reference ([`Misr::aliasing_probability`]).
    /// [`crate::FaultDictionary`] measures the actual rate over a fault
    /// universe against this bound.
    pub fn aliasing_bound(&self) -> f64 {
        (0.5f64).powi(self.width as i32)
    }

    /// Compacts an already-recorded response stream (e.g. one collected by
    /// a [`crate::Localizer`] probe) into its signature.
    pub fn compact(&self, stream: impl IntoIterator<Item = u64>) -> u64 {
        let mut misr = Misr::new(self.poly).expect("polynomial validated at construction");
        for v in stream {
            misr.absorb(v);
        }
        misr.signature()
    }

    /// Runs `program` on `ram` (no early exit, so the stream length is
    /// response-independent) and compacts the observed checked reads.
    ///
    /// # Errors
    ///
    /// Device errors from [`TestProgram::execute_observed`] (geometry
    /// mismatch, multi-port conflicts) — campaign builders map them to the
    /// escape convention.
    pub fn collect(&self, program: &TestProgram, ram: &mut Ram) -> Result<Observation, RamError> {
        let mut misr = Misr::new(self.poly).expect("polynomial validated at construction");
        let exec = program.execute_observed(ram, false, None, &mut |v| misr.absorb(v))?;
        Ok(Observation { signature: misr.signature(), exec })
    }

    /// The lane-batched form of [`SignatureCollector::collect`]: runs
    /// `program` once against every trial of a prepared [`LaneRam`]
    /// (lanes `0..k` injected, as `prt_sim::map_trials_batched` hands it
    /// over) and pushes one [`Observation`] per lane, in lane order. One
    /// MISR per lane absorbs that lane's slice of the observed planes, so
    /// each signature — and each execution summary — is **identical** to
    /// what [`SignatureCollector::collect`] returns for a scalar run of
    /// the same fault (property-tested in `tests/batch.rs`): the device
    /// pass is shared across the chunk's trials, the compaction is not.
    ///
    /// Lanes frozen by a multi-port write-write conflict
    /// ([`LaneRam::errored_lanes`]) receive the scalar error-as-escape
    /// observation — the reference signature with a default execution —
    /// exactly what a campaign's escape closure substitutes when the
    /// scalar [`SignatureCollector::collect`] returns the device error.
    ///
    /// # Panics
    ///
    /// Panics when the active lanes are not the contiguous `0..k` prefix
    /// the batched campaign engine guarantees, and propagates the loud
    /// [`TestProgram::execute_batch_observed`] configuration errors
    /// (port shortfall, geometry mismatch).
    pub fn collect_batch<const K: usize>(
        &self,
        program: &TestProgram,
        ram: &mut LaneRam<K>,
        out: &mut Vec<Observation>,
    ) {
        let k = ram.active_lanes().count_ones() as usize;
        assert_eq!(
            ram.active_lanes(),
            LaneChunk::prefix(k),
            "batched collection expects trials in lanes 0..k"
        );
        let mut misrs: Vec<Misr> = (0..k)
            .map(|_| Misr::new(self.poly).expect("polynomial validated at construction"))
            .collect();
        let mut execs = vec![Execution::default(); LaneRam::<K>::LANES];
        let mut observer = |planes: &[LaneChunk<K>]| {
            for (lane, misr) in misrs.iter_mut().enumerate() {
                misr.absorb(lane_word(planes, lane));
            }
        };
        if self.index.matches(program) {
            // Activity slicing: only the ops whose address intersects the
            // chunk's span union run on the device; skipped checked reads
            // absorb their precomputed fault-free responses — the
            // signatures are bit-identical to the full pass.
            let mut active = ActiveSet::new();
            for (fault, _) in ram.fault_bank().faults() {
                active.insert_fault(fault);
            }
            active.finalize(&self.index);
            let _ = program.execute_batch_observed_sliced(
                ram,
                &self.index,
                &active,
                &mut execs,
                &mut observer,
            );
        } else {
            let _ = program.execute_batch_observed(ram, &mut execs, &mut observer);
        }
        let errored = ram.errored_lanes();
        for (lane, misr) in misrs.iter().enumerate() {
            if errored.get(lane) {
                out.push(Observation { signature: self.reference, exec: Execution::default() });
            } else {
                out.push(Observation { signature: misr.signature(), exec: execs[lane] });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_march::{library, Executor};
    use prt_ram::{FaultKind, Geometry};

    fn poly8() -> Poly2 {
        Poly2::from_bits(0b1_0001_1011)
    }

    #[test]
    fn reference_equals_fault_free_collection() {
        for bg in [0u64, 1] {
            let geom = Geometry::bom(12);
            let program = Executor::new().with_background(bg).compile(&library::march_diag(), geom);
            let c = SignatureCollector::new(&program, poly8()).unwrap();
            let mut ram = Ram::new(geom);
            let obs = c.collect(&program, &mut ram).unwrap();
            assert!(!obs.stream_differs());
            assert_eq!(obs.signature, c.reference(), "bg={bg}");
            assert_eq!(c.responses(), 9 * 12, "March C-D has 9 reads per cell");
        }
    }

    #[test]
    fn faults_perturb_the_signature() {
        let geom = Geometry::bom(12);
        let program = Executor::new().compile(&library::march_diag(), geom);
        let c = SignatureCollector::new(&program, poly8()).unwrap();
        for cell in 0..12 {
            let mut ram = Ram::new(geom);
            ram.inject(FaultKind::StuckAt { cell, bit: 0, value: 1 }).unwrap();
            let obs = c.collect(&program, &mut ram).unwrap();
            assert!(obs.stream_differs());
            assert_ne!(obs.signature, c.reference(), "SA1@{cell} aliased");
        }
    }

    #[test]
    fn aliasing_bound_follows_width() {
        let geom = Geometry::bom(4);
        let program = Executor::new().compile(&library::mats_plus(), geom);
        let c = SignatureCollector::new(&program, poly8()).unwrap();
        assert_eq!(c.width(), 8);
        assert!((c.aliasing_bound() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_polynomial_rejected() {
        let geom = Geometry::bom(4);
        let program = Executor::new().compile(&library::mats(), geom);
        assert!(matches!(SignatureCollector::new(&program, Poly2::ONE), Err(DiagError::Lfsr(_))));
    }
}
