//! Signature compaction, fault dictionaries and adaptive fault
//! localization — the diagnosis workload on top of the campaign engine.
//!
//! The coverage layers (`prt-march`, `prt-core`, `prt-sim`) reduce every
//! fault trial to one bit: detected or escaped. A production BIST flow
//! needs two more steps the paper's §BIST setting implies:
//!
//! 1. **Compaction** ([`SignatureCollector`]): the tester never sees the
//!    per-read comparator trace — a MISR compacts the checked-read
//!    response stream of a compiled [`prt_ram::TestProgram`] into `w`
//!    bits, with the fault-free reference signature computed at
//!    configuration time from the program's own expectations (no golden
//!    device run). The hardware view of the same path is
//!    `prt_core::BistController::with_signature`.
//! 2. **Diagnosis**: a failing signature must become a repairable
//!    address. [`FaultDictionary`] inverts `fault → signature` over an
//!    enumerated universe on the parallel campaign engine
//!    ([`prt_sim::map_trials`]), with *measured* aliasing and ambiguity
//!    statistics next to the analytic `2⁻ʷ` bound; [`Localizer`] then
//!    narrows a live failing device to the victim cell, fault family and
//!    (for two-cell faults) the aggressor, with `O(log n)` adaptively
//!    chosen probe runs — windowed re-runs of a diagnostic March whose
//!    comparator is gated to half the address range
//!    ([`prt_march::Executor::compile_window`]).
//!
//! # Quick start
//!
//! ```
//! use prt_diag::{FaultDictionary, Localizer};
//! use prt_gf::Poly2;
//! use prt_march::{library, Executor};
//! use prt_ram::{FaultKind, FaultUniverse, Geometry, Ram, UniverseSpec};
//! use prt_sim::Parallelism;
//!
//! let geom = Geometry::bom(16);
//! let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
//! let program = Executor::new().compile(&library::march_diag(), geom);
//! let dict = FaultDictionary::build(
//!     &universe,
//!     &program,
//!     Poly2::from_bits(0b1_0001_1011),
//!     Parallelism::Auto,
//! )?;
//!
//! // A field return: victim 11, aggressor 4.
//! let mut failing = Ram::new(geom);
//! failing.inject(FaultKind::CouplingInversion {
//!     agg_cell: 4,
//!     agg_bit: 0,
//!     victim_cell: 11,
//!     victim_bit: 0,
//!     trigger: prt_ram::CouplingTrigger::Rise,
//! })?;
//! let diag = Localizer::new(library::march_diag(), geom)
//!     .with_dictionary(&dict)
//!     .diagnose(&mut failing)?
//!     .expect("detected");
//! assert_eq!((diag.victim(), diag.aggressor()), (11, Some(4)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
mod error;
mod localize;
mod signature;
mod store;

pub use dictionary::{DictionaryStats, FaultDictionary};
pub use error::DiagError;
pub use localize::{Diagnosis, FaultFamily, Localizer};
pub use signature::{Observation, SignatureCollector};
pub use store::DictionaryStore;
