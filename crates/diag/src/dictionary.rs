//! Fault dictionaries: `signature → candidate fault set`.
//!
//! A tester that sees only a failing MISR signature must answer *which
//! fault, where* before a repair (row/column replacement) can be chosen.
//! The classical answer is a **fault dictionary**: simulate every fault of
//! the universe once at configuration time, record each one's signature,
//! and invert the map. This module builds that dictionary on `prt-sim`'s
//! pooled parallel engine ([`prt_sim::map_trials`] — one compiled-program
//! interpreter pass plus one MISR per trial, no per-trial allocation
//! beyond the observation record), and measures what analytic formulas
//! only bound:
//!
//! * **aliasing** — faults whose response stream differs from the
//!   fault-free one but whose compacted signature collides with the
//!   reference (invisible to a signature-only tester), measured against
//!   the `2⁻ʷ` bound of [`prt_lfsr::Misr::aliasing_probability`],
//! * **ambiguity** — how many faults share one failing signature (the
//!   candidate set a [`crate::Localizer`] then narrows adaptively).
//!
//! For `n ≥ 2¹⁰` arrays a full-signature dictionary carries one `w`-bit
//! key per universe fault; [`FaultDictionary::compress`] rebuilds the
//! inversion on **k-bit signature prefixes** instead — the tester stores
//! and compares only `k` bits per entry — and re-measures what the
//! truncation costs: aliasing can only grow and candidate sets can only
//! coarsen, both reported by the compressed dictionary's
//! [`DictionaryStats`] against the full-signature baseline.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use crate::{DiagError, Observation, SignatureCollector};
use prt_gf::Poly2;
use prt_ram::{FaultKind, FaultUniverse, Geometry, TestProgram, Topology};
use prt_sim::checkpoint::{self, FingerprintBuilder};
use prt_sim::{
    map_trials, map_trials_batched, try_map_trials, try_map_trials_batched, CampaignError,
    LaneWidth, Parallelism,
};

/// Aggregate dictionary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DictionaryStats {
    /// Fault instances simulated.
    pub universe: usize,
    /// Faults whose raw response stream differed from the fault-free one
    /// (detectable by a per-read comparator).
    pub stream_detected: usize,
    /// Faults with a fault-free response stream (escapes of this program).
    pub escaped: usize,
    /// Stream-detected faults whose signature still equals the reference —
    /// losses to compaction, invisible to a signature-only tester.
    pub aliased: usize,
    /// Distinct failing signatures (dictionary keys).
    pub distinct_signatures: usize,
    /// Largest candidate set behind one failing signature.
    pub max_candidates: usize,
    /// Mean candidate-set size over failing signatures.
    pub mean_candidates: f64,
    /// Measured aliasing rate: `aliased / stream_detected`.
    pub measured_aliasing: f64,
    /// The analytic `2⁻ʷ` bound for comparison.
    pub analytic_aliasing_bound: f64,
}

/// A compiled `signature → candidate fault set` map over one fault
/// universe and one diagnostic program.
///
/// # Example
///
/// ```
/// use prt_diag::FaultDictionary;
/// use prt_gf::Poly2;
/// use prt_march::{library, Executor};
/// use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
/// use prt_sim::Parallelism;
///
/// let geom = Geometry::bom(8);
/// let universe = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
/// let program = Executor::new().compile(&library::march_diag(), geom);
/// let dict = FaultDictionary::build(
///     &universe,
///     &program,
///     Poly2::from_bits(0b1_0001_1011),
///     Parallelism::Auto,
/// )?;
/// assert_eq!(dict.stats().escaped, 0); // March C-D covers SAF+TF
/// # Ok::<(), prt_diag::DiagError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    geom: Geometry,
    /// Physical topology the fault universe was enumerated under
    /// (identity for plain universes). Fault coordinates are logical; the
    /// topology is what maps them back to array positions, and it is part
    /// of the dictionary fingerprint.
    topology: Topology,
    /// The program, fault list and per-fault observations are shared
    /// (`Arc`) between a dictionary and its prefix compressions — a
    /// [`FaultDictionary::compress`] sweep over several widths must not
    /// replicate the universe data the compression exists to shrink.
    program: Arc<TestProgram>,
    collector: SignatureCollector,
    faults: Arc<Vec<FaultKind>>,
    observations: Arc<Vec<Observation>>,
    buckets: HashMap<u64, Vec<usize>>,
    stats: DictionaryStats,
    /// `Some(k)`: keys are the low `k` bits of the signature
    /// ([`FaultDictionary::compress`]); `None`: full signatures.
    prefix_bits: Option<u32>,
}

/// Fingerprint of everything that determines a dictionary's observation
/// table: geometry, the physical [`Topology`] the universe was enumerated
/// under, the fault universe, the compiled diagnostic program and the
/// MISR polynomial. Parallelism is deliberately excluded — observations
/// are keyed by universe index, so a checkpoint resumes correctly at any
/// thread count.
fn dictionary_fingerprint(universe: &FaultUniverse, program: &TestProgram, poly: Poly2) -> u64 {
    fingerprint_parts(universe.geometry(), universe.topology(), universe.faults(), program, poly)
}

/// [`dictionary_fingerprint`] over the raw parts, so an already-built
/// dictionary (which owns its fault list) can re-derive its own
/// fingerprint for [`FaultDictionary::persist`].
///
/// The identity topology is hashed as the absence of the field, so
/// unscrambled dictionaries keep their pre-topology fingerprints (and
/// their [`crate::DictionaryStore`] cache files stay valid).
fn fingerprint_parts(
    geom: Geometry,
    topology: &Topology,
    faults: &[FaultKind],
    program: &TestProgram,
    poly: Poly2,
) -> u64 {
    let mut fp = FingerprintBuilder::new();
    fp.push_str("prt-diag/dictionary/v1");
    if !topology.is_identity() {
        fp.push_str("topology");
        fp.push_debug(topology);
    }
    fp.push_debug(&geom);
    fp.push_u64(faults.len() as u64);
    for fault in faults {
        fp.push_debug(fault);
    }
    fp.push_debug(program);
    fp.push_debug(&poly);
    fp.finish()
}

/// Routes a campaign-engine failure out of a dictionary build: checkpoint
/// errors are typed ([`DiagError::Checkpoint`]); anything else (a caught
/// trial panic, a configuration error the upfront asserts did not cover)
/// keeps the engine's loud legacy behavior.
fn surface_campaign_error(e: CampaignError) -> DiagError {
    match e {
        CampaignError::Checkpoint(c) => DiagError::Checkpoint(c),
        CampaignError::WorkerPanic { payload, .. } => std::panic::panic_any(payload),
        other => panic!("{other}"),
    }
}

/// The key function selecting the low `bits` bits of a signature.
fn prefix_key(bits: u32) -> impl Fn(u64) -> u64 {
    let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
    move |sig| sig & mask
}

/// Inverts `observations` into `key(signature) → candidate set` buckets
/// and measures aliasing/ambiguity under that key — shared by the
/// full-signature build and every prefix compression of it.
fn index_observations(
    observations: &[Observation],
    reference: u64,
    analytic_bound: f64,
    key: impl Fn(u64) -> u64,
) -> (HashMap<u64, Vec<usize>>, DictionaryStats) {
    let reference_key = key(reference);
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut stream_detected = 0usize;
    let mut aliased = 0usize;
    for (i, obs) in observations.iter().enumerate() {
        if obs.stream_differs() {
            stream_detected += 1;
            if key(obs.signature) == reference_key {
                aliased += 1;
            } else {
                buckets.entry(key(obs.signature)).or_default().push(i);
            }
        }
    }
    let distinct = buckets.len();
    let max_candidates = buckets.values().map(Vec::len).max().unwrap_or(0);
    let keyed: usize = buckets.values().map(Vec::len).sum();
    let stats = DictionaryStats {
        universe: observations.len(),
        stream_detected,
        escaped: observations.len() - stream_detected,
        aliased,
        distinct_signatures: distinct,
        max_candidates,
        mean_candidates: if distinct == 0 { 0.0 } else { keyed as f64 / distinct as f64 },
        measured_aliasing: if stream_detected == 0 {
            0.0
        } else {
            aliased as f64 / stream_detected as f64
        },
        analytic_aliasing_bound: analytic_bound,
    };
    (buckets, stats)
}

/// The escape observation substituted when a scalar trial's device
/// errors out: the reference signature with a default execution.
fn escape_observation(collector: &SignatureCollector) -> Observation {
    Observation { signature: collector.reference(), exec: Default::default() }
}

/// One lane-batched measurement sweep at chunk width `K` — the
/// monomorphised body [`FaultDictionary::build_with_batching`] dispatches
/// to per [`LaneWidth`].
fn batched_observations<const K: usize>(
    collector: &SignatureCollector,
    program: &TestProgram,
    geom: Geometry,
    faults: &[FaultKind],
    parallelism: Parallelism,
) -> Vec<Observation> {
    map_trials_batched::<K, _, _, _>(
        geom,
        program.ports(),
        faults,
        parallelism,
        |lanes, out| collector.collect_batch(program, lanes, out),
        |_, ram| collector.collect(program, ram).unwrap_or_else(|_| escape_observation(collector)),
    )
}

/// The fallible form of [`batched_observations`], for the checkpointed
/// build.
fn try_batched_observations<const K: usize>(
    collector: &SignatureCollector,
    program: &TestProgram,
    geom: Geometry,
    faults: &[FaultKind],
    parallelism: Parallelism,
) -> Result<Vec<Observation>, CampaignError> {
    try_map_trials_batched::<K, _, _, _>(
        geom,
        program.ports(),
        faults,
        parallelism,
        |lanes, out| collector.collect_batch(program, lanes, out),
        |_, ram| collector.collect(program, ram).unwrap_or_else(|_| escape_observation(collector)),
    )
    .map(|(values, _degraded)| values)
}

impl FaultDictionary {
    /// Simulates every fault of `universe` through `program`, compacting
    /// each trial's response stream with a MISR over `poly`, and inverts
    /// the signature map. A trial whose device errors out (e.g. a decoder
    /// fault conflicting on a multi-port cycle) counts as an escape with
    /// the reference signature — the campaign engine's error-as-escape
    /// convention.
    ///
    /// Every program — single- or multi-port — runs **lane-batched**: one
    /// interpreter pass simulates a whole lane chunk of trials
    /// ([`prt_sim::map_trials_batched`] +
    /// [`SignatureCollector::collect_batch`] at the default
    /// [`LaneWidth`]), with per-fault signatures and statistics identical
    /// to the scalar build ([`FaultDictionary::build_with_batching`] pins
    /// the scalar engine for differential tests and benchmarks).
    ///
    /// # Errors
    ///
    /// [`DiagError::Lfsr`] for a degenerate `poly`.
    ///
    /// # Panics
    ///
    /// Panics when `universe` and `program` disagree on geometry — a
    /// whole-dictionary configuration error, surfaced loudly like the
    /// campaign engine's runner checks.
    pub fn build(
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        parallelism: Parallelism,
    ) -> Result<FaultDictionary, DiagError> {
        FaultDictionary::build_with_batching(universe, program, poly, parallelism, true)
    }

    /// [`FaultDictionary::build`] with the lane-batched engine explicitly
    /// enabled or disabled — the dictionary counterpart of
    /// `Campaign::with_lane_batching(false)`, for differential testing
    /// and scalar-baseline benchmarks.
    ///
    /// # Errors
    ///
    /// As [`FaultDictionary::build`].
    pub fn build_with_batching(
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        parallelism: Parallelism,
        lane_batching: bool,
    ) -> Result<FaultDictionary, DiagError> {
        assert_eq!(
            universe.geometry(),
            program.geometry(),
            "dictionary universe and program geometries differ"
        );
        let collector = SignatureCollector::new(program, poly)?;
        let geom = universe.geometry();
        let escape = |collector: &SignatureCollector| Observation {
            signature: collector.reference(),
            exec: Default::default(),
        };
        let observations: Vec<Observation> = if lane_batching && program.lane_batchable() {
            match LaneWidth::default() {
                LaneWidth::X64 => batched_observations::<1>(
                    &collector,
                    program,
                    geom,
                    universe.faults(),
                    parallelism,
                ),
                LaneWidth::X256 => batched_observations::<4>(
                    &collector,
                    program,
                    geom,
                    universe.faults(),
                    parallelism,
                ),
                LaneWidth::X512 => batched_observations::<8>(
                    &collector,
                    program,
                    geom,
                    universe.faults(),
                    parallelism,
                ),
            }
        } else {
            map_trials(geom, program.ports(), universe.len(), parallelism, |i, ram| {
                ram.inject(universe.faults()[i].clone()).expect("enumerated faults are valid");
                collector.collect(program, ram).unwrap_or(escape(&collector))
            })
        };
        let (buckets, stats) = index_observations(
            &observations,
            collector.reference(),
            collector.aliasing_bound(),
            |sig| sig,
        );
        Ok(FaultDictionary {
            geom,
            topology: universe.topology().clone(),
            program: Arc::new(program.clone()),
            collector,
            faults: Arc::new(universe.faults().to_vec()),
            observations: Arc::new(observations),
            buckets,
            stats,
            prefix_bits: None,
        })
    }

    /// [`FaultDictionary::build`] with progress checkpointed to `path`
    /// every `every` observations (clamped to ≥ 1) — the dictionary
    /// adoption of the campaign engine's checkpoint/resume hook. A
    /// compatible checkpoint already at `path` resumes the universe sweep
    /// where it stopped; the finished dictionary is bit-identical to an
    /// uninterrupted [`FaultDictionary::build`] at any parallelism, since
    /// observations are keyed by universe index. Snapshots are written
    /// atomically and fingerprinted against the geometry, universe,
    /// program and MISR polynomial, so a checkpoint of a *different*
    /// build is refused, never silently mixed in.
    ///
    /// # Errors
    ///
    /// [`DiagError::Lfsr`] for a degenerate `poly`;
    /// [`DiagError::Checkpoint`] when a snapshot cannot be saved, loaded
    /// or trusted.
    ///
    /// # Panics
    ///
    /// As [`FaultDictionary::build`]; additionally, a panicking trial
    /// resumes its original payload after the completed prefix has been
    /// checkpointed — restart to resume past the poisoned chunk.
    pub fn build_with_checkpoint(
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        parallelism: Parallelism,
        path: impl AsRef<Path>,
        every: usize,
    ) -> Result<FaultDictionary, DiagError> {
        assert_eq!(
            universe.geometry(),
            program.geometry(),
            "dictionary universe and program geometries differ"
        );
        let collector = SignatureCollector::new(program, poly)?;
        let geom = universe.geometry();
        let total = universe.len();
        let every = every.max(1);
        let path = path.as_ref();
        let fingerprint = dictionary_fingerprint(universe, program, poly);
        let escape = |collector: &SignatureCollector| Observation {
            signature: collector.reference(),
            exec: Default::default(),
        };
        let mut observations: Vec<Observation> =
            checkpoint::load_records(path, fingerprint, total)?.unwrap_or_default();
        while observations.len() < total {
            let end = (observations.len() + every).min(total);
            let segment = &universe.faults()[observations.len()..end];
            let attempt = if program.lane_batchable() {
                match LaneWidth::default() {
                    LaneWidth::X64 => try_batched_observations::<1>(
                        &collector,
                        program,
                        geom,
                        segment,
                        parallelism,
                    ),
                    LaneWidth::X256 => try_batched_observations::<4>(
                        &collector,
                        program,
                        geom,
                        segment,
                        parallelism,
                    ),
                    LaneWidth::X512 => try_batched_observations::<8>(
                        &collector,
                        program,
                        geom,
                        segment,
                        parallelism,
                    ),
                }
            } else {
                try_map_trials(geom, program.ports(), segment.len(), parallelism, |k, ram| {
                    ram.inject(segment[k].clone()).expect("enumerated faults are valid");
                    collector.collect(program, ram).unwrap_or(escape(&collector))
                })
            };
            match attempt {
                Ok(segment_obs) => observations.extend(segment_obs),
                Err(e) => {
                    // The completed prefix survives the failure: save it
                    // before surfacing, so a restart resumes here.
                    checkpoint::save_records(path, fingerprint, total, &observations)?;
                    return Err(surface_campaign_error(e));
                }
            }
            checkpoint::save_records(path, fingerprint, total, &observations)?;
        }
        let (buckets, stats) = index_observations(
            &observations,
            collector.reference(),
            collector.aliasing_bound(),
            |sig| sig,
        );
        Ok(FaultDictionary {
            geom,
            topology: universe.topology().clone(),
            program: Arc::new(program.clone()),
            collector,
            faults: Arc::new(universe.faults().to_vec()),
            observations: Arc::new(observations),
            buckets,
            stats,
            prefix_bits: None,
        })
    }

    /// Fingerprint of everything that determines a dictionary's
    /// observation table: geometry, the fault universe, the compiled
    /// diagnostic program and the MISR polynomial. Two builds with equal
    /// fingerprints produce bit-identical dictionaries (parallelism and
    /// lane width are deliberately excluded), which is what makes the
    /// fingerprint a sound **cache key** — [`crate::DictionaryStore`]
    /// keys its shared dictionaries and its on-disk files with it.
    pub fn fingerprint(universe: &FaultUniverse, program: &TestProgram, poly: Poly2) -> u64 {
        dictionary_fingerprint(universe, program, poly)
    }

    /// Writes this dictionary's observation table to `path` (atomically:
    /// temp file + rename), fingerprinted so [`FaultDictionary::load`]
    /// refuses the file for any *other* universe/program/polynomial. The
    /// file is the same format a [`FaultDictionary::build_with_checkpoint`]
    /// run leaves behind at completion — buckets and statistics are
    /// re-derived on load, so only the simulated observations are stored.
    ///
    /// # Errors
    ///
    /// [`DiagError::Checkpoint`] when the snapshot cannot be written.
    ///
    /// # Panics
    ///
    /// Panics on a compressed dictionary — persist the full-signature
    /// parent and re-[`compress`](FaultDictionary::compress) after
    /// loading (compression is a cheap re-index; the observations are
    /// identical).
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<(), DiagError> {
        assert!(
            self.prefix_bits.is_none(),
            "persist the full-signature dictionary, not a compression of it"
        );
        let fp = fingerprint_parts(
            self.geom,
            &self.topology,
            &self.faults,
            &self.program,
            self.collector.poly(),
        );
        checkpoint::save_records(path.as_ref(), fp, self.observations.len(), &self.observations)?;
        Ok(())
    }

    /// Reconstructs a dictionary from a [`FaultDictionary::persist`] file
    /// (or a *completed* [`FaultDictionary::build_with_checkpoint`] file)
    /// **without re-simulating the universe** — the free load path a
    /// service restart takes. Returns `Ok(None)` when no file is at
    /// `path` or the file holds only an incomplete prefix (an
    /// interrupted build's spool): callers fall back to a real build.
    ///
    /// The loaded dictionary is bit-identical to the build that produced
    /// the file (asserted in tests).
    ///
    /// # Errors
    ///
    /// [`DiagError::Lfsr`] for a degenerate `poly`;
    /// [`DiagError::Checkpoint`] for a corrupt file or one fingerprinted
    /// by a different universe/program/polynomial — a foreign file is
    /// refused loudly, never silently adopted.
    ///
    /// # Panics
    ///
    /// As [`FaultDictionary::build`] on a universe/program geometry
    /// mismatch.
    pub fn load(
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        path: impl AsRef<Path>,
    ) -> Result<Option<FaultDictionary>, DiagError> {
        assert_eq!(
            universe.geometry(),
            program.geometry(),
            "dictionary universe and program geometries differ"
        );
        let collector = SignatureCollector::new(program, poly)?;
        let fingerprint = dictionary_fingerprint(universe, program, poly);
        let Some(observations) =
            checkpoint::load_records::<Observation>(path.as_ref(), fingerprint, universe.len())?
        else {
            return Ok(None);
        };
        if observations.len() < universe.len() {
            return Ok(None);
        }
        let (buckets, stats) = index_observations(
            &observations,
            collector.reference(),
            collector.aliasing_bound(),
            |sig| sig,
        );
        Ok(Some(FaultDictionary {
            geom: universe.geometry(),
            topology: universe.topology().clone(),
            program: Arc::new(program.clone()),
            collector,
            faults: Arc::new(universe.faults().to_vec()),
            observations: Arc::new(observations),
            buckets,
            stats,
            prefix_bits: None,
        }))
    }

    /// Rebuilds this dictionary on **`bits`-bit signature prefixes** (the
    /// low `bits` bits of each MISR signature) without re-simulating the
    /// universe: the stored observations are re-inverted under the
    /// truncated key and the aliasing/ambiguity statistics re-measured.
    /// The analytic aliasing bound becomes `2⁻ᵏ` for `k < w`.
    ///
    /// Lookups through [`FaultDictionary::candidates`] truncate the
    /// queried signature the same way, so a [`crate::Localizer`] seeded
    /// with a compressed dictionary keeps working — candidate sets are
    /// supersets of the full-signature buckets (every full bucket whose
    /// signatures share a prefix is merged), which the adaptive probes
    /// then narrow. Compression can only *grow* ambiguity and aliasing;
    /// the measured growth is the storage/resolution trade a `n ≥ 2¹⁰`
    /// dictionary buys (asserted in tests).
    ///
    /// # Panics
    ///
    /// Panics when `bits` is 0 or exceeds the MISR width.
    pub fn compress(&self, bits: u32) -> FaultDictionary {
        assert!(
            bits >= 1 && bits <= self.collector.width(),
            "prefix width must be 1..=MISR width ({} bits)",
            self.collector.width()
        );
        let bound = (0.5f64).powi(bits as i32);
        let key = prefix_key(bits);
        let (buckets, stats) =
            index_observations(&self.observations, self.collector.reference(), bound, key);
        FaultDictionary {
            geom: self.geom,
            topology: self.topology.clone(),
            // Arc bumps, not copies: only buckets/stats differ per width.
            program: Arc::clone(&self.program),
            collector: self.collector.clone(),
            faults: Arc::clone(&self.faults),
            observations: Arc::clone(&self.observations),
            buckets,
            stats,
            prefix_bits: Some(bits),
        }
    }

    /// The signature-prefix width of a compressed dictionary (`None` for
    /// a full-signature one).
    pub fn prefix_bits(&self) -> Option<u32> {
        self.prefix_bits
    }

    /// Geometry the dictionary was built for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The physical address [`Topology`] the universe was enumerated
    /// under — identity for plain universes. Candidate fault coordinates
    /// are **logical**; map them through [`Topology::to_physical`] to
    /// name array positions (what a [`crate::Localizer`] seeded with this
    /// dictionary reports as [`crate::Diagnosis::physical_victim`]).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The diagnostic program the signatures were collected under — the
    /// program a tester must run for [`FaultDictionary::candidates`]
    /// lookups to be meaningful.
    pub fn program(&self) -> &TestProgram {
        &self.program
    }

    /// The signature collector the dictionary was built with (same MISR
    /// polynomial, same reference) — what a [`crate::Localizer`] uses to
    /// compact an observed run before looking it up.
    pub fn collector(&self) -> &SignatureCollector {
        &self.collector
    }

    /// The fault-free reference signature.
    pub fn reference(&self) -> u64 {
        self.collector.reference()
    }

    /// The simulated fault instances, in universe order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Per-fault observation (signature + execution summary), in universe
    /// order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Candidate fault indices for a failing `signature` (empty for the
    /// reference signature or one no simulated fault produced). On a
    /// compressed dictionary the signature is truncated to the prefix
    /// before lookup.
    pub fn candidates(&self, signature: u64) -> &[usize] {
        let key = match self.prefix_bits {
            Some(bits) => prefix_key(bits)(signature),
            None => signature,
        };
        self.buckets.get(&key).map_or(&[], Vec::as_slice)
    }

    /// Candidate faults for a failing `signature`, resolved.
    pub fn candidate_faults(&self, signature: u64) -> Vec<FaultKind> {
        self.candidates(signature).iter().map(|&i| self.faults[i].clone()).collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DictionaryStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_march::{library, Executor};
    use prt_ram::{Ram, UniverseSpec};

    fn poly8() -> Poly2 {
        Poly2::from_bits(0b1_0001_1011)
    }

    fn build(n: usize) -> (FaultUniverse, FaultDictionary) {
        let geom = Geometry::bom(n);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let dict = FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        (universe, dict)
    }

    #[test]
    fn round_trip_contains_the_injected_fault() {
        // Inject → observe signature → look up: the candidate set must
        // contain the injected fault, for EVERY stream-detected fault.
        let (universe, dict) = build(8);
        let collector = SignatureCollector::new(dict.program(), poly8()).unwrap();
        for (i, fault) in universe.faults().iter().enumerate() {
            let mut ram = Ram::new(universe.geometry());
            ram.inject(fault.clone()).unwrap();
            let obs = collector.collect(dict.program(), &mut ram).unwrap();
            if obs.stream_differs() && obs.signature != dict.reference() {
                assert!(
                    dict.candidates(obs.signature).contains(&i),
                    "{fault} missing from its own signature bucket"
                );
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let (universe, dict) = build(8);
        let s = dict.stats();
        assert_eq!(s.universe, universe.len());
        assert_eq!(s.stream_detected + s.escaped, s.universe);
        assert!(s.aliased <= s.stream_detected);
        assert!(s.distinct_signatures > 0);
        assert!(s.max_candidates >= 1);
        assert!(s.mean_candidates >= 1.0);
        // Measured aliasing must be consistent with the analytic 2^-w
        // bound: structured single-fault error streams do no worse than
        // random ones on a maximal-length register.
        assert!(
            s.measured_aliasing <= s.analytic_aliasing_bound,
            "measured {} vs bound {}",
            s.measured_aliasing,
            s.analytic_aliasing_bound
        );
    }

    #[test]
    fn batched_build_equals_scalar_build() {
        // The lane-batched dictionary build must produce bit-identical
        // per-fault observations (signature AND execution summary) to the
        // scalar map_trials sweep, over a universe spanning every family
        // — including the read/write-logic, SOF and AF instances.
        let geom = Geometry::bom(12);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::full());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let scalar = FaultDictionary::build_with_batching(
            &universe,
            &program,
            poly8(),
            Parallelism::Sequential,
            false,
        )
        .unwrap();
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let batched =
                FaultDictionary::build(&universe, &program, poly8(), parallelism).unwrap();
            assert_eq!(batched.observations(), scalar.observations(), "{parallelism:?}");
            assert_eq!(batched.stats(), scalar.stats(), "{parallelism:?}");
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let geom = Geometry::bom(8);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let a =
            FaultDictionary::build(&universe, &program, poly8(), Parallelism::Sequential).unwrap();
        let b =
            FaultDictionary::build(&universe, &program, poly8(), Parallelism::Threads(4)).unwrap();
        assert_eq!(a.observations(), b.observations());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn compression_measures_ambiguity_growth() {
        // The n=16 paper-claim baseline vs its k-bit prefix compressions:
        // aliasing and ambiguity can only grow as the key shrinks, and
        // the growth is measurable (the ROADMAP n ≥ 2¹⁰ trade).
        let geom = Geometry::bom(16);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let full = FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        assert_eq!(full.prefix_bits(), None);
        let mut prev_distinct = full.stats().distinct_signatures;
        let mut prev_aliased = full.stats().aliased;
        for bits in [8u32, 6, 4, 2] {
            let c = full.compress(bits);
            let s = c.stats();
            assert_eq!(c.prefix_bits(), Some(bits));
            assert_eq!(s.universe, full.stats().universe);
            assert_eq!(s.stream_detected, full.stats().stream_detected);
            assert!(
                s.distinct_signatures <= prev_distinct,
                "{bits}-bit keys cannot add buckets ({} > {prev_distinct})",
                s.distinct_signatures
            );
            assert!(
                s.aliased >= prev_aliased,
                "{bits}-bit keys cannot unalias ({} < {prev_aliased})",
                s.aliased
            );
            assert!((s.analytic_aliasing_bound - (0.5f64).powi(bits as i32)).abs() < 1e-12);
            prev_distinct = s.distinct_signatures;
            prev_aliased = s.aliased;
        }
        // The headline measurement: 4-bit prefixes coarsen candidate
        // sets measurably vs the full-signature baseline.
        let c4 = full.compress(4);
        assert!(
            c4.stats().mean_candidates > full.stats().mean_candidates,
            "4-bit prefixes must grow ambiguity: {} vs {}",
            c4.stats().mean_candidates,
            full.stats().mean_candidates
        );
        assert!(c4.stats().max_candidates >= full.stats().max_candidates);
    }

    #[test]
    fn compressed_round_trip_contains_the_injected_fault() {
        // Truncated-key lookup: for every stream-detected, non-aliased
        // fault, the compressed bucket still contains the fault — the
        // bucket is a superset of the full-signature one.
        let (universe, dict) = build(8);
        let compressed = dict.compress(5);
        let collector = SignatureCollector::new(dict.program(), poly8()).unwrap();
        let mask = (1u64 << 5) - 1;
        for (i, fault) in universe.faults().iter().enumerate() {
            let mut ram = Ram::new(universe.geometry());
            ram.inject(fault.clone()).unwrap();
            let obs = collector.collect(dict.program(), &mut ram).unwrap();
            if !obs.stream_differs() {
                continue;
            }
            if compressed.candidates(obs.signature).is_empty() {
                // An empty compressed bucket is legitimate ONLY for a
                // prefix-aliased signature — anything else is a lookup
                // regression.
                assert_eq!(
                    obs.signature & mask,
                    compressed.reference() & mask,
                    "{fault}: empty prefix bucket for a non-aliased signature"
                );
                continue;
            }
            assert!(
                compressed.candidates(obs.signature).contains(&i),
                "{fault} missing from its prefix bucket"
            );
            for &c in dict.candidates(obs.signature) {
                assert!(
                    compressed.candidates(obs.signature).contains(&c),
                    "prefix bucket must be a superset of the full bucket"
                );
            }
        }
    }

    #[test]
    fn localizer_works_on_a_compressed_dictionary() {
        use crate::Localizer;
        let (universe, dict) = build(8);
        let compressed = dict.compress(6);
        let localizer =
            Localizer::new(library::march_diag(), universe.geometry()).with_dictionary(&compressed);
        let fault = FaultKind::StuckAt { cell: 5, bit: 0, value: 1 };
        let mut ram = Ram::new(universe.geometry());
        ram.inject(fault.clone()).unwrap();
        let d = localizer.diagnose(&mut ram).unwrap().expect("detected");
        assert_eq!(d.victim(), 5);
        assert_eq!(d.exact(), Some(&fault), "probes must narrow the coarser prefix bucket");
    }

    #[test]
    #[should_panic(expected = "prefix width must be 1..=MISR width")]
    fn compression_rejects_zero_bits() {
        let (_, dict) = build(8);
        let _ = dict.compress(0);
    }

    #[test]
    #[should_panic(expected = "prefix width must be 1..=MISR width")]
    fn compression_rejects_overwide_prefix() {
        let (_, dict) = build(8);
        let _ = dict.compress(9);
    }

    #[test]
    #[should_panic(expected = "geometries differ")]
    fn geometry_mismatch_is_loud() {
        let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
        let program = Executor::new().compile(&library::march_diag(), Geometry::bom(4));
        let _ = FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto);
    }

    fn temp_ckpt(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prt-diag-unit-{}-{name}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpointed_build_matches_plain_build() {
        let geom = Geometry::bom(8);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let plain =
            FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        let path = temp_ckpt("segmented");
        let segmented = FaultDictionary::build_with_checkpoint(
            &universe,
            &program,
            poly8(),
            Parallelism::Auto,
            &path,
            25,
        )
        .unwrap();
        assert_eq!(plain.observations(), segmented.observations());
        assert_eq!(plain.stats(), segmented.stats());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_build_resumes_bit_identically() {
        // A completed checkpointed build leaves a cursor == total file;
        // truncating its record list to a prefix reproduces exactly what
        // a killed build would have left behind, and the resumed build
        // must equal the uninterrupted one — at a different parallelism.
        let geom = Geometry::bom(8);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let path = temp_ckpt("resume");
        let full = FaultDictionary::build_with_checkpoint(
            &universe,
            &program,
            poly8(),
            Parallelism::Sequential,
            &path,
            50,
        )
        .unwrap();
        let fp = checkpoint::peek_fingerprint(&path).unwrap();
        let saved: Vec<Observation> =
            checkpoint::load_records(&path, fp, universe.len()).unwrap().expect("not cold");
        assert_eq!(saved.len(), universe.len());
        checkpoint::save_records(&path, fp, universe.len(), &saved[..universe.len() / 3]).unwrap();
        let resumed = FaultDictionary::build_with_checkpoint(
            &universe,
            &program,
            poly8(),
            Parallelism::Threads(4),
            &path,
            50,
        )
        .unwrap();
        assert_eq!(full.observations(), resumed.observations());
        assert_eq!(full.stats(), resumed.stats());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_dictionary_checkpoint_is_refused() {
        let geom = Geometry::bom(8);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let path = temp_ckpt("foreign");
        FaultDictionary::build_with_checkpoint(
            &universe,
            &program,
            poly8(),
            Parallelism::Auto,
            &path,
            50,
        )
        .unwrap();
        // A different MISR polynomial produces different signatures: its
        // build must refuse the stale file.
        let err = FaultDictionary::build_with_checkpoint(
            &universe,
            &program,
            Poly2::from_bits(0b1_1000_0011),
            Parallelism::Auto,
            &path,
            50,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                DiagError::Checkpoint(prt_sim::CheckpointError::FingerprintMismatch { .. })
            ),
            "expected FingerprintMismatch, got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn observation_record_round_trips() {
        use prt_ram::{Execution, OpMismatch};
        use prt_sim::checkpoint::CheckpointRecord;
        let samples = [
            Observation { signature: 0xDEAD_BEEF, exec: Execution::default() },
            Observation {
                signature: u64::MAX,
                exec: Execution {
                    mismatches: 3,
                    stale_errors: 1,
                    first_mismatch: Some(OpMismatch {
                        op_index: 17,
                        addr: 5,
                        expected: 0b1010,
                        got: 0b1110,
                    }),
                    ops: 96,
                    cycles: 100,
                },
            },
        ];
        for obs in samples {
            let mut words = Vec::new();
            obs.encode(&mut words);
            assert_eq!(words.len(), <Observation as CheckpointRecord>::WORDS);
            assert_eq!(Observation::decode(&words), Some(obs));
        }
        // An undecodable flag word is corruption, not a default.
        let mut words = Vec::new();
        samples[0].encode(&mut words);
        words[3] = 2;
        assert_eq!(Observation::decode(&words), None);
    }
}
