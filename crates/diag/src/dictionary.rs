//! Fault dictionaries: `signature → candidate fault set`.
//!
//! A tester that sees only a failing MISR signature must answer *which
//! fault, where* before a repair (row/column replacement) can be chosen.
//! The classical answer is a **fault dictionary**: simulate every fault of
//! the universe once at configuration time, record each one's signature,
//! and invert the map. This module builds that dictionary on `prt-sim`'s
//! pooled parallel engine ([`prt_sim::map_trials`] — one compiled-program
//! interpreter pass plus one MISR per trial, no per-trial allocation
//! beyond the observation record), and measures what analytic formulas
//! only bound:
//!
//! * **aliasing** — faults whose response stream differs from the
//!   fault-free one but whose compacted signature collides with the
//!   reference (invisible to a signature-only tester), measured against
//!   the `2⁻ʷ` bound of [`prt_lfsr::Misr::aliasing_probability`],
//! * **ambiguity** — how many faults share one failing signature (the
//!   candidate set a [`crate::Localizer`] then narrows adaptively).

use std::collections::HashMap;

use crate::{DiagError, Observation, SignatureCollector};
use prt_gf::Poly2;
use prt_ram::{FaultKind, FaultUniverse, Geometry, TestProgram};
use prt_sim::{map_trials, Parallelism};

/// Aggregate dictionary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DictionaryStats {
    /// Fault instances simulated.
    pub universe: usize,
    /// Faults whose raw response stream differed from the fault-free one
    /// (detectable by a per-read comparator).
    pub stream_detected: usize,
    /// Faults with a fault-free response stream (escapes of this program).
    pub escaped: usize,
    /// Stream-detected faults whose signature still equals the reference —
    /// losses to compaction, invisible to a signature-only tester.
    pub aliased: usize,
    /// Distinct failing signatures (dictionary keys).
    pub distinct_signatures: usize,
    /// Largest candidate set behind one failing signature.
    pub max_candidates: usize,
    /// Mean candidate-set size over failing signatures.
    pub mean_candidates: f64,
    /// Measured aliasing rate: `aliased / stream_detected`.
    pub measured_aliasing: f64,
    /// The analytic `2⁻ʷ` bound for comparison.
    pub analytic_aliasing_bound: f64,
}

/// A compiled `signature → candidate fault set` map over one fault
/// universe and one diagnostic program.
///
/// # Example
///
/// ```
/// use prt_diag::FaultDictionary;
/// use prt_gf::Poly2;
/// use prt_march::{library, Executor};
/// use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
/// use prt_sim::Parallelism;
///
/// let geom = Geometry::bom(8);
/// let universe = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
/// let program = Executor::new().compile(&library::march_diag(), geom);
/// let dict = FaultDictionary::build(
///     &universe,
///     &program,
///     Poly2::from_bits(0b1_0001_1011),
///     Parallelism::Auto,
/// )?;
/// assert_eq!(dict.stats().escaped, 0); // March C-D covers SAF+TF
/// # Ok::<(), prt_diag::DiagError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    geom: Geometry,
    program: TestProgram,
    collector: SignatureCollector,
    faults: Vec<FaultKind>,
    observations: Vec<Observation>,
    buckets: HashMap<u64, Vec<usize>>,
    stats: DictionaryStats,
}

impl FaultDictionary {
    /// Simulates every fault of `universe` through `program`, compacting
    /// each trial's response stream with a MISR over `poly`, and inverts
    /// the signature map. A trial whose device errors out (e.g. a decoder
    /// fault conflicting on a multi-port cycle) counts as an escape with
    /// the reference signature — the campaign engine's error-as-escape
    /// convention.
    ///
    /// # Errors
    ///
    /// [`DiagError::Lfsr`] for a degenerate `poly`.
    ///
    /// # Panics
    ///
    /// Panics when `universe` and `program` disagree on geometry — a
    /// whole-dictionary configuration error, surfaced loudly like the
    /// campaign engine's runner checks.
    pub fn build(
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        parallelism: Parallelism,
    ) -> Result<FaultDictionary, DiagError> {
        assert_eq!(
            universe.geometry(),
            program.geometry(),
            "dictionary universe and program geometries differ"
        );
        let collector = SignatureCollector::new(program, poly)?;
        let geom = universe.geometry();
        let observations: Vec<Observation> =
            map_trials(geom, program.ports(), universe.len(), parallelism, |i, ram| {
                ram.inject(universe.faults()[i].clone()).expect("enumerated faults are valid");
                collector.collect(program, ram).unwrap_or(Observation {
                    signature: collector.reference(),
                    exec: Default::default(),
                })
            });
        let reference = collector.reference();
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut stream_detected = 0usize;
        let mut aliased = 0usize;
        for (i, obs) in observations.iter().enumerate() {
            if obs.stream_differs() {
                stream_detected += 1;
                if obs.signature == reference {
                    aliased += 1;
                } else {
                    buckets.entry(obs.signature).or_default().push(i);
                }
            }
        }
        let distinct = buckets.len();
        let max_candidates = buckets.values().map(Vec::len).max().unwrap_or(0);
        let keyed: usize = buckets.values().map(Vec::len).sum();
        let stats = DictionaryStats {
            universe: universe.len(),
            stream_detected,
            escaped: universe.len() - stream_detected,
            aliased,
            distinct_signatures: distinct,
            max_candidates,
            mean_candidates: if distinct == 0 { 0.0 } else { keyed as f64 / distinct as f64 },
            measured_aliasing: if stream_detected == 0 {
                0.0
            } else {
                aliased as f64 / stream_detected as f64
            },
            analytic_aliasing_bound: collector.aliasing_bound(),
        };
        Ok(FaultDictionary {
            geom,
            program: program.clone(),
            collector,
            faults: universe.faults().to_vec(),
            observations,
            buckets,
            stats,
        })
    }

    /// Geometry the dictionary was built for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The diagnostic program the signatures were collected under — the
    /// program a tester must run for [`FaultDictionary::candidates`]
    /// lookups to be meaningful.
    pub fn program(&self) -> &TestProgram {
        &self.program
    }

    /// The signature collector the dictionary was built with (same MISR
    /// polynomial, same reference) — what a [`crate::Localizer`] uses to
    /// compact an observed run before looking it up.
    pub fn collector(&self) -> &SignatureCollector {
        &self.collector
    }

    /// The fault-free reference signature.
    pub fn reference(&self) -> u64 {
        self.collector.reference()
    }

    /// The simulated fault instances, in universe order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Per-fault observation (signature + execution summary), in universe
    /// order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Candidate fault indices for a failing `signature` (empty for the
    /// reference signature or one no simulated fault produced).
    pub fn candidates(&self, signature: u64) -> &[usize] {
        self.buckets.get(&signature).map_or(&[], Vec::as_slice)
    }

    /// Candidate faults for a failing `signature`, resolved.
    pub fn candidate_faults(&self, signature: u64) -> Vec<FaultKind> {
        self.candidates(signature).iter().map(|&i| self.faults[i].clone()).collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DictionaryStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_march::{library, Executor};
    use prt_ram::{Ram, UniverseSpec};

    fn poly8() -> Poly2 {
        Poly2::from_bits(0b1_0001_1011)
    }

    fn build(n: usize) -> (FaultUniverse, FaultDictionary) {
        let geom = Geometry::bom(n);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let dict = FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        (universe, dict)
    }

    #[test]
    fn round_trip_contains_the_injected_fault() {
        // Inject → observe signature → look up: the candidate set must
        // contain the injected fault, for EVERY stream-detected fault.
        let (universe, dict) = build(8);
        let collector = SignatureCollector::new(dict.program(), poly8()).unwrap();
        for (i, fault) in universe.faults().iter().enumerate() {
            let mut ram = Ram::new(universe.geometry());
            ram.inject(fault.clone()).unwrap();
            let obs = collector.collect(dict.program(), &mut ram).unwrap();
            if obs.stream_differs() && obs.signature != dict.reference() {
                assert!(
                    dict.candidates(obs.signature).contains(&i),
                    "{fault} missing from its own signature bucket"
                );
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let (universe, dict) = build(8);
        let s = dict.stats();
        assert_eq!(s.universe, universe.len());
        assert_eq!(s.stream_detected + s.escaped, s.universe);
        assert!(s.aliased <= s.stream_detected);
        assert!(s.distinct_signatures > 0);
        assert!(s.max_candidates >= 1);
        assert!(s.mean_candidates >= 1.0);
        // Measured aliasing must be consistent with the analytic 2^-w
        // bound: structured single-fault error streams do no worse than
        // random ones on a maximal-length register.
        assert!(
            s.measured_aliasing <= s.analytic_aliasing_bound,
            "measured {} vs bound {}",
            s.measured_aliasing,
            s.analytic_aliasing_bound
        );
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let geom = Geometry::bom(8);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let a =
            FaultDictionary::build(&universe, &program, poly8(), Parallelism::Sequential).unwrap();
        let b =
            FaultDictionary::build(&universe, &program, poly8(), Parallelism::Threads(4)).unwrap();
        assert_eq!(a.observations(), b.observations());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    #[should_panic(expected = "geometries differ")]
    fn geometry_mismatch_is_loud() {
        let universe = FaultUniverse::enumerate(Geometry::bom(8), &UniverseSpec::single_cell());
        let program = Executor::new().compile(&library::march_diag(), Geometry::bom(4));
        let _ = FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto);
    }
}
