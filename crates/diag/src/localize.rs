//! Adaptive fault localization: from a failing verdict to a repairable
//! address.
//!
//! A signature-only tester knows *that* the array failed, not *where*.
//! [`Localizer::diagnose`] narrows a failing device down to the victim
//! cell and fault family with a handful of adaptively chosen probe runs:
//!
//! 1. **Victim bisection** — windowed sub-programs
//!    ([`Executor::compile_window`]) re-run the diagnostic March with the
//!    comparator gated to half the address range. Because windowing gates
//!    only the *checks*, never the accesses, a fault observable on a
//!    window is observable on at least one half — the bisection invariant
//!    — so `log₂ n` probes pin the failing address.
//! 2. **Candidate filtering** — every probe's full observed response
//!    stream is compared against each candidate fault's *simulated*
//!    stream (deterministic simulator, same reset state); candidates that
//!    disagree with any observation are eliminated. The true fault can
//!    never be eliminated. A [`FaultDictionary`] seeds the candidate set
//!    from the observed signature (the fast path); without one the full
//!    paper-claim universe is filtered.
//! 3. **Aggressor recovery** — for two-cell faults (coupling, decoder
//!    pairs), toggle probes over bisected aggressor sets plus an
//!    exhaustive two-cell state walk per remaining partner separate the
//!    aggressor address and the coupling subtype.
//!
//! The surviving candidate set is reported verbatim: faults that are
//! **observationally equivalent** through the port interface stay
//! together (in a bit-oriented memory reset to 0, `SA0@c`, `TF↑@c` and
//! `AF-none@c` respond identically to every possible access sequence —
//! no tester can split them), which is the honest resolution limit of
//! functional diagnosis rather than a weakness of the search.

use std::collections::BTreeSet;

use crate::{DiagError, FaultDictionary};
use prt_march::{Executor, MarchTest};
use prt_ram::{
    FaultKind, FaultUniverse, Geometry, ProgramBuilder, Ram, TestProgram, Topology, UniverseSpec,
};

/// Coarse fault family of a diagnosis, per the van-de-Goor taxonomy the
/// universe enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultFamily {
    /// Stuck-at.
    Saf,
    /// Transition.
    Tf,
    /// Coupling (inversion / idempotent / state).
    Cf,
    /// Address decoder.
    Af,
    /// Anything else the simulator models (SOF, read/write-logic, …).
    Other,
}

impl FaultFamily {
    /// The family of a concrete fault instance.
    pub fn of(fault: &FaultKind) -> FaultFamily {
        match fault.mnemonic() {
            "SAF" => FaultFamily::Saf,
            "TF" => FaultFamily::Tf,
            "CFin" | "CFid" | "CFst" => FaultFamily::Cf,
            "AF" => FaultFamily::Af,
            _ => FaultFamily::Other,
        }
    }
}

/// Outcome of one adaptive localization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    victim: usize,
    physical_victim: usize,
    aggressor: Option<usize>,
    physical_aggressor: Option<usize>,
    candidates: Vec<FaultKind>,
    probes: usize,
}

impl Diagnosis {
    /// The failing address the bisection converged on: the cell whose
    /// checked reads expose the fault (for coupling faults, the victim;
    /// for decoder faults, one of the involved addresses). This is the
    /// **logical** address — the one the tester drives on the bus; see
    /// [`Diagnosis::physical_victim`] for the array position.
    pub fn victim(&self) -> usize {
        self.victim
    }

    /// The **physical** array position of [`Diagnosis::victim`] under the
    /// localizer's [`Topology`] ([`Localizer::with_topology`], or the
    /// dictionary's own topology) — the coordinate a repair (row/column
    /// replacement) is addressed by. Equals [`Diagnosis::victim`] under
    /// the identity topology.
    pub fn physical_victim(&self) -> usize {
        self.physical_victim
    }

    /// The recovered partner address, when every surviving candidate
    /// agrees on one (coupling aggressor, or the second address of a
    /// decoder pair). Logical, like [`Diagnosis::victim`].
    pub fn aggressor(&self) -> Option<usize> {
        self.aggressor
    }

    /// The **physical** array position of [`Diagnosis::aggressor`] under
    /// the localizer's [`Topology`].
    pub fn physical_aggressor(&self) -> Option<usize> {
        self.physical_aggressor
    }

    /// The surviving candidates: every fault of the pool whose simulated
    /// responses match ALL probe observations. Contains the true fault
    /// whenever the pool did; size 1 means an exact identification,
    /// larger sets are observational equivalence classes.
    pub fn candidates(&self) -> &[FaultKind] {
        &self.candidates
    }

    /// The single identified fault, when diagnosis is exact.
    pub fn exact(&self) -> Option<&FaultKind> {
        match self.candidates.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// The fault families represented among the candidates, deduplicated.
    pub fn families(&self) -> Vec<FaultFamily> {
        let set: BTreeSet<FaultFamily> = self.candidates.iter().map(FaultFamily::of).collect();
        set.into_iter().collect()
    }

    /// The classified family, when the candidates agree on one.
    pub fn family(&self) -> Option<FaultFamily> {
        match self.families().as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Probe runs the diagnosis consumed (including the initial detecting
    /// run).
    pub fn probes(&self) -> usize {
        self.probes
    }
}

/// The adaptive localization driver.
///
/// # Example
///
/// ```
/// use prt_diag::Localizer;
/// use prt_march::library;
/// use prt_ram::{FaultKind, Geometry, Ram};
///
/// let geom = Geometry::bom(16);
/// let localizer = Localizer::new(library::march_diag(), geom);
/// let mut ram = Ram::new(geom);
/// ram.inject(FaultKind::StuckAt { cell: 11, bit: 0, value: 1 })?;
/// let diag = localizer.diagnose(&mut ram)?.expect("SA1 is detected");
/// assert_eq!(diag.victim(), 11);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Localizer<'a> {
    geom: Geometry,
    test: MarchTest,
    executor: Executor,
    dictionary: Option<&'a FaultDictionary>,
    pool: Option<Vec<FaultKind>>,
    topology: Option<Topology>,
}

impl<'a> Localizer<'a> {
    /// A localizer probing with `test` (windowed recompilations of it) on
    /// `geom`-shaped devices. Without a dictionary the candidate pool is
    /// the paper-claim universe of `geom`.
    pub fn new(test: MarchTest, geom: Geometry) -> Localizer<'a> {
        Localizer {
            geom,
            test,
            executor: Executor::new(),
            dictionary: None,
            pool: None,
            topology: None,
        }
    }

    /// Declares the physical address [`Topology`] of the device under
    /// diagnosis, so the resulting [`Diagnosis`] can report physical
    /// ([`Diagnosis::physical_victim`]) alongside logical coordinates.
    /// Probing itself is purely logical — the tester drives bus
    /// addresses — so this never changes which cell is converged on.
    /// A [`Localizer::with_dictionary`] seeded localizer inherits the
    /// dictionary's topology unless one is declared explicitly here.
    ///
    /// # Panics
    ///
    /// Panics when the topology's cell count disagrees with the
    /// localizer geometry.
    pub fn with_topology(mut self, topology: Topology) -> Localizer<'a> {
        assert_eq!(
            topology.cells(),
            self.geom.cells(),
            "topology cell count must match the localizer geometry"
        );
        self.topology = Some(topology);
        self
    }

    /// Seeds candidates from a [`FaultDictionary`]: the detecting run is
    /// the dictionary's own program and the observed signature selects the
    /// initial candidate set (falling back to the dictionary's whole
    /// universe for an aliased or unknown signature).
    ///
    /// # Panics
    ///
    /// Panics when the dictionary's geometry differs from the localizer's,
    /// or when its program is not this localizer's own diagnostic test
    /// compiled for that geometry. The second check guards the bisection
    /// invariant: the windowed probes re-run *this* test, so a dictionary
    /// built from a different (weaker) program could detect a fault the
    /// probes cannot see, and diagnosis would abort with
    /// [`DiagError::Inconsistent`]. Both are whole-run configuration
    /// errors, surfaced loudly like the campaign engine's runner checks.
    pub fn with_dictionary(mut self, dictionary: &'a FaultDictionary) -> Localizer<'a> {
        assert_eq!(
            dictionary.geometry(),
            self.geom,
            "dictionary geometry does not match the localizer's"
        );
        assert_eq!(
            *dictionary.program(),
            self.executor.compile(&self.test, self.geom),
            "dictionary program is not the localizer's diagnostic test — build the dictionary \
             from the same compiled program the localizer probes with"
        );
        self.dictionary = Some(dictionary);
        self
    }

    /// Overrides the candidate pool (e.g. a topology-restricted universe).
    pub fn with_candidates(mut self, pool: Vec<FaultKind>) -> Localizer<'a> {
        self.pool = Some(pool);
        self
    }

    /// Diagnoses a failing device. Returns `Ok(None)` when the detecting
    /// run observes nothing (the fault — if any — escapes this program).
    ///
    /// The device is re-run from a zero reset for every probe
    /// ([`Ram::reset_to`]), modelling a tester that power-cycles between
    /// test applications; injected faults are untouched.
    ///
    /// # Errors
    ///
    /// * [`DiagError::GeometryMismatch`] for a device of the wrong shape.
    /// * [`DiagError::Ram`] when the detecting program cannot run on the
    ///   device (e.g. too few ports for a dictionary program).
    /// * [`DiagError::Inconsistent`] if probe outcomes violate the
    ///   bisection invariant (impossible for deterministic single faults).
    pub fn diagnose(&self, ram: &mut Ram) -> Result<Option<Diagnosis>, DiagError> {
        if ram.geometry() != self.geom {
            return Err(DiagError::GeometryMismatch { expected: self.geom, got: ram.geometry() });
        }
        let n = self.geom.cells();
        let compiled;
        let full: &TestProgram = match self.dictionary {
            Some(d) => d.program(),
            None => {
                compiled = self.executor.compile(&self.test, self.geom);
                &compiled
            }
        };
        let mut probes = 0usize;
        let mut observed = Vec::new();
        let mut sim_buf = Vec::new();

        // 1. The detecting run (stream observed for filtering; signature
        //    for the dictionary lookup).
        ram.reset_to(0);
        probes += 1;
        let exec = full
            .execute_observed(ram, false, None, &mut |v| observed.push(v))
            .map_err(DiagError::Ram)?;
        if !exec.detected() {
            return Ok(None);
        }

        // 2. Candidate pool, filtered by the full observed stream.
        let mut candidates: Vec<FaultKind> = match self.dictionary {
            Some(d) => {
                let sig = d.collector().compact(observed.iter().copied());
                let from_bucket = d.candidate_faults(sig);
                if from_bucket.is_empty() {
                    // Aliased or unknown signature: fall back to the whole
                    // simulated universe.
                    d.faults().to_vec()
                } else {
                    from_bucket
                }
            }
            None => match &self.pool {
                Some(pool) => pool.clone(),
                None => FaultUniverse::enumerate(self.geom, &UniverseSpec::paper_claim())
                    .faults()
                    .to_vec(),
            },
        };
        let mut scratch =
            Ram::with_ports(self.geom, full.ports().max(1)).map_err(DiagError::Ram)?;
        retain_matching(&mut candidates, full, &observed, &mut scratch, &mut sim_buf);

        // 3. Victim bisection over check windows. Invariant: the fault is
        //    observable in [lo, hi).
        let (mut lo, mut hi) = (0usize, n);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let left = self.executor.compile_window(&self.test, self.geom, lo..mid);
            probes += 1;
            let detected = observe(&left, ram, &mut observed)?;
            retain_matching(&mut candidates, &left, &observed, &mut scratch, &mut sim_buf);
            if detected {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let victim = lo;
        // Confirm the invariant really converged on an observable cell.
        let pin = self.executor.compile_window(&self.test, self.geom, victim..victim + 1);
        probes += 1;
        if !observe(&pin, ram, &mut observed)? {
            return Err(DiagError::Inconsistent);
        }
        retain_matching(&mut candidates, &pin, &observed, &mut scratch, &mut sim_buf);

        // 4. Solo probe: exercises the victim alone — separates single-cell
        //    families from couplings (whose aggressor never acts here).
        let solo = solo_probe(self.geom, victim);
        probes += 1;
        observe(&solo, ram, &mut observed)?;
        retain_matching(&mut candidates, &solo, &observed, &mut scratch, &mut sim_buf);

        // 5. Aggressor bisection: toggle probes over the set of cells with
        //    address bit b set split the partner address bit by bit.
        if candidates.iter().any(|f| partner_of(f, victim).is_some()) {
            let addr_bits = usize::BITS - (n - 1).leading_zeros();
            for b in 0..addr_bits {
                let set: Vec<usize> =
                    (0..n).filter(|&c| c != victim && (c >> b) & 1 == 1).collect();
                if set.is_empty() {
                    continue;
                }
                let probe = toggle_probe(self.geom, victim, &set);
                probes += 1;
                observe(&probe, ram, &mut observed)?;
                retain_matching(&mut candidates, &probe, &observed, &mut scratch, &mut sim_buf);
            }
            // 6. Exhaustive two-cell state walk per remaining partner:
            //    separates coupling subtypes and decoder-pair roles.
            let partners: BTreeSet<usize> =
                candidates.iter().filter_map(|f| partner_of(f, victim)).collect();
            for &a in &partners {
                if a == victim {
                    continue;
                }
                let probe = pair_probe(self.geom, victim, a);
                probes += 1;
                observe(&probe, ram, &mut observed)?;
                retain_matching(&mut candidates, &probe, &observed, &mut scratch, &mut sim_buf);
            }
        }

        let mut partner_set: BTreeSet<Option<usize>> =
            candidates.iter().map(|f| partner_of(f, victim)).collect();
        let aggressor =
            if partner_set.len() == 1 { partner_set.pop_first().flatten() } else { None };
        let identity;
        let topology = match (&self.topology, self.dictionary) {
            (Some(t), _) => t,
            (None, Some(d)) => d.topology(),
            (None, None) => {
                identity = Topology::identity(n);
                &identity
            }
        };
        Ok(Some(Diagnosis {
            victim,
            physical_victim: topology.to_physical(victim),
            aggressor,
            physical_aggressor: aggressor.map(|a| topology.to_physical(a)),
            candidates,
            probes,
        }))
    }
}

/// The partner address of a two-cell fault as seen from `victim`
/// (coupling aggressor, or the other address of a decoder pair).
fn partner_of(fault: &FaultKind, victim: usize) -> Option<usize> {
    match *fault {
        FaultKind::CouplingInversion { agg_cell, victim_cell, .. }
        | FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. }
        | FaultKind::CouplingState { agg_cell, victim_cell, .. } => {
            (victim_cell == victim).then_some(agg_cell)
        }
        FaultKind::DecoderExtraCell { addr, extra_cell } => {
            if victim == extra_cell {
                Some(addr)
            } else if victim == addr {
                Some(extra_cell)
            } else {
                None
            }
        }
        FaultKind::DecoderShadow { addr, instead_cell } => {
            if victim == instead_cell {
                Some(addr)
            } else if victim == addr {
                Some(instead_cell)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Runs `program` on the device under diagnosis from a zero reset,
/// recording the checked-read stream into `buf`.
fn observe(program: &TestProgram, ram: &mut Ram, buf: &mut Vec<u64>) -> Result<bool, DiagError> {
    ram.reset_to(0);
    buf.clear();
    let exec =
        program.execute_observed(ram, false, None, &mut |v| buf.push(v)).map_err(DiagError::Ram)?;
    Ok(exec.detected())
}

/// Drops every candidate whose simulated response stream under `program`
/// differs from the observed one. The true fault always survives: the
/// simulator is deterministic and the probe starts from the same reset
/// state on both sides.
fn retain_matching(
    candidates: &mut Vec<FaultKind>,
    program: &TestProgram,
    observed: &[u64],
    scratch: &mut Ram,
    buf: &mut Vec<u64>,
) {
    candidates.retain(|fault| {
        scratch.eject_faults();
        scratch.reset_to(0);
        if scratch.inject(fault.clone()).is_err() {
            return false;
        }
        buf.clear();
        if program.execute_observed(scratch, false, None, &mut |v| buf.push(v)).is_err() {
            return false;
        }
        buf.as_slice() == observed
    });
}

/// A probe exercising only `victim`: both polarities, both transitions,
/// repeated reads and non-transition writes — every single-cell behaviour
/// the simulator models shows up here, while two-cell faults (whose
/// partner is never touched after the victim's own writes) stay silent or
/// reveal their held-state component.
fn solo_probe(geom: Geometry, victim: usize) -> TestProgram {
    let mask = geom.data_mask();
    let mut b = ProgramBuilder::new(geom).with_name(format!("solo@{victim}"));
    let mut value = 0u64;
    // w0 r w1 r r w0 r r w1 w1 r w0 w0 r
    let script: [Option<u64>; 14] = [
        Some(0),
        None,
        Some(mask),
        None,
        None,
        Some(0),
        None,
        None,
        Some(mask),
        Some(mask),
        None,
        Some(0),
        Some(0),
        None,
    ];
    for step in script {
        match step {
            Some(v) => {
                b.write(victim, v);
                value = v;
            }
            None => b.read_expect(victim, value),
        }
    }
    b.build()
}

/// A probe toggling every cell of `set` around a quiet `victim`: writes
/// a background everywhere, re-asserts the victim, then drives both
/// transition directions through the set with victim read-backs in
/// between — for both backgrounds. Any two-cell fault whose partner lies
/// in `set` perturbs a victim read (and, through stream filtering, any
/// candidate that *predicts* a perturbation the device does not show is
/// eliminated just the same).
fn toggle_probe(geom: Geometry, victim: usize, set: &[usize]) -> TestProgram {
    let n = geom.cells();
    let mask = geom.data_mask();
    let mut b = ProgramBuilder::new(geom).with_name(format!("toggle@{victim}"));
    for bg in [0, mask] {
        for c in 0..n {
            b.write(c, bg);
        }
        b.write(victim, bg);
        b.read_expect(victim, bg);
        for &c in set {
            b.write(c, bg ^ mask);
        }
        b.read_expect(victim, bg);
        for &c in set {
            b.write(c, bg);
        }
        b.read_expect(victim, bg);
    }
    b.build()
}

/// An exhaustive two-cell state walk over `(victim, partner)`: every
/// combination of victim polarity and partner transition/held state, with
/// both cells read back after every write — the discrimination probe that
/// separates CFin from CFid from CFst polarities and decoder-pair roles.
fn pair_probe(geom: Geometry, victim: usize, partner: usize) -> TestProgram {
    let mask = geom.data_mask();
    let mut b = ProgramBuilder::new(geom).with_name(format!("pair@{victim}+{partner}"));
    enum Step {
        Wv(u64),
        Wa(u64),
        Rv,
        Ra,
    }
    use Step::*;
    let m = mask;
    let steps = [
        Wv(0),
        Wa(0),
        Rv,
        Ra,
        Wa(m), // partner rise, victim 0
        Rv,
        Ra,
        Wa(0), // partner fall, victim 0
        Rv,
        Ra,
        Wv(m),
        Rv,
        Ra,
        Wa(m), // partner rise, victim 1
        Rv,
        Ra,
        Wa(0), // partner fall, victim 1
        Rv,
        Ra,
        Wv(0), // victim fall, partner 0
        Rv,
        Ra,
        Wa(m),
        Wv(m), // victim rise, partner 1
        Rv,
        Ra,
        Wv(0), // victim fall, partner 1
        Rv,
        Ra,
        Wa(0),
        Rv,
        Ra,
    ];
    let (mut vv, mut va) = (0u64, 0u64);
    for step in steps {
        match step {
            Wv(x) => {
                b.write(victim, x);
                vv = x;
            }
            Wa(x) => {
                b.write(partner, x);
                va = x;
            }
            Rv => b.read_expect(victim, vv),
            Ra => b.read_expect(partner, va),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_march::library;
    use prt_ram::CouplingTrigger;

    fn localizer() -> Localizer<'static> {
        Localizer::new(library::march_diag(), Geometry::bom(16))
    }

    #[test]
    fn fault_free_device_yields_no_diagnosis() {
        let mut ram = Ram::new(Geometry::bom(16));
        assert_eq!(localizer().diagnose(&mut ram).unwrap(), None);
    }

    #[test]
    fn stuck_at_localizes_exactly() {
        for cell in [0usize, 7, 15] {
            let mut ram = Ram::new(Geometry::bom(16));
            ram.inject(FaultKind::StuckAt { cell, bit: 0, value: 1 }).unwrap();
            let d = localizer().diagnose(&mut ram).unwrap().expect("detected");
            assert_eq!(d.victim(), cell);
            assert_eq!(d.aggressor(), None);
            assert_eq!(
                d.exact(),
                Some(&FaultKind::StuckAt { cell, bit: 0, value: 1 }),
                "SA1 is observationally unique"
            );
            assert_eq!(d.family(), Some(FaultFamily::Saf));
        }
    }

    #[test]
    fn coupling_recovers_victim_and_aggressor() {
        let fault = FaultKind::CouplingIdempotent {
            agg_cell: 3,
            agg_bit: 0,
            victim_cell: 12,
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
            force: 1,
        };
        let mut ram = Ram::new(Geometry::bom(16));
        ram.inject(fault.clone()).unwrap();
        let d = localizer().diagnose(&mut ram).unwrap().expect("detected");
        assert_eq!(d.victim(), 12);
        assert_eq!(d.aggressor(), Some(3));
        assert_eq!(d.exact(), Some(&fault));
        assert_eq!(d.family(), Some(FaultFamily::Cf));
    }

    #[test]
    fn bom_zero_reset_equivalence_class_is_reported_whole() {
        // SA0@c, TF↑@c and AF-none@c respond identically to every access
        // sequence on a bit-oriented memory reset to 0 — the diagnosis
        // must surface the whole class, truth included, never a wrong
        // singleton.
        let cell = 9usize;
        for fault in [
            FaultKind::StuckAt { cell, bit: 0, value: 0 },
            FaultKind::Transition { cell, bit: 0, rising: true },
            FaultKind::DecoderNoAccess { addr: cell },
        ] {
            let mut ram = Ram::new(Geometry::bom(16));
            ram.inject(fault.clone()).unwrap();
            let d = localizer().diagnose(&mut ram).unwrap().expect("detected");
            assert_eq!(d.victim(), cell);
            assert!(d.candidates().contains(&fault), "{fault} missing from its class");
            assert_eq!(d.candidates().len(), 3, "{fault}: {:?}", d.candidates());
            assert_eq!(d.exact(), None);
            assert_eq!(
                d.families(),
                vec![FaultFamily::Saf, FaultFamily::Tf, FaultFamily::Af],
                "{fault}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dictionary program is not the localizer's diagnostic test")]
    fn mismatched_dictionary_program_is_rejected() {
        // A dictionary built from a weaker program than the probe test
        // would break the bisection invariant — rejected at configuration
        // time, not discovered as an Inconsistent diagnosis.
        use prt_gf::Poly2;
        use prt_ram::{FaultUniverse, UniverseSpec};
        let geom = Geometry::bom(16);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
        let program = Executor::new().compile(&library::mats(), geom);
        let dict = FaultDictionary::build(
            &universe,
            &program,
            Poly2::from_bits(0b1_0001_1011),
            prt_sim::Parallelism::Sequential,
        )
        .unwrap();
        let _ = Localizer::new(library::march_diag(), geom).with_dictionary(&dict);
    }

    #[test]
    fn wrong_geometry_is_rejected() {
        let mut ram = Ram::new(Geometry::bom(8));
        assert!(matches!(localizer().diagnose(&mut ram), Err(DiagError::GeometryMismatch { .. })));
    }

    #[test]
    fn diagnosis_reports_physical_coordinates_under_a_scramble() {
        use prt_ram::Scrambler;
        let geom = Geometry::bom(16);
        let topo = Topology::identity(16).then_swizzle(Scrambler::reversed(4)).unwrap();
        let fault = FaultKind::CouplingIdempotent {
            agg_cell: 3,
            agg_bit: 0,
            victim_cell: 12,
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
            force: 1,
        };
        let mut ram = Ram::new(geom);
        ram.inject(fault.clone()).unwrap();
        let d = Localizer::new(library::march_diag(), geom)
            .with_topology(topo.clone())
            .diagnose(&mut ram)
            .unwrap()
            .expect("detected");
        // Logical coordinates are unchanged by the declared topology...
        assert_eq!(d.victim(), 12);
        assert_eq!(d.aggressor(), Some(3));
        // ...and the physical ones are their bit-reversed positions.
        assert_eq!(d.physical_victim(), topo.to_physical(12));
        assert_eq!(d.physical_victim(), 3); // 0b1100 reversed = 0b0011
        assert_eq!(d.physical_aggressor(), Some(12)); // 0b0011 reversed
                                                      // Without a topology, physical == logical.
        let mut ram = Ram::new(geom);
        ram.inject(fault).unwrap();
        let plain = localizer().diagnose(&mut ram).unwrap().expect("detected");
        assert_eq!(plain.physical_victim(), plain.victim());
        assert_eq!(plain.physical_aggressor(), plain.aggressor());
    }

    #[test]
    fn dictionary_topology_is_inherited_by_the_localizer() {
        use prt_gf::Poly2;
        use prt_ram::{LazyUniverse, Scrambler, UniverseSpec};
        let geom = Geometry::bom(16);
        let topo = Topology::identity(16).then_swizzle(Scrambler::reversed(4)).unwrap();
        let universe =
            LazyUniverse::new_with(geom, UniverseSpec::paper_claim(), topo.clone()).materialize();
        let program = Executor::new().compile(&library::march_diag(), geom);
        let dict = FaultDictionary::build(
            &universe,
            &program,
            Poly2::from_bits(0b1_0001_1011),
            prt_sim::Parallelism::Sequential,
        )
        .unwrap();
        assert_eq!(dict.topology(), &topo);
        let mut ram = Ram::new(geom);
        ram.inject(FaultKind::StuckAt { cell: 5, bit: 0, value: 1 }).unwrap();
        let d = Localizer::new(library::march_diag(), geom)
            .with_dictionary(&dict)
            .diagnose(&mut ram)
            .unwrap()
            .expect("detected");
        assert_eq!(d.victim(), 5);
        assert_eq!(d.physical_victim(), topo.to_physical(5));
        assert_eq!(d.physical_victim(), 10); // 0b0101 reversed = 0b1010
    }

    #[test]
    fn probe_budget_is_logarithmic() {
        // Single-cell diagnosis: 1 full run + log₂ n bisection probes +
        // pin + solo; no aggressor phase once candidates are single-cell.
        let mut ram = Ram::new(Geometry::bom(16));
        ram.inject(FaultKind::StuckAt { cell: 5, bit: 0, value: 1 }).unwrap();
        let d = localizer().diagnose(&mut ram).unwrap().unwrap();
        assert!(d.probes() <= 1 + 4 + 1 + 1, "{} probes", d.probes());
    }
}
