use std::error::Error;
use std::fmt;

use prt_ram::Geometry;

/// Errors produced by the diagnosis subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagError {
    /// MISR construction failed (degenerate compaction polynomial).
    Lfsr(prt_lfsr::LfsrError),
    /// An underlying memory operation failed.
    Ram(prt_ram::RamError),
    /// The device under diagnosis has a different geometry than the one
    /// the diagnostic programs were compiled for.
    GeometryMismatch {
        /// Geometry the localizer was configured for.
        expected: Geometry,
        /// Geometry of the device handed in.
        got: Geometry,
    },
    /// Probe outcomes violated the bisection invariant (a fault observable
    /// on a window was observable on neither half) — impossible for the
    /// deterministic single-fault models this workspace simulates, kept as
    /// a loud failure instead of a wrong diagnosis.
    Inconsistent,
    /// A dictionary checkpoint could not be saved, loaded or trusted
    /// (I/O failure, corruption, version skew or a fingerprint of a
    /// different build).
    Checkpoint(prt_sim::CheckpointError),
}

impl fmt::Display for DiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagError::Lfsr(e) => write!(f, "compactor error: {e}"),
            DiagError::Ram(e) => write!(f, "memory error: {e}"),
            DiagError::GeometryMismatch { expected, got } => {
                write!(f, "device geometry {got:?} does not match diagnosis geometry {expected:?}")
            }
            DiagError::Inconsistent => {
                write!(f, "probe outcomes violate the window-bisection invariant")
            }
            DiagError::Checkpoint(e) => write!(f, "dictionary checkpoint error: {e}"),
        }
    }
}

impl Error for DiagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DiagError::Lfsr(e) => Some(e),
            DiagError::Ram(e) => Some(e),
            DiagError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<prt_lfsr::LfsrError> for DiagError {
    fn from(e: prt_lfsr::LfsrError) -> Self {
        DiagError::Lfsr(e)
    }
}

impl From<prt_ram::RamError> for DiagError {
    fn from(e: prt_ram::RamError) -> Self {
        DiagError::Ram(e)
    }
}

impl From<prt_sim::CheckpointError> for DiagError {
    fn from(e: prt_sim::CheckpointError) -> Self {
        DiagError::Checkpoint(e)
    }
}
