//! Shared, optionally disk-backed dictionary caching for serving
//! workloads.
//!
//! A diagnosis *server* answers thousands of `signature → candidates`
//! lookups against a handful of distinct `(universe, program, poly)`
//! configurations. Building a [`FaultDictionary`] simulates the whole
//! universe — milliseconds to minutes — while a lookup is one hash
//! probe; the gap is what [`DictionaryStore`] closes: every distinct
//! configuration is built **once**, `Arc`-shared between all concurrent
//! readers, optionally persisted to disk so a restart pays a file read
//! instead of a re-simulation, and every prefix compression of it is
//! cached as a cheap re-index of the shared observations.
//!
//! Cache keys are [`FaultDictionary::fingerprint`] values — the hash of
//! everything that determines the observation table — so two requests
//! collide exactly when their dictionaries would be bit-identical, and a
//! foreign or stale disk file is *refused* (fingerprint mismatch), never
//! silently adopted. There is no invalidation protocol beyond that: a
//! changed universe, program or polynomial changes the fingerprint,
//! which is a different key and a different file.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::{DiagError, FaultDictionary};
use prt_gf::Poly2;
use prt_ram::{FaultUniverse, TestProgram};
use prt_sim::Parallelism;

/// A concurrent cache of built dictionaries, keyed by
/// [`FaultDictionary::fingerprint`], with an optional disk tier.
///
/// # Example
///
/// ```
/// use prt_diag::DictionaryStore;
/// use prt_gf::Poly2;
/// use prt_march::{library, Executor};
/// use prt_ram::{FaultUniverse, Geometry, UniverseSpec};
/// use prt_sim::Parallelism;
///
/// let geom = Geometry::bom(8);
/// let universe = FaultUniverse::enumerate(geom, &UniverseSpec::single_cell());
/// let program = Executor::new().compile(&library::march_diag(), geom);
/// let poly = Poly2::from_bits(0b1_0001_1011);
///
/// let store = DictionaryStore::in_memory();
/// let first = store.get_or_build(&universe, &program, poly, Parallelism::Auto)?;
/// let second = store.get_or_build(&universe, &program, poly, Parallelism::Auto)?;
/// assert!(std::sync::Arc::ptr_eq(&first, &second)); // one probe, zero rebuilds
/// assert_eq!(store.builds(), 1);
/// # Ok::<(), prt_diag::DiagError>(())
/// ```
#[derive(Debug)]
pub struct DictionaryStore {
    /// Disk tier: `dict-{fingerprint:016x}.ckpt` files under this
    /// directory, in the [`FaultDictionary::persist`] format. `None`
    /// keeps the store purely in-memory.
    dir: Option<PathBuf>,
    /// Full-signature dictionaries by fingerprint.
    full: Mutex<HashMap<u64, Arc<FaultDictionary>>>,
    /// Prefix compressions by `(fingerprint, bits)` — re-indexes of the
    /// shared observations, never separate simulations.
    compressed: Mutex<HashMap<(u64, u32), Arc<FaultDictionary>>>,
    /// Universe simulations actually run — the build-counter hook the
    /// cache tests (and the service's cache-health reporting) assert
    /// against. Loads from disk do **not** count.
    builds: AtomicUsize,
}

impl DictionaryStore {
    /// A store with no disk tier: dictionaries live as long as the store.
    pub fn in_memory() -> DictionaryStore {
        DictionaryStore {
            dir: None,
            full: Mutex::new(HashMap::new()),
            compressed: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
        }
    }

    /// A store persisting every built dictionary under `dir` (created on
    /// first persist). A later store — e.g. after a service restart —
    /// pointed at the same directory reloads instead of rebuilding.
    pub fn persistent(dir: impl Into<PathBuf>) -> DictionaryStore {
        DictionaryStore { dir: Some(dir.into()), ..DictionaryStore::in_memory() }
    }

    /// Number of real universe simulations this store has run. A cache
    /// hit — memory or disk — leaves the counter unchanged, which is the
    /// observable tests use to prove "repeated query ⇒ no rebuild".
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// The disk path for `fingerprint`, when a disk tier is configured.
    fn disk_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("dict-{fingerprint:016x}.ckpt")))
    }

    /// The dictionary for `(universe, program, poly)`: from memory when
    /// already resident, else from disk when a persisted file matches,
    /// else built (and persisted, when a disk tier is configured). The
    /// returned `Arc` is shared — every concurrent caller of the same
    /// configuration gets the same allocation.
    ///
    /// Misses are serialized per store (the build happens under the map
    /// lock), so a thundering herd of identical first-time queries runs
    /// **one** simulation, not one per caller.
    ///
    /// # Errors
    ///
    /// [`DiagError::Lfsr`] for a degenerate `poly`;
    /// [`DiagError::Checkpoint`] when the disk tier holds a corrupt file
    /// for this fingerprint or a persist fails.
    ///
    /// # Panics
    ///
    /// As [`FaultDictionary::build`] on a universe/program geometry
    /// mismatch.
    pub fn get_or_build(
        &self,
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        parallelism: Parallelism,
    ) -> Result<Arc<FaultDictionary>, DiagError> {
        let fingerprint = FaultDictionary::fingerprint(universe, program, poly);
        let mut full = self.full.lock().expect("dictionary store lock");
        if let Some(dict) = full.get(&fingerprint) {
            return Ok(Arc::clone(dict));
        }
        if let Some(path) = self.disk_path(fingerprint) {
            if let Some(dict) = FaultDictionary::load(universe, program, poly, &path)? {
                let dict = Arc::new(dict);
                full.insert(fingerprint, Arc::clone(&dict));
                return Ok(dict);
            }
        }
        let dict = FaultDictionary::build(universe, program, poly, parallelism)?;
        self.builds.fetch_add(1, Ordering::Relaxed);
        if let Some(path) = self.disk_path(fingerprint) {
            if let Some(parent) = path.parent() {
                // Best-effort: a failed create surfaces as the persist
                // error below, with the path in it.
                let _ = std::fs::create_dir_all(parent);
            }
            dict.persist(&path)?;
        }
        let dict = Arc::new(dict);
        full.insert(fingerprint, Arc::clone(&dict));
        Ok(dict)
    }

    /// The `bits`-bit prefix compression of the `(universe, program,
    /// poly)` dictionary, cached by `(fingerprint, bits)`. The full
    /// dictionary is resolved through [`DictionaryStore::get_or_build`]
    /// first (possibly building it); the compression itself is a cheap
    /// re-index sharing the full dictionary's observations, so it never
    /// bumps [`DictionaryStore::builds`].
    ///
    /// # Errors
    ///
    /// As [`DictionaryStore::get_or_build`].
    ///
    /// # Panics
    ///
    /// As [`FaultDictionary::compress`] when `bits` is 0 or exceeds the
    /// MISR width.
    pub fn get_compressed(
        &self,
        universe: &FaultUniverse,
        program: &TestProgram,
        poly: Poly2,
        parallelism: Parallelism,
        bits: u32,
    ) -> Result<Arc<FaultDictionary>, DiagError> {
        let fingerprint = FaultDictionary::fingerprint(universe, program, poly);
        if let Some(dict) =
            self.compressed.lock().expect("dictionary store lock").get(&(fingerprint, bits))
        {
            return Ok(Arc::clone(dict));
        }
        let full = self.get_or_build(universe, program, poly, parallelism)?;
        let dict = Arc::new(full.compress(bits));
        self.compressed
            .lock()
            .expect("dictionary store lock")
            .insert((fingerprint, bits), Arc::clone(&dict));
        Ok(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_march::{library, Executor};
    use prt_ram::{Geometry, UniverseSpec};

    fn poly8() -> Poly2 {
        Poly2::from_bits(0b1_0001_1011)
    }

    fn fixture() -> (FaultUniverse, TestProgram) {
        let geom = Geometry::bom(8);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        (universe, program)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prt-diag-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn repeated_query_shares_one_build() {
        let (universe, program) = fixture();
        let store = DictionaryStore::in_memory();
        let a = store.get_or_build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        let b = store.get_or_build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat query must share the allocation");
        assert_eq!(store.builds(), 1, "repeat query must not rebuild");
        // A different polynomial is a different fingerprint: real build.
        let c = store
            .get_or_build(&universe, &program, Poly2::from_bits(0b1_1000_0011), Parallelism::Auto)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.builds(), 2);
    }

    #[test]
    fn compressions_are_cached_and_free() {
        let (universe, program) = fixture();
        let store = DictionaryStore::in_memory();
        let c4 = store.get_compressed(&universe, &program, poly8(), Parallelism::Auto, 4).unwrap();
        assert_eq!(c4.prefix_bits(), Some(4));
        assert_eq!(store.builds(), 1, "compression builds the full dictionary once");
        let again =
            store.get_compressed(&universe, &program, poly8(), Parallelism::Auto, 4).unwrap();
        assert!(Arc::ptr_eq(&c4, &again));
        let c6 = store.get_compressed(&universe, &program, poly8(), Parallelism::Auto, 6).unwrap();
        assert_eq!(c6.prefix_bits(), Some(6));
        assert_eq!(store.builds(), 1, "every width re-indexes the one simulation");
        // The widths share the underlying observations with the full
        // dictionary (Arc bumps, not copies).
        let full = store.get_or_build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        assert_eq!(c4.observations(), full.observations());
        assert_eq!(store.builds(), 1);
    }

    #[test]
    fn persistent_store_reloads_across_restarts() {
        let (universe, program) = fixture();
        let dir = temp_dir("reload");
        let first = DictionaryStore::persistent(&dir);
        let built = first.get_or_build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        assert_eq!(first.builds(), 1);
        // "Restart": a fresh store over the same directory loads the
        // persisted observations instead of re-simulating.
        let second = DictionaryStore::persistent(&dir);
        let loaded = second.get_or_build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        assert_eq!(second.builds(), 0, "disk hit must not count as a build");
        assert_eq!(loaded.observations(), built.observations());
        assert_eq!(loaded.stats(), built.stats());
        assert_eq!(loaded.reference(), built.reference());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_load_round_trip_is_bit_identical() {
        let (universe, program) = fixture();
        let dict = FaultDictionary::build(&universe, &program, poly8(), Parallelism::Auto).unwrap();
        let dir = temp_dir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dict.ckpt");
        dict.persist(&path).unwrap();
        let loaded = FaultDictionary::load(&universe, &program, poly8(), &path)
            .unwrap()
            .expect("persisted file must load");
        assert_eq!(loaded.observations(), dict.observations());
        assert_eq!(loaded.stats(), dict.stats());
        // A foreign configuration must refuse the file, loudly.
        let err =
            FaultDictionary::load(&universe, &program, Poly2::from_bits(0b1_1000_0011), &path)
                .unwrap_err();
        assert!(matches!(err, DiagError::Checkpoint(_)), "expected refusal, got {err:?}");
        // Missing file: a cold Ok(None), not an error.
        assert!(FaultDictionary::load(&universe, &program, poly8(), dir.join("nope.ckpt"))
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
