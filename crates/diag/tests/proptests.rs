//! Property-based tests for the diagnosis subsystem.

use proptest::prelude::*;
use prt_diag::{FaultDictionary, SignatureCollector};
use prt_gf::Poly2;
use prt_march::{library, Executor};
use prt_ram::{FaultKind, FaultUniverse, Geometry, Ram, UniverseSpec};
use prt_sim::Parallelism;

fn poly8() -> Poly2 {
    Poly2::from_bits(0b1_0001_1011)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MISR signature of a fault-free run is deterministic: it equals
    /// the compile-time reference for every data background, on a fresh
    /// device and on a recycled pool device alike (dirty store, injected
    /// then ejected fault, arbitrary reset background in between).
    #[test]
    fn fault_free_signature_deterministic_across_backgrounds_and_reuse(
        bg in 0u64..16,
        dirty in 0u64..16,
        n in 4usize..24,
    ) {
        let geom = Geometry::wom(n, 4).unwrap();
        let program = Executor::new().with_background(bg).compile(&library::march_diag(), geom);
        let c = SignatureCollector::new(&program, poly8()).unwrap();

        let mut fresh = Ram::new(geom);
        let first = c.collect(&program, &mut fresh).unwrap();
        prop_assert!(!first.stream_differs());
        prop_assert_eq!(first.signature, c.reference());

        // Pool recycling: fault a device, run it, heal and reset — the
        // signature must come back to the reference exactly.
        let mut pooled = Ram::new(geom);
        pooled.inject(FaultKind::StuckAt { cell: n - 1, bit: 2, value: 1 }).unwrap();
        let faulty = c.collect(&program, &mut pooled).unwrap();
        prop_assert!(faulty.stream_differs());
        pooled.eject_faults();
        pooled.reset_to(dirty);
        let recycled = c.collect(&program, &mut pooled).unwrap();
        prop_assert!(!recycled.stream_differs());
        prop_assert_eq!(recycled.signature, c.reference());
    }

    /// Dictionary round-trip: inject any universe fault, compact its run,
    /// look the signature up — the candidate set always contains the
    /// injected fault (when the signature fails at all).
    #[test]
    fn dictionary_round_trip_contains_injected_fault(pick in 0usize..1_000_000, n in 4usize..10) {
        let geom = Geometry::bom(n);
        let universe = FaultUniverse::enumerate(geom, &UniverseSpec::paper_claim());
        let program = Executor::new().compile(&library::march_diag(), geom);
        let dict =
            FaultDictionary::build(&universe, &program, poly8(), Parallelism::Sequential).unwrap();
        let i = pick % universe.len();
        let mut ram = Ram::new(geom);
        ram.inject(universe.faults()[i].clone()).unwrap();
        let obs = dict.collector().collect(dict.program(), &mut ram).unwrap();
        if obs.signature != dict.reference() {
            prop_assert!(
                dict.candidates(obs.signature).contains(&i),
                "{} missing from its signature bucket",
                universe.faults()[i]
            );
        } else {
            // Reference signature: either a true escape, or (measurably
            // rare) aliasing — never a bucketed fault.
            prop_assert!(dict.candidates(obs.signature).is_empty());
        }
    }
}
