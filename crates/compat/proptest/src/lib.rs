//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds in environments with no registry access, so the
//! real `proptest` cannot be fetched. This crate implements exactly the API
//! subset the suite's property tests use — [`Strategy`], ranges, tuples,
//! [`any`], [`Just`], `prop::collection::vec`, [`prop_oneof!`],
//! [`proptest!`], `prop_assert*!` and [`prop_assume!`] — on top of a
//! deterministic SplitMix64 generator seeded from the test name, so every
//! run explores the same cases.
//!
//! Differences from the real crate (acceptable for this suite):
//!
//! * **no shrinking** — a failing case panics with the plain assertion
//!   message instead of a minimised counterexample,
//! * **no persistence / regression files**,
//! * rejected [`prop_assume!`] cases count against a bounded attempt
//!   budget (20× the case count) instead of proptest's global limits.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic pseudo-random generator (SplitMix64) used to drive value
/// generation. Seeded from the test-function name so runs are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in `[0, n)` for 128-bit bounds (`n > 0`).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        if let Ok(n64) = u64::try_from(n) {
            return u128::from(self.below(n64));
        }
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds the choice from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + rng.below_u128(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + rng.below_u128(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy over the full value range of `T` (`any::<u64>()`, …).
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` — a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.cases as usize;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __done = 0usize;
            let mut __attempts = 0usize;
            while __done < __cases && __attempts < __cases.saturating_mul(20) {
                __attempts += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
                __done += 1;
            }
            assert!(
                __done == __cases,
                "property {} exhausted its prop_assume! budget ({} of {} cases ran)",
                stringify!($name), __done, __cases
            );
        }
    )*};
}

/// Asserts a property condition (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (2u32..=9).generate(&mut rng);
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 2)) {
            prop_assert!(v == 2 || v == 4);
        }
    }
}
