//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace builds without registry access, so the real crate cannot
//! be fetched. This shim implements the subset the suite's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`Throughput`],
//! [`BenchmarkId`], [`criterion_group!`] / [`criterion_main!`] and
//! [`black_box`] — with a simple calibrated-timing loop and plain-text
//! reporting (mean ns/iter plus derived throughput). No statistics,
//! plots or baseline comparison.
//!
//! Tuning via environment:
//!
//! * `CRITERION_MEASURE_MS` — target measurement time per benchmark
//!   (default 300 ms),
//! * `CRITERION_FILTER` — substring filter on benchmark labels (the
//!   positional CLI filter argument is honoured the same way).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        let filter = std::env::var("CRITERION_FILTER")
            .ok()
            .or_else(|| std::env::args().skip(1).find(|a| !a.starts_with('-')));
        Criterion { measure: Duration::from_millis(ms), filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, c: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.to_string();
        run_one(&label, None, self.measure, self.filter.as_deref(), &mut f);
        self
    }
}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark label (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the `function/parameter` label.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.throughput, self.c.measure, self.c.filter.as_deref(), &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `name`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        name: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.throughput, self.c.measure, self.c.filter.as_deref(), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (the whole batch, one measurement).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    measure: Duration,
    filter: Option<&str>,
    f: &mut F,
) {
    if let Some(pat) = filter {
        if !label.contains(pat) {
            return;
        }
    }
    // Calibration: grow the batch until it costs ≥ ~1% of the target.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= measure / 100 || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(8);
    };
    // Measurement: one batch sized to the target time.
    let target_iters = ((measure.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 34);
    let mut b = Bencher { iters: target_iters, elapsed: Duration::ZERO };
    f(&mut b);
    let ns = b.elapsed.as_secs_f64() * 1e9 / b.iters as f64;
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {}/s", si(n as f64 / (ns * 1e-9), "elem"))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {}/s", si(n as f64 / (ns * 1e-9), "B"))
        }
        None => String::new(),
    };
    println!("{label:<55} time: {:>12}/iter{thrpt}", si(ns, "ns"));
}

/// Human-readable magnitude formatting (`1234567 ns` → `1.235 Mns`… kept
/// simple: scales by 1000 with k/M/G suffixes).
fn si(value: f64, unit: &str) -> String {
    let (v, prefix) = if value >= 1e9 {
        (value / 1e9, "G")
    } else if value >= 1e6 {
        (value / 1e6, "M")
    } else if value >= 1e3 {
        (value / 1e3, "k")
    } else {
        (value, "")
    };
    format!("{v:.3} {prefix}{unit}")
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }

    #[test]
    fn bencher_runs_requested_iters() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 10);
        assert!(b.elapsed > Duration::ZERO || count == 10);
    }

    #[test]
    fn si_scales() {
        assert_eq!(si(1500.0, "ns"), "1.500 kns");
        assert_eq!(si(2.0, "ns"), "2.000 ns");
    }
}
