//! Detection-probability analysis — §3 of the paper.
//!
//! "Applying Markov chain analysis it was shown that π-test iteration has a
//! high resolution for most memory faults."
//!
//! The π-test's detection events are *per-iteration* Bernoulli trials whose
//! success probability depends on the fault class and the (random) TDB; the
//! escape probability after `T` independent-TDB iterations is the Markov
//! absorption complement `(1 − p)^T`. This module provides the closed
//! forms under a documented TDB model and a Monte-Carlo harness that
//! validates them against the actual simulator (experiment E8).
//!
//! # TDB model
//!
//! Each iteration seeds the automaton with an `Init` drawn uniformly from
//! *all* `q^k` states (including zero). Because every sequence element is a
//! non-trivial GF(2)-linear image of `Init`, every cell value is then an
//! unbiased uniform field element, independent across iterations (but not
//! across cells — the analysis only uses per-cell marginals).

use crate::{PiTest, PrtError};
use prt_gf::Field;
use prt_ram::{FaultKind, MemoryDevice, Ram, SplitMix64};

/// Closed-form single-iteration detection probability for a fault class on
/// a bit-oriented memory under the uniform-TDB model, ascending trajectory,
/// memory zero-filled before the iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionModel {
    /// Fault-class mnemonic.
    pub class: &'static str,
    /// Single-iteration detection probability.
    pub p_detect: f64,
    /// Why (shown in the E8 table).
    pub rationale: &'static str,
}

/// The closed forms for the bit-oriented π-test (k = 2, plain mode).
///
/// Derivations (cell value `s` uniform, zero-filled pre-state):
///
/// * **SAF** — detected iff the cell's TDB value differs from the stuck
///   value at its two operand reads: `p = 1/2`.
/// * **TF** — the blocked transition must be exercised; starting from the
///   zero fill only `0→1` writes occur, so the up-TF fires with `p(s=1) =
///   1/2` and the down-TF never does: class average `1/4`.
/// * **IRF/RDF** — read-path faults corrupt an operand read directly;
///   error propagation is invertible, `p = 1`.
/// * **DRDF** — the first read returns the correct value while flipping the
///   cell; the *second* operand read observes the flip, `p = 1`.
/// * **WDF** — fires iff the write is a non-transition, i.e. the new TDB
///   value equals the old content (`p = 1/2` from the zero fill: `s = 0`).
/// * **SOF** — the cell never takes the wave value; its first operand read
///   returns the sense-amp latch, which at that moment holds `s_{i−2}`.
///   Under the `g = 1 + x + x²` recurrence `s_{i−2} ≠ s_i ⟺ s_{i−1} = 1`:
///   `p = 1/2`.
/// * **CFst** — the victim is forced while the aggressor is in the trigger
///   state; detection needs aggressor-in-state (`1/2`) and a victim value
///   differing from the forced one (`1/2`): `p = 1/4`.
/// * **CFin/CFid (adjacent, aggressor = victim + 1)** — the aggressor's
///   wave write lands exactly between the victim's two operand reads;
///   detection needs only the trigger transition (`1/2`), times the victim
///   polarity (`1/2`) for CFid.
/// * **CFin/CFid (distant)** — the corruption lands either before the
///   victim's write (overwritten) or after its last operand read (never
///   observed): `p = 0`, *structurally*. This is the plain-mode blind spot
///   that pre-read mode closes (module docs of [`crate::scheme`]).
pub fn bom_closed_forms() -> Vec<DetectionModel> {
    vec![
        DetectionModel { class: "SAF", p_detect: 0.5, rationale: "P(TDB value ≠ stuck value)" },
        DetectionModel {
            class: "TF",
            p_detect: 0.25,
            rationale: "up-TF: P(s=1)=1/2 from zero fill; down-TF: 0 — average",
        },
        DetectionModel { class: "IRF", p_detect: 1.0, rationale: "every operand read corrupted" },
        DetectionModel {
            class: "RDF",
            p_detect: 1.0,
            rationale: "destructive read observed directly",
        },
        DetectionModel {
            class: "DRDF",
            p_detect: 1.0,
            rationale: "flip observed by the second operand read",
        },
        DetectionModel {
            class: "WDF",
            p_detect: 0.5,
            rationale: "P(non-transition write) = P(s = old) = 1/2",
        },
        DetectionModel {
            class: "SOF",
            p_detect: 0.5,
            rationale: "latch holds s_{i−2}; mismatch ⟺ s_{i−1} = 1 under g = 1+x+x²",
        },
        DetectionModel {
            class: "CFst",
            p_detect: 0.25,
            rationale: "P(aggressor in state)·P(victim ≠ forced)",
        },
        DetectionModel {
            class: "CFin adj",
            p_detect: 0.25,
            rationale: "a = v+1: ↑ fires with P(s=1)=1/2; ↓ never from zero fill — avg 1/4",
        },
        DetectionModel {
            class: "CFid adj",
            p_detect: 0.125,
            rationale: "CFin adj × P(victim ≠ forced) = 1/8",
        },
        DetectionModel {
            class: "CFin dist",
            p_detect: 0.0,
            rationale: "corruption outside the victim's observation window — invisible",
        },
        DetectionModel {
            class: "CFid dist",
            p_detect: 0.0,
            rationale: "as CFin dist; the structural blind spot pre-read closes",
        },
    ]
}

/// Escape probability after `t` independent uniform-TDB iterations —
/// the Markov absorption complement.
pub fn escape_probability(p_detect: f64, t: u32) -> f64 {
    (1.0 - p_detect).powi(t as i32)
}

/// Iterations needed to push the escape probability below `target`.
pub fn iterations_for_escape(p_detect: f64, target: f64) -> u32 {
    assert!((0.0..1.0).contains(&target) && target > 0.0, "target in (0,1)");
    if p_detect >= 1.0 {
        return 1;
    }
    if p_detect <= 0.0 {
        return u32::MAX;
    }
    (target.ln() / (1.0 - p_detect).ln()).ceil() as u32
}

/// Monte-Carlo estimate of the single-iteration detection probability of
/// `fault` on an `n`-cell bit-oriented memory under the uniform-TDB model.
///
/// Each trial zero-fills a (pooled) faulty memory, draws a uniform `Init`
/// (over all 4 states of the k=2 automaton) and runs one plain ascending
/// π-iteration. Trials fan out on the campaign engine; the TDB draws are
/// made sequentially up front, so the estimate is bit-identical to the
/// historical sequential loop for any thread count.
///
/// # Errors
///
/// Propagates construction errors (invalid fault site, tiny memory).
pub fn monte_carlo_bom(
    n: usize,
    fault: &FaultKind,
    trials: u32,
    seed: u64,
) -> Result<f64, PrtError> {
    let field = Field::new(1, 0b11)?;
    let geom = prt_ram::Geometry::bom(n);
    // Surface the per-trial construction errors of the historical loop
    // once, up front: fault-site validation and the memory-size check.
    {
        let mut probe = Ram::new(geom);
        probe.inject(fault.clone())?;
        PiTest::new(field.clone(), &[1, 1, 1], &[0, 1])?.run(&mut probe)?;
    }
    let mut rng = SplitMix64::new(seed);
    let inits: Vec<[u64; 2]> =
        (0..trials).map(|_| [rng.next_u64() & 1, rng.next_u64() & 1]).collect();
    // The k = 2 automaton over GF(2) has exactly four TDB states: compile
    // all four π-programs up front, then every trial is one allocation-free
    // interpreter pass (verdict-identical to running `PiTest::run` per
    // trial — property-tested).
    let programs: Vec<prt_ram::TestProgram> = (0..4u64)
        .map(|i| PiTest::new(field.clone(), &[1, 1, 1], &[(i >> 1) & 1, i & 1])?.compile(geom))
        .collect::<Result<_, _>>()?;
    let verdicts =
        prt_sim::run_trials(geom, 1, trials as usize, prt_sim::Parallelism::Auto, |t, ram| {
            ram.inject(fault.clone()).expect("validated above");
            let [s0, s1] = inits[t];
            programs[((s0 << 1) | s1) as usize].detect(ram)
        });
    let detected = verdicts.into_iter().filter(|&d| d).count() as u32;
    Ok(f64::from(detected) / f64::from(trials))
}

/// Monte-Carlo detection probability averaged over every instance of a
/// fault class (as enumerated by `faults`), with `trials` TDB draws per
/// instance.
///
/// # Errors
///
/// Propagates [`monte_carlo_bom`] errors.
pub fn monte_carlo_class(
    n: usize,
    faults: &[FaultKind],
    trials: u32,
    seed: u64,
) -> Result<f64, PrtError> {
    let mut acc = 0.0;
    let mut rng = SplitMix64::new(seed);
    for f in faults {
        acc += monte_carlo_bom(n, f, trials, rng.next_u64())?;
    }
    Ok(acc / faults.len() as f64)
}

/// Aliasing probability of the `Fin` signature itself: the chance that a
/// *random* final memory disturbance maps `Fin` exactly onto `Fin*`,
/// `q^{−k}` — the PRT analogue of MISR aliasing.
pub fn signature_aliasing(field: &Field, k: u32) -> f64 {
    (1.0 / field.size() as f64).powi(k as i32)
}

/// Verifies that an observed memory sequence has the linear complexity of
/// the intended automaton — the Berlekamp–Massey cross-check used by the
/// test suite (a fault-free π-iteration must look exactly like a `k`-stage
/// LFSR, no simpler).
pub fn verify_linear_complexity<M: MemoryDevice>(
    mem: &mut M,
    pi: &PiTest,
) -> Result<bool, PrtError> {
    let n = mem.geometry().cells();
    let order = pi.trajectory().order(n);
    let words: Vec<u64> = order.iter().map(|&c| mem.read(c)).collect();
    let lc = prt_lfsr::linear_complexity_words(pi.field(), &words);
    Ok(lc.complexity <= pi.stages())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::Geometry;

    #[test]
    fn escape_math() {
        assert!((escape_probability(0.5, 3) - 0.125).abs() < 1e-12);
        assert_eq!(iterations_for_escape(0.5, 0.01), 7);
        assert_eq!(iterations_for_escape(1.0, 0.01), 1);
        assert_eq!(iterations_for_escape(0.0, 0.5), u32::MAX);
    }

    #[test]
    fn saf_monte_carlo_matches_half() {
        let f = FaultKind::StuckAt { cell: 5, bit: 0, value: 0 };
        let p = monte_carlo_bom(12, &f, 400, 42).unwrap();
        assert!((p - 0.5).abs() < 0.08, "p = {p}");
    }

    #[test]
    fn irf_always_detected() {
        let f = FaultKind::IncorrectRead { cell: 4, bit: 0 };
        let p = monte_carlo_bom(12, &f, 100, 7).unwrap();
        assert!(p > 0.95, "p = {p}");
    }

    #[test]
    fn tf_class_average_near_quarter() {
        let faults: Vec<FaultKind> = (2..10)
            .flat_map(|c| {
                [true, false].into_iter().map(move |rising| FaultKind::Transition {
                    cell: c,
                    bit: 0,
                    rising,
                })
            })
            .collect();
        let p = monte_carlo_class(12, &faults, 120, 3).unwrap();
        assert!((p - 0.25).abs() < 0.08, "p = {p}");
    }

    #[test]
    fn cfin_is_rare_without_preread() {
        // The structural blind spot: distant CFin detection probability is
        // O(1/n), far below the per-cell classes.
        let n = 16;
        let f = FaultKind::CouplingInversion {
            agg_cell: 12,
            agg_bit: 0,
            victim_cell: 3,
            victim_bit: 0,
            trigger: prt_ram::CouplingTrigger::Rise,
        };
        let p = monte_carlo_bom(n, &f, 300, 11).unwrap();
        assert!(p < 0.2, "distant CFin should rarely be caught, p = {p}");
    }

    #[test]
    fn closed_forms_cover_expected_classes() {
        let forms = bom_closed_forms();
        for class in
            ["SAF", "TF", "CFin adj", "CFid dist", "CFst", "SOF", "IRF", "RDF", "DRDF", "WDF"]
        {
            assert!(forms.iter().any(|m| m.class == class), "missing {class}");
        }
        for m in &forms {
            assert!((0.0..=1.0).contains(&m.p_detect), "{} out of range", m.class);
            assert!(!m.rationale.is_empty());
        }
    }

    #[test]
    fn signature_aliasing_is_q_pow_minus_k() {
        let f = Field::new(4, 0b1_0011).unwrap();
        assert!((signature_aliasing(&f, 2) - 1.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn fault_free_run_has_low_linear_complexity() {
        let pi = PiTest::figure_1b().unwrap();
        let mut ram = Ram::new(Geometry::wom(32, 4).unwrap());
        pi.run(&mut ram).unwrap();
        assert!(verify_linear_complexity(&mut ram, &pi).unwrap());
    }
}
