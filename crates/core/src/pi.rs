//! The π-test iteration — equation (1) of the paper.
//!
//! ```text
//! π-iteration = { c(w_init); ⇑_i ( r_i, r_{i+1}, w_{i+2} = r_i ⊕ r_{i+1} ) }
//! ```
//!
//! generalised to `k` stages and arbitrary feedback coefficients over
//! GF(2^m): after seeding the first `k` trajectory positions, every
//! sub-iteration reads the `k` most recent cells and writes their
//! GF-combination into the next one, so the cell contents reproduce the
//! output sequence of the reference [`WordLfsr`]. The run ends by reading
//! the last `k` cells (`Fin`) and comparing them with the LFSR prediction
//! `Fin*`.
//!
//! Three schedules are provided, matching §3–§4 of the paper:
//!
//! | schedule | ports | cycles (k = 2) |
//! |---|---|---|
//! | [`PiTest::run`] | 1 | `3n − 2` — the paper's `O(3n)` |
//! | [`PiTest::run_dual_port`] | 2 | `2n − 2` — the paper's `2n` (Figure 2) |
//! | [`PiTest::run_quad_port`] | 4 | `≈ n` — the §4 multi-LFSR scheme |

use crate::{PrtError, Trajectory};
use prt_gf::Field;
use prt_lfsr::WordLfsr;
use prt_ram::{Geometry, MemoryDevice, PortOp, ProgramBuilder, Ram, SlotOp, TestProgram};

/// One configured π-test iteration.
///
/// # Example
///
/// The paper's Figure 1b automaton on a fault-free word-oriented memory —
/// with `n` a multiple of the LFSR period the pseudo-ring closes
/// (`Fin = Init`):
///
/// ```
/// use prt_core::PiTest;
/// use prt_ram::{Geometry, Ram};
///
/// let pi = PiTest::figure_1b()?;
/// let period = pi.period()? as usize;
/// let mut ram = Ram::new(Geometry::wom(period + 2, 4)?);
/// let outcome = pi.run(&mut ram)?;
/// assert!(!outcome.detected());
/// assert_eq!(outcome.fin(), pi.init()); // ring closure
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PiTest {
    lfsr: WordLfsr,
    trajectory: Trajectory,
}

/// Outcome of one π-test iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PiResult {
    fin: Vec<u64>,
    fin_star: Vec<u64>,
    ops: u64,
    cycles: u64,
    stale_errors: u64,
}

impl PiResult {
    pub(crate) fn from_parts(fin: Vec<u64>, fin_star: Vec<u64>, ops: u64, cycles: u64) -> PiResult {
        PiResult { fin, fin_star, ops, cycles, stale_errors: 0 }
    }

    pub(crate) fn from_execution(
        fin: Vec<u64>,
        fin_star: Vec<u64>,
        exec: &prt_ram::Execution,
    ) -> PiResult {
        PiResult {
            fin,
            fin_star,
            ops: exec.ops,
            cycles: exec.cycles,
            stale_errors: exec.stale_errors,
        }
    }

    /// The observed final state (last `k` trajectory cells).
    pub fn fin(&self) -> &[u64] {
        &self.fin
    }

    /// The predicted final state.
    pub fn fin_star(&self) -> &[u64] {
        &self.fin_star
    }

    /// `true` when the memory is flagged faulty: `Fin ≠ Fin*`, or a
    /// pre-read observed a corrupted stale value (pre-read mode only).
    pub fn detected(&self) -> bool {
        self.fin != self.fin_star || self.stale_errors > 0
    }

    /// Read + write operations the iteration performed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Device cycles the iteration consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Pre-read mismatches observed (always 0 in plain mode).
    pub fn stale_errors(&self) -> u64 {
        self.stale_errors
    }
}

impl PiTest {
    /// Creates a π-test over `field` with feedback polynomial coefficients
    /// `[g0, …, gk]` and initial state `[s0, …, s_{k−1}]` (the TDB seed).
    ///
    /// # Errors
    ///
    /// Propagates [`prt_lfsr::LfsrError`] validation failures (degenerate
    /// feedback, non-invertible `g0`, out-of-field values…).
    pub fn new(field: Field, feedback: &[u64], init: &[u64]) -> Result<PiTest, PrtError> {
        let lfsr = WordLfsr::from_feedback(field, feedback, init)?;
        Ok(PiTest { lfsr, trajectory: Trajectory::Up })
    }

    /// The bit-oriented automaton of Figure 1a: GF(2), `g(x) = 1 + x + x²`,
    /// `Init = (0, 1)` — period-3 sequence `0 1 1 0 1 1 …`.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is fallible because field
    /// construction is.
    pub fn figure_1a() -> Result<PiTest, PrtError> {
        let field = Field::new(1, 0b11)?;
        PiTest::new(field, &[1, 1, 1], &[0, 1])
    }

    /// The word-oriented automaton of Figure 1b: GF(2⁴) with
    /// `p(z) = 1 + z + z⁴`, `g(x) = 1 + 2x + 2x²`, `Init = (0, 1)` —
    /// sequence `0, 1, 2, 6, 8, …`.
    ///
    /// # Errors
    ///
    /// Never fails in practice (see [`PiTest::figure_1a`]).
    pub fn figure_1b() -> Result<PiTest, PrtError> {
        let field = Field::new(4, 0b1_0011)?;
        PiTest::new(field, &[1, 2, 2], &[0, 1])
    }

    /// Sets the affine term (complemented-TDB support).
    ///
    /// # Errors
    ///
    /// [`PrtError::Lfsr`] if `e` is not a field element.
    pub fn with_affine(mut self, e: u64) -> Result<PiTest, PrtError> {
        self.lfsr = self.lfsr.with_affine(e)?;
        Ok(self)
    }

    /// Sets the trajectory (default ascending).
    pub fn with_trajectory(mut self, trajectory: Trajectory) -> PiTest {
        self.trajectory = trajectory;
        self
    }

    /// The coefficient field.
    pub fn field(&self) -> &Field {
        self.lfsr.field()
    }

    /// Number of automaton stages `k`.
    pub fn stages(&self) -> usize {
        self.lfsr.stages()
    }

    /// The TDB seed `Init`.
    pub fn init(&self) -> &[u64] {
        self.lfsr.state()
    }

    /// The affine term.
    pub fn affine(&self) -> u64 {
        self.lfsr.affine()
    }

    /// The configured trajectory.
    pub fn trajectory(&self) -> Trajectory {
        self.trajectory
    }

    /// The reference LFSR (fresh copy seeded with `Init`).
    pub fn reference_lfsr(&self) -> WordLfsr {
        self.lfsr.clone()
    }

    /// First `n` elements of the fault-free cell-value sequence.
    pub fn expected_sequence(&self, n: usize) -> Vec<u64> {
        self.lfsr.clone().sequence(n)
    }

    /// Period of the virtual automaton from `Init` (pseudo-ring length).
    ///
    /// # Errors
    ///
    /// [`PrtError::Lfsr`] if the period exceeds the search budget (2²⁴
    /// steps for non-irreducible feedback).
    pub fn period(&self) -> Result<u128, PrtError> {
        Ok(self.lfsr.period(1 << 24)?)
    }

    /// The predicted final state `Fin*` for an `n`-cell memory.
    pub fn fin_star(&self, n: usize) -> Vec<u64> {
        let k = self.stages();
        self.lfsr.state_after((n - k) as u128)
    }

    /// `true` when an `n`-cell run closes the pseudo-ring (`Fin* = Init`).
    ///
    /// # Errors
    ///
    /// Propagates [`PiTest::period`] search failures.
    pub fn ring_closes(&self, n: usize) -> Result<bool, PrtError> {
        let k = self.stages();
        let p = self.period()?;
        Ok(n >= k && ((n - k) as u128).is_multiple_of(p))
    }

    fn validate_geometry(&self, cells: usize, width: u32) -> Result<(), PrtError> {
        let m = self.field().degree();
        if width != m {
            return Err(PrtError::WidthMismatch { field_bits: m, memory_bits: width });
        }
        let k = self.stages();
        if cells < k + 1 {
            return Err(PrtError::MemoryTooSmall { cells, needed: k + 1 });
        }
        Ok(())
    }

    /// Runs one π-iteration on a single-port memory: `k` seed writes,
    /// `(n−k)` sub-iterations of `k` reads + 1 write, then `k` signature
    /// reads — `(k+1)·n − k² + k` operations, the paper's `O(3n)` for
    /// `k = 2`.
    ///
    /// # Errors
    ///
    /// [`PrtError::WidthMismatch`] / [`PrtError::MemoryTooSmall`] when the
    /// memory does not fit the automaton.
    pub fn run<M: MemoryDevice>(&self, mem: &mut M) -> Result<PiResult, PrtError> {
        let geom = mem.geometry();
        self.validate_geometry(geom.cells(), geom.width())?;
        let n = geom.cells();
        let k = self.stages();
        let order = self.trajectory.order(n);
        let before = mem.stats();

        for (j, &cell) in order.iter().take(k).enumerate() {
            mem.write(cell, self.init()[j]);
        }
        let field = self.field().clone();
        let coeffs: Vec<u64> = self.normalised_coeffs();
        for t in 0..n - k {
            // Read the k most recent positions, oldest first.
            let mut acc = self.affine();
            for (i, &c) in coeffs.iter().enumerate() {
                // c_i multiplies s_{t+k−i} — trajectory position t+k−i.
                let v = mem.read(order[t + k - 1 - i]);
                acc = field.add(acc, field.mul(c, v));
            }
            mem.write(order[t + k], acc);
        }
        let fin: Vec<u64> = order[n - k..].iter().map(|&c| mem.read(c)).collect();
        let after = mem.stats();
        Ok(PiResult {
            fin,
            fin_star: self.fin_star(n),
            ops: after.ops() - before.ops(),
            cycles: after.cycles - before.cycles,
            stale_errors: 0,
        })
    }

    /// Runs one π-iteration in *pre-read* mode: before every wave write the
    /// target cell is read first and compared against `expected_stale`
    /// (indexed **by address**), the contents the previous iteration should
    /// have left behind. Mismatches are counted in
    /// [`PiResult::stale_errors`].
    ///
    /// Pre-reading closes the structural blind spot of the plain π-test:
    /// inversion/idempotent coupling corruption that lands on a cell *after*
    /// its two operand reads is otherwise silently overwritten by the next
    /// iteration. The cost is one extra read per sub-iteration —
    /// `(k+2)·n − k² + 2k` operations (`4n − 2` for `k = 2`) instead of the
    /// paper's `3n − 2`. Experiment E3 quantifies what the extra read buys.
    ///
    /// With `expected_stale = None` (unknown previous contents, e.g. the
    /// first iteration after power-up) the run degrades to the plain
    /// schedule.
    ///
    /// # Errors
    ///
    /// As for [`PiTest::run`].
    pub fn run_with_preread<M: MemoryDevice>(
        &self,
        mem: &mut M,
        expected_stale: Option<&[u64]>,
    ) -> Result<PiResult, PrtError> {
        let Some(stale) = expected_stale else {
            return self.run(mem);
        };
        let geom = mem.geometry();
        self.validate_geometry(geom.cells(), geom.width())?;
        let n = geom.cells();
        let k = self.stages();
        let order = self.trajectory.order(n);
        let before = mem.stats();
        let mut stale_errors = 0u64;

        for (j, &cell) in order.iter().take(k).enumerate() {
            if mem.read(cell) != stale[cell] {
                stale_errors += 1;
            }
            mem.write(cell, self.init()[j]);
        }
        let field = self.field().clone();
        let coeffs = self.normalised_coeffs();
        for t in 0..n - k {
            let mut acc = self.affine();
            for (i, &c) in coeffs.iter().enumerate() {
                let v = mem.read(order[t + k - 1 - i]);
                acc = field.add(acc, field.mul(c, v));
            }
            let target = order[t + k];
            if mem.read(target) != stale[target] {
                stale_errors += 1;
            }
            mem.write(target, acc);
        }
        let fin: Vec<u64> = order[n - k..].iter().map(|&c| mem.read(c)).collect();
        let after = mem.stats();
        Ok(PiResult {
            fin,
            fin_star: self.fin_star(n),
            ops: after.ops() - before.ops(),
            cycles: after.cycles - before.cycles,
            stale_errors,
        })
    }

    /// Compiles one plain single-port π-iteration for `geom` into a
    /// [`TestProgram`]: the trajectory is materialised, the normalised
    /// feedback constants become precompiled GF(2)-linear maps driving the
    /// interpreter's accumulator, and the `Fin` reads carry their `Fin*`
    /// expectations inline. The program performs the **exact** access
    /// sequence of [`PiTest::run`] — including the fault-propagating
    /// data-dependent wave writes — and is verdict-identical to it
    /// (property-tested). Compile once per (test, geometry); run per
    /// trial.
    ///
    /// # Errors
    ///
    /// As [`PiTest::run`].
    pub fn compile(&self, geom: Geometry) -> Result<TestProgram, PrtError> {
        self.compile_with_preread(geom, None)
    }

    /// Compiles the pre-read variant (see [`PiTest::run_with_preread`]):
    /// with `expected_stale` given (indexed by address), every wave write
    /// is preceded by a stale-channel check of its target. `None` degrades
    /// to the plain program.
    ///
    /// # Errors
    ///
    /// As [`PiTest::run`].
    pub fn compile_with_preread(
        &self,
        geom: Geometry,
        expected_stale: Option<&[u64]>,
    ) -> Result<TestProgram, PrtError> {
        let mut b = ProgramBuilder::new(geom).with_name("π-iteration");
        self.compile_into(&mut b, geom, expected_stale)?;
        Ok(b.build())
    }

    /// Appends this iteration's ops to `b` (the scheme compiler fuses all
    /// iterations into one flat program).
    pub(crate) fn compile_into(
        &self,
        b: &mut ProgramBuilder,
        geom: Geometry,
        expected_stale: Option<&[u64]>,
    ) -> Result<(), PrtError> {
        self.validate_geometry(geom.cells(), geom.width())?;
        let n = geom.cells();
        let k = self.stages();
        let order = self.trajectory.order(n);
        let maps = self.coefficient_maps(b, geom);
        for (j, &cell) in order.iter().take(k).enumerate() {
            if let Some(stale) = expected_stale {
                b.read_stale(cell, stale[cell]);
            }
            b.write(cell, self.init()[j]);
        }
        for t in 0..n - k {
            b.acc_set(self.affine());
            for (i, &m) in maps.iter().enumerate() {
                // c_i multiplies s_{t+k−i} — trajectory position t+k−i.
                b.read_acc(order[t + k - 1 - i], m);
            }
            let target = order[t + k];
            if let Some(stale) = expected_stale {
                b.read_stale(target, stale[target]);
            }
            b.write_acc(target);
        }
        let fin_star = self.fin_star(n);
        for (j, &cell) in order[n - k..].iter().enumerate() {
            b.read_capture(cell, fin_star[j]);
        }
        Ok(())
    }

    /// Compiles the dual-port schedule (Figure 2) into a two-port
    /// [`TestProgram`]: operand reads pair up two per cycle. Without
    /// `expected_stale` this is the plain `2n − 2`-cycle schedule of
    /// [`PiTest::run_dual_port`]. With it, the program additionally
    /// carries the **pre-read transformation**: each wave write's stale
    /// check is *fused into the write cycle* (the device reads before it
    /// writes within one cycle), so pre-read coverage costs only
    /// `⌊k/2⌋` extra seed cycles (the seeds unpair to fuse their own
    /// stale checks) and zero extra wave cycles — `2n − 1` cycles for
    /// `k = 2` instead of the single-port pre-read's `4n − 2` operations.
    ///
    /// # Errors
    ///
    /// As [`PiTest::run`] (the port check happens when the program meets a
    /// device).
    pub fn compile_dual_port(
        &self,
        geom: Geometry,
        expected_stale: Option<&[u64]>,
    ) -> Result<TestProgram, PrtError> {
        let mut b = ProgramBuilder::new(geom).with_name("π dual-port");
        self.compile_dual_into(&mut b, geom, expected_stale)?;
        Ok(b.build())
    }

    pub(crate) fn compile_dual_into(
        &self,
        b: &mut ProgramBuilder,
        geom: Geometry,
        expected_stale: Option<&[u64]>,
    ) -> Result<(), PrtError> {
        self.validate_geometry(geom.cells(), geom.width())?;
        let n = geom.cells();
        let k = self.stages();
        let order = self.trajectory.order(n);
        let maps = self.coefficient_maps(b, geom);
        // Seed: plain mode packs the k init writes two per cycle; pre-read
        // mode fuses each seed's stale check with its write instead (one
        // seed per cycle — the stale read sees the pre-write contents).
        match expected_stale {
            None => b.cycle2_pairs(
                (0..k).map(|j| SlotOp::Write { addr: order[j] as u32, data: self.init()[j] }),
            ),
            Some(stale) => {
                for j in 0..k {
                    b.cycle2(
                        SlotOp::ReadStale { addr: order[j] as u32, expect: stale[order[j]] },
                        SlotOp::Write { addr: order[j] as u32, data: self.init()[j] },
                    );
                }
            }
        }
        for t in 0..n - k {
            b.acc_set(self.affine());
            // Read phase: the k operand reads, two per cycle — the value at
            // trajectory position t+j pairs with coefficient c_{k−j}.
            b.cycle2_pairs((0..k).map(|j| SlotOp::ReadAcc {
                addr: order[t + j] as u32,
                map: maps[k - 1 - j],
                lane: 0,
            }));
            // Write phase: plain mode writes alone; pre-read mode fuses the
            // target's stale check into the same cycle for free.
            let target = order[t + k];
            match expected_stale {
                None => b.cycle2(SlotOp::WriteAcc { addr: target as u32, lane: 0 }, SlotOp::Idle),
                Some(stale) => b.cycle2(
                    SlotOp::ReadStale { addr: target as u32, expect: stale[target] },
                    SlotOp::WriteAcc { addr: target as u32, lane: 0 },
                ),
            }
        }
        // Signature readback, two per cycle.
        let fin_star = self.fin_star(n);
        b.cycle2_pairs(
            (0..k).map(|j| SlotOp::ReadCapture {
                addr: order[n - k + j] as u32,
                expect: fin_star[j],
            }),
        );
        Ok(())
    }

    /// Compiles the quad-port multi-LFSR schedule (§4) into a four-port
    /// [`TestProgram`]: the trajectory splits into two half-array automata
    /// running concurrently, each on its own **accumulator lane** and port
    /// pair, so a whole sub-iteration (2 operand reads per half, then both
    /// wave writes) fits in `⌈k/2⌉ + 1` cycles — ≈ `n` cycles per
    /// iteration for `k = 2`. The program performs the exact access
    /// sequence of [`PiTest::run_quad_port`] (slot position = port index,
    /// idle slots included) and is verdict-, op-, cycle- and
    /// image-identical to it (asserted in tests); the interpreted runner
    /// stays as the differential oracle.
    ///
    /// # Errors
    ///
    /// As [`PiTest::run_quad_port`] (each half must host the automaton).
    pub fn compile_quad_port(&self, geom: Geometry) -> Result<TestProgram, PrtError> {
        let n = geom.cells();
        let k = self.stages();
        let half = n / 2;
        self.validate_geometry(half, geom.width())?;
        let mut b = ProgramBuilder::new(geom).with_name("π quad-port");
        let order = self.trajectory.order(n);
        let (lo, hi) = order.split_at(half);
        let maps = self.coefficient_maps(&mut b, geom);
        // Seed both halves: k cycles of 2 writes each (ports 0, 2).
        for j in 0..k {
            b.cyclen(&[
                SlotOp::Write { addr: lo[j] as u32, data: self.init()[j] },
                SlotOp::Idle,
                SlotOp::Write { addr: hi[j] as u32, data: self.init()[j] },
                SlotOp::Idle,
            ]);
        }
        // Interleave both halves' sub-iterations, one lane per half.
        let steps = (lo.len() - k).max(hi.len() - k);
        for t in 0..steps {
            for (h, part) in [lo, hi].iter().enumerate() {
                if t + k < part.len() {
                    b.acc_set_in(h as u8, self.affine());
                }
            }
            // Read phase(s): k reads per half, two ports per half; the
            // value at trajectory position t+j pairs with c_{k−j}.
            for pair in (0..k).step_by(2) {
                let mut slots = [SlotOp::Idle; 4];
                for (h, part) in [lo, hi].iter().enumerate() {
                    if t + k < part.len() {
                        slots[2 * h] = SlotOp::ReadAcc {
                            addr: part[t + pair] as u32,
                            map: maps[k - 1 - pair],
                            lane: h as u8,
                        };
                        if pair + 1 < k {
                            slots[2 * h + 1] = SlotOp::ReadAcc {
                                addr: part[t + pair + 1] as u32,
                                map: maps[k - 2 - pair],
                                lane: h as u8,
                            };
                        }
                    }
                }
                b.cyclen(&slots);
            }
            // Write both halves' wave cells in one cycle.
            let mut slots = [SlotOp::Idle; 4];
            for (h, part) in [lo, hi].iter().enumerate() {
                if t + k < part.len() {
                    slots[2 * h] = SlotOp::WriteAcc { addr: part[t + k] as u32, lane: h as u8 };
                }
            }
            b.cyclen(&slots);
        }
        // Signature readback: k cycles of two captures each; Fin is the
        // concatenation of the two halves' final states.
        let fin_lo = self.half_fin_star(lo.len());
        let fin_hi = self.half_fin_star(hi.len());
        for j in 0..k {
            b.cyclen(&[
                SlotOp::ReadCapture { addr: lo[lo.len() - k + j] as u32, expect: fin_lo[j] },
                SlotOp::Idle,
                SlotOp::ReadCapture { addr: hi[hi.len() - k + j] as u32, expect: fin_hi[j] },
                SlotOp::Idle,
            ]);
        }
        Ok(b.build())
    }

    /// Registers one GF(2)-linear map per normalised feedback constant
    /// (mul-by-`c_i` as per-bit XOR masks) and returns their table
    /// indices, in coefficient order.
    fn coefficient_maps(&self, b: &mut ProgramBuilder, geom: Geometry) -> Vec<u16> {
        let field = self.field();
        self.normalised_coeffs()
            .iter()
            .map(|&c| {
                let masks = (0..geom.width()).map(|j| field.mul(c, 1u64 << j)).collect();
                b.add_map(masks)
            })
            .collect()
    }

    /// Runs one π-iteration on a dual-port memory (the paper's Figure 2
    /// scheme): both operand reads are issued *simultaneously* on the two
    /// ports, halving the cycle count to `2n − 2` for `k = 2`. Executes
    /// the compiled dual-port program ([`PiTest::compile_dual_port`]).
    ///
    /// # Errors
    ///
    /// Geometry errors as in [`PiTest::run`], plus
    /// [`PrtError::NotEnoughPorts`] if the device has fewer than two ports.
    pub fn run_dual_port(&self, ram: &mut Ram) -> Result<PiResult, PrtError> {
        let geom = ram.geometry();
        let program = self.compile_dual_port(geom, None)?;
        if ram.ports() < 2 {
            return Err(PrtError::NotEnoughPorts { have: ram.ports(), need: 2 });
        }
        let mut fin = Vec::with_capacity(program.captures());
        let exec = program.execute(ram, false, Some(&mut fin))?;
        Ok(PiResult::from_execution(fin, self.fin_star(geom.cells()), &exec))
    }

    /// Runs two independent half-array automata concurrently on a four-port
    /// memory (§4's "multi-LFSR scheme" for QuadPort devices), reducing the
    /// iteration to ≈ `n` cycles. Both halves use this test's seed; `Fin`
    /// is the concatenation of the two halves' final states.
    ///
    /// This is the interpreted **differential oracle** for
    /// [`PiTest::compile_quad_port`] — campaigns run the compiled program;
    /// this runner re-derives the schedule cycle by cycle and is asserted
    /// verdict-, op-, cycle- and image-identical to it.
    ///
    /// # Errors
    ///
    /// Geometry errors as in [`PiTest::run`] (each half must fit the
    /// automaton), plus [`PrtError::NotEnoughPorts`] for fewer than 4 ports.
    pub fn run_quad_port(&self, ram: &mut Ram) -> Result<PiResult, PrtError> {
        let geom = ram.geometry();
        let n = geom.cells();
        let k = self.stages();
        let half = n / 2;
        self.validate_geometry(half, geom.width())?;
        if ram.ports() < 4 {
            return Err(PrtError::NotEnoughPorts { have: ram.ports(), need: 4 });
        }
        let order = self.trajectory.order(n);
        let (lo, hi) = order.split_at(half);
        let before = ram.stats();

        let field = self.field().clone();
        let coeffs = self.normalised_coeffs();
        // Seed both halves: k cycles of 2 writes each (ports 0, 2).
        for j in 0..k {
            ram.cycle(&[
                PortOp::Write { addr: lo[j], data: self.init()[j] },
                PortOp::Idle,
                PortOp::Write { addr: hi[j], data: self.init()[j] },
                PortOp::Idle,
            ])?;
        }
        // Interleave both halves' dual-port sub-iterations.
        let steps = (lo.len() - k).max(hi.len() - k);
        let mut acc = [0u64; 2];
        for t in 0..steps {
            // Read phase(s): k reads per half, two ports per half.
            let mut reads: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
            for pair in (0..k).step_by(2) {
                let mut ops = [PortOp::Idle; 4];
                for (h, part) in [lo, hi].iter().enumerate() {
                    if t + k < part.len() {
                        ops[2 * h] = PortOp::Read { addr: part[t + pair] };
                        if pair + 1 < k {
                            ops[2 * h + 1] = PortOp::Read { addr: part[t + pair + 1] };
                        }
                    }
                }
                let res = ram.cycle(&ops)?;
                for h in 0..2 {
                    if let Some(v) = res[2 * h] {
                        reads[h].push(v);
                    }
                    if let Some(v) = res[2 * h + 1] {
                        reads[h].push(v);
                    }
                }
            }
            // Combine and write both halves in one cycle.
            let mut ops = [PortOp::Idle; 4];
            for (h, part) in [lo, hi].iter().enumerate() {
                if t + k < part.len() {
                    acc[h] = self.affine();
                    // reads[h][j] holds s_{t+j}; coefficient c_i multiplies
                    // s_{t+k−i}.
                    for (i, &c) in coeffs.iter().enumerate() {
                        let v = reads[h][k - 1 - i];
                        acc[h] = field.add(acc[h], field.mul(c, v));
                    }
                    ops[2 * h] = PortOp::Write { addr: part[t + k], data: acc[h] };
                }
            }
            ram.cycle(&ops)?;
        }
        // Signature readback: k cycles of two reads each.
        let mut fin = vec![0u64; 2 * k];
        for j in 0..k {
            let res = ram.cycle(&[
                PortOp::Read { addr: lo[lo.len() - k + j] },
                PortOp::Idle,
                PortOp::Read { addr: hi[hi.len() - k + j] },
                PortOp::Idle,
            ])?;
            fin[j] = res[0].expect("read issued");
            fin[k + j] = res[2].expect("read issued");
        }
        let mut fin_star = self.half_fin_star(lo.len());
        fin_star.extend(self.half_fin_star(hi.len()));
        let after = ram.stats();
        Ok(PiResult {
            fin,
            fin_star,
            ops: after.ops() - before.ops(),
            cycles: after.cycles - before.cycles,
            stale_errors: 0,
        })
    }

    fn half_fin_star(&self, len: usize) -> Vec<u64> {
        let k = self.stages();
        self.lfsr.state_after((len - k) as u128)
    }

    /// Normalised feedback constants `c_i = g0⁻¹·g_i`, `i = 1..=k`.
    fn normalised_coeffs(&self) -> Vec<u64> {
        let g = self.lfsr.feedback();
        let field = self.field();
        let g0_inv = field.inv(g[0]).expect("validated at construction");
        g[1..].iter().map(|&gi| field.mul(g0_inv, gi)).collect()
    }
}

/// A single π-iteration drives fault-simulation campaigns directly
/// (single-port schedule); a run error counts as an escape.
impl prt_sim::FaultRunner for &PiTest {
    fn detect(&self, ram: &mut Ram, _background: u64) -> bool {
        self.run(ram).map(|res| res.detected()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::{FaultKind, Geometry};

    #[test]
    fn figure_1a_memory_contents() {
        // After a π-iteration on 12 cells the memory holds 0 1 1 0 1 1 …
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(12));
        let res = pi.run(&mut ram).unwrap();
        let expect = pi.expected_sequence(12);
        for (c, &e) in expect.iter().enumerate() {
            assert_eq!(ram.peek(c), e, "cell {c}");
        }
        assert!(!res.detected());
        // n − k = 10 ≡ 1 (mod 3): ring does not close at 12 cells…
        assert!(!pi.ring_closes(12).unwrap());
        // …but closes when n − k is a multiple of the period 3.
        assert!(pi.ring_closes(11).unwrap());
    }

    #[test]
    fn figure_1a_op_count_is_3n_minus_2() {
        let pi = PiTest::figure_1a().unwrap();
        for n in [8usize, 16, 33, 64] {
            let mut ram = Ram::new(Geometry::bom(n));
            let res = pi.run(&mut ram).unwrap();
            assert_eq!(res.ops(), 3 * n as u64 - 2, "n={n}");
            assert_eq!(res.cycles(), 3 * n as u64 - 2, "single port: 1 op = 1 cycle");
        }
    }

    #[test]
    fn figure_1b_sequence_and_ring_closure() {
        let pi = PiTest::figure_1b().unwrap();
        let seq = pi.expected_sequence(6);
        assert_eq!(&seq[..4], &[0, 1, 2, 6]);
        let p = pi.period().unwrap();
        assert_eq!(255 % p, 0);
        let n = p as usize + 2;
        let mut ram = Ram::new(Geometry::wom(n, 4).unwrap());
        let res = pi.run(&mut ram).unwrap();
        assert!(!res.detected());
        assert_eq!(res.fin(), pi.init(), "pseudo-ring closure");
    }

    #[test]
    fn any_single_stuck_bit_with_wrong_polarity_is_detected() {
        // A SAF whose stuck value differs from the fault-free content at
        // read time always reaches Fin (invertible propagation).
        let pi = PiTest::figure_1a().unwrap();
        let expect = pi.expected_sequence(9);
        for (cell, &e) in expect.iter().enumerate().take(9) {
            let wrong = e ^ 1;
            let mut ram = Ram::new(Geometry::bom(9));
            ram.inject(FaultKind::StuckAt { cell, bit: 0, value: wrong as u8 }).unwrap();
            let res = pi.run(&mut ram).unwrap();
            assert!(res.detected(), "SA{wrong}@{cell} escaped");
        }
    }

    #[test]
    fn matched_polarity_saf_escapes_single_iteration() {
        // The complementary case: a SAF agreeing with the TDB value escapes
        // THIS iteration — the reason the paper needs 3 iterations.
        let pi = PiTest::figure_1a().unwrap();
        let expect = pi.expected_sequence(9);
        let cell = 3; // expect[3] = 0
        let mut ram = Ram::new(Geometry::bom(9));
        ram.inject(FaultKind::StuckAt { cell, bit: 0, value: expect[cell] as u8 }).unwrap();
        let res = pi.run(&mut ram).unwrap();
        assert!(!res.detected());
    }

    #[test]
    fn wom_detects_single_bit_corruption_anywhere() {
        let pi = PiTest::figure_1b().unwrap();
        for cell in 2..10usize {
            for bit in 0..4u32 {
                let mut ram = Ram::new(Geometry::wom(10, 4).unwrap());
                // IRF returns complement on every read of that bit.
                ram.inject(FaultKind::IncorrectRead { cell, bit }).unwrap();
                let res = pi.run(&mut ram).unwrap();
                assert!(res.detected(), "IRF@{cell}.{bit} escaped");
            }
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let pi = PiTest::figure_1b().unwrap();
        let mut ram = Ram::new(Geometry::bom(16));
        assert!(matches!(
            pi.run(&mut ram),
            Err(PrtError::WidthMismatch { field_bits: 4, memory_bits: 1 })
        ));
    }

    #[test]
    fn too_small_memory_rejected() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(2));
        assert!(matches!(pi.run(&mut ram), Err(PrtError::MemoryTooSmall { .. })));
    }

    #[test]
    fn down_trajectory_mirrors_up() {
        let pi = PiTest::figure_1a().unwrap().with_trajectory(Trajectory::Down);
        let mut ram = Ram::new(Geometry::bom(9));
        let res = pi.run(&mut ram).unwrap();
        assert!(!res.detected());
        let expect = pi.expected_sequence(9);
        for (pos, &e) in expect.iter().enumerate() {
            assert_eq!(ram.peek(8 - pos), e, "pos {pos}");
        }
    }

    #[test]
    fn random_trajectory_is_fault_free_clean() {
        let pi = PiTest::figure_1b().unwrap().with_trajectory(Trajectory::Random(17));
        let mut ram = Ram::new(Geometry::wom(32, 4).unwrap());
        let res = pi.run(&mut ram).unwrap();
        assert!(!res.detected());
    }

    #[test]
    fn dual_port_cycles_are_2n_minus_2() {
        let pi = PiTest::figure_1a().unwrap();
        for n in [8usize, 17, 32] {
            let mut ram = Ram::with_ports(Geometry::bom(n), 2).unwrap();
            let res = pi.run_dual_port(&mut ram).unwrap();
            assert!(!res.detected());
            assert_eq!(res.cycles(), 2 * n as u64 - 2, "n={n}");
            // Same number of operations as single-port, fewer cycles.
            assert_eq!(res.ops(), 3 * n as u64 - 2);
        }
    }

    #[test]
    fn dual_port_detects_like_single_port() {
        let pi = PiTest::figure_1b().unwrap();
        let mut ram = Ram::with_ports(Geometry::wom(20, 4).unwrap(), 2).unwrap();
        ram.inject(FaultKind::StuckAt { cell: 9, bit: 2, value: 1 }).unwrap();
        let dual = pi.run_dual_port(&mut ram).unwrap();
        let mut ram2 = Ram::new(Geometry::wom(20, 4).unwrap());
        ram2.inject(FaultKind::StuckAt { cell: 9, bit: 2, value: 1 }).unwrap();
        let single = pi.run(&mut ram2).unwrap();
        assert_eq!(dual.detected(), single.detected());
        assert_eq!(dual.fin(), single.fin());
    }

    #[test]
    fn dual_port_needs_two_ports() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(8));
        assert!(matches!(
            pi.run_dual_port(&mut ram),
            Err(PrtError::NotEnoughPorts { have: 1, need: 2 })
        ));
    }

    #[test]
    fn quad_port_cycles_near_n() {
        let pi = PiTest::figure_1a().unwrap();
        for n in [16usize, 32, 64] {
            let mut ram = Ram::with_ports(Geometry::bom(n), 4).unwrap();
            let res = pi.run_quad_port(&mut ram).unwrap();
            assert!(!res.detected(), "n={n}");
            // Two halves in parallel: 2 seed + 2·(n/2 − 2) + 2 readback = n.
            assert_eq!(res.cycles(), n as u64, "n={n}");
        }
    }

    #[test]
    fn quad_port_detects_faults_in_both_halves() {
        let pi = PiTest::figure_1a().unwrap();
        for cell in [3usize, 13] {
            let mut ram = Ram::with_ports(Geometry::bom(16), 4).unwrap();
            ram.inject(FaultKind::IncorrectRead { cell, bit: 0 }).unwrap();
            let res = pi.run_quad_port(&mut ram).unwrap();
            assert!(res.detected(), "fault in cell {cell} escaped quad-port run");
        }
    }

    #[test]
    fn compiled_program_matches_interpreted_run() {
        // Same verdict, same memory image, same op/cycle counts, for both
        // figures and a sweep of single faults.
        for pi in [PiTest::figure_1a().unwrap(), PiTest::figure_1b().unwrap()] {
            let width = pi.field().degree();
            let geom = Geometry::wom(14, width).unwrap();
            let prog = pi.compile(geom).unwrap();
            for cell in 0..14 {
                let fault = FaultKind::IncorrectRead { cell, bit: 0 };
                let mut a = Ram::new(geom);
                a.inject(fault.clone()).unwrap();
                let mut b2 = Ram::new(geom);
                b2.inject(fault).unwrap();
                let interpreted = pi.run(&mut a).unwrap();
                let mut fin = Vec::new();
                let exec = prog.execute(&mut b2, false, Some(&mut fin)).unwrap();
                assert_eq!(interpreted.detected(), exec.detected(), "cell {cell}");
                assert_eq!(interpreted.fin(), fin, "cell {cell}");
                assert_eq!(interpreted.ops(), exec.ops);
                assert_eq!(interpreted.cycles(), exec.cycles);
                for c in 0..14 {
                    assert_eq!(a.peek(c), b2.peek(c), "cell image {c}");
                }
            }
        }
    }

    #[test]
    fn compiled_preread_matches_interpreted_preread() {
        let pi = PiTest::figure_1a().unwrap();
        let geom = Geometry::bom(12);
        // Stale expectations: the contents a previous plain iteration
        // would have left behind.
        let stale = pi.expected_sequence(12);
        let prog = pi.compile_with_preread(geom, Some(&stale)).unwrap();
        for cell in 2..12 {
            let fault = FaultKind::CouplingInversion {
                agg_cell: cell,
                agg_bit: 0,
                victim_cell: 1,
                victim_bit: 0,
                trigger: prt_ram::CouplingTrigger::Rise,
            };
            let mut a = Ram::new(geom);
            a.inject(fault.clone()).unwrap();
            let mut b2 = Ram::new(geom);
            b2.inject(fault).unwrap();
            let interpreted = pi.run_with_preread(&mut a, Some(&stale)).unwrap();
            let exec = prog.execute(&mut b2, false, None).unwrap();
            assert_eq!(interpreted.stale_errors(), exec.stale_errors, "agg {cell}");
            assert_eq!(interpreted.detected(), exec.detected(), "agg {cell}");
            assert_eq!(interpreted.ops(), exec.ops);
        }
    }

    #[test]
    fn compiled_dual_port_preread_fuses_stale_into_write_cycles() {
        // Pre-read on two ports costs ⌊k/2⌋ extra seed cycles and nothing
        // in the wave: 2n − 1 cycles for k = 2, vs 2n − 2 plain — while
        // the single-port pre-read needs 4n − 2 operations.
        let pi = PiTest::figure_1a().unwrap();
        for n in [9usize, 16, 31] {
            let geom = Geometry::bom(n);
            let stale = pi.expected_sequence(n);
            let prog = pi.compile_dual_port(geom, Some(&stale)).unwrap();
            let mut ram = Ram::with_ports(geom, 2).unwrap();
            // Pre-load the stale image so the fault-free run is clean.
            for (c, &v) in stale.iter().enumerate() {
                ram.poke(c, v);
            }
            let exec = prog.execute(&mut ram, false, None).unwrap();
            assert!(!exec.detected(), "n={n}");
            assert_eq!(exec.cycles, 2 * n as u64 - 1, "n={n}");
        }
    }

    #[test]
    fn compiled_quad_port_matches_interpreted_quad_port() {
        // The ROADMAP item: the §4 multi-LFSR scheme on the compiled path.
        // Same verdict, cycle count, op count and memory image as the
        // interpreted oracle, for both figures, odd/even sizes and a sweep
        // of single faults.
        for pi in [PiTest::figure_1a().unwrap(), PiTest::figure_1b().unwrap()] {
            let width = pi.field().degree();
            for n in [14usize, 17] {
                let geom = Geometry::wom(n, width).unwrap();
                let prog = pi.compile_quad_port(geom).unwrap();
                assert_eq!(prog.ports(), 4);
                for cell in 0..n {
                    let fault = FaultKind::IncorrectRead { cell, bit: 0 };
                    let mut a = Ram::with_ports(geom, 4).unwrap();
                    a.inject(fault.clone()).unwrap();
                    let mut b2 = Ram::with_ports(geom, 4).unwrap();
                    b2.inject(fault).unwrap();
                    let interpreted = pi.run_quad_port(&mut a).unwrap();
                    let mut caps = Vec::new();
                    let exec = prog.execute(&mut b2, false, Some(&mut caps)).unwrap();
                    assert_eq!(interpreted.detected(), exec.detected(), "n={n} cell {cell}");
                    assert_eq!(interpreted.ops(), exec.ops, "n={n} cell {cell}");
                    assert_eq!(interpreted.cycles(), exec.cycles, "n={n} cell {cell}");
                    // The compiled readback captures per cycle (lo[j],
                    // hi[j]); the oracle groups per half — reorder.
                    let k = pi.stages();
                    let mut fin = vec![0u64; 2 * k];
                    for j in 0..k {
                        fin[j] = caps[2 * j];
                        fin[k + j] = caps[2 * j + 1];
                    }
                    assert_eq!(interpreted.fin(), fin, "n={n} cell {cell}");
                    for c in 0..n {
                        assert_eq!(a.peek(c), b2.peek(c), "n={n} image cell {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn compiled_quad_port_campaigns() {
        // The compiled program drives the campaign engine directly on
        // pooled 4-port memories, matching the interpreted runner's
        // verdicts over the paper-claim universe.
        use prt_ram::{FaultUniverse, UniverseSpec};
        let pi = PiTest::figure_1a().unwrap();
        let u = FaultUniverse::enumerate(Geometry::bom(16), &UniverseSpec::paper_claim());
        let prog = pi.compile_quad_port(u.geometry()).unwrap();
        let compiled = prt_sim::Campaign::new(&u, &prog).with_ports(4).detections();
        let interpreted = prt_sim::Campaign::new(&u, |ram: &mut Ram, _bg: u64| {
            pi.run_quad_port(ram).map(|r| r.detected()).unwrap_or(false)
        })
        .with_ports(4)
        .detections();
        assert_eq!(compiled, interpreted);
    }

    #[test]
    fn affine_iteration_runs_clean() {
        let pi = PiTest::figure_1b().unwrap().with_affine(0x7).unwrap();
        let mut ram = Ram::new(Geometry::wom(24, 4).unwrap());
        let res = pi.run(&mut ram).unwrap();
        assert!(!res.detected());
        // Memory contents follow the affine reference sequence.
        let expect = pi.expected_sequence(24);
        for (c, &e) in expect.iter().enumerate() {
            assert_eq!(ram.peek(c), e, "cell {c}");
        }
    }

    #[test]
    fn accessors() {
        let pi = PiTest::figure_1b().unwrap();
        assert_eq!(pi.stages(), 2);
        assert_eq!(pi.init(), &[0, 1]);
        assert_eq!(pi.affine(), 0);
        assert_eq!(pi.trajectory(), Trajectory::Up);
        assert_eq!(pi.field().degree(), 4);
        assert_eq!(pi.fin_star(4).len(), 2);
    }
}
