//! Pseudo-ring testing (PRT) of random-access memories.
//!
//! Reference implementation of *"New Schemes for Self-Testing RAM"*
//! (Bodean, Bodean & Labunetz, DATE 2005). PRT tests a memory **with its
//! own components**: a π-test iteration initialises the first `k` cells and
//! then sweeps the array, rewriting each next cell with a Galois-field
//! combination of its `k` predecessors, so that the array emulates a
//! `k`-stage LFSR. The final state `Fin` (the last `k` cells) is compared
//! against the a-priori LFSR prediction `Fin*`; when the array length is a
//! multiple of the LFSR period the automaton returns to its initial state
//! (the *pseudo-ring* closes).
//!
//! The crate provides:
//!
//! * [`PiTest`] — one π-test iteration for bit- or word-oriented memories
//!   ([`PiTest::figure_1a`] and [`PiTest::figure_1b`] reproduce the paper's
//!   examples), with single-, dual- and quad-port schedules (`O(3n)`, `2n`
//!   and `n` cycles respectively),
//! * [`BitPlanePi`] — the §2 intra-word scheme: `m` parallel bit-oriented
//!   automata with *parallel* or *random* per-plane seeds,
//! * [`PrtScheme`] — multi-iteration schemes, including the
//!   [`PrtScheme::standard3`] three-iteration schedule whose 100% coverage
//!   of the single- and multi-cell fault universe is machine-verified
//!   (§3's claim),
//! * [`analysis`] — closed-form and Monte-Carlo detection-probability
//!   analysis (§3's Markov-chain argument),
//! * [`bist`] — the gate-level hardware-overhead model behind the paper's
//!   `< 2⁻²⁰` claim (§4).
//!
//! # Quick start
//!
//! ```
//! use prt_core::PiTest;
//! use prt_ram::{FaultKind, Geometry, Ram};
//!
//! // Figure 1a: bit-oriented π-test, g(x) = 1 + x + x².
//! let pi = PiTest::figure_1a()?;
//! let mut good = Ram::new(Geometry::bom(12));
//! assert!(!pi.run(&mut good)?.detected());
//!
//! let mut bad = Ram::new(Geometry::bom(12));
//! bad.inject(FaultKind::StuckAt { cell: 7, bit: 0, value: 0 })?;
//! assert!(pi.run(&mut bad)?.detected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bist;
pub mod controller;
mod error;
pub mod pi;
pub mod plane;
pub mod scheme;
pub mod trajectory;

pub use controller::{cross_check, BistController};
pub use error::PrtError;
pub use pi::{PiResult, PiTest};
pub use plane::{BitPlanePi, PlaneScheme, PlaneSeeding};
pub use scheme::{IterationSpec, PrtScheme, SchemeResult};
pub use trajectory::Trajectory;
