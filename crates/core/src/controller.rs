//! Behavioural BIST controller — the hardware view of a π-iteration.
//!
//! [`PiTest::run`] is the *algorithmic* view. This module models what the
//! paper's §4 actually proposes to put on silicon: a small finite-state
//! machine around the memory's existing address register (converted to a
//! counter), two operand registers, the XOR/multiplier datapath and the
//! `Fin` comparator. The controller interacts with the RAM **only through
//! the port interface, one cycle at a time** — exactly like hardware — and
//! its per-state register updates are simple enough to transliterate to
//! RTL.
//!
//! Its value in the reproduction: the controller measures the same
//! `3n − 2` cycles and produces bit-identical verdicts to the algorithmic
//! runner (asserted in tests and usable as a cross-check harness), which
//! demonstrates that the paper's cost model counts a *sufficient* set of
//! structures.

use crate::{PiTest, PrtError};
use prt_gf::Poly2;
use prt_lfsr::Misr;
use prt_ram::{PortOp, Ram};

/// Controller FSM states (one memory cycle per state transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlState {
    /// Writing the `k` seed cells.
    Seed {
        /// Seed element index being written.
        j: usize,
    },
    /// Reading operand `i` of the current sub-iteration.
    Read {
        /// Operand index `0..k` (trajectory-relative).
        i: usize,
    },
    /// Writing the combined value into the next cell.
    Write,
    /// Reading back the `k` signature cells.
    Readback {
        /// Signature element index.
        j: usize,
    },
    /// Comparison finished.
    Done,
}

/// One-cycle-at-a-time BIST controller for a single-port RAM.
#[derive(Debug, Clone)]
pub struct BistController {
    pi: PiTest,
    order: Vec<usize>,
    /// Operand shift register (the automaton's `k` stages).
    operands: Vec<u64>,
    /// Sub-iteration counter (the converted address register).
    t: usize,
    state: CtrlState,
    fin: Vec<u64>,
    cycles: u64,
    /// Optional response compactor (signature mode): absorbs every read
    /// response the controller observes.
    misr: Option<Misr>,
    /// The fault-free signature, precomputed at configuration time.
    reference_signature: Option<u64>,
}

impl BistController {
    /// Builds a controller for one π-iteration of `pi` over an `n`-cell
    /// memory.
    ///
    /// # Errors
    ///
    /// [`PrtError::MemoryTooSmall`] if `n < k + 1`.
    pub fn new(pi: PiTest, n: usize) -> Result<BistController, PrtError> {
        let k = pi.stages();
        if n < k + 1 {
            return Err(PrtError::MemoryTooSmall { cells: n, needed: k + 1 });
        }
        let order = pi.trajectory().order(n);
        Ok(BistController {
            pi,
            order,
            operands: vec![0; k],
            t: 0,
            state: CtrlState::Seed { j: 0 },
            fin: Vec::new(),
            cycles: 0,
            misr: None,
            reference_signature: None,
        })
    }

    /// Enables **signature mode**: a [`Misr`] over `poly` absorbs every
    /// read response the controller observes (the `k` operand reads of
    /// each sub-iteration, then the `Fin` readback) — the conventional
    /// BIST compaction path the paper's "testing memory by its own
    /// components" argument compares against. The fault-free reference
    /// signature is precomputed here from the automaton's expected
    /// sequence, so a tester needs only the final
    /// [`BistController::signature`] / [`BistController::signature_matches`]
    /// comparison, no per-read comparator.
    ///
    /// # Errors
    ///
    /// [`PrtError::Lfsr`] for a degenerate MISR polynomial.
    pub fn with_signature(mut self, poly: Poly2) -> Result<BistController, PrtError> {
        let misr = Misr::new(poly)?;
        let mut reference = Misr::new(poly)?;
        let n = self.order.len();
        let k = self.pi.stages();
        // The controller reads trajectory positions t..t+k (ascending) per
        // sub-iteration, then positions n−k..n at readback; the fault-free
        // value at position p is the reference sequence's p-th element.
        let seq = self.pi.expected_sequence(n);
        for t in 0..n - k {
            for i in 0..k {
                reference.absorb(seq[t + i]);
            }
        }
        for &v in &seq[n - k..] {
            reference.absorb(v);
        }
        self.reference_signature = Some(reference.signature());
        self.misr = Some(misr);
        Ok(self)
    }

    /// Current FSM state.
    pub fn state(&self) -> CtrlState {
        self.state
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// `true` once the controller has produced its verdict.
    pub fn done(&self) -> bool {
        matches!(self.state, CtrlState::Done)
    }

    /// Advances the controller by one memory cycle.
    ///
    /// # Errors
    ///
    /// Propagates port errors (cannot occur for a well-formed schedule).
    ///
    /// # Panics
    ///
    /// Panics if called after [`BistController::done`].
    pub fn step(&mut self, ram: &mut Ram) -> Result<(), PrtError> {
        assert!(!self.done(), "controller already finished");
        let k = self.pi.stages();
        let n = self.order.len();
        self.cycles += 1;
        match self.state {
            CtrlState::Seed { j } => {
                ram.cycle(&[PortOp::Write { addr: self.order[j], data: self.pi.init()[j] }])?;
                self.state =
                    if j + 1 < k { CtrlState::Seed { j: j + 1 } } else { CtrlState::Read { i: 0 } };
            }
            CtrlState::Read { i } => {
                let res = ram.cycle(&[PortOp::Read { addr: self.order[self.t + i] }])?;
                let value = res[0].expect("read issued");
                self.operands[i] = value;
                if let Some(m) = &mut self.misr {
                    m.absorb(value);
                }
                self.state =
                    if i + 1 < k { CtrlState::Read { i: i + 1 } } else { CtrlState::Write };
            }
            CtrlState::Write => {
                // Datapath: e ⊕ Σ c_i·operand — the XOR tree + constant
                // multipliers of the cost model.
                let field = self.pi.field();
                let g = {
                    let fb = self.pi.reference_lfsr();
                    fb.feedback().to_vec()
                };
                let g0_inv = field.inv(g[0]).expect("validated");
                let mut acc = self.pi.affine();
                for (i, &gi) in g[1..].iter().enumerate() {
                    let c = field.mul(g0_inv, gi);
                    // c_{i+1} multiplies s_{t+k−i−1} = operands[k−1−i].
                    acc = field.add(acc, field.mul(c, self.operands[k - 1 - i]));
                }
                ram.cycle(&[PortOp::Write { addr: self.order[self.t + k], data: acc }])?;
                self.t += 1;
                self.state = if self.t < n - k {
                    CtrlState::Read { i: 0 }
                } else {
                    CtrlState::Readback { j: 0 }
                };
            }
            CtrlState::Readback { j } => {
                let res = ram.cycle(&[PortOp::Read { addr: self.order[n - k + j] }])?;
                let value = res[0].expect("read issued");
                self.fin.push(value);
                if let Some(m) = &mut self.misr {
                    m.absorb(value);
                }
                self.state =
                    if j + 1 < k { CtrlState::Readback { j: j + 1 } } else { CtrlState::Done };
            }
            CtrlState::Done => unreachable!("guarded above"),
        }
        Ok(())
    }

    /// Runs the FSM to completion and returns the pass/fail verdict
    /// (`Fin` vs the pre-loaded `Fin*`).
    ///
    /// # Errors
    ///
    /// Propagates [`BistController::step`] errors.
    pub fn run_to_completion(&mut self, ram: &mut Ram) -> Result<bool, PrtError> {
        while !self.done() {
            self.step(ram)?;
        }
        Ok(self.fin == self.pi.fin_star(self.order.len()))
    }

    /// The observed `Fin` (valid after completion).
    pub fn fin(&self) -> &[u64] {
        &self.fin
    }

    /// The compacted signature so far (`None` unless
    /// [`BistController::with_signature`] was configured).
    pub fn signature(&self) -> Option<u64> {
        self.misr.as_ref().map(Misr::signature)
    }

    /// The precomputed fault-free signature (`None` without signature
    /// mode).
    pub fn reference_signature(&self) -> Option<u64> {
        self.reference_signature
    }

    /// Signature verdict after completion: `Some(true)` when the compacted
    /// response stream matches the fault-free reference. Unlike the
    /// `Fin`/`Fin*` comparison this needs no per-run expected vector —
    /// only the `w`-bit reference — at an aliasing risk of `2⁻ʷ`
    /// ([`Misr::aliasing_probability`]).
    pub fn signature_matches(&self) -> Option<bool> {
        match (&self.misr, self.reference_signature) {
            (Some(m), Some(r)) => Some(m.signature() == r),
            _ => None,
        }
    }
}

/// Cross-checks the hardware FSM against the algorithmic runner over an
/// entire fault universe — the §4 faithfulness argument, run as two pooled
/// campaigns (one driving a [`BistController`] per instance, one driving
/// [`PiTest::run`]) whose verdict tables are then compared element-wise.
///
/// Returns the indices of the fault instances on which the two models
/// disagree; an empty result means the cycle-level controller is
/// observationally equivalent to the algorithmic view on that universe.
pub fn cross_check(pi: &PiTest, universe: &prt_ram::FaultUniverse) -> Vec<usize> {
    use prt_sim::Campaign;
    let n = universe.geometry().cells();
    let hw_runner = |ram: &mut Ram, _bg: u64| {
        BistController::new(pi.clone(), n)
            .and_then(|mut ctrl| ctrl.run_to_completion(ram))
            .map(|pass| !pass)
            .unwrap_or(false)
    };
    let hw = Campaign::new(universe, hw_runner).detections();
    // The algorithmic side runs the compiled π-program (one compile, one
    // interpreter pass per trial); a geometry the automaton cannot host
    // falls back to the interpreted runner with its error-as-escape rule.
    let sw = match pi.compile(universe.geometry()) {
        Ok(program) => Campaign::new(universe, &program).detections(),
        Err(_) => Campaign::new(universe, pi).detections(),
    };
    hw.iter().zip(&sw).enumerate().filter_map(|(i, (h, s))| (h != s).then_some(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::{FaultKind, Geometry};

    #[test]
    fn controller_matches_algorithmic_runner_fault_free() {
        for n in [8usize, 17, 33] {
            let pi = PiTest::figure_1b().unwrap();
            let mut hw = Ram::new(Geometry::wom(n, 4).unwrap());
            let mut ctrl = BistController::new(pi.clone(), n).unwrap();
            let pass = ctrl.run_to_completion(&mut hw).unwrap();
            assert!(pass, "n={n}");
            assert_eq!(ctrl.cycles(), 3 * n as u64 - 2, "hardware cycle count");
            let mut sw = Ram::new(Geometry::wom(n, 4).unwrap());
            let res = pi.run(&mut sw).unwrap();
            assert_eq!(ctrl.fin(), res.fin());
            for c in 0..n {
                assert_eq!(hw.peek(c), sw.peek(c), "cell {c}");
            }
        }
    }

    #[test]
    fn controller_verdicts_match_under_faults() {
        let pi = PiTest::figure_1a().unwrap();
        let n = 16usize;
        for cell in 0..n {
            for value in [0u8, 1] {
                let fault = FaultKind::StuckAt { cell, bit: 0, value };
                let mut hw = Ram::new(Geometry::bom(n));
                hw.inject(fault.clone()).unwrap();
                let mut ctrl = BistController::new(pi.clone(), n).unwrap();
                let pass = ctrl.run_to_completion(&mut hw).unwrap();
                let mut sw = Ram::new(Geometry::bom(n));
                sw.inject(fault).unwrap();
                let res = pi.run(&mut sw).unwrap();
                assert_eq!(!pass, res.detected(), "SA{value}@{cell}");
            }
        }
    }

    #[test]
    fn cross_check_full_universe_agrees() {
        use prt_ram::{FaultUniverse, UniverseSpec};
        let pi = PiTest::figure_1a().unwrap();
        let universe = FaultUniverse::enumerate(Geometry::bom(12), &UniverseSpec::paper_claim());
        let disagreements = cross_check(&pi, &universe);
        assert!(
            disagreements.is_empty(),
            "controller disagrees with the algorithmic runner on {} of {} instances \
             (first: {})",
            disagreements.len(),
            universe.len(),
            universe.faults()[disagreements[0]]
        );
    }

    #[test]
    fn signature_mode_matches_fin_verdict() {
        // The compaction path: fault-free runs land on the precomputed
        // reference; every single stuck-at over the array is flagged by
        // the signature exactly when the Fin comparison flags it (no
        // aliasing observed on this universe — asserted, not assumed).
        let poly = Poly2::from_bits(0b1_0001_1011); // x⁸+x⁴+x³+x+1
        let n = 16usize;
        for pi in [PiTest::figure_1a().unwrap()] {
            let clean = BistController::new(pi.clone(), n).unwrap().with_signature(poly).unwrap();
            let mut ctrl = clean.clone();
            let mut ram = Ram::new(Geometry::bom(n));
            let pass = ctrl.run_to_completion(&mut ram).unwrap();
            assert!(pass);
            assert_eq!(ctrl.signature(), ctrl.reference_signature());
            assert_eq!(ctrl.signature_matches(), Some(true));
            for cell in 0..n {
                for value in [0u8, 1] {
                    let mut ram = Ram::new(Geometry::bom(n));
                    ram.inject(FaultKind::StuckAt { cell, bit: 0, value }).unwrap();
                    let mut ctrl = clean.clone();
                    let pass = ctrl.run_to_completion(&mut ram).unwrap();
                    assert_eq!(
                        ctrl.signature_matches(),
                        Some(pass),
                        "SA{value}@{cell}: signature and Fin verdicts diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn signature_mode_off_by_default() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(8));
        let mut ctrl = BistController::new(pi, 8).unwrap();
        ctrl.run_to_completion(&mut ram).unwrap();
        assert_eq!(ctrl.signature(), None);
        assert_eq!(ctrl.reference_signature(), None);
        assert_eq!(ctrl.signature_matches(), None);
    }

    #[test]
    fn signature_mode_rejects_degenerate_polynomial() {
        let pi = PiTest::figure_1a().unwrap();
        let ctrl = BistController::new(pi, 8).unwrap();
        assert!(matches!(ctrl.with_signature(Poly2::ONE), Err(PrtError::Lfsr(_))));
    }

    #[test]
    fn fsm_state_progression() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(4));
        let mut ctrl = BistController::new(pi, 4).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Seed { j: 0 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Seed { j: 1 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Read { i: 0 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Read { i: 1 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Write);
        // n=4, k=2: two sub-iterations then readback.
        while !ctrl.done() {
            ctrl.step(&mut ram).unwrap();
        }
        assert_eq!(ctrl.cycles(), 10); // 3·4 − 2
    }

    #[test]
    fn too_small_memory_rejected() {
        let pi = PiTest::figure_1a().unwrap();
        assert!(matches!(BistController::new(pi, 2), Err(PrtError::MemoryTooSmall { .. })));
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn stepping_after_done_panics() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(4));
        let mut ctrl = BistController::new(pi, 4).unwrap();
        ctrl.run_to_completion(&mut ram).unwrap();
        let _ = ctrl.step(&mut ram);
    }
}
