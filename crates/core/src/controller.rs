//! Behavioural BIST controller — the hardware view of a π-iteration.
//!
//! [`PiTest::run`] is the *algorithmic* view. This module models what the
//! paper's §4 actually proposes to put on silicon: a small finite-state
//! machine around the memory's existing address register (converted to a
//! counter), two operand registers, the XOR/multiplier datapath and the
//! `Fin` comparator. The controller interacts with the RAM **only through
//! the port interface, one cycle at a time** — exactly like hardware — and
//! its per-state register updates are simple enough to transliterate to
//! RTL.
//!
//! Its value in the reproduction: the controller measures the same
//! `3n − 2` cycles and produces bit-identical verdicts to the algorithmic
//! runner (asserted in tests and usable as a cross-check harness), which
//! demonstrates that the paper's cost model counts a *sufficient* set of
//! structures.

use crate::{PiTest, PrtError};
use prt_ram::{PortOp, Ram};

/// Controller FSM states (one memory cycle per state transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlState {
    /// Writing the `k` seed cells.
    Seed {
        /// Seed element index being written.
        j: usize,
    },
    /// Reading operand `i` of the current sub-iteration.
    Read {
        /// Operand index `0..k` (trajectory-relative).
        i: usize,
    },
    /// Writing the combined value into the next cell.
    Write,
    /// Reading back the `k` signature cells.
    Readback {
        /// Signature element index.
        j: usize,
    },
    /// Comparison finished.
    Done,
}

/// One-cycle-at-a-time BIST controller for a single-port RAM.
#[derive(Debug, Clone)]
pub struct BistController {
    pi: PiTest,
    order: Vec<usize>,
    /// Operand shift register (the automaton's `k` stages).
    operands: Vec<u64>,
    /// Sub-iteration counter (the converted address register).
    t: usize,
    state: CtrlState,
    fin: Vec<u64>,
    cycles: u64,
}

impl BistController {
    /// Builds a controller for one π-iteration of `pi` over an `n`-cell
    /// memory.
    ///
    /// # Errors
    ///
    /// [`PrtError::MemoryTooSmall`] if `n < k + 1`.
    pub fn new(pi: PiTest, n: usize) -> Result<BistController, PrtError> {
        let k = pi.stages();
        if n < k + 1 {
            return Err(PrtError::MemoryTooSmall { cells: n, needed: k + 1 });
        }
        let order = pi.trajectory().order(n);
        Ok(BistController {
            pi,
            order,
            operands: vec![0; k],
            t: 0,
            state: CtrlState::Seed { j: 0 },
            fin: Vec::new(),
            cycles: 0,
        })
    }

    /// Current FSM state.
    pub fn state(&self) -> CtrlState {
        self.state
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// `true` once the controller has produced its verdict.
    pub fn done(&self) -> bool {
        matches!(self.state, CtrlState::Done)
    }

    /// Advances the controller by one memory cycle.
    ///
    /// # Errors
    ///
    /// Propagates port errors (cannot occur for a well-formed schedule).
    ///
    /// # Panics
    ///
    /// Panics if called after [`BistController::done`].
    pub fn step(&mut self, ram: &mut Ram) -> Result<(), PrtError> {
        assert!(!self.done(), "controller already finished");
        let k = self.pi.stages();
        let n = self.order.len();
        self.cycles += 1;
        match self.state {
            CtrlState::Seed { j } => {
                ram.cycle(&[PortOp::Write { addr: self.order[j], data: self.pi.init()[j] }])?;
                self.state =
                    if j + 1 < k { CtrlState::Seed { j: j + 1 } } else { CtrlState::Read { i: 0 } };
            }
            CtrlState::Read { i } => {
                let res = ram.cycle(&[PortOp::Read { addr: self.order[self.t + i] }])?;
                self.operands[i] = res[0].expect("read issued");
                self.state =
                    if i + 1 < k { CtrlState::Read { i: i + 1 } } else { CtrlState::Write };
            }
            CtrlState::Write => {
                // Datapath: e ⊕ Σ c_i·operand — the XOR tree + constant
                // multipliers of the cost model.
                let field = self.pi.field();
                let g = {
                    let fb = self.pi.reference_lfsr();
                    fb.feedback().to_vec()
                };
                let g0_inv = field.inv(g[0]).expect("validated");
                let mut acc = self.pi.affine();
                for (i, &gi) in g[1..].iter().enumerate() {
                    let c = field.mul(g0_inv, gi);
                    // c_{i+1} multiplies s_{t+k−i−1} = operands[k−1−i].
                    acc = field.add(acc, field.mul(c, self.operands[k - 1 - i]));
                }
                ram.cycle(&[PortOp::Write { addr: self.order[self.t + k], data: acc }])?;
                self.t += 1;
                self.state = if self.t < n - k {
                    CtrlState::Read { i: 0 }
                } else {
                    CtrlState::Readback { j: 0 }
                };
            }
            CtrlState::Readback { j } => {
                let res = ram.cycle(&[PortOp::Read { addr: self.order[n - k + j] }])?;
                self.fin.push(res[0].expect("read issued"));
                self.state =
                    if j + 1 < k { CtrlState::Readback { j: j + 1 } } else { CtrlState::Done };
            }
            CtrlState::Done => unreachable!("guarded above"),
        }
        Ok(())
    }

    /// Runs the FSM to completion and returns the pass/fail verdict
    /// (`Fin` vs the pre-loaded `Fin*`).
    ///
    /// # Errors
    ///
    /// Propagates [`BistController::step`] errors.
    pub fn run_to_completion(&mut self, ram: &mut Ram) -> Result<bool, PrtError> {
        while !self.done() {
            self.step(ram)?;
        }
        Ok(self.fin == self.pi.fin_star(self.order.len()))
    }

    /// The observed `Fin` (valid after completion).
    pub fn fin(&self) -> &[u64] {
        &self.fin
    }
}

/// Cross-checks the hardware FSM against the algorithmic runner over an
/// entire fault universe — the §4 faithfulness argument, run as two pooled
/// campaigns (one driving a [`BistController`] per instance, one driving
/// [`PiTest::run`]) whose verdict tables are then compared element-wise.
///
/// Returns the indices of the fault instances on which the two models
/// disagree; an empty result means the cycle-level controller is
/// observationally equivalent to the algorithmic view on that universe.
pub fn cross_check(pi: &PiTest, universe: &prt_ram::FaultUniverse) -> Vec<usize> {
    use prt_sim::Campaign;
    let n = universe.geometry().cells();
    let hw_runner = |ram: &mut Ram, _bg: u64| {
        BistController::new(pi.clone(), n)
            .and_then(|mut ctrl| ctrl.run_to_completion(ram))
            .map(|pass| !pass)
            .unwrap_or(false)
    };
    let hw = Campaign::new(universe, hw_runner).detections();
    // The algorithmic side runs the compiled π-program (one compile, one
    // interpreter pass per trial); a geometry the automaton cannot host
    // falls back to the interpreted runner with its error-as-escape rule.
    let sw = match pi.compile(universe.geometry()) {
        Ok(program) => Campaign::new(universe, &program).detections(),
        Err(_) => Campaign::new(universe, pi).detections(),
    };
    hw.iter().zip(&sw).enumerate().filter_map(|(i, (h, s))| (h != s).then_some(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::{FaultKind, Geometry};

    #[test]
    fn controller_matches_algorithmic_runner_fault_free() {
        for n in [8usize, 17, 33] {
            let pi = PiTest::figure_1b().unwrap();
            let mut hw = Ram::new(Geometry::wom(n, 4).unwrap());
            let mut ctrl = BistController::new(pi.clone(), n).unwrap();
            let pass = ctrl.run_to_completion(&mut hw).unwrap();
            assert!(pass, "n={n}");
            assert_eq!(ctrl.cycles(), 3 * n as u64 - 2, "hardware cycle count");
            let mut sw = Ram::new(Geometry::wom(n, 4).unwrap());
            let res = pi.run(&mut sw).unwrap();
            assert_eq!(ctrl.fin(), res.fin());
            for c in 0..n {
                assert_eq!(hw.peek(c), sw.peek(c), "cell {c}");
            }
        }
    }

    #[test]
    fn controller_verdicts_match_under_faults() {
        let pi = PiTest::figure_1a().unwrap();
        let n = 16usize;
        for cell in 0..n {
            for value in [0u8, 1] {
                let fault = FaultKind::StuckAt { cell, bit: 0, value };
                let mut hw = Ram::new(Geometry::bom(n));
                hw.inject(fault.clone()).unwrap();
                let mut ctrl = BistController::new(pi.clone(), n).unwrap();
                let pass = ctrl.run_to_completion(&mut hw).unwrap();
                let mut sw = Ram::new(Geometry::bom(n));
                sw.inject(fault).unwrap();
                let res = pi.run(&mut sw).unwrap();
                assert_eq!(!pass, res.detected(), "SA{value}@{cell}");
            }
        }
    }

    #[test]
    fn cross_check_full_universe_agrees() {
        use prt_ram::{FaultUniverse, UniverseSpec};
        let pi = PiTest::figure_1a().unwrap();
        let universe = FaultUniverse::enumerate(Geometry::bom(12), &UniverseSpec::paper_claim());
        let disagreements = cross_check(&pi, &universe);
        assert!(
            disagreements.is_empty(),
            "controller disagrees with the algorithmic runner on {} of {} instances \
             (first: {})",
            disagreements.len(),
            universe.len(),
            universe.faults()[disagreements[0]]
        );
    }

    #[test]
    fn fsm_state_progression() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(4));
        let mut ctrl = BistController::new(pi, 4).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Seed { j: 0 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Seed { j: 1 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Read { i: 0 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Read { i: 1 });
        ctrl.step(&mut ram).unwrap();
        assert_eq!(ctrl.state(), CtrlState::Write);
        // n=4, k=2: two sub-iterations then readback.
        while !ctrl.done() {
            ctrl.step(&mut ram).unwrap();
        }
        assert_eq!(ctrl.cycles(), 10); // 3·4 − 2
    }

    #[test]
    fn too_small_memory_rejected() {
        let pi = PiTest::figure_1a().unwrap();
        assert!(matches!(BistController::new(pi, 2), Err(PrtError::MemoryTooSmall { .. })));
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn stepping_after_done_panics() {
        let pi = PiTest::figure_1a().unwrap();
        let mut ram = Ram::new(Geometry::bom(4));
        let mut ctrl = BistController::new(pi, 4).unwrap();
        ctrl.run_to_completion(&mut ram).unwrap();
        let _ = ctrl.step(&mut ram);
    }
}
