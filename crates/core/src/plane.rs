//! Parallel bit-plane π-testing of word-oriented memories (§2).
//!
//! "For the WOM there are intra-word faults that can be tested by parallel
//! application of a π-testing for BOM. In this case it is supposed that
//! there are m independent bit-oriented linear automatons. For all
//! automatons the read and write operations are executed simultaneously. To
//! detect the intra-word faults two different π-testing can be performed:
//! (1) with parallel or (2) with random trajectories."
//!
//! Each bit plane of the word runs its own GF(2) automaton; because all
//! planes share the tap structure, one word-wide XOR implements all `m`
//! automata at once. With [`PlaneSeeding::Parallel`] every plane carries the
//! same sequence — cheap, but an intra-word state-coupling fault whose
//! victim always mirrors its aggressor can never be observed. With
//! [`PlaneSeeding::Random`] the planes are seeded differently (the paper's
//! externally-programmed trajectory control), de-correlating the planes and
//! exposing those faults. Experiment E4 quantifies the difference.

use crate::{PiResult, PrtError, Trajectory};
use prt_gf::Poly2;
use prt_lfsr::BitLfsr;
use prt_ram::{Geometry, MemoryDevice, ProgramBuilder, Ram, SplitMix64, TestProgram};
use prt_sim::{Campaign, FaultRunner};

/// How the `m` bit-plane automata are seeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneSeeding {
    /// Every plane uses the same seed — the paper's "parallel trajectories".
    Parallel {
        /// The shared packed seed (bit `j` = `s_j`).
        seed: u64,
    },
    /// Every plane gets a distinct deterministic pseudo-random seed — the
    /// paper's "random trajectories".
    Random {
        /// Seed for the per-plane seed generator.
        seed: u64,
    },
    /// Explicit per-plane packed seeds.
    Explicit(Vec<u64>),
}

/// A π-test built from `m` parallel bit-oriented automata.
///
/// # Example
///
/// ```
/// use prt_core::{BitPlanePi, PlaneSeeding};
/// use prt_gf::Poly2;
/// use prt_ram::{Geometry, Ram};
///
/// let pi = BitPlanePi::new(Poly2::from_bits(0b111), PlaneSeeding::Random { seed: 1 })?;
/// let mut ram = Ram::new(Geometry::wom(32, 8)?);
/// assert!(!pi.run(&mut ram)?.detected());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlanePi {
    poly: Poly2,
    k: usize,
    seeding: PlaneSeeding,
    trajectory: Trajectory,
}

impl BitPlanePi {
    /// Creates the scheme from a GF(2) feedback polynomial (shared by all
    /// planes) and a seeding policy.
    ///
    /// # Errors
    ///
    /// [`PrtError::Lfsr`] if the polynomial is degenerate.
    pub fn new(poly: Poly2, seeding: PlaneSeeding) -> Result<BitPlanePi, PrtError> {
        // Validate by constructing a probe register.
        let probe = BitLfsr::new(poly, 0)?;
        Ok(BitPlanePi { poly, k: probe.stages() as usize, seeding, trajectory: Trajectory::Up })
    }

    /// Sets the cell-visit trajectory (shared by all planes — the
    /// operations are word-wide and simultaneous).
    pub fn with_trajectory(mut self, trajectory: Trajectory) -> BitPlanePi {
        self.trajectory = trajectory;
        self
    }

    /// Automaton stages `k`.
    pub fn stages(&self) -> usize {
        self.k
    }

    /// The per-plane packed seeds for a memory of width `m`.
    pub fn plane_seeds(&self, m: u32) -> Vec<u64> {
        let mask = (1u64 << self.k) - 1;
        match &self.seeding {
            PlaneSeeding::Parallel { seed } => vec![seed & mask; m as usize],
            PlaneSeeding::Random { seed } => {
                let mut rng = SplitMix64::new(*seed);
                // Avoid the all-zero seed: a zero plane carries no signal.
                (0..m).map(|_| 1 + rng.next_below(mask.max(1))).collect()
            }
            PlaneSeeding::Explicit(seeds) => {
                seeds.iter().cycle().take(m as usize).map(|s| s & mask).collect()
            }
        }
    }

    /// The fault-free word sequence for an `n`-cell, `m`-bit memory.
    pub fn expected_sequence(&self, n: usize, m: u32) -> Vec<u64> {
        let seeds = self.plane_seeds(m);
        let mut regs: Vec<BitLfsr> =
            seeds.iter().map(|&s| BitLfsr::new(self.poly, s).expect("validated")).collect();
        let plane_seqs: Vec<Vec<u8>> = regs.iter_mut().map(|r| r.sequence(n)).collect();
        (0..n)
            .map(|t| {
                plane_seqs.iter().enumerate().fold(0u64, |w, (b, seq)| w | (u64::from(seq[t]) << b))
            })
            .collect()
    }

    /// Runs the parallel-plane π-iteration.
    ///
    /// # Errors
    ///
    /// [`PrtError::MemoryTooSmall`] when the array cannot hold the
    /// automaton.
    pub fn run<M: MemoryDevice>(&self, mem: &mut M) -> Result<PiResult, PrtError> {
        let geom = mem.geometry();
        let n = geom.cells();
        let m = geom.width();
        let k = self.k;
        if n < k + 1 {
            return Err(PrtError::MemoryTooSmall { cells: n, needed: k + 1 });
        }
        let order = self.trajectory.order(n);
        let expected = self.expected_sequence(n, m);
        let before = mem.stats();

        for j in 0..k {
            mem.write(order[j], expected[j]);
        }
        // Word-wide recurrence: tap words XOR together because every plane
        // shares the same GF(2) taps.
        let taps: Vec<usize> = (1..=k).filter(|&i| self.poly.coeff(i as u32) == 1).collect();
        for t in 0..n - k {
            let mut acc = 0u64;
            for &i in &taps {
                acc ^= mem.read(order[t + k - i]);
            }
            // Non-tapped operands are still read (the hardware senses the
            // whole window), keeping the 3-ops-per-cell structure for k=2.
            for i in 1..=k {
                if !taps.contains(&i) {
                    let _ = mem.read(order[t + k - i]);
                }
            }
            mem.write(order[t + k], acc);
        }
        let fin: Vec<u64> = order[n - k..].iter().map(|&c| mem.read(c)).collect();
        let fin_star: Vec<u64> = expected[n - k..].to_vec();
        let after = mem.stats();
        Ok(PiResult::from_parts(
            fin,
            fin_star,
            after.ops() - before.ops(),
            after.cycles - before.cycles,
        ))
    }

    /// Compiles the parallel-plane iteration for `geom` into a
    /// [`TestProgram`]: all planes share the GF(2) tap structure, so the
    /// word-wide recurrence lowers to identity-map accumulation (plain
    /// XOR), with the per-plane seeding baked into the seed writes and
    /// `Fin` expectations. Verdict-identical to [`BitPlanePi::run`]
    /// (property-tested).
    ///
    /// # Errors
    ///
    /// As [`BitPlanePi::run`].
    pub fn compile(&self, geom: Geometry) -> Result<TestProgram, PrtError> {
        let mut b = ProgramBuilder::new(geom).with_name("bit-plane π");
        self.compile_into(&mut b, geom)?;
        Ok(b.build())
    }

    pub(crate) fn compile_into(
        &self,
        b: &mut ProgramBuilder,
        geom: Geometry,
    ) -> Result<(), PrtError> {
        let n = geom.cells();
        let m = geom.width();
        let k = self.k;
        if n < k + 1 {
            return Err(PrtError::MemoryTooSmall { cells: n, needed: k + 1 });
        }
        let order = self.trajectory.order(n);
        let expected = self.expected_sequence(n, m);
        let id = b.identity_map();
        for j in 0..k {
            b.write(order[j], expected[j]);
        }
        let taps: Vec<usize> = (1..=k).filter(|&i| self.poly.coeff(i as u32) == 1).collect();
        for t in 0..n - k {
            b.acc_set(0);
            for &i in &taps {
                b.read_acc(order[t + k - i], id);
            }
            for i in 1..=k {
                if !taps.contains(&i) {
                    b.read_any(order[t + k - i]);
                }
            }
            b.write_acc(order[t + k]);
        }
        for (j, &cell) in order[n - k..].iter().enumerate() {
            b.read_capture(cell, expected[n - k + j]);
        }
        Ok(())
    }
}

/// A multi-round bit-plane scheme: several [`BitPlanePi`] iterations run
/// back-to-back with different plane seedings — the PRT analogue of
/// multi-background March testing, and the practical §2 answer to
/// intra-word faults.
///
/// # Example
///
/// ```
/// use prt_core::plane::{PlaneScheme, PlaneSeeding};
/// use prt_gf::Poly2;
/// use prt_ram::{FaultKind, Geometry, Ram};
///
/// // Round 1 mirrors the planes; round 2 decorrelates bit 0 from bit 1
/// // (sequences 1,0,1… vs 0,1,1…), exposing intra-word state couplings.
/// let scheme = PlaneScheme::new(Poly2::from_bits(0b111), vec![
///     PlaneSeeding::Parallel { seed: 0b10 },
///     PlaneSeeding::Explicit(vec![0b01, 0b10, 0b11, 0b01]),
/// ])?;
/// let mut ram = Ram::new(Geometry::wom(24, 4)?);
/// // Intra-word state coupling invisible to mirrored planes:
/// ram.inject(FaultKind::CouplingState {
///     agg_cell: 7, agg_bit: 0, agg_state: 0,
///     victim_cell: 7, victim_bit: 1, force: 0,
/// })?;
/// assert!(scheme.run(&mut ram)?.iter().any(|r| r.detected()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneScheme {
    poly: Poly2,
    rounds: Vec<PlaneSeeding>,
    trajectory: Trajectory,
}

impl PlaneScheme {
    /// Builds a scheme from explicit per-round seedings.
    ///
    /// # Errors
    ///
    /// [`PrtError::Lfsr`] for a degenerate polynomial;
    /// [`PrtError::EmptyScheme`] for an empty round list.
    pub fn new(poly: Poly2, rounds: Vec<PlaneSeeding>) -> Result<PlaneScheme, PrtError> {
        if rounds.is_empty() {
            return Err(PrtError::EmptyScheme);
        }
        let probe = BitLfsr::new(poly, 0)?;
        let _ = probe;
        Ok(PlaneScheme { poly, rounds, trajectory: Trajectory::Up })
    }

    /// The standard decorrelated schedule for `m`-bit words: `rounds`
    /// iterations whose per-plane seeds are drawn deterministically so
    /// that every plane pair sees every (value, value) combination across
    /// the schedule — the bit-plane analogue of
    /// [`prt_march::coverage::standard_backgrounds`].
    ///
    /// # Errors
    ///
    /// As [`PlaneScheme::new`].
    pub fn standard(poly: Poly2, m: u32, rounds: usize) -> Result<PlaneScheme, PrtError> {
        let probe = BitLfsr::new(poly, 0)?;
        let k = probe.stages();
        let seed_count = 1u64 << k;
        let mut rng = SplitMix64::new(0xB17_9A5E5);
        let mut list = Vec::with_capacity(rounds);
        for round in 0..rounds {
            // Round 0 keeps a fixed canonical seeding so the schedule
            // always exercises the plain parallel case once.
            if round == 0 {
                list.push(PlaneSeeding::Parallel { seed: 0b10 & (seed_count - 1) });
            } else {
                let seeds: Vec<u64> = (0..m).map(|_| 1 + rng.next_below(seed_count - 1)).collect();
                list.push(PlaneSeeding::Explicit(seeds));
            }
        }
        PlaneScheme::new(poly, list)
    }

    /// Sets the shared trajectory.
    pub fn with_trajectory(mut self, trajectory: Trajectory) -> PlaneScheme {
        self.trajectory = trajectory;
        self
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Runs every round back-to-back; one [`PiResult`] per round.
    ///
    /// # Errors
    ///
    /// Geometry errors from [`BitPlanePi::run`].
    pub fn run<M: MemoryDevice>(&self, mem: &mut M) -> Result<Vec<PiResult>, PrtError> {
        let mut out = Vec::with_capacity(self.rounds.len());
        for seeding in &self.rounds {
            let pi = BitPlanePi::new(self.poly, seeding.clone())?.with_trajectory(self.trajectory);
            out.push(pi.run(mem)?);
        }
        Ok(out)
    }

    /// Compiles all rounds into one flat [`TestProgram`] (one marker per
    /// round), so campaigns pay the per-round seed derivation and
    /// trajectory materialisation once instead of once per fault trial.
    ///
    /// # Errors
    ///
    /// As [`BitPlanePi::run`].
    pub fn compile(&self, geom: Geometry) -> Result<TestProgram, PrtError> {
        let mut b =
            ProgramBuilder::new(geom).with_name(format!("plane scheme ×{}", self.rounds.len()));
        for (j, seeding) in self.rounds.iter().enumerate() {
            b.mark(j as u32);
            let pi = BitPlanePi::new(self.poly, seeding.clone())?.with_trajectory(self.trajectory);
            pi.compile_into(&mut b, geom)?;
        }
        Ok(b.build())
    }

    /// Coverage over a fault universe (any round detecting counts), run as
    /// the **compiled** scheme program on the campaign engine: pooled
    /// memories, parallel fan-out, deterministic aggregation. Falls back
    /// to the interpreted runner (errors count as escapes) when the
    /// geometry cannot host the automaton.
    pub fn coverage(&self, universe: &prt_ram::FaultUniverse) -> prt_march::CoverageReport {
        let name = format!("plane scheme ×{}", self.rounds.len());
        match self.compile(universe.geometry()) {
            Ok(program) => Campaign::new(universe, &program).with_name(name).run(),
            Err(_) => Campaign::new(universe, self).with_name(name).run(),
        }
    }
}

/// A plane scheme drives campaigns directly: any round detecting counts,
/// and a run error counts as an escape.
impl FaultRunner for &PlaneScheme {
    fn detect(&self, ram: &mut Ram, _background: u64) -> bool {
        self.run(ram).map(|rs| rs.iter().any(PiResult::detected)).unwrap_or(false)
    }
}

/// A single parallel-plane iteration as a campaign runner.
impl FaultRunner for &BitPlanePi {
    fn detect(&self, ram: &mut Ram, _background: u64) -> bool {
        self.run(ram).map(|res| res.detected()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::{CouplingTrigger, FaultKind, Geometry, Ram};

    fn poly() -> Poly2 {
        Poly2::from_bits(0b111)
    }

    #[test]
    fn parallel_planes_mirror_each_other() {
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Parallel { seed: 0b10 }).unwrap();
        let seq = pi.expected_sequence(9, 4);
        for w in seq {
            // With identical seeds each word is 0x0 or 0xF.
            assert!(w == 0x0 || w == 0xF, "word {w:#x}");
        }
    }

    #[test]
    fn random_planes_decorrelate() {
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Random { seed: 3 }).unwrap();
        let seq = pi.expected_sequence(12, 8);
        assert!(
            seq.iter().any(|&w| w != 0 && w != 0xFF),
            "random seeding should produce mixed words: {seq:?}"
        );
    }

    #[test]
    fn fault_free_run_is_clean_both_seedings() {
        for seeding in [PlaneSeeding::Parallel { seed: 0b10 }, PlaneSeeding::Random { seed: 11 }] {
            let pi = BitPlanePi::new(poly(), seeding).unwrap();
            let mut ram = Ram::new(Geometry::wom(24, 8).unwrap());
            let res = pi.run(&mut ram).unwrap();
            assert!(!res.detected());
            assert_eq!(res.ops(), 3 * 24 - 2);
        }
    }

    #[test]
    fn memory_contents_match_expected_sequence() {
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Random { seed: 5 }).unwrap();
        let mut ram = Ram::new(Geometry::wom(16, 4).unwrap());
        pi.run(&mut ram).unwrap();
        let expect = pi.expected_sequence(16, 4);
        for (c, &e) in expect.iter().enumerate() {
            assert_eq!(ram.peek(c), e, "cell {c}");
        }
    }

    #[test]
    fn intra_word_state_coupling_escapes_parallel_but_not_random() {
        // CFst⟨s; s⟩ between two bits of one cell: with parallel seeding the
        // victim always equals the aggressor, so forcing it to the
        // aggressor's value changes nothing — the fault is invisible.
        let mk_fault = || FaultKind::CouplingState {
            agg_cell: 7,
            agg_bit: 0,
            agg_state: 0,
            victim_cell: 7,
            victim_bit: 1,
            force: 0,
        };
        let parallel = BitPlanePi::new(poly(), PlaneSeeding::Parallel { seed: 0b10 }).unwrap();
        let mut ram = Ram::new(Geometry::wom(20, 4).unwrap());
        ram.inject(mk_fault()).unwrap();
        assert!(
            !parallel.run(&mut ram).unwrap().detected(),
            "mirrored planes cannot see CFst⟨0;0⟩"
        );
        // Decorrelated planes: aggressor plane 0 runs (1,0,1…) and victim
        // plane 1 runs (0,1,1…), so cell 7 (phase 1) has agg=0 with victim
        // expected 1 — the fault forces it to 0, which the victim's operand
        // reads observe.
        let seeds = PlaneSeeding::Explicit(vec![0b01, 0b10, 0b01, 0b10]);
        let decorrelated = BitPlanePi::new(poly(), seeds).unwrap();
        let mut ram = Ram::new(Geometry::wom(20, 4).unwrap());
        ram.inject(mk_fault()).unwrap();
        assert!(
            decorrelated.run(&mut ram).unwrap().detected(),
            "decorrelated planes must expose CFst⟨0;0⟩"
        );
    }

    #[test]
    fn intra_word_inversion_coupling_detected() {
        // CFin between bits of a cell fires on the aggressor bit's write
        // transition and corrupts the victim bit post-write — caught by the
        // victim cell's two subsequent operand reads.
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Random { seed: 9 }).unwrap();
        let mut ram = Ram::new(Geometry::wom(20, 4).unwrap());
        ram.inject(FaultKind::CouplingInversion {
            agg_cell: 6,
            agg_bit: 2,
            victim_cell: 6,
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
        })
        .unwrap();
        assert!(pi.run(&mut ram).unwrap().detected());
    }

    #[test]
    fn explicit_seeds_cycle_over_planes() {
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Explicit(vec![0b01, 0b10])).unwrap();
        assert_eq!(pi.plane_seeds(4), vec![0b01, 0b10, 0b01, 0b10]);
    }

    #[test]
    fn plane_scheme_standard_grows_intra_word_coverage() {
        use prt_ram::{FaultUniverse, UniverseSpec};
        let spec = UniverseSpec {
            cfin: true,
            cfid: true,
            cfst: true,
            coupling_radius: Some(0),
            intra_word: true,
            ..UniverseSpec::default()
        };
        let geom = Geometry::wom(9, 4).unwrap();
        let u = FaultUniverse::enumerate(geom, &spec);
        let few = PlaneScheme::standard(poly(), 4, 2).unwrap().coverage(&u);
        let many = PlaneScheme::standard(poly(), 4, 8).unwrap().coverage(&u);
        assert!(
            many.overall_percent() > few.overall_percent(),
            "more decorrelated rounds must add coverage: {} vs {}",
            many.overall_percent(),
            few.overall_percent()
        );
        assert!(many.overall_percent() > 60.0);
    }

    #[test]
    fn compiled_plane_matches_interpreted() {
        use prt_ram::{FaultUniverse, UniverseSpec};
        let spec = UniverseSpec {
            cfin: true,
            cfid: true,
            cfst: true,
            coupling_radius: Some(1),
            intra_word: true,
            ..UniverseSpec::paper_claim()
        };
        let geom = Geometry::wom(9, 4).unwrap();
        let u = FaultUniverse::enumerate(geom, &spec);
        for seeding in [PlaneSeeding::Parallel { seed: 0b10 }, PlaneSeeding::Random { seed: 5 }] {
            let pi = BitPlanePi::new(poly(), seeding).unwrap();
            let prog = pi.compile(geom).unwrap();
            let compiled = prt_sim::Campaign::new(&u, &prog).detections();
            let interpreted = prt_sim::Campaign::new(&u, &pi).detections();
            assert_eq!(compiled, interpreted);
        }
        let scheme = PlaneScheme::standard(poly(), 4, 3).unwrap();
        let prog = scheme.compile(geom).unwrap();
        assert_eq!(prog.marks().len(), 3);
        let compiled = prt_sim::Campaign::new(&u, &prog).detections();
        let interpreted = prt_sim::Campaign::new(&u, &scheme).detections();
        assert_eq!(compiled, interpreted);
    }

    #[test]
    fn compiled_plane_preserves_op_count_and_image() {
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Random { seed: 5 }).unwrap();
        let geom = Geometry::wom(16, 4).unwrap();
        let prog = pi.compile(geom).unwrap();
        let mut a = Ram::new(geom);
        let res = pi.run(&mut a).unwrap();
        let mut b = Ram::new(geom);
        let exec = prog.execute(&mut b, false, None).unwrap();
        assert!(!exec.detected());
        assert_eq!(exec.ops, res.ops());
        for c in 0..16 {
            assert_eq!(a.peek(c), b.peek(c), "cell {c}");
        }
    }

    #[test]
    fn plane_scheme_rejects_empty() {
        assert!(matches!(PlaneScheme::new(poly(), vec![]), Err(PrtError::EmptyScheme)));
        let s = PlaneScheme::standard(poly(), 4, 3).unwrap();
        assert_eq!(s.rounds(), 3);
    }

    #[test]
    fn plane_scheme_fault_free_clean() {
        let s = PlaneScheme::standard(poly(), 8, 5).unwrap();
        let mut ram = Ram::new(Geometry::wom(30, 8).unwrap());
        let results = s.run(&mut ram).unwrap();
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|r| !r.detected()));
    }

    #[test]
    fn stuck_bit_detected_when_polarity_differs() {
        let pi = BitPlanePi::new(poly(), PlaneSeeding::Random { seed: 7 }).unwrap();
        let expect = pi.expected_sequence(15, 4);
        // Pick a cell/bit whose expected value is 1 and stick it at 0.
        let (cell, bit) = (0..15)
            .flat_map(|c| (0..4).map(move |b| (c, b)))
            .find(|&(c, b)| c >= 2 && (expect[c] >> b) & 1 == 1)
            .expect("some 1 bit exists");
        let mut ram = Ram::new(Geometry::wom(15, 4).unwrap());
        ram.inject(FaultKind::StuckAt { cell, bit, value: 0 }).unwrap();
        assert!(pi.run(&mut ram).unwrap().detected());
    }
}
