//! Multi-iteration PRT schemes — §3 of the paper.
//!
//! A single π-iteration is polarity- and transition-blind: a stuck-at fault
//! whose stuck value coincides with the TDB value at its cell, or a
//! transition fault whose blocked edge never occurs, escapes. The paper's
//! §3 states that *"all single and multi-cell memory faults are detected in
//! 3 π-test iterations with a specific TDB"*. This module provides the
//! scheme machinery, the computationally-derived standard schedules, and
//! the exhaustive TDB search that derived them (the specific TDB of the
//! paper's reference \[2\] is not public; we reconstruct it from the same
//! fault universe — see DESIGN.md).
//!
//! Two operating modes:
//!
//! * **plain** (`3n − 2` ops/iteration, the paper's complexity): full
//!   coverage of SAF, TF, CFst, AF, SOF and read/write-logic faults is
//!   achievable with the right TDB set, but inversion/idempotent coupling
//!   faults whose victim is *not adjacent* to the aggressor in the
//!   trajectory are structurally invisible — their corruption lands after
//!   the victim's operand reads and is overwritten before it is ever read
//!   again. Experiment E3 measures this gap.
//! * **pre-read** (`4n − 2` ops/iteration): each wave write first reads the
//!   stale cell and checks it against the previous iteration's expected
//!   contents, closing the blind spot; 3 iterations then suffice for the
//!   full universe, matching the paper's claim (at 4n, not 3n — a measured
//!   deviation recorded in EXPERIMENTS.md).

use crate::{PiResult, PiTest, PrtError, Trajectory};
use prt_gf::Field;
use prt_march::CoverageReport;
use prt_ram::{
    FaultKind, FaultUniverse, Geometry, MemoryDevice, ProgramBuilder, Ram, SlotOp, TestProgram,
};
use prt_sim::{Campaign, FaultRunner};

/// One iteration of a PRT scheme: seed, affine term and trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationSpec {
    /// The TDB seed `Init` (`k` field elements).
    pub init: Vec<u64>,
    /// Affine term added each step (complemented-TDB support).
    pub affine: u64,
    /// Cell-visit order.
    pub trajectory: Trajectory,
}

impl IterationSpec {
    /// An ascending iteration with no affine term.
    pub fn up(init: Vec<u64>) -> IterationSpec {
        IterationSpec { init, affine: 0, trajectory: Trajectory::Up }
    }

    /// A descending iteration with no affine term.
    pub fn down(init: Vec<u64>) -> IterationSpec {
        IterationSpec { init, affine: 0, trajectory: Trajectory::Down }
    }
}

/// A complete PRT scheme: shared automaton, several iterations.
///
/// # Example
///
/// ```
/// use prt_core::PrtScheme;
/// use prt_gf::Field;
/// use prt_ram::{FaultKind, Geometry, Ram};
///
/// let scheme = PrtScheme::standard3(Field::new(1, 0b11)?)?;
/// let mut ram = Ram::new(Geometry::bom(16));
/// ram.inject(FaultKind::Transition { cell: 9, bit: 0, rising: false })?;
/// assert!(scheme.run(&mut ram)?.detected());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrtScheme {
    field: Field,
    feedback: Vec<u64>,
    iterations: Vec<IterationSpec>,
    preread: bool,
    final_readback: bool,
    name: String,
}

/// Result of running a scheme: one [`PiResult`] per iteration plus the
/// optional final-readback verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeResult {
    iterations: Vec<PiResult>,
    readback_errors: u64,
    readback_ops: u64,
    readback_cycles: u64,
}

impl SchemeResult {
    /// Per-iteration outcomes.
    pub fn iterations(&self) -> &[PiResult] {
        &self.iterations
    }

    /// Mismatches found by the final readback sweep (0 when disabled).
    pub fn readback_errors(&self) -> u64 {
        self.readback_errors
    }

    /// `true` if any iteration or the final readback flagged the memory.
    pub fn detected(&self) -> bool {
        self.readback_errors > 0 || self.iterations.iter().any(PiResult::detected)
    }

    /// Index of the first detecting iteration.
    pub fn first_detection(&self) -> Option<usize> {
        self.iterations.iter().position(PiResult::detected)
    }

    /// Total operations across iterations (including the readback sweep).
    pub fn ops(&self) -> u64 {
        self.iterations.iter().map(PiResult::ops).sum::<u64>() + self.readback_ops
    }

    /// Total device cycles across iterations (including the readback —
    /// fewer cycles than reads on a multi-port readback sweep).
    pub fn cycles(&self) -> u64 {
        self.iterations.iter().map(PiResult::cycles).sum::<u64>() + self.readback_cycles
    }
}

impl PrtScheme {
    /// Builds a scheme from explicit iterations.
    ///
    /// # Errors
    ///
    /// * [`PrtError::EmptyScheme`] with no iterations.
    /// * LFSR validation errors for any malformed iteration.
    pub fn new(
        field: Field,
        feedback: &[u64],
        iterations: Vec<IterationSpec>,
    ) -> Result<PrtScheme, PrtError> {
        if iterations.is_empty() {
            return Err(PrtError::EmptyScheme);
        }
        for spec in &iterations {
            PiTest::new(field.clone(), feedback, &spec.init)?.with_affine(spec.affine)?;
        }
        Ok(PrtScheme {
            field,
            feedback: feedback.to_vec(),
            iterations,
            preread: false,
            final_readback: false,
            name: "PRT".to_string(),
        })
    }

    /// Enables or disables pre-read mode.
    pub fn with_preread(mut self, preread: bool) -> PrtScheme {
        self.preread = preread;
        self
    }

    /// Enables a final verification sweep: after the last iteration every
    /// cell is read once and compared with the expected final contents
    /// (`+n` reads). This observes corruption deposited *by* the last
    /// iteration, which no later pre-read would see.
    pub fn with_final_readback(mut self, on: bool) -> PrtScheme {
        self.final_readback = on;
        self
    }

    /// Sets a display name for reports.
    pub fn with_name(mut self, name: impl Into<String>) -> PrtScheme {
        self.name = name.into();
        self
    }

    /// The **standard 3-iteration scheme** reproducing the paper's §3
    /// claim ("all single and multi-cell memory faults are detected in 3
    /// π-test iterations with a specific TDB"): three pre-read π-iterations
    /// over the paper's own generator (`g = 1 + 2x + 2x²` for word widths,
    /// `g = 1 + x + x²` for bit-oriented memories), with the *complement
    /// iteration* in the middle:
    ///
    /// 1. `Init = (0, 1)`, plain (power-up contents unknown),
    /// 2. `Init = (¬0, ¬1)` with affine term `e = K·(1 ⊕ c1 ⊕ c2)`
    ///    (`K` = all-ones) — the exact complement of iteration 1, so every
    ///    cell transitions on every write,
    /// 3. `Init = (0, 1)` again — the complement of iteration 2,
    ///
    /// followed by a final readback sweep. The complement structure makes
    /// every cell flip in both directions inside the pre-read-observable
    /// window, giving **measured 100% coverage of SAF, TF, CFin, CFst, AF,
    /// SOF and the read/write-logic faults — but exactly 50% of CFid**:
    /// with three iterations, each (cell pair, trigger direction) has one
    /// observable trigger occurrence and therefore exposes only one of the
    /// two forced polarities. This gap is *structural* (no 3-iteration
    /// schedule closes it — [`search_tdb`] exhausts the space), which is
    /// the reproduction's honest verdict on the paper's §3 claim; see
    /// EXPERIMENTS.md E3. Use [`PrtScheme::standard4`] or
    /// [`PrtScheme::full_coverage`] to close the CFid gap.
    ///
    /// # Errors
    ///
    /// Field/LFSR validation errors (never for a well-formed field).
    pub fn standard3(field: Field) -> Result<PrtScheme, PrtError> {
        let mask = field.mask();
        let feedback: Vec<u64> = if field.degree() == 1 { vec![1, 1, 1] } else { vec![1, 2, 2] };
        let init: Vec<u64> = vec![0, 1];
        let compl: Vec<u64> = init.iter().map(|&s| s ^ mask).collect();
        // e = K·(1 ⊕ c1 ⊕ c2): the affine constant under which the
        // complemented sequence satisfies the same recurrence.
        let c_sum = field.add(1, field.add(feedback[1], feedback[2]));
        let e = field.mul(mask, c_sum);
        let iterations = vec![
            IterationSpec::up(init.clone()),
            IterationSpec { init: compl, affine: e, trajectory: Trajectory::Up },
            IterationSpec::up(init),
        ];
        Ok(PrtScheme::new(field, &feedback, iterations)?
            .with_preread(true)
            .with_final_readback(true)
            .with_name("PRT standard3 (pre-read)"))
    }

    /// The **standard 4-iteration scheme** — [`PrtScheme::standard3`] plus
    /// a second seed pair: patterns `V₁, ¬V₁, V₂, ¬V₂`. The extra pair
    /// gives every (aggressor, direction) a *second* same-direction trigger
    /// at the opposite victim polarity, which is exactly what idempotent
    /// coupling faults (CFid) need; 4 iterations achieve 100% on the full
    /// single- and multi-cell universe including CFid (machine-verified).
    ///
    /// See EXPERIMENTS.md E3 for the 3-vs-4-iteration coverage table and
    /// the argument why *no* 3-iteration schedule can cover all CFid under
    /// textbook fault semantics.
    ///
    /// # Errors
    ///
    /// Field/LFSR validation errors (never for a well-formed field).
    pub fn standard4(field: Field) -> Result<PrtScheme, PrtError> {
        let mask = field.mask();
        let feedback: Vec<u64> = if field.degree() == 1 { vec![1, 1, 1] } else { vec![1, 2, 2] };
        let c_sum = field.add(1, field.add(feedback[1], feedback[2]));
        let e = field.mul(mask, c_sum);
        let seed1: Vec<u64> = vec![0, 1];
        let seed1c: Vec<u64> = seed1.iter().map(|&s| s ^ mask).collect();
        let seed2: Vec<u64> = vec![1, 0];
        let seed2c: Vec<u64> = seed2.iter().map(|&s| s ^ mask).collect();
        let iterations = vec![
            IterationSpec::up(seed1.clone()),
            IterationSpec { init: seed1c, affine: e, trajectory: Trajectory::Up },
            IterationSpec::up(seed2),
            IterationSpec { init: seed2c, affine: e, trajectory: Trajectory::Up },
        ];
        Ok(PrtScheme::new(field, &feedback, iterations)?
            .with_preread(true)
            .with_final_readback(true)
            .with_name("PRT standard4 (pre-read)"))
    }

    /// Constructs a scheme with **verified 100% coverage** of the paper's
    /// single- and multi-cell fault universe on the given geometry, by
    /// stacking complement seed-pairs (`V, ¬V` iterations) until exhaustive
    /// fault simulation confirms completeness.
    ///
    /// Returns the scheme together with the universe size it was verified
    /// against. The iteration count starts at 3 (the paper's number) and
    /// grows only as far as the geometry demands — experiment E3 reports
    /// the measured count per memory size. Verification is exhaustive
    /// simulation (quadratic in `cells` for coupling faults), so this
    /// constructor is meant for BIST *configuration time*, not for each
    /// test run; keep `cells` moderate (≤ a few hundred) and reuse the
    /// returned scheme.
    ///
    /// # Errors
    ///
    /// * [`PrtError::WidthMismatch`] if the geometry's width differs from
    ///   the field degree.
    /// * [`PrtError::EmptyScheme`] if no complete scheme is found within
    ///   16 iterations (not observed for any geometry in the test suite).
    pub fn full_coverage(
        field: Field,
        geom: prt_ram::Geometry,
    ) -> Result<(PrtScheme, usize), PrtError> {
        use prt_ram::UniverseSpec;
        if geom.width() != field.degree() {
            return Err(PrtError::WidthMismatch {
                field_bits: field.degree(),
                memory_bits: geom.width(),
            });
        }
        let spec = UniverseSpec { intra_word: true, ..UniverseSpec::paper_claim() };
        let universe = FaultUniverse::enumerate(geom, &spec);
        // Surface runner errors (e.g. MemoryTooSmall) precisely, up front:
        // campaign runners map per-trial errors to escapes, which would
        // otherwise misreport an infrastructure failure as a greedy stall.
        PrtScheme::standard3(field.clone())?.run(&mut Ram::new(geom))?;
        let mask = field.mask();
        let feedback: Vec<u64> = if field.degree() == 1 { vec![1, 1, 1] } else { vec![1, 2, 2] };
        let c_sum = field.add(1, field.add(feedback[1], feedback[2]));
        let e = field.mul(mask, c_sum);

        // Candidate pool: canonical seeds × affine × trajectory, plus (for
        // word widths) deterministic pseudo-random seeds to decorrelate the
        // bit planes of the GF(2^m) sequences.
        let cb = checkerboard(field.degree());
        let mut seeds: Vec<Vec<u64>> = vec![vec![0, 1], vec![1, 0], vec![1, 1], vec![0, 0]];
        if field.degree() > 1 {
            seeds.push(vec![cb, cb ^ mask]);
            seeds.push(vec![cb ^ mask, cb]);
            seeds.push(vec![mask, 0]);
            seeds.push(vec![0, mask]);
            let mut rng = prt_ram::SplitMix64::new(0x5EED_7DB0);
            let mut attempts = 0;
            while seeds.len() < 20 && attempts < 256 {
                attempts += 1;
                let cand = vec![rng.next_u64() & mask, rng.next_u64() & mask];
                if !seeds.contains(&cand) {
                    seeds.push(cand);
                }
            }
        }
        let mut pool: Vec<IterationSpec> = Vec::new();
        for s in &seeds {
            for aff in [0, e] {
                for traj in [Trajectory::Up, Trajectory::Down] {
                    pool.push(IterationSpec { init: s.clone(), affine: aff, trajectory: traj });
                }
            }
        }

        // Start from the paper's 3-iteration schedule, then greedily append
        // the candidate that kills the most remaining escapes (set-cover
        // heuristic), re-verifying globally after each append because the
        // final-readback channel moves with the last iteration. Both the
        // global verification sweeps and the per-candidate kill counts run
        // compiled programs on the campaign engine (each candidate schedule
        // is lowered to the IR once, then swept over the whole escape set).
        let mut iterations = PrtScheme::standard3(field.clone())?.iterations.clone();
        let run_escapes = |iters: &[IterationSpec]| -> Result<Vec<usize>, PrtError> {
            let program = PrtScheme::new(field.clone(), &feedback, iters.to_vec())?
                .with_preread(true)
                .with_final_readback(true)
                .compile(geom)?;
            Ok(Campaign::new(&universe, &program).escapes())
        };
        let mut escapes = run_escapes(&iterations)?;
        while !escapes.is_empty() && iterations.len() < 32 {
            let escaped: Vec<FaultKind> =
                escapes.iter().map(|&fi| universe.faults()[fi].clone()).collect();
            let mut best: Option<(usize, usize)> = None; // (pool idx, kills)
            for (ci, cand) in pool.iter().enumerate() {
                let mut trial = iterations.clone();
                trial.push(cand.clone());
                let program = PrtScheme::new(field.clone(), &feedback, trial)?
                    .with_preread(true)
                    .with_final_readback(true)
                    .compile(geom)?;
                let kills = Campaign::over(geom, &escaped, &program).count_detected();
                if best.is_none_or(|(_, k)| kills > k) {
                    best = Some((ci, kills));
                }
            }
            let (ci, kills) = best.expect("pool is non-empty");
            if kills == 0 {
                return Err(PrtError::EmptyScheme); // greedy stalled
            }
            iterations.push(pool[ci].clone());
            escapes = run_escapes(&iterations)?;
        }
        if !escapes.is_empty() {
            return Err(PrtError::EmptyScheme);
        }
        let t = iterations.len();
        let scheme = PrtScheme::new(field, &feedback, iterations)?
            .with_preread(true)
            .with_final_readback(true)
            .with_name(format!("PRT full ×{t}"));
        Ok((scheme, universe.len()))
    }

    /// The **plain-mode schedule** at the paper's `3n` per-iteration cost:
    /// `iters` iterations drawn from a complement-pair TDB table (each
    /// seed followed by its complemented-affine twin, alternating ⇑/⇓
    /// between pairs). Every cell sees both logic values and both write
    /// transitions, so SAF and TF reach full coverage from 2 iterations on;
    /// coupling coverage is structurally partial in this mode (see module
    /// docs) — that gap is precisely what experiment E3 measures.
    ///
    /// # Errors
    ///
    /// [`PrtError::EmptyScheme`] when `iters == 0`; field validation
    /// otherwise.
    pub fn plain(field: Field, iters: usize) -> Result<PrtScheme, PrtError> {
        let mask = field.mask();
        let feedback: Vec<u64> = if field.degree() == 1 { vec![1, 1, 1] } else { vec![1, 2, 2] };
        let c_sum = field.add(1, field.add(feedback[1], feedback[2]));
        let e = field.mul(mask, c_sum);
        let seeds: [[u64; 2]; 3] = [[0, 1], [1, 0], [1, 1]];
        let mut table: Vec<IterationSpec> = Vec::new();
        for (si, s) in seeds.iter().enumerate() {
            let traj = if si % 2 == 0 { Trajectory::Up } else { Trajectory::Down };
            table.push(IterationSpec { init: s.to_vec(), affine: 0, trajectory: traj });
            table.push(IterationSpec {
                init: s.iter().map(|&v| v ^ mask).collect(),
                affine: e,
                trajectory: traj,
            });
        }
        let iterations: Vec<IterationSpec> = table.into_iter().cycle().take(iters).collect();
        let name = format!("PRT plain ×{iters}");
        Ok(PrtScheme::new(field, &feedback, iterations)?.with_name(name))
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Feedback polynomial coefficients `[g0, …, gk]`.
    pub fn feedback(&self) -> &[u64] {
        &self.feedback
    }

    /// The iteration specs.
    pub fn iterations(&self) -> &[IterationSpec] {
        &self.iterations
    }

    /// `true` when pre-read mode is enabled.
    pub fn preread(&self) -> bool {
        self.preread
    }

    /// Operations per memory cell (the `k` of `kn`): `(k+1)` per plain
    /// iteration, `(k+2)` per pre-read iteration (first iteration always
    /// runs plain), `+1` for the final readback sweep.
    pub fn ops_per_cell(&self) -> usize {
        let k = self.feedback.len() - 1;
        let plain = k + 1;
        let pre = k + 2;
        let body = if self.preread {
            plain + pre * (self.iterations.len() - 1)
        } else {
            plain * self.iterations.len()
        };
        body + usize::from(self.final_readback)
    }

    /// Runs all iterations back-to-back on `mem`.
    ///
    /// In pre-read mode, iteration `j > 0` checks every stale cell against
    /// the expected contents left by iteration `j − 1`; the first iteration
    /// runs plain (power-up contents are unknown).
    ///
    /// # Errors
    ///
    /// Geometry/port errors from the underlying [`PiTest`] runs.
    pub fn run<M: MemoryDevice>(&self, mem: &mut M) -> Result<SchemeResult, PrtError> {
        let n = mem.geometry().cells();
        let mut results = Vec::with_capacity(self.iterations.len());
        let mut prev_contents: Option<Vec<u64>> = None;
        for spec in &self.iterations {
            let pi = self.pi_for(spec)?;
            let res = if self.preread {
                pi.run_with_preread(mem, prev_contents.as_deref())?
            } else {
                pi.run(mem)?
            };
            results.push(res);
            prev_contents = Some(self.expected_contents(&pi, n));
        }
        let (readback_errors, readback_ops) = if self.final_readback {
            let expected = prev_contents.expect("at least one iteration ran");
            let mut errors = 0u64;
            for (addr, &want) in expected.iter().enumerate() {
                if mem.read(addr) != want {
                    errors += 1;
                }
            }
            (errors, n as u64)
        } else {
            (0, 0)
        };
        Ok(SchemeResult {
            iterations: results,
            readback_errors,
            readback_ops,
            readback_cycles: readback_ops,
        })
    }

    /// Compiles the whole scheme for `geom` into **one flat single-port
    /// [`TestProgram`]**: every iteration's π-ops back to back (stale
    /// expectations baked in when pre-read mode is on; the first iteration
    /// always runs plain), followed by the final-readback sweep when
    /// enabled. One marker per iteration (the readback gets the next id).
    ///
    /// The program is verdict-identical to [`PrtScheme::run`]
    /// (property-tested); campaigns compile once and run it per trial —
    /// this is what [`PrtScheme::coverage`] and the greedy
    /// [`PrtScheme::full_coverage`] synthesis execute.
    ///
    /// # Errors
    ///
    /// As [`PrtScheme::run`] (geometry validation).
    pub fn compile(&self, geom: Geometry) -> Result<TestProgram, PrtError> {
        let mut b = ProgramBuilder::new(geom).with_name(self.name.clone());
        let prev = self.compile_iterations_into(&mut b, geom, false)?;
        if self.final_readback {
            b.mark(self.iterations.len() as u32);
            for (addr, &want) in prev.iter().enumerate() {
                b.read_expect(addr, want);
            }
        }
        Ok(b.build())
    }

    /// Compiles the scheme's dual-port schedule into one flat two-port
    /// [`TestProgram`]. In pre-read mode every wave write fuses its stale
    /// check into the write cycle ([`PiTest::compile_dual_port`]), so the
    /// pre-read schedule runs at plain-mode cycle cost (`≈ 2n` per
    /// iteration instead of the single-port pre-read's `4n` operations) —
    /// the dual-port pre-read scheduling mode, realised as a program
    /// transformation. The final readback, when enabled, pairs its reads
    /// two per cycle (`⌈n/2⌉` cycles).
    ///
    /// # Errors
    ///
    /// As [`PrtScheme::run`] (geometry validation).
    pub fn compile_dual_port(&self, geom: Geometry) -> Result<TestProgram, PrtError> {
        let mut b = ProgramBuilder::new(geom).with_name(format!("{} (dual-port)", self.name));
        let prev = self.compile_iterations_into(&mut b, geom, true)?;
        if self.final_readback {
            b.mark(self.iterations.len() as u32);
            compile_dual_readback_into(&mut b, &prev);
        }
        Ok(b.build())
    }

    /// The scheme's iteration-threading policy in ONE place: walks the
    /// iterations in order, handing each one's `PiTest` and stale
    /// expectations (the previous iteration's fault-free contents in
    /// pre-read mode; the first iteration always runs plain) to `visit`.
    /// Returns the expected memory contents after the last iteration (the
    /// readback expectations). Shared by the flat compilers and
    /// [`PrtScheme::run_dual_port`] so single-run and campaign paths can
    /// never drift apart.
    fn for_each_iteration<F>(&self, n: usize, mut visit: F) -> Result<Vec<u64>, PrtError>
    where
        F: FnMut(usize, &PiTest, Option<&[u64]>) -> Result<(), PrtError>,
    {
        let mut prev: Option<Vec<u64>> = None;
        for (j, spec) in self.iterations.iter().enumerate() {
            let pi = self.pi_for(spec)?;
            let stale = if self.preread { prev.as_deref() } else { None };
            visit(j, &pi, stale)?;
            prev = Some(self.expected_contents(&pi, n));
        }
        Ok(prev.expect("schemes have at least one iteration"))
    }

    /// Appends every iteration's ops to `b`; returns the expected memory
    /// contents after the last iteration (the readback expectations).
    fn compile_iterations_into(
        &self,
        b: &mut ProgramBuilder,
        geom: Geometry,
        dual_port: bool,
    ) -> Result<Vec<u64>, PrtError> {
        self.for_each_iteration(geom.cells(), |j, pi, stale| {
            b.mark(j as u32);
            if dual_port {
                pi.compile_dual_into(b, geom, stale)
            } else {
                pi.compile_into(b, geom, stale)
            }
        })
    }

    /// Runs all iterations with the dual-port schedule, executing the
    /// compiled per-iteration programs of [`PiTest::compile_dual_port`].
    /// In pre-read mode (e.g. [`PrtScheme::standard3`]) the stale checks
    /// ride inside the write cycles — the pre-read scheduling the
    /// single-port path pays `4n` operations for comes at plain-mode
    /// dual-port cycle cost. The final readback, when enabled, reads two
    /// cells per cycle.
    ///
    /// # Errors
    ///
    /// Geometry/port errors from the underlying compiled programs.
    pub fn run_dual_port(&self, ram: &mut Ram) -> Result<SchemeResult, PrtError> {
        let geom = ram.geometry();
        let n = geom.cells();
        let mut results = Vec::with_capacity(self.iterations.len());
        let mut fin = Vec::new();
        let expected = self.for_each_iteration(n, |_, pi, stale| {
            let program = pi.compile_dual_port(geom, stale)?;
            if ram.ports() < 2 {
                return Err(PrtError::NotEnoughPorts { have: ram.ports(), need: 2 });
            }
            let exec = program.execute(ram, false, Some(&mut fin))?;
            results.push(PiResult::from_execution(fin.clone(), pi.fin_star(n), &exec));
            Ok(())
        })?;
        let (readback_errors, readback_ops, readback_cycles) = if self.final_readback {
            let mut b = ProgramBuilder::new(geom).with_name("readback");
            compile_dual_readback_into(&mut b, &expected);
            let exec = b.build().execute(ram, false, None)?;
            (exec.mismatches, exec.ops, exec.cycles)
        } else {
            (0, 0, 0)
        };
        Ok(SchemeResult { iterations: results, readback_errors, readback_ops, readback_cycles })
    }

    fn pi_for(&self, spec: &IterationSpec) -> Result<PiTest, PrtError> {
        Ok(PiTest::new(self.field.clone(), &self.feedback, &spec.init)?
            .with_affine(spec.affine)?
            .with_trajectory(spec.trajectory))
    }

    /// Expected memory contents **by address** after a fault-free run of
    /// `pi` on an `n`-cell memory.
    fn expected_contents(&self, pi: &PiTest, n: usize) -> Vec<u64> {
        let order = pi.trajectory().order(n);
        let seq = pi.expected_sequence(n);
        let mut by_addr = vec![0u64; n];
        for (pos, &cell) in order.iter().enumerate() {
            by_addr[cell] = seq[pos];
        }
        by_addr
    }

    /// Measures this scheme's coverage over a fault universe, in the same
    /// report format as the March engine (E3/E4 driver). Runs the
    /// **compiled** scheme program on the campaign engine (pooled
    /// memories, parallel fan-out, deterministic aggregation): the
    /// iteration specs are lowered to the IR once, then every trial is a
    /// pure interpreter pass. A scheme the geometry cannot host falls
    /// back to the interpreted runner, whose per-trial errors count as
    /// escapes — the historical convention.
    pub fn coverage(&self, universe: &FaultUniverse) -> CoverageReport {
        match self.compile(universe.geometry()) {
            Ok(program) => Campaign::new(universe, &program).with_name(self.name.clone()).run(),
            Err(_) => Campaign::new(universe, self).with_name(self.name.clone()).run(),
        }
    }
}

/// PRT schemes drive campaigns directly; a run error (e.g. a memory too
/// small for the automaton) counts as an escape, mirroring the historical
/// sweep loops.
impl FaultRunner for &PrtScheme {
    fn detect(&self, ram: &mut Ram, _background: u64) -> bool {
        self.run(ram).map(|res| res.detected()).unwrap_or(false)
    }
}

/// Appends the dual-port final-readback sweep to `b`: every cell read
/// once on the verdict channel, paired two per cycle (`⌈n/2⌉` cycles).
/// Shared by the flat scheme compiler and `run_dual_port`'s per-segment
/// execution so the two can never drift apart.
fn compile_dual_readback_into(b: &mut ProgramBuilder, expected: &[u64]) {
    b.cycle2_pairs(
        expected
            .iter()
            .enumerate()
            .map(|(addr, &expect)| SlotOp::ReadExpect { addr: addr as u32, expect }),
    );
}

/// Checkerboard pattern `…0101` of the given bit width.
fn checkerboard(width: u32) -> u64 {
    let mut p = 0u64;
    let mut b = 0;
    while b < width {
        p |= 1 << b;
        b += 2;
    }
    p
}

/// Exhaustively searches TDB schedules of `iters` iterations for the one
/// with the highest coverage on `universe` (ties broken toward earlier
/// candidates). Candidate seeds are drawn from `seed_pool` (each a `k`-
/// element init), affine terms from `{0}`, trajectories from `{⇑, ⇓}`.
///
/// Returns `(best_scheme, best_report)`. This is the derivation tool behind
/// [`PrtScheme::standard3`]; the `search_tdb` binary in `prt-bench` prints
/// its trace.
pub fn search_tdb(
    field: &Field,
    feedback: &[u64],
    seed_pool: &[Vec<u64>],
    iters: usize,
    preread: bool,
    universe: &FaultUniverse,
) -> Option<(PrtScheme, CoverageReport)> {
    let mut candidates: Vec<IterationSpec> = Vec::new();
    for init in seed_pool {
        for traj in [Trajectory::Up, Trajectory::Down] {
            candidates.push(IterationSpec { init: init.clone(), affine: 0, trajectory: traj });
        }
    }
    let mut best: Option<(PrtScheme, CoverageReport, f64)> = None;
    let mut stack = vec![0usize; iters];
    loop {
        let specs: Vec<IterationSpec> = stack.iter().map(|&i| candidates[i].clone()).collect();
        if let Ok(scheme) = PrtScheme::new(field.clone(), feedback, specs) {
            let scheme = scheme
                .with_preread(preread)
                .with_final_readback(preread)
                .with_name(format!("search {stack:?}"));
            let report = scheme.coverage(universe);
            let pct = report.overall_percent();
            let better = match &best {
                Some((_, _, b)) => pct > *b,
                None => true,
            };
            if better {
                let complete = report.complete();
                best = Some((scheme, report, pct));
                if complete {
                    break; // cannot improve on 100%
                }
            }
        }
        // Odometer increment.
        let mut pos = iters;
        loop {
            if pos == 0 {
                let (s, r, _) = best?;
                return Some((s, r));
            }
            pos -= 1;
            stack[pos] += 1;
            if stack[pos] < candidates.len() {
                break;
            }
            stack[pos] = 0;
        }
    }
    best.map(|(s, r, _)| (s, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_ram::{FaultKind, Geometry, UniverseSpec};

    fn gf2() -> Field {
        Field::new(1, 0b11).unwrap()
    }

    #[test]
    fn scheme_construction_validates() {
        assert!(matches!(PrtScheme::new(gf2(), &[1, 1, 1], vec![]), Err(PrtError::EmptyScheme)));
        assert!(PrtScheme::new(gf2(), &[1, 1, 1], vec![IterationSpec::up(vec![0, 1])]).is_ok());
        // Bad init length rejected.
        assert!(PrtScheme::new(gf2(), &[1, 1, 1], vec![IterationSpec::up(vec![0])]).is_err());
    }

    #[test]
    fn fault_free_memory_passes_standard3() {
        let scheme = PrtScheme::standard3(gf2()).unwrap();
        let mut ram = Ram::new(Geometry::bom(24));
        let res = scheme.run(&mut ram).unwrap();
        assert!(!res.detected());
        assert_eq!(res.first_detection(), None);
        assert_eq!(res.iterations().len(), 3);
    }

    #[test]
    fn standard3_covers_everything_but_half_of_cfid() {
        // THE §3 CLAIM, measured: the paper states all single- and
        // multi-cell faults are detected in 3 iterations. Under textbook
        // fault semantics every class reproduces EXCEPT idempotent
        // coupling: with 3 iterations each (pair, trigger-direction) has
        // exactly one observable occurrence, hence covers exactly one of
        // the two forced polarities — 50% of CFid, structurally
        // (EXPERIMENTS.md E3 documents the argument).
        let scheme = PrtScheme::standard3(gf2()).unwrap();
        let u = FaultUniverse::enumerate(Geometry::bom(9), &UniverseSpec::paper_claim());
        let report = scheme.coverage(&u);
        for row in report.rows() {
            if row.class == "CFid" {
                assert_eq!(
                    row.detected * 2,
                    row.total,
                    "CFid coverage should be exactly half: {}/{}",
                    row.detected,
                    row.total
                );
            } else {
                assert!(row.complete(), "{}: {}/{} detected", row.class, row.detected, row.total);
            }
        }
    }

    #[test]
    fn standard3_wom_covers_everything_but_cfid() {
        let field = Field::new(4, 0b1_0011).unwrap();
        let scheme = PrtScheme::standard3(field).unwrap();
        let spec = UniverseSpec {
            coupling_radius: Some(3),
            intra_word: true,
            ..UniverseSpec::paper_claim()
        };
        let u = FaultUniverse::enumerate(Geometry::wom(9, 4).unwrap(), &spec);
        let report = scheme.coverage(&u);
        for row in report.rows() {
            match row.class {
                // The 3-iteration structural gap (as in the BOM case)…
                "CFid" => {
                    assert!(!row.complete(), "CFid has a structural 3-iteration gap");
                    assert!(row.percent() > 30.0, "CFid far too low: {}", row.percent());
                }
                // …plus the word-oriented finding: *intra-word* state
                // coupling between lockstep-correlated bit planes is only
                // half-visible; the paper's own remedy is the §2
                // decorrelated ("random") plane seeding measured in E4.
                "CFst" => {
                    assert!(row.percent() > 80.0, "CFst unexpectedly low: {}", row.percent());
                }
                _ => assert!(
                    row.complete(),
                    "{}: {}/{} detected",
                    row.class,
                    row.detected,
                    row.total
                ),
            }
        }
    }

    #[test]
    fn standard4_narrows_the_cfid_gap() {
        let u = FaultUniverse::enumerate(Geometry::bom(9), &UniverseSpec::paper_claim());
        let r3 = PrtScheme::standard3(gf2()).unwrap().coverage(&u);
        let r4 = PrtScheme::standard4(gf2()).unwrap().coverage(&u);
        let (c3, c4) = (r3.class("CFid").unwrap(), r4.class("CFid").unwrap());
        assert!(c4.detected > c3.detected, "4 iterations must beat 3 on CFid");
        for row in r4.rows() {
            if row.class != "CFid" {
                assert!(row.complete(), "{}: {}/{}", row.class, row.detected, row.total);
            }
        }
    }

    #[test]
    fn full_coverage_synthesis_reaches_100_percent_bom() {
        // Greedy TDB synthesis: 5 pre-read iterations cover the whole
        // universe (size-independent; see fig/table E3).
        let (scheme, verified) = PrtScheme::full_coverage(gf2(), Geometry::bom(9)).unwrap();
        assert!(verified > 700);
        assert!(scheme.iterations().len() <= 6);
        let u = FaultUniverse::enumerate(Geometry::bom(9), &UniverseSpec::paper_claim());
        assert!(scheme.coverage(&u).complete());
    }

    #[test]
    fn full_coverage_surfaces_memory_too_small() {
        // The campaign runner maps per-trial run errors to escapes, so the
        // synthesis probes the geometry up front: a memory too small for
        // the automaton must surface as the precise error, not as a stall.
        assert!(matches!(
            PrtScheme::full_coverage(gf2(), Geometry::bom(2)),
            Err(PrtError::MemoryTooSmall { .. })
        ));
    }

    #[test]
    fn plain_mode_covers_saf_tf_but_not_couplings() {
        let scheme = PrtScheme::plain(gf2(), 4).unwrap();
        let u = FaultUniverse::enumerate(Geometry::bom(9), &UniverseSpec::paper_claim());
        let report = scheme.coverage(&u);
        for class in ["SAF", "TF"] {
            let row = report.class(class).unwrap();
            assert!(row.complete(), "{class}: {}/{}", row.detected, row.total);
        }
        // The structural blind spot: distant CFin/CFid escape plain mode.
        let cfin = report.class("CFin").unwrap();
        assert!(
            !cfin.complete(),
            "plain mode should NOT fully cover CFin (got {}/{})",
            cfin.detected,
            cfin.total
        );
    }

    #[test]
    fn preread_ops_per_cell_accounting() {
        let s3 = PrtScheme::standard3(gf2()).unwrap();
        // plain first iteration (3) + two pre-read iterations (4 each)
        // + the final readback sweep (1).
        assert_eq!(s3.ops_per_cell(), 12);
        let p2 = PrtScheme::plain(gf2(), 2).unwrap();
        assert_eq!(p2.ops_per_cell(), 6);
    }

    #[test]
    fn measured_ops_match_ops_per_cell() {
        let n = 16usize;
        for scheme in [PrtScheme::standard3(gf2()).unwrap(), PrtScheme::plain(gf2(), 3).unwrap()] {
            let mut ram = Ram::new(Geometry::bom(n));
            let res = scheme.run(&mut ram).unwrap();
            let per_cell = scheme.ops_per_cell() as u64;
            // Exact op count differs from per-cell × n only by boundary
            // terms (±k per iteration).
            let slack = 4 * scheme.iterations().len() as u64;
            assert!(
                res.ops().abs_diff(per_cell * n as u64) <= slack,
                "{}: {} vs {}",
                scheme.name(),
                res.ops(),
                per_cell * n as u64
            );
        }
    }

    #[test]
    fn scheme_result_aggregation() {
        let scheme = PrtScheme::plain(gf2(), 2).unwrap();
        let mut ram = Ram::new(Geometry::bom(8));
        ram.inject(FaultKind::StuckAt { cell: 4, bit: 0, value: 1 }).unwrap();
        let res = scheme.run(&mut ram).unwrap();
        assert!(res.detected());
        assert!(res.first_detection().is_some());
        assert!(res.ops() > 0 && res.cycles() > 0);
    }

    #[test]
    fn dual_port_scheme_runs() {
        let scheme = PrtScheme::plain(gf2(), 3).unwrap();
        let mut ram = Ram::with_ports(Geometry::bom(12), 2).unwrap();
        let res = scheme.run_dual_port(&mut ram).unwrap();
        assert!(!res.detected());
        // 3 iterations × (2n − 2) cycles.
        assert_eq!(res.cycles(), 3 * (2 * 12 - 2));
    }

    #[test]
    fn compiled_scheme_matches_interpreted_over_universe() {
        // The coverage path now executes the compiled flat program; the
        // interpreted runner must agree on every single verdict.
        let u = FaultUniverse::enumerate(Geometry::bom(9), &UniverseSpec::paper_claim());
        for scheme in [
            PrtScheme::standard3(gf2()).unwrap(),
            PrtScheme::standard4(gf2()).unwrap(),
            PrtScheme::plain(gf2(), 4).unwrap(),
        ] {
            let program = scheme.compile(u.geometry()).unwrap();
            let compiled = Campaign::new(&u, &program).detections();
            let interpreted = Campaign::new(&u, &scheme).detections();
            assert_eq!(compiled, interpreted, "{}", scheme.name());
        }
    }

    #[test]
    fn compiled_scheme_program_structure() {
        let scheme = PrtScheme::standard3(gf2()).unwrap();
        let geom = Geometry::bom(16);
        let program = scheme.compile(geom).unwrap();
        // One marker per iteration plus the readback sweep.
        assert_eq!(program.marks().len(), 4);
        assert_eq!(program.ports(), 1);
        // Fault-free execution is clean and costs what run() costs.
        let mut ram = Ram::new(geom);
        let exec = program.execute(&mut ram, false, None).unwrap();
        assert!(!exec.detected());
        let mut ram2 = Ram::new(geom);
        let res = scheme.run(&mut ram2).unwrap();
        assert_eq!(exec.ops, res.ops());
        assert_eq!(exec.cycles, res.cycles());
    }

    #[test]
    fn dual_port_preread_closes_the_distant_coupling_blind_spot() {
        // THE ROADMAP ITEM: pre-read scheduling on two ports. A distant
        // inversion coupling (aggressor far after the victim in the
        // trajectory) structurally escapes plain-mode schedules; the
        // pre-read program transformation catches it — now on the
        // dual-port schedule too, at plain-mode cycle cost.
        let n = 16usize;
        let fault = FaultKind::CouplingInversion {
            agg_cell: 12,
            agg_bit: 0,
            victim_cell: 3,
            victim_bit: 0,
            trigger: prt_ram::CouplingTrigger::Rise,
        };
        let plain = PrtScheme::plain(gf2(), 3).unwrap();
        let mut ram = Ram::with_ports(Geometry::bom(n), 2).unwrap();
        ram.inject(fault.clone()).unwrap();
        let res = plain.run_dual_port(&mut ram).unwrap();
        assert!(!res.detected(), "distant CFin must escape the plain dual-port schedule");

        let preread = PrtScheme::standard3(gf2()).unwrap();
        let mut ram = Ram::with_ports(Geometry::bom(n), 2).unwrap();
        ram.inject(fault).unwrap();
        let res = preread.run_dual_port(&mut ram).unwrap();
        assert!(res.detected(), "dual-port pre-read must catch the distant CFin");
        // Cycle budget: 3 iterations (first plain: 2n−2; two pre-read:
        // 2n−1 each) + paired readback (⌈n/2⌉).
        let expected = (2 * n as u64 - 2) + 2 * (2 * n as u64 - 1) + n.div_ceil(2) as u64;
        assert_eq!(res.cycles(), expected);
    }

    #[test]
    fn dual_port_preread_matches_single_port_verdicts() {
        // Verdict parity between the single-port pre-read scheme and its
        // dual-port compilation over the whole paper-claim universe.
        let u = FaultUniverse::enumerate(Geometry::bom(9), &UniverseSpec::paper_claim());
        let scheme = PrtScheme::standard3(gf2()).unwrap();
        let single = Campaign::new(&u, &scheme).detections();
        let dual_prog = scheme.compile_dual_port(u.geometry()).unwrap();
        let dual = Campaign::new(&u, &dual_prog).with_ports(2).detections();
        // The two schedules are not observation-identical: a dual-port
        // cycle commits simultaneous writes in port order, which decoder
        // (AF) faults can observe. Everything outside AF must agree
        // verdict-for-verdict, and the disagreements must stay rare.
        let disagreements: Vec<usize> = single
            .iter()
            .zip(&dual)
            .enumerate()
            .filter_map(|(i, (s, d))| (s != d).then_some(i))
            .collect();
        for &i in &disagreements {
            assert_eq!(
                u.faults()[i].mnemonic(),
                "AF",
                "only decoder faults may be schedule-sensitive: {:?}",
                u.faults()[i]
            );
        }
        assert!(disagreements.len() <= u.len() / 100, "{} disagreements", disagreements.len());
    }

    #[test]
    fn checkerboard_patterns() {
        assert_eq!(checkerboard(1), 0b1);
        assert_eq!(checkerboard(4), 0b0101);
        assert_eq!(checkerboard(8), 0b0101_0101);
    }

    #[test]
    fn search_finds_complete_scheme_on_tiny_universe() {
        // Smoke test of the derivation tool on a small universe.
        let field = gf2();
        let pool = vec![vec![0, 1], vec![1, 0], vec![1, 1], vec![0, 0]];
        let u = FaultUniverse::enumerate(Geometry::bom(6), &UniverseSpec::single_cell());
        let found = search_tdb(&field, &[1, 1, 1], &pool, 3, true, &u);
        let (_, report) = found.expect("search returns something");
        assert!(report.complete(), "3 pre-read iterations must cover SAF+TF");
    }
}
