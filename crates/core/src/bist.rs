//! Gate-level hardware-overhead model — §4 of the paper.
//!
//! "To implement π-test technique for 2P memories an additional hardware
//! overhead on RAM chip area is need: 'conversion' of the existent address
//! registers into counters and a specific XOR-logic. The ponder of the
//! hardware overhead in comparison with the memory capacity is of an order
//! < 2⁻²⁰."
//!
//! The model counts the PRT BIST structures in gates and converts them to
//! transistor equivalents using standard static-CMOS costs, then divides by
//! the 6T-SRAM array. The comparison point is a conventional March BIST
//! (pattern generator + response comparator + data register), quantifying
//! the paper's "testing memory by its own components" advantage: PRT needs
//! no pattern ROM and no response compactor because the array itself stores
//! both the stimulus and the signature.

use prt_gf::{mult_synth, Field, SynthesisStrategy};
use prt_ram::Geometry;

/// Transistor costs of standard static-CMOS cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLibrary {
    /// 2-input XOR.
    pub xor2: u64,
    /// 2-input AND/OR.
    pub and2: u64,
    /// Inverter.
    pub not1: u64,
    /// D flip-flop with enable.
    pub dff: u64,
    /// Transistors per SRAM bit cell.
    pub sram_bit: u64,
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary { xor2: 8, and2: 6, not1: 2, dff: 24, sram_bit: 6 }
    }
}

/// Gate inventory of a BIST controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCount {
    /// 2-input XOR gates.
    pub xor2: u64,
    /// 2-input AND/OR gates.
    pub and2: u64,
    /// Inverters.
    pub not1: u64,
    /// Flip-flops.
    pub dff: u64,
}

impl GateCount {
    /// Total transistor equivalent under a cell library.
    pub fn transistors(&self, lib: &CellLibrary) -> u64 {
        self.xor2 * lib.xor2 + self.and2 * lib.and2 + self.not1 * lib.not1 + self.dff * lib.dff
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &GateCount) -> GateCount {
        GateCount {
            xor2: self.xor2 + other.xor2,
            and2: self.and2 + other.and2,
            not1: self.not1 + other.not1,
            dff: self.dff + other.dff,
        }
    }
}

/// Overhead model of the PRT BIST for a given memory and automaton.
#[derive(Debug, Clone)]
pub struct PrtBist {
    geometry: Geometry,
    gates: GateCount,
    library: CellLibrary,
}

impl PrtBist {
    /// Builds the model for a memory of `geometry` running a `k`-stage
    /// automaton over `field` with feedback coefficients `g = [g0, …, gk]`.
    ///
    /// Structures counted (paper §4):
    ///
    /// * address-counter conversion: the address *registers* already exist
    ///   in the RAM; PRT adds an increment path of one half-adder
    ///   (XOR + AND) per address bit — this is the "conversion of the
    ///   existent address registers into counters",
    /// * the feedback XOR word-adder: `(taps − 1)·m` XOR gates,
    /// * the constant-multiplier networks for the non-trivial `g_i`,
    ///   synthesized with greedy CSE ([`mult_synth`], claim C5),
    /// * the `Fin/Fin*` comparator: `k·m` XNOR (XOR+INV) into an AND tree,
    /// * a small control FSM (state register + decode), a fixed 8 DFF +
    ///   16 AND + 8 INV.
    ///
    /// PRT deliberately has **no** pattern generator LFSR and **no** MISR:
    /// the memory array itself plays both roles.
    pub fn new(geometry: Geometry, field: &Field, g: &[u64]) -> PrtBist {
        let m = u64::from(field.degree());
        let k = (g.len() - 1) as u64;
        let addr_bits = (usize::BITS - (geometry.cells() - 1).leading_zeros()) as u64;

        let mut gates = GateCount::default();
        // Address counter conversion: half-adder per bit.
        gates.xor2 += addr_bits;
        gates.and2 += addr_bits;
        // Feedback combiner: (#non-zero taps − 1) word XORs.
        let taps = g[1..].iter().filter(|&&c| c != 0).count() as u64;
        gates.xor2 += taps.saturating_sub(1) * m;
        // Constant multipliers for non-trivial coefficients.
        for &c in &g[1..] {
            if c > 1 {
                let net = mult_synth::for_constant(field, c, SynthesisStrategy::Paar);
                gates.xor2 += net.gate_count() as u64;
            }
        }
        // Fin comparator: k·m XNOR + AND tree.
        gates.xor2 += k * m;
        gates.not1 += k * m;
        gates.and2 += (k * m).saturating_sub(1);
        // Fin* holding register (k·m flip-flops, loaded from scan/fuse).
        gates.dff += k * m;
        // Control FSM.
        gates.dff += 8;
        gates.and2 += 16;
        gates.not1 += 8;

        PrtBist { geometry, gates, library: CellLibrary::default() }
    }

    /// Overrides the cell library.
    pub fn with_library(mut self, library: CellLibrary) -> PrtBist {
        self.library = library;
        self
    }

    /// The gate inventory.
    pub fn gates(&self) -> GateCount {
        self.gates
    }

    /// BIST transistor count.
    pub fn bist_transistors(&self) -> u64 {
        self.gates.transistors(&self.library)
    }

    /// Memory-array transistor count (6T SRAM by default).
    pub fn array_transistors(&self) -> u128 {
        self.geometry.capacity_bits() * u128::from(self.library.sram_bit)
    }

    /// The paper's "ponder": BIST transistors / array transistors.
    pub fn overhead_ratio(&self) -> f64 {
        self.bist_transistors() as f64 / self.array_transistors() as f64
    }

    /// `true` when the overhead satisfies the paper's `< 2⁻²⁰` claim.
    pub fn meets_paper_bound(&self) -> bool {
        self.overhead_ratio() < (0.5f64).powi(20)
    }
}

/// Overhead model of a conventional March BIST, for comparison: adds a
/// pattern/data register, expected-data generator and response comparator
/// on top of the same address counter and control.
#[derive(Debug, Clone)]
pub struct MarchBist {
    geometry: Geometry,
    gates: GateCount,
    library: CellLibrary,
}

impl MarchBist {
    /// Builds the March BIST model for a memory of `geometry`.
    ///
    /// Counted: full address counter (registers + increment — a March BIST
    /// cannot reuse the RAM's address register because it must also hold
    /// element state), data-background register (`m` DFF), expected-value
    /// comparator (`m` XNOR + AND tree), element sequencer (16 DFF + decode).
    pub fn new(geometry: Geometry) -> MarchBist {
        let m = u64::from(geometry.width());
        let addr_bits = (usize::BITS - (geometry.cells() - 1).leading_zeros()) as u64;
        let mut gates = GateCount::default();
        gates.dff += addr_bits; // dedicated counter register
        gates.xor2 += addr_bits;
        gates.and2 += addr_bits;
        gates.dff += m; // data background register
        gates.xor2 += m; // comparator XNOR
        gates.not1 += m;
        gates.and2 += m.saturating_sub(1);
        gates.dff += 16; // element sequencer
        gates.and2 += 32;
        gates.not1 += 16;
        MarchBist { geometry, gates, library: CellLibrary::default() }
    }

    /// The gate inventory.
    pub fn gates(&self) -> GateCount {
        self.gates
    }

    /// BIST transistor count.
    pub fn bist_transistors(&self) -> u64 {
        self.gates.transistors(&self.library)
    }

    /// Overhead ratio against the same 6T array.
    pub fn overhead_ratio(&self) -> f64 {
        self.bist_transistors() as f64
            / (self.geometry.capacity_bits() * u128::from(self.library.sram_bit)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf16() -> Field {
        Field::new(4, 0b1_0011).unwrap()
    }

    #[test]
    fn overhead_shrinks_with_capacity() {
        let f = gf16();
        let small = PrtBist::new(Geometry::wom(1 << 10, 4).unwrap(), &f, &[1, 2, 2]);
        let large = PrtBist::new(Geometry::wom(1 << 24, 4).unwrap(), &f, &[1, 2, 2]);
        assert!(large.overhead_ratio() < small.overhead_ratio());
    }

    #[test]
    fn paper_bound_met_at_gigabit_scale() {
        // 2³⁰ cells × 4 bits = 4 Gbit: ratio must be < 2⁻²⁰.
        let f = gf16();
        let b = PrtBist::new(Geometry::wom(1 << 30, 4).unwrap(), &f, &[1, 2, 2]);
        assert!(b.meets_paper_bound(), "ratio = {}", b.overhead_ratio());
        // And clearly not met for a 1 Kbit memory.
        let tiny = PrtBist::new(Geometry::wom(1 << 8, 4).unwrap(), &f, &[1, 2, 2]);
        assert!(!tiny.meets_paper_bound());
    }

    #[test]
    fn prt_is_leaner_than_march_bist() {
        let f = gf16();
        let geom = Geometry::wom(1 << 20, 4).unwrap();
        let prt = PrtBist::new(geom, &f, &[1, 2, 2]);
        let march = MarchBist::new(geom);
        assert!(
            prt.bist_transistors() < march.bist_transistors(),
            "PRT {} vs March {}",
            prt.bist_transistors(),
            march.bist_transistors()
        );
    }

    #[test]
    fn multiplier_gates_enter_the_count() {
        let f = gf16();
        let geom = Geometry::wom(1 << 12, 4).unwrap();
        let trivial = PrtBist::new(geom, &f, &[1, 1, 1]);
        let with_mult = PrtBist::new(geom, &f, &[1, 2, 2]);
        assert!(with_mult.gates().xor2 > trivial.gates().xor2);
    }

    #[test]
    fn transistor_accounting() {
        let lib = CellLibrary::default();
        let g = GateCount { xor2: 2, and2: 3, not1: 4, dff: 5 };
        assert_eq!(g.transistors(&lib), 2 * 8 + 3 * 6 + 4 * 2 + 5 * 24);
        let sum = g.plus(&GateCount { xor2: 1, and2: 0, not1: 0, dff: 0 });
        assert_eq!(sum.xor2, 3);
    }

    #[test]
    fn bom_model_runs() {
        let f = Field::new(1, 0b11).unwrap();
        let b = PrtBist::new(Geometry::bom(1 << 16), &f, &[1, 1, 1]);
        assert!(b.bist_transistors() > 0);
        assert!(b.overhead_ratio() > 0.0);
    }
}
