use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running pseudo-ring tests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrtError {
    /// The memory's cell width does not match the field degree.
    WidthMismatch {
        /// Field degree `m` the test was built for.
        field_bits: u32,
        /// Cell width of the memory under test.
        memory_bits: u32,
    },
    /// The memory is too small for the automaton (`n` must exceed `k`).
    MemoryTooSmall {
        /// Cells available.
        cells: usize,
        /// Minimum required (`k + 1`).
        needed: usize,
    },
    /// The device has fewer ports than the schedule needs.
    NotEnoughPorts {
        /// Ports available.
        have: usize,
        /// Ports required.
        need: usize,
    },
    /// An underlying LFSR construction failed.
    Lfsr(prt_lfsr::LfsrError),
    /// An underlying field construction failed.
    Field(prt_gf::GfError),
    /// An underlying memory operation failed.
    Ram(prt_ram::RamError),
    /// A scheme was given no iterations.
    EmptyScheme,
}

impl fmt::Display for PrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrtError::WidthMismatch { field_bits, memory_bits } => {
                write!(f, "π-test over GF(2^{field_bits}) cannot run on {memory_bits}-bit cells")
            }
            PrtError::MemoryTooSmall { cells, needed } => {
                write!(f, "memory has {cells} cells, π-test needs at least {needed}")
            }
            PrtError::NotEnoughPorts { have, need } => {
                write!(f, "schedule needs {need} ports, device has {have}")
            }
            PrtError::Lfsr(e) => write!(f, "lfsr error: {e}"),
            PrtError::Field(e) => write!(f, "field error: {e}"),
            PrtError::Ram(e) => write!(f, "memory error: {e}"),
            PrtError::EmptyScheme => write!(f, "PRT scheme has no iterations"),
        }
    }
}

impl Error for PrtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PrtError::Lfsr(e) => Some(e),
            PrtError::Field(e) => Some(e),
            PrtError::Ram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<prt_lfsr::LfsrError> for PrtError {
    fn from(e: prt_lfsr::LfsrError) -> Self {
        PrtError::Lfsr(e)
    }
}

impl From<prt_gf::GfError> for PrtError {
    fn from(e: prt_gf::GfError) -> Self {
        PrtError::Field(e)
    }
}

impl From<prt_ram::RamError> for PrtError {
    fn from(e: prt_ram::RamError) -> Self {
        PrtError::Ram(e)
    }
}
