//! Cell-visit trajectories.
//!
//! §3 of the paper lists the LFSR trajectory as the third control knob of a
//! π-test: "random, where address of memory cells are randomly selected, or
//! deterministic, where address cells are selected in an increasing or a
//! decreasing mode". The trajectory defines the order in which the virtual
//! automaton occupies the cells; neighbouring *trajectory positions* — not
//! neighbouring addresses — are what sub-iteration (1) reads and writes.

use prt_ram::SplitMix64;

/// The order in which a π-test visits memory cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Trajectory {
    /// Ascending addresses `0, 1, …, n−1` (the paper's `⇑`).
    #[default]
    Up,
    /// Descending addresses `n−1, …, 1, 0` (the paper's `⇓`).
    Down,
    /// A deterministic pseudo-random permutation drawn from the seed — the
    /// paper's externally-programmable random trajectory.
    Random(u64),
}

impl Trajectory {
    /// Materialises the visit order for an `n`-cell array.
    pub fn order(&self, n: usize) -> Vec<usize> {
        match *self {
            Trajectory::Up => (0..n).collect(),
            Trajectory::Down => (0..n).rev().collect(),
            Trajectory::Random(seed) => SplitMix64::new(seed).permutation(n),
        }
    }

    /// A short label for tables.
    pub fn label(&self) -> String {
        match self {
            Trajectory::Up => "⇑".to_string(),
            Trajectory::Down => "⇓".to_string(),
            Trajectory::Random(s) => format!("rnd({s})"),
        }
    }
}

impl std::fmt::Display for Trajectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_and_down_orders() {
        assert_eq!(Trajectory::Up.order(4), vec![0, 1, 2, 3]);
        assert_eq!(Trajectory::Down.order(4), vec![3, 2, 1, 0]);
    }

    #[test]
    fn random_is_permutation_and_deterministic() {
        let a = Trajectory::Random(9).order(16);
        let b = Trajectory::Random(9).order(16);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        // A different seed gives a different order (with overwhelming
        // probability; this seed pair is checked).
        assert_ne!(Trajectory::Random(10).order(16), a);
    }

    #[test]
    fn labels() {
        assert_eq!(Trajectory::Up.to_string(), "⇑");
        assert_eq!(Trajectory::Down.to_string(), "⇓");
        assert_eq!(Trajectory::Random(3).to_string(), "rnd(3)");
    }
}
