//! Property-based tests for the LFSR models.

use proptest::prelude::*;
use prt_gf::{Field, Poly2};
use prt_lfsr::{
    enumerate_cycles, linear_complexity_words, max_period_from_factors, BitLfsr, Misr, WordLfsr,
};

fn arb_feedback_poly() -> impl Strategy<Value = Poly2> {
    // Degree 2..=10 with non-zero constant term.
    (2u32..=10, any::<u64>()).prop_map(|(deg, low)| {
        let mask = (1u128 << deg) - 1;
        Poly2::from_bits((1u128 << deg) | (low as u128 & mask) | 1)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The state always returns after `period` steps (definition check).
    #[test]
    fn bit_lfsr_period_is_a_period(g in arb_feedback_poly(), seed in any::<u64>()) {
        let seed = seed & ((1 << g.degree()) - 1);
        let l = BitLfsr::new(g, seed).unwrap();
        let p = l.period().unwrap();
        prop_assert!(p >= 1);
        let mut probe = l.clone();
        for _ in 0..p {
            probe.step();
        }
        prop_assert_eq!(probe.state(), l.state());
    }

    /// Analytic maximal period from factorisation bounds every concrete
    /// cycle, and is attained by some state (checked by enumeration).
    #[test]
    fn factor_period_matches_enumeration(g in arb_feedback_poly()) {
        prop_assume!(g.degree() <= 8);
        let s = enumerate_cycles(g).unwrap();
        let predicted = max_period_from_factors(g).unwrap();
        prop_assert_eq!(s.max_period(), predicted, "g = {:b}", g.bits());
        prop_assert_eq!(s.states(), 1u128 << g.degree());
    }

    /// Berlekamp–Massey recovers a complexity ≤ k from any k-stage word
    /// LFSR output, and the connection polynomial verifies.
    #[test]
    fn bm_recovers_word_lfsr(
        c1 in 0u64..16, c2 in 1u64..16,
        s0 in 0u64..16, s1 in 0u64..16,
    ) {
        let field = Field::new(4, 0b1_0011).unwrap();
        let mut l = WordLfsr::from_feedback(field.clone(), &[1, c1, c2], &[s0, s1]).unwrap();
        let seq = l.sequence(48);
        let lc = linear_complexity_words(&field, &seq);
        prop_assert!(lc.complexity <= 2, "complexity {}", lc.complexity);
        prop_assert!(lc.verifies(&field, &seq));
    }

    /// state_after agrees with stepping for random configurations.
    #[test]
    fn state_jump_agrees_with_stepping(
        c1 in 0u64..16, c2 in 1u64..16,
        s0 in 0u64..16, s1 in 0u64..16,
        e in 0u64..16,
        t in 0u128..200,
    ) {
        let field = Field::new(4, 0b1_0011).unwrap();
        let l = WordLfsr::from_feedback(field, &[1, c1, c2], &[s0, s1])
            .unwrap()
            .with_affine(e)
            .unwrap();
        let fast = l.state_after(t);
        let mut slow = l.clone();
        for _ in 0..t {
            slow.step();
        }
        prop_assert_eq!(fast.as_slice(), slow.state());
    }

    /// MISR signatures are linear in the absorbed stream.
    #[test]
    fn misr_linearity(sa in prop::collection::vec(0u64..16, 1..20),
                      sb_seed in any::<u64>()) {
        let mut sb = Vec::with_capacity(sa.len());
        let mut x = sb_seed;
        for _ in 0..sa.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sb.push(x & 0xF);
        }
        let poly = Poly2::from_bits(0b1_0011);
        let (mut ma, mut mb, mut mab) = (
            Misr::new(poly).unwrap(),
            Misr::new(poly).unwrap(),
            Misr::new(poly).unwrap(),
        );
        for i in 0..sa.len() {
            ma.absorb(sa[i]);
            mb.absorb(sb[i]);
            mab.absorb(sa[i] ^ sb[i]);
        }
        prop_assert_eq!(ma.signature() ^ mb.signature(), mab.signature());
    }

    /// Word LFSR with m = 1 agrees with the dedicated bit LFSR.
    #[test]
    fn word_reduces_to_bit(seed in 0u64..4, steps in 0usize..60) {
        let f = Field::gf(1).unwrap();
        let mut w = WordLfsr::from_feedback(f, &[1, 1, 1], &[seed & 1, (seed >> 1) & 1]).unwrap();
        let mut b = BitLfsr::new(Poly2::from_bits(0b111), seed & 0b11).unwrap();
        let ws = w.sequence(steps + 2);
        let bs = b.sequence(steps + 2);
        for (x, y) in ws.iter().zip(bs.iter()) {
            prop_assert_eq!(*x, u64::from(*y));
        }
    }
}
