//! Word-oriented LFSRs over GF(2^m).
//!
//! This is the paper's virtual automaton for word-oriented memory (Figure
//! 1b): each register stage holds an `m`-bit field element, and the feedback
//! taps multiply by constants of GF(2^m). An optional *affine* term supports
//! the complemented test-data backgrounds used by multi-iteration PRT
//! schemes (the complement of an LFSR sequence obeys the same recurrence
//! plus a constant).

use crate::LfsrError;
use prt_gf::{BitMatrix, Field, PolyGf};

/// A `k`-stage LFSR over GF(2^m) with recurrence
/// `s_t = g0⁻¹·(g1·s_{t−1} ⊕ … ⊕ gk·s_{t−k}) ⊕ e`.
///
/// `e` is the affine term (zero for a plain LFSR).
///
/// # Example
///
/// The paper's Figure 1b automaton: `g(x) = 1 + 2x + 2x²` over GF(2⁴) with
/// `p(z) = 1 + z + z⁴`, seeded with `Init = (0, 1)`:
///
/// ```
/// use prt_gf::Field;
/// use prt_lfsr::WordLfsr;
///
/// let field = Field::new(4, 0b1_0011)?;
/// let mut l = WordLfsr::from_feedback(field, &[1, 2, 2], &[0, 1])?;
/// let seq = l.sequence(6);
/// assert_eq!(seq, vec![0, 1, 2, 6, 8, 0xF]); // 0, 1, 2, 6, … as in Fig. 1b
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordLfsr {
    field: Field,
    /// Normalised feedback constants `c_i = g0⁻¹·g_i`, `i = 1..=k`.
    coeffs: Vec<u64>,
    /// Original feedback polynomial coefficients `g0..gk` (for reporting).
    feedback: Vec<u64>,
    /// Affine constant added every step.
    affine: u64,
    /// `state[j]` = `s_{t−k+j}` (index `k−1` is the newest element).
    state: Vec<u64>,
}

impl WordLfsr {
    /// Builds the LFSR from feedback polynomial coefficients
    /// `[g0, g1, …, gk]` (lowest degree first) and a `k`-element seed
    /// `[s_0, …, s_{k−1}]`.
    ///
    /// # Errors
    ///
    /// * [`LfsrError::DegenerateFeedback`] if fewer than two coefficients.
    /// * [`LfsrError::NonInvertibleG0`] if `g0 = 0`.
    /// * [`LfsrError::ZeroLeadingCoefficient`] if `gk = 0`.
    /// * [`LfsrError::ElementOutOfField`] if any value exceeds `m` bits.
    /// * [`LfsrError::WrongStateLength`] if the seed length is not `k`.
    pub fn from_feedback(field: Field, g: &[u64], init: &[u64]) -> Result<WordLfsr, LfsrError> {
        if g.len() < 2 {
            return Err(LfsrError::DegenerateFeedback);
        }
        for &c in g.iter().chain(init) {
            if !field.contains(c) {
                return Err(LfsrError::ElementOutOfField { value: c });
            }
        }
        if g[0] == 0 {
            return Err(LfsrError::NonInvertibleG0);
        }
        if *g.last().expect("len ≥ 2") == 0 {
            return Err(LfsrError::ZeroLeadingCoefficient);
        }
        let k = g.len() - 1;
        if init.len() != k {
            return Err(LfsrError::WrongStateLength { actual: init.len(), expected: k });
        }
        let g0_inv = field.inv(g[0]).expect("g0 non-zero");
        let coeffs = g[1..].iter().map(|&gi| field.mul(g0_inv, gi)).collect();
        Ok(WordLfsr { field, coeffs, feedback: g.to_vec(), affine: 0, state: init.to_vec() })
    }

    /// Sets the affine term `e` (returns `self` for chaining).
    ///
    /// # Errors
    ///
    /// [`LfsrError::ElementOutOfField`] if `e` has bits above `m`.
    pub fn with_affine(mut self, e: u64) -> Result<WordLfsr, LfsrError> {
        if !self.field.contains(e) {
            return Err(LfsrError::ElementOutOfField { value: e });
        }
        self.affine = e;
        Ok(self)
    }

    /// The coefficient field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Number of stages `k`.
    pub fn stages(&self) -> usize {
        self.coeffs.len()
    }

    /// The feedback polynomial coefficients `[g0, …, gk]` as supplied.
    pub fn feedback(&self) -> &[u64] {
        &self.feedback
    }

    /// The affine term.
    pub fn affine(&self) -> u64 {
        self.affine
    }

    /// Current state, oldest element first.
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Replaces the state.
    ///
    /// # Errors
    ///
    /// * [`LfsrError::WrongStateLength`] on length mismatch.
    /// * [`LfsrError::ElementOutOfField`] if an element exceeds `m` bits.
    pub fn set_state(&mut self, state: &[u64]) -> Result<(), LfsrError> {
        if state.len() != self.stages() {
            return Err(LfsrError::WrongStateLength {
                actual: state.len(),
                expected: self.stages(),
            });
        }
        for &s in state {
            if !self.field.contains(s) {
                return Err(LfsrError::ElementOutOfField { value: s });
            }
        }
        self.state.copy_from_slice(state);
        Ok(())
    }

    /// Produces `s_t` and advances one step.
    pub fn step(&mut self) -> u64 {
        let k = self.stages();
        let mut acc = self.affine;
        for (i, &c) in self.coeffs.iter().enumerate() {
            // c_i multiplies s_{t−i}; s_{t−i} lives at state index k−i (1-based i).
            let v = self.state[k - 1 - i];
            acc = self.field.add(acc, self.field.mul(c, v));
        }
        self.state.rotate_left(1);
        self.state[k - 1] = acc;
        acc
    }

    /// Returns the first `n` terms `s_0, s_1, …` including the seed,
    /// advancing the register past them.
    pub fn sequence(&mut self, n: usize) -> Vec<u64> {
        let k = self.stages();
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&self.state[..k.min(n)]);
        while out.len() < n {
            out.push(self.step());
        }
        out
    }

    /// The state after exactly `t` further steps, computed without stepping
    /// `t` times (companion-matrix exponentiation over GF(2)); `self` is not
    /// advanced.
    ///
    /// This is how `Fin*` is predicted a-priori for huge memories.
    pub fn state_after(&self, t: u128) -> Vec<u64> {
        if self.affine == 0 {
            let m = self.transition_matrix();
            let mt = m.pow(t).expect("square matrix");
            let v = self.pack_state();
            self.unpack_state(mt.mul_vec(v))
        } else {
            // Affine map: x ↦ M·x + b. After t steps:
            // x_t = M^t·x + (M^{t−1} + … + I)·b.
            // Compute with a (km+1) × (km+1) homogeneous matrix.
            let km = (self.stages() as u32) * self.field.degree();
            let m = self.transition_matrix();
            let mut h = BitMatrix::zero(km as usize + 1, km + 1);
            for i in 0..km as usize {
                let row = m.row(i);
                for j in 0..km {
                    if (row >> j) & 1 == 1 {
                        h.set(i, j, true);
                    }
                }
            }
            // Affine column: the new element adds `e` each step; `e` only
            // enters the newest stage slot.
            let k = self.stages();
            let mbits = self.field.degree();
            for bit in 0..mbits {
                if (self.affine >> bit) & 1 == 1 {
                    h.set(((k - 1) as u32 * mbits + bit) as usize, km, true);
                }
            }
            h.set(km as usize, km, true);
            let ht = h.pow(t).expect("square matrix");
            let v = self.pack_state() | (1u128 << km);
            let w = ht.mul_vec(v);
            self.unpack_state(w & ((1u128 << km) - 1))
        }
    }

    fn pack_state(&self) -> u128 {
        let mbits = self.field.degree();
        let mut v = 0u128;
        for (j, &s) in self.state.iter().enumerate() {
            v |= (s as u128) << (j as u32 * mbits);
        }
        v
    }

    fn unpack_state(&self, v: u128) -> Vec<u64> {
        let mbits = self.field.degree();
        let mask = (1u128 << mbits) - 1;
        (0..self.stages()).map(|j| ((v >> (j as u32 * mbits)) & mask) as u64).collect()
    }

    /// The `km × km` GF(2) transition matrix of the linear (non-affine) part
    /// of one step, acting on the packed state (stage `j` occupies bits
    /// `j·m .. (j+1)·m`).
    ///
    /// # Panics
    ///
    /// Panics if `k·m > 128` (beyond the bit-matrix width).
    pub fn transition_matrix(&self) -> BitMatrix {
        let k = self.stages();
        let mbits = self.field.degree();
        let km = k as u32 * mbits;
        assert!(km <= 128, "k·m = {km} exceeds the 128-bit matrix backend");
        let mut m = BitMatrix::zero(km as usize, km);
        // Shift part: new stage j = old stage j+1, for j < k−1.
        for j in 0..k - 1 {
            for bit in 0..mbits {
                m.set((j as u32 * mbits + bit) as usize, (j as u32 + 1) * mbits + bit, true);
            }
        }
        // Feedback part: new stage k−1 = Σ c_i · old stage (k−i).
        for (i, &c) in self.coeffs.iter().enumerate() {
            let src_stage = (k - 1 - i) as u32; // stage holding s_{t−i−…}? see below
            let block = prt_gf::mult_synth::mult_matrix(&self.field, c);
            for r in 0..mbits {
                let row = block.row(r as usize);
                for cbit in 0..mbits {
                    if (row >> cbit) & 1 == 1 {
                        m.set(
                            ((k - 1) as u32 * mbits + r) as usize,
                            src_stage * mbits + cbit,
                            true,
                        );
                    }
                }
            }
        }
        m
    }

    /// Period of the sequence from the current state.
    ///
    /// For an irreducible characteristic polynomial (and zero affine term)
    /// this is the order of `x` modulo the characteristic polynomial; in all
    /// other cases the cycle is measured by brute force with the given step
    /// `budget`.
    ///
    /// # Errors
    ///
    /// [`LfsrError::PeriodOverflow`] if no recurrence is found within
    /// `budget` steps.
    pub fn period(&self, budget: u128) -> Result<u128, LfsrError> {
        if self.affine == 0 {
            if self.state.iter().all(|&s| s == 0) {
                return Ok(1);
            }
            if let Some(p) = self
                .characteristic_poly()
                .ok()
                .filter(|cp| cp.is_irreducible(&self.field))
                .and_then(|cp| cp.order_of_x(&self.field))
            {
                return Ok(p);
            }
        }
        let mut probe = self.clone();
        let start = probe.state.clone();
        for count in 1..=budget {
            probe.step();
            if probe.state == start {
                return Ok(count);
            }
        }
        Err(LfsrError::PeriodOverflow { budget })
    }

    /// The characteristic polynomial `f(x) = x^k − Σ c_i·x^{k−i}` (monic,
    /// over GF(2^m) subtraction = addition). The period of the LFSR is the
    /// order of `x` modulo `f` when `f` is irreducible.
    ///
    /// # Errors
    ///
    /// Propagates coefficient validation from [`PolyGf::new`] (cannot fail
    /// for a well-formed register).
    pub fn characteristic_poly(&self) -> Result<PolyGf, prt_gf::GfError> {
        let k = self.stages();
        let mut coeffs = vec![0u64; k + 1];
        coeffs[k] = 1;
        for (i, &c) in self.coeffs.iter().enumerate() {
            // c_i taps s_{t−i−1}… recurrence s_t = Σ_{i=1..k} c_i s_{t−i}
            // gives f(x) = x^k + c_1 x^{k−1} + … + c_k.
            coeffs[k - 1 - i] = c;
        }
        PolyGf::new(&self.field, coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gf16() -> Field {
        Field::new(4, 0b1_0011).unwrap()
    }

    fn paper_lfsr() -> WordLfsr {
        WordLfsr::from_feedback(gf16(), &[1, 2, 2], &[0, 1]).unwrap()
    }

    #[test]
    fn figure_1b_prefix() {
        // s_t = 2 s_{t−1} + 2 s_{t−2} from (0, 1):
        // 0, 1, 2, 2·2+2·1=6, 2·6+2·2=8, 2·8+2·6 = 3+11? compute: 2·8=3,
        // 2·6=12 → 3⊕12 = 15? No: 2·8 = z·z³ = z⁴ = z+1 = 3; 2·6 = z·(z²+z)
        // = z³+z² = 12; 3⊕12 = 15 → 0xF... but the test below trusts the
        // implementation-independent LFSR identity instead of hand values.
        let mut l = paper_lfsr();
        let seq = l.sequence(8);
        assert_eq!(&seq[..4], &[0, 1, 2, 6]);
        // Every element obeys the recurrence.
        let f = gf16();
        for t in 2..seq.len() {
            let expect = f.add(f.mul(2, seq[t - 1]), f.mul(2, seq[t - 2]));
            assert_eq!(seq[t], expect, "t={t}");
        }
    }

    #[test]
    fn paper_generator_is_irreducible_and_period_divides_255() {
        let l = paper_lfsr();
        let cp = l.characteristic_poly().unwrap();
        assert!(cp.is_irreducible(&l.field));
        let p = l.period(300).unwrap();
        assert_eq!(255 % p, 0);
        // Pseudo-ring closure: after `p` steps the state returns.
        let mut probe = l.clone();
        for _ in 0..p {
            probe.step();
        }
        assert_eq!(probe.state(), l.state());
    }

    #[test]
    fn state_after_matches_stepping() {
        let l = paper_lfsr();
        for t in 0..40u128 {
            let fast = l.state_after(t);
            let mut slow = l.clone();
            for _ in 0..t {
                slow.step();
            }
            assert_eq!(fast, slow.state(), "t={t}");
        }
    }

    #[test]
    fn state_after_with_affine_matches_stepping() {
        let l = paper_lfsr().with_affine(0xF).unwrap();
        for t in 0..40u128 {
            let fast = l.state_after(t);
            let mut slow = l.clone();
            for _ in 0..t {
                slow.step();
            }
            assert_eq!(fast, slow.state(), "t={t}");
        }
    }

    #[test]
    fn affine_complement_relationship() {
        // If s obeys s_t = c1 s_{t−1} + c2 s_{t−2}, then u = s ⊕ K obeys
        // u_t = c1 u_{t−1} + c2 u_{t−2} + e with e = K·(1 + c1 + c2).
        let f = gf16();
        let k_const = 0xFu64;
        let e = f.mul(k_const, f.add(1, f.add(2, 2))); // 1 + c1 + c2 = 1
        let mut plain = paper_lfsr();
        let mut compl = WordLfsr::from_feedback(gf16(), &[1, 2, 2], &[k_const, 1 ^ k_const])
            .unwrap()
            .with_affine(e)
            .unwrap();
        let s = plain.sequence(64);
        let u = compl.sequence(64);
        for t in 0..64 {
            assert_eq!(u[t], s[t] ^ k_const, "t={t}");
        }
    }

    #[test]
    fn bit_field_reduces_to_bit_lfsr() {
        // m = 1 word LFSR must agree with BitLfsr for g = 1 + x + x².
        let f = Field::gf(1).unwrap();
        let mut w = WordLfsr::from_feedback(f, &[1, 1, 1], &[0, 1]).unwrap();
        let mut b = crate::BitLfsr::new(prt_gf::Poly2::from_bits(0b111), 0b10).unwrap();
        assert_eq!(w.sequence(20), b.sequence(20).into_iter().map(u64::from).collect::<Vec<_>>());
    }

    #[test]
    fn normalisation_divides_by_g0() {
        // g = [3, 2, 2]: c_i = 3⁻¹·2. Check recurrence directly.
        let f = gf16();
        let g0_inv = f.inv(3).unwrap();
        let c = f.mul(g0_inv, 2);
        let mut l = WordLfsr::from_feedback(gf16(), &[3, 2, 2], &[1, 5]).unwrap();
        let seq = l.sequence(10);
        for t in 2..10 {
            assert_eq!(seq[t], f.add(f.mul(c, seq[t - 1]), f.mul(c, seq[t - 2])));
        }
    }

    #[test]
    fn construction_errors() {
        let f = gf16();
        assert!(matches!(
            WordLfsr::from_feedback(f.clone(), &[1], &[]),
            Err(LfsrError::DegenerateFeedback)
        ));
        assert!(matches!(
            WordLfsr::from_feedback(f.clone(), &[0, 2, 2], &[0, 1]),
            Err(LfsrError::NonInvertibleG0)
        ));
        assert!(matches!(
            WordLfsr::from_feedback(f.clone(), &[1, 2, 0], &[0, 1]),
            Err(LfsrError::ZeroLeadingCoefficient)
        ));
        assert!(matches!(
            WordLfsr::from_feedback(f.clone(), &[1, 2, 2], &[0]),
            Err(LfsrError::WrongStateLength { .. })
        ));
        assert!(matches!(
            WordLfsr::from_feedback(f.clone(), &[1, 2, 16], &[0, 1]),
            Err(LfsrError::ElementOutOfField { .. })
        ));
        assert!(matches!(
            WordLfsr::from_feedback(f, &[1, 2, 2], &[0, 16]),
            Err(LfsrError::ElementOutOfField { .. })
        ));
    }

    #[test]
    fn superposition_of_word_sequences() {
        // Linearity over GF(2^m): seq(a ⊕ b) = seq(a) ⊕ seq(b).
        let mk = |s0: u64, s1: u64| WordLfsr::from_feedback(gf16(), &[1, 2, 2], &[s0, s1]).unwrap();
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut la = mk(a, b);
                let mut lb = mk(b, a);
                let mut lab = mk(a ^ b, b ^ a);
                let (sa, sb, sab) = (la.sequence(30), lb.sequence(30), lab.sequence(30));
                for t in 0..30 {
                    assert_eq!(sa[t] ^ sb[t], sab[t]);
                }
            }
        }
    }

    #[test]
    fn zero_state_is_fixed_point_without_affine() {
        let mut l = WordLfsr::from_feedback(gf16(), &[1, 2, 2], &[0, 0]).unwrap();
        assert_eq!(l.sequence(10), vec![0; 10]);
        assert_eq!(l.period(10).unwrap(), 1);
    }

    #[test]
    fn affine_escapes_zero_state() {
        let mut l =
            WordLfsr::from_feedback(gf16(), &[1, 2, 2], &[0, 0]).unwrap().with_affine(1).unwrap();
        let seq = l.sequence(5);
        assert_eq!(seq[2], 1); // 2·0 + 2·0 + 1
        assert_ne!(seq[3], 0);
    }

    #[test]
    fn transition_matrix_is_invertible() {
        let l = paper_lfsr();
        let m = l.transition_matrix();
        assert!(m.is_invertible(), "LFSR transition must be invertible");
        // Invertibility is what guarantees that an injected error can never
        // be annihilated before reaching Fin — the paper's detection
        // argument.
    }

    #[test]
    fn three_stage_lfsr() {
        let f = gf16();
        let mut l = WordLfsr::from_feedback(f.clone(), &[1, 0, 0, 5], &[1, 2, 3]).unwrap();
        let seq = l.sequence(12);
        for t in 3..12 {
            assert_eq!(seq[t], f.mul(5, seq[t - 3]), "t={t}");
        }
    }
}
