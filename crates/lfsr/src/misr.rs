//! Multi-input signature register (MISR) — the classic BIST response
//! compactor.
//!
//! PRT's distinguishing feature is that it needs *no* separate signature
//! register: the memory's own final cells are the signature ("testing memory
//! by its own components"). The MISR is implemented here as the conventional
//! alternative so the hardware-overhead comparison of experiment E6 and the
//! signature ablation of E-ablate can quantify what PRT saves.

use crate::LfsrError;
use prt_gf::Poly2;

/// A multi-input signature register over GF(2).
///
/// Each [`Misr::absorb`] XORs an input word into the state and advances the
/// register one Galois step, compacting an arbitrary-length response stream
/// into `k` bits.
///
/// # Example
///
/// ```
/// use prt_gf::Poly2;
/// use prt_lfsr::Misr;
///
/// let mut m = Misr::new(Poly2::from_bits(0b1_0011))?;
/// for w in [0xA, 0x3, 0xF, 0x0] {
///     m.absorb(w);
/// }
/// let good = m.signature();
/// // A single flipped response bit changes the signature.
/// let mut bad = Misr::new(Poly2::from_bits(0b1_0011))?;
/// for w in [0xA, 0x3, 0xE, 0x0] {
///     bad.absorb(w);
/// }
/// assert_ne!(good, bad.signature());
/// # Ok::<(), prt_lfsr::LfsrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Misr {
    poly: Poly2,
    k: u32,
    state: u64,
    absorbed: u64,
}

impl Misr {
    /// Creates a MISR with the given feedback polynomial, state zero.
    ///
    /// # Errors
    ///
    /// * [`LfsrError::DegenerateFeedback`] if the polynomial has degree < 1.
    /// * [`LfsrError::NonInvertibleG0`] if its constant term is 0.
    pub fn new(poly: Poly2) -> Result<Misr, LfsrError> {
        let deg = poly.degree();
        if deg < 1 {
            return Err(LfsrError::DegenerateFeedback);
        }
        if poly.coeff(0) == 0 {
            return Err(LfsrError::NonInvertibleG0);
        }
        Ok(Misr { poly, k: deg as u32, state: 0, absorbed: 0 })
    }

    /// Register width `k`.
    pub fn width(&self) -> u32 {
        self.k
    }

    /// Number of words absorbed so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Absorbs one response word (low `k` bits are used) and advances.
    pub fn absorb(&mut self, word: u64) {
        let mask = if self.k == 64 { u64::MAX } else { (1u64 << self.k) - 1 };
        self.absorbed += 1;
        self.state ^= word & mask;
        // Galois step: multiply by z mod poly.
        let out = (self.state >> (self.k - 1)) & 1;
        self.state = (self.state << 1) & mask;
        if out == 1 {
            self.state ^= (self.poly.bits() as u64) & mask;
        }
    }

    /// The compacted signature.
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets state and counter.
    pub fn reset(&mut self) {
        self.state = 0;
        self.absorbed = 0;
    }

    /// Probability that a random error stream aliases to the fault-free
    /// signature: `2^{−k}` for a maximal-length MISR — the standard BIST
    /// aliasing bound reported alongside detection-probability analysis.
    pub fn aliasing_probability(&self) -> f64 {
        (0.5f64).powi(self.k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn misr4() -> Misr {
        Misr::new(Poly2::from_bits(0b1_0011)).unwrap()
    }

    #[test]
    fn deterministic_signature() {
        let mut a = misr4();
        let mut b = misr4();
        for w in [1u64, 2, 3, 4, 5, 6, 7] {
            a.absorb(w);
            b.absorb(w);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn single_bit_error_always_detected() {
        // MISR over an irreducible polynomial never aliases on a single
        // flipped bit (the error polynomial is a monomial, never divisible
        // by the feedback polynomial).
        let stream = [0xAu64, 0x3, 0xF, 0x0, 0x9, 0x5];
        let mut good = misr4();
        for &w in &stream {
            good.absorb(w);
        }
        for pos in 0..stream.len() {
            for bit in 0..4 {
                let mut bad = misr4();
                for (i, &w) in stream.iter().enumerate() {
                    bad.absorb(if i == pos { w ^ (1 << bit) } else { w });
                }
                assert_ne!(bad.signature(), good.signature(), "pos={pos} bit={bit}");
            }
        }
    }

    #[test]
    fn linearity_of_compaction() {
        // signature(a ⊕ b) = signature(a) ⊕ signature(b) for equal-length
        // streams (state starts at 0).
        let sa = [0x1u64, 0x8, 0x4, 0x2];
        let sb = [0xFu64, 0x0, 0x3, 0xC];
        let (mut ma, mut mb, mut mab) = (misr4(), misr4(), misr4());
        for i in 0..4 {
            ma.absorb(sa[i]);
            mb.absorb(sb[i]);
            mab.absorb(sa[i] ^ sb[i]);
        }
        assert_eq!(ma.signature() ^ mb.signature(), mab.signature());
    }

    #[test]
    fn reset_clears() {
        let mut m = misr4();
        m.absorb(0xF);
        assert_ne!(m.signature(), 0);
        m.reset();
        assert_eq!(m.signature(), 0);
        assert_eq!(m.absorbed(), 0);
    }

    #[test]
    fn aliasing_probability_bound() {
        assert!((misr4().aliasing_probability() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_polynomials() {
        assert!(matches!(Misr::new(Poly2::ONE), Err(LfsrError::DegenerateFeedback)));
        assert!(matches!(Misr::new(Poly2::from_bits(0b10)), Err(LfsrError::NonInvertibleG0)));
    }
}
