//! Linear feedback shift register (LFSR) models for pseudo-ring RAM testing.
//!
//! The central idea of the PRT paper is that a π-test iteration makes the
//! memory array *emulate* a linear automaton: the sequence of values written
//! to consecutive cells is exactly the output sequence of an LFSR. This
//! crate provides the reference automata that the memory is compared
//! against:
//!
//! * [`BitLfsr`] — the bit-oriented LFSR (Fibonacci form) behind Figure 1a,
//! * [`WordLfsr`] — the word-oriented LFSR over GF(2^m) behind Figure 1b,
//!   including the affine (complemented-TDB) variant used by multi-iteration
//!   schemes,
//! * [`GaloisLfsr`] and [`Misr`] — the classic BIST building blocks used by
//!   the hardware-overhead model (pattern generation and response
//!   compaction),
//! * [`berlekamp`] — Berlekamp–Massey linear-complexity analysis, used to
//!   verify that an observed memory sequence really is the claimed automaton
//!   and nothing simpler.
//!
//! # Conventions
//!
//! A feedback polynomial `g(x) = g0 + g1·x + … + gk·x^k` (with `g0`
//! invertible) defines the recurrence
//!
//! ```text
//! s_t = g0⁻¹ · ( g1·s_{t−1} ⊕ g2·s_{t−2} ⊕ … ⊕ gk·s_{t−k} )
//! ```
//!
//! so the paper's `g(x) = 1 + 2x + 2x²` over GF(2⁴) yields
//! `s_t = 2·s_{t−1} ⊕ 2·s_{t−2}`, reproducing the `0, 1, 2, 6, …` cell
//! sequence of Figure 1b, and `g(x) = 1 + x + x²` over GF(2) yields the
//! period-3 bit sequence `0, 1, 1, 0, 1, 1, …` of Figure 1a.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod berlekamp;
pub mod bit;
pub mod cycles;
mod error;
pub mod misr;
pub mod word;

pub use berlekamp::{linear_complexity_bits, linear_complexity_words};
pub use bit::{BitLfsr, GaloisLfsr};
pub use cycles::{enumerate_cycles, max_period_from_factors, CycleStructure};
pub use error::LfsrError;
pub use misr::Misr;
pub use word::WordLfsr;
