use std::error::Error;
use std::fmt;

/// Errors produced when constructing or running LFSR models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LfsrError {
    /// The feedback polynomial has degree < 1 (no register stages).
    DegenerateFeedback,
    /// The feedback polynomial's constant term `g0` is zero / not
    /// invertible, so the recurrence cannot be normalised.
    NonInvertibleG0,
    /// The leading coefficient `gk` is zero (the declared degree is wrong).
    ZeroLeadingCoefficient,
    /// A coefficient or state element does not belong to the field.
    ElementOutOfField {
        /// The offending value.
        value: u64,
    },
    /// The initial state has the wrong number of elements.
    WrongStateLength {
        /// Elements supplied.
        actual: usize,
        /// Stages required.
        expected: usize,
    },
    /// Period search exceeded its iteration budget.
    PeriodOverflow {
        /// The budget that was exhausted.
        budget: u128,
    },
}

impl fmt::Display for LfsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsrError::DegenerateFeedback => write!(f, "feedback polynomial must have degree ≥ 1"),
            LfsrError::NonInvertibleG0 => {
                write!(f, "constant term g0 of the feedback polynomial must be invertible")
            }
            LfsrError::ZeroLeadingCoefficient => {
                write!(f, "leading coefficient gk of the feedback polynomial is zero")
            }
            LfsrError::ElementOutOfField { value } => {
                write!(f, "value {value:#x} is not a field element")
            }
            LfsrError::WrongStateLength { actual, expected } => {
                write!(f, "state has {actual} elements, LFSR has {expected} stages")
            }
            LfsrError::PeriodOverflow { budget } => {
                write!(f, "period not found within {budget} steps")
            }
        }
    }
}

impl Error for LfsrError {}
