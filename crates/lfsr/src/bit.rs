//! Bit-oriented LFSRs (Fibonacci and Galois forms).
//!
//! The Fibonacci form is the paper's bit-oriented virtual automaton: the
//! newly produced bit is the XOR of the tapped previous bits, exactly what
//! sub-iteration (1) writes into the next memory cell. The Galois form is
//! the dual construction commonly used for hardware pattern generators; it
//! produces the same maximal-length sequences and is included for the BIST
//! hardware model.

use crate::LfsrError;
use prt_gf::Poly2;

/// Fibonacci-form bit LFSR defined by a feedback polynomial
/// `g(x) = 1 + g1·x + … + gk·x^k` over GF(2).
///
/// State bit `j` (0-based) holds `s_{t−k+j}`; [`BitLfsr::step`] produces
/// `s_t = ⊕ g_i · s_{t−i}`.
///
/// # Example
///
/// Figure 1a of the paper: `g(x) = 1 + x + x²` started from `(0, 1)` yields
/// the period-3 sequence `0 1 1 | 0 1 1 | …` in the memory cells.
///
/// ```
/// use prt_gf::Poly2;
/// use prt_lfsr::BitLfsr;
///
/// let mut l = BitLfsr::new(Poly2::from_bits(0b111), 0b10)?; // s0=0, s1=1
/// assert_eq!(l.sequence(9), vec![0, 1, 1, 0, 1, 1, 0, 1, 1]);
/// assert_eq!(l.period()?, 3);
/// # Ok::<(), prt_lfsr::LfsrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitLfsr {
    /// Feedback polynomial (bit `i` = `g_i`, bit 0 always set).
    poly: Poly2,
    k: u32,
    /// Bit `j` = `s_{t−k+j}`.
    state: u64,
}

impl BitLfsr {
    /// Creates a Fibonacci LFSR.
    ///
    /// `init` packs the seed: bit `j` is `s_j` for `j < k`.
    ///
    /// # Errors
    ///
    /// * [`LfsrError::DegenerateFeedback`] if `g` has degree < 1.
    /// * [`LfsrError::NonInvertibleG0`] if `g0 = 0`.
    /// * [`LfsrError::WrongStateLength`] if `init` has bits at or above `k`.
    pub fn new(poly: Poly2, init: u64) -> Result<BitLfsr, LfsrError> {
        let deg = poly.degree();
        if deg < 1 {
            return Err(LfsrError::DegenerateFeedback);
        }
        if poly.coeff(0) == 0 {
            return Err(LfsrError::NonInvertibleG0);
        }
        let k = deg as u32;
        if k < 64 && init >> k != 0 {
            return Err(LfsrError::WrongStateLength { actual: 64, expected: k as usize });
        }
        Ok(BitLfsr { poly, k, state: init })
    }

    /// Number of register stages `k`.
    pub fn stages(&self) -> u32 {
        self.k
    }

    /// The feedback polynomial.
    pub fn polynomial(&self) -> Poly2 {
        self.poly
    }

    /// Current packed state (bit `j` = `s_{t−k+j}`).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Replaces the state.
    ///
    /// # Errors
    ///
    /// [`LfsrError::WrongStateLength`] if `state` has bits at or above `k`.
    pub fn set_state(&mut self, state: u64) -> Result<(), LfsrError> {
        if self.k < 64 && state >> self.k != 0 {
            return Err(LfsrError::WrongStateLength { actual: 64, expected: self.k as usize });
        }
        self.state = state;
        Ok(())
    }

    /// Produces `s_t` and advances the register one step.
    pub fn step(&mut self) -> u8 {
        // s_t = ⊕_{i=1..k} g_i · s_{t−i}; s_{t−i} is state bit (k−i).
        let mut new = 0u64;
        for i in 1..=self.k {
            if self.poly.coeff(i) == 1 {
                new ^= (self.state >> (self.k - i)) & 1;
            }
        }
        self.state = (self.state >> 1) | (new << (self.k - 1));
        new as u8
    }

    /// Returns the first `n` terms `s_0, s_1, …` of the sequence, including
    /// the seed elements, advancing the register past them.
    pub fn sequence(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        for j in 0..n.min(self.k as usize) {
            out.push(((self.state >> j) & 1) as u8);
        }
        while out.len() < n {
            out.push(self.step());
        }
        out
    }

    /// Period of the state cycle containing the current state.
    ///
    /// Zero state has period 1. For an irreducible feedback polynomial the
    /// period of every non-zero state equals the order of `x` mod `g`.
    ///
    /// # Errors
    ///
    /// [`LfsrError::PeriodOverflow`] if the cycle is longer than `2^k`
    /// (impossible for a well-formed register; defensive).
    pub fn period(&self) -> Result<u128, LfsrError> {
        if self.state == 0 {
            return Ok(1);
        }
        if self.poly.is_irreducible() {
            // All non-zero states lie on cycles of length ord(x).
            return self.poly.order_of_x().ok_or(LfsrError::DegenerateFeedback);
        }
        let budget = 1u128 << self.k.min(63);
        let mut probe = self.clone();
        let start = probe.state;
        for count in 1..=budget {
            probe.step();
            if probe.state == start {
                return Ok(count);
            }
        }
        Err(LfsrError::PeriodOverflow { budget })
    }

    /// `true` if the feedback polynomial is primitive, i.e. the register
    /// reaches the maximal period `2^k − 1` from any non-zero seed.
    pub fn is_maximal_length(&self) -> bool {
        self.poly.is_primitive()
    }
}

/// Galois-form (modular) bit LFSR — the dual of [`BitLfsr`], the standard
/// construction for hardware test-pattern generators.
///
/// Each step shifts the register and conditionally XORs the feedback
/// polynomial into it, exactly like the multiply-by-`z` datapath of a
/// GF(2^k) multiplier.
///
/// # Example
///
/// ```
/// use prt_gf::Poly2;
/// use prt_lfsr::GaloisLfsr;
///
/// let mut g = GaloisLfsr::new(Poly2::from_bits(0b1_0011), 1)?;
/// // A primitive degree-4 polynomial visits all 15 non-zero states.
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..15 {
///     seen.insert(g.state());
///     g.step();
/// }
/// assert_eq!(seen.len(), 15);
/// # Ok::<(), prt_lfsr::LfsrError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GaloisLfsr {
    poly: Poly2,
    k: u32,
    state: u64,
}

impl GaloisLfsr {
    /// Creates a Galois LFSR with the given feedback polynomial and seed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitLfsr::new`].
    pub fn new(poly: Poly2, init: u64) -> Result<GaloisLfsr, LfsrError> {
        let deg = poly.degree();
        if deg < 1 {
            return Err(LfsrError::DegenerateFeedback);
        }
        if poly.coeff(0) == 0 {
            return Err(LfsrError::NonInvertibleG0);
        }
        let k = deg as u32;
        if k < 64 && init >> k != 0 {
            return Err(LfsrError::WrongStateLength { actual: 64, expected: k as usize });
        }
        Ok(GaloisLfsr { poly, k, state: init })
    }

    /// Number of register stages.
    pub fn stages(&self) -> u32 {
        self.k
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Output bit (stage `k−1`) and advance: multiply the state by `z`
    /// modulo the feedback polynomial.
    pub fn step(&mut self) -> u8 {
        let out = (self.state >> (self.k - 1)) & 1;
        self.state <<= 1;
        if out == 1 {
            self.state ^= self.poly.bits() as u64;
        }
        self.state &= (1u64 << self.k) - 1;
        out as u8
    }

    /// Period of the cycle containing the current state.
    ///
    /// # Errors
    ///
    /// [`LfsrError::PeriodOverflow`] on a cycle longer than `2^k`
    /// (defensive; unreachable for well-formed registers).
    pub fn period(&self) -> Result<u128, LfsrError> {
        if self.state == 0 {
            return Ok(1);
        }
        if self.poly.is_irreducible() {
            return self.poly.order_of_x().ok_or(LfsrError::DegenerateFeedback);
        }
        let budget = 1u128 << self.k.min(63);
        let mut probe = self.clone();
        let start = probe.state;
        for count in 1..=budget {
            probe.step();
            if probe.state == start {
                return Ok(count);
            }
        }
        Err(LfsrError::PeriodOverflow { budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1a_sequence() {
        // g = 1 + x + x², seed (s0, s1) = (0, 1): 0 1 1 repeating.
        let mut l = BitLfsr::new(Poly2::from_bits(0b111), 0b10).unwrap();
        assert_eq!(l.sequence(12), vec![0, 1, 1, 0, 1, 1, 0, 1, 1, 0, 1, 1]);
    }

    #[test]
    fn all_three_nonzero_seeds_cycle_with_period_3() {
        for seed in 1..4u64 {
            let l = BitLfsr::new(Poly2::from_bits(0b111), seed).unwrap();
            assert_eq!(l.period().unwrap(), 3, "seed={seed}");
        }
        let z = BitLfsr::new(Poly2::from_bits(0b111), 0).unwrap();
        assert_eq!(z.period().unwrap(), 1);
    }

    #[test]
    fn maximal_length_degree_4() {
        // g = 1 + x + x⁴ primitive: period 15.
        let l = BitLfsr::new(Poly2::from_bits(0b1_0011), 1).unwrap();
        assert!(l.is_maximal_length());
        assert_eq!(l.period().unwrap(), 15);
        // The sequence of states visits all 15 non-zero states.
        let mut probe = l.clone();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            seen.insert(probe.state());
            probe.step();
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn non_primitive_irreducible_has_short_period() {
        // x⁴+x³+x²+x+1: order of x is 5.
        let l = BitLfsr::new(Poly2::from_bits(0b1_1111), 1).unwrap();
        assert!(!l.is_maximal_length());
        assert_eq!(l.period().unwrap(), 5);
    }

    #[test]
    fn reducible_polynomial_period_by_brute_force() {
        // g = 1 + x + x² + x³ = (1+x)(1+x²)… reducible; cycles exist but are
        // state-dependent.
        let poly = Poly2::from_bits(0b1111);
        assert!(!poly.is_irreducible());
        let l = BitLfsr::new(poly, 0b001).unwrap();
        let p = l.period().unwrap();
        assert!((1..=8).contains(&p));
        // After p steps the state must recur.
        let mut probe = l.clone();
        for _ in 0..p {
            probe.step();
        }
        assert_eq!(probe.state(), l.state());
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(BitLfsr::new(Poly2::ONE, 0), Err(LfsrError::DegenerateFeedback)));
        assert!(matches!(
            BitLfsr::new(Poly2::from_bits(0b110), 0),
            Err(LfsrError::NonInvertibleG0)
        ));
        assert!(matches!(
            BitLfsr::new(Poly2::from_bits(0b111), 0b100),
            Err(LfsrError::WrongStateLength { .. })
        ));
    }

    #[test]
    fn sequence_prefix_is_seed() {
        let mut l = BitLfsr::new(Poly2::from_bits(0b1_0011), 0b0110).unwrap();
        let seq = l.sequence(10);
        assert_eq!(&seq[..4], &[0, 1, 1, 0]);
    }

    #[test]
    fn step_superposition() {
        // Linearity: seq(a ⊕ b) = seq(a) ⊕ seq(b) element-wise.
        let poly = Poly2::from_bits(0b1_0011);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut la = BitLfsr::new(poly, a).unwrap();
                let mut lb = BitLfsr::new(poly, b).unwrap();
                let mut lab = BitLfsr::new(poly, a ^ b).unwrap();
                for _ in 0..30 {
                    assert_eq!(la.step() ^ lb.step(), lab.step());
                }
            }
        }
    }

    #[test]
    fn galois_maximal_period() {
        let g = GaloisLfsr::new(Poly2::from_bits(0b1_0011), 1).unwrap();
        assert_eq!(g.period().unwrap(), 15);
        assert_eq!(g.stages(), 4);
    }

    #[test]
    fn galois_zero_state_is_fixed() {
        let mut g = GaloisLfsr::new(Poly2::from_bits(0b1011), 0).unwrap();
        assert_eq!(g.period().unwrap(), 1);
        g.step();
        assert_eq!(g.state(), 0);
    }

    #[test]
    fn galois_step_is_multiply_by_z() {
        // Galois stepping must agree with field multiplication by z.
        let f = prt_gf::Field::new(4, 0b1_0011).unwrap();
        for s in 0..16u64 {
            let mut g = GaloisLfsr::new(Poly2::from_bits(0b1_0011), s).unwrap();
            g.step();
            assert_eq!(g.state(), f.mul(s, 2), "s={s}");
        }
    }

    #[test]
    fn set_state_validates() {
        let mut l = BitLfsr::new(Poly2::from_bits(0b111), 0).unwrap();
        assert!(l.set_state(0b11).is_ok());
        assert!(l.set_state(0b100).is_err());
        assert_eq!(l.state(), 0b11);
    }
}
