//! Cycle structure of bit LFSR state spaces.
//!
//! §3 of the paper lists "LFSR structure that is determined by generator
//! polynomial structure" as the first control knob of a π-test. An
//! irreducible feedback polynomial gives one cycle of length `ord(x)`
//! covering all non-zero states; a *reducible* one fragments the state
//! space into many short cycles, silently reducing TDB variety — a
//! misconfiguration this module lets callers diagnose before burning a
//! polynomial into a BIST controller.
//!
//! The analytic path factors the polynomial ([`prt_gf::factor_poly`]) and
//! combines the factor periods; a brute-force enumeration over the state
//! space cross-checks it in tests.

use crate::{BitLfsr, LfsrError};
use prt_gf::Poly2;

/// The cycle decomposition of an LFSR state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStructure {
    /// `(cycle_length, how_many_cycles)`, sorted by length; includes the
    /// fixed point at the zero state as `(1, ≥1)`.
    pub cycles: Vec<(u128, u128)>,
}

impl CycleStructure {
    /// Number of states covered (must equal `2^k`).
    pub fn states(&self) -> u128 {
        self.cycles.iter().map(|&(len, count)| len * count).sum()
    }

    /// The longest cycle length — the best period any seed can reach.
    pub fn max_period(&self) -> u128 {
        self.cycles.iter().map(|&(len, _)| len).max().unwrap_or(0)
    }

    /// Number of distinct cycles.
    pub fn cycle_count(&self) -> u128 {
        self.cycles.iter().map(|&(_, count)| count).sum()
    }
}

/// Computes the cycle structure of the Fibonacci LFSR with feedback
/// polynomial `g` by brute-force state enumeration.
///
/// Intended for `deg g ≤ 20` (the state space is `2^k`).
///
/// # Errors
///
/// Propagates [`BitLfsr::new`] validation errors.
pub fn enumerate_cycles(g: Poly2) -> Result<CycleStructure, LfsrError> {
    let k = g.degree();
    if k < 1 {
        return Err(LfsrError::DegenerateFeedback);
    }
    let k = k as u32;
    assert!(k <= 20, "state space 2^{k} too large for enumeration");
    let size = 1usize << k;
    let mut visited = vec![false; size];
    let mut counts: Vec<(u128, u128)> = Vec::new();
    for start in 0..size as u64 {
        if visited[start as usize] {
            continue;
        }
        let mut l = BitLfsr::new(g, start)?;
        let mut len = 0u128;
        loop {
            let s = l.state();
            if len > 0 && s == start {
                break;
            }
            visited[s as usize] = true;
            l.step();
            len += 1;
            if l.state() == start {
                break;
            }
        }
        // `len` counted transitions until return; cycle length is the
        // number of distinct states on the loop.
        let mut probe = BitLfsr::new(g, start)?;
        let mut cycle_len = 1u128;
        probe.step();
        while probe.state() != start {
            cycle_len += 1;
            probe.step();
        }
        match counts.iter_mut().find(|(l0, _)| *l0 == cycle_len) {
            Some((_, c)) => *c += 1,
            None => counts.push((cycle_len, 1)),
        }
    }
    counts.sort_unstable();
    Ok(CycleStructure { cycles: counts })
}

/// Predicts the maximal achievable period of the LFSR with feedback `g`
/// from its factorisation: for square-free `g = f₁·f₂·…` the maximum
/// period is `lcm(ord(f₁), ord(f₂), …)`; repeated factors multiply the
/// order by the smallest power of 2 at least the multiplicity.
///
/// # Errors
///
/// [`LfsrError::DegenerateFeedback`] for constant polynomials or when a
/// factor has no order (a power of `x`).
pub fn max_period_from_factors(g: Poly2) -> Result<u128, LfsrError> {
    if g.degree() < 1 {
        return Err(LfsrError::DegenerateFeedback);
    }
    let mut acc: u128 = 1;
    for pf in prt_gf::factor_poly::factor(g) {
        if pf.poly == Poly2::X {
            // Powers of x only shift in zeros; they do not extend periods
            // of the sequence family (degenerate taps).
            continue;
        }
        let ord = pf.poly.order_of_x().ok_or(LfsrError::DegenerateFeedback)?;
        let mut pw: u128 = 1;
        while pw < pf.multiplicity as u128 {
            pw *= 2;
        }
        acc = lcm(acc, ord * pw);
    }
    Ok(acc)
}

fn lcm(a: u128, b: u128) -> u128 {
    a / gcd(a, b) * b
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_polynomial_one_big_cycle() {
        // g = 1 + x + x⁴ (primitive): zero fixed point + one 15-cycle.
        let s = enumerate_cycles(Poly2::from_bits(0b1_0011)).unwrap();
        assert_eq!(s.cycles, vec![(1, 1), (15, 1)]);
        assert_eq!(s.states(), 16);
        assert_eq!(s.max_period(), 15);
        assert_eq!(max_period_from_factors(Poly2::from_bits(0b1_0011)).unwrap(), 15);
    }

    #[test]
    fn non_primitive_irreducible_fragments() {
        // x⁴+x³+x²+x+1: order 5 → zero + three 5-cycles.
        let s = enumerate_cycles(Poly2::from_bits(0b1_1111)).unwrap();
        assert_eq!(s.cycles, vec![(1, 1), (5, 3)]);
        assert_eq!(max_period_from_factors(Poly2::from_bits(0b1_1111)).unwrap(), 5);
    }

    #[test]
    fn reducible_polynomial_structure() {
        // g = (x²+x+1)(x+1) = x³+1: periods lcm(3,1)=3.
        let g = Poly2::from_bits(0b1001);
        let s = enumerate_cycles(g).unwrap();
        assert_eq!(s.states(), 8);
        assert_eq!(s.max_period(), 3);
        assert_eq!(max_period_from_factors(g).unwrap(), 3);
    }

    #[test]
    fn analytic_matches_enumeration_for_all_degree_6() {
        for bits in (1u128 << 6)..(1u128 << 7) {
            let g = Poly2::from_bits(bits);
            if g.coeff(0) == 0 {
                continue; // x | g: sequences eventually die; skip
            }
            let s = enumerate_cycles(g).unwrap();
            let predicted = max_period_from_factors(g).unwrap();
            assert_eq!(s.max_period(), predicted, "g = {bits:b}");
        }
    }

    #[test]
    fn repeated_factor_period_doubling() {
        // (x²+x+1)²: order 3 × multiplicity 2 → period 6.
        let p = Poly2::from_bits(0b111);
        let g = p.mul(p);
        assert_eq!(max_period_from_factors(g).unwrap(), 6);
        let s = enumerate_cycles(g).unwrap();
        assert_eq!(s.max_period(), 6);
    }

    #[test]
    fn paper_bom_polynomial_diagnostics() {
        // The paper's g = 1 + x + x²: one 3-cycle + zero — exactly why the
        // BOM TDB has only 4 usable seeds.
        let s = enumerate_cycles(Poly2::from_bits(0b111)).unwrap();
        assert_eq!(s.cycles, vec![(1, 1), (3, 1)]);
        assert_eq!(s.cycle_count(), 2);
    }
}
