//! Berlekamp–Massey linear-complexity analysis.
//!
//! Given an observed sequence (of bits or of GF(2^m) words), Berlekamp–
//! Massey finds the shortest LFSR that generates it. The PRT test suite
//! uses it in two directions:
//!
//! * *positive*: the value stream a fault-free π-iteration leaves in memory
//!   must have linear complexity exactly `k` (the automaton really is the
//!   `k`-stage LFSR and nothing simpler), and
//! * *negative*: a faulty memory's stream generally jumps to a much higher
//!   complexity, which is an alternative detection observable to the `Fin`
//!   signature.

use prt_gf::Field;

/// Result of a Berlekamp–Massey run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearComplexity {
    /// Length of the shortest generating LFSR.
    pub complexity: usize,
    /// Connection polynomial `c(x) = 1 + c1·x + … + cL·x^L`
    /// (lowest degree first; `c[0] = 1`).
    pub connection: Vec<u64>,
}

impl LinearComplexity {
    /// Checks the connection polynomial against the sequence: every term
    /// from index `complexity` on must satisfy
    /// `s_t = Σ_{i=1..L} c_i·s_{t−i}` (coefficients already negated over
    /// characteristic 2).
    pub fn verifies(&self, field: &Field, seq: &[u64]) -> bool {
        for t in self.complexity..seq.len() {
            let mut acc = 0u64;
            for (i, &c) in self.connection.iter().enumerate().skip(1) {
                acc = field.add(acc, field.mul(c, seq[t - i]));
            }
            if acc != seq[t] {
                return false;
            }
        }
        true
    }
}

/// Berlekamp–Massey over an arbitrary GF(2^m).
///
/// Returns the shortest LFSR generating `seq`.
///
/// # Example
///
/// ```
/// use prt_gf::Field;
/// use prt_lfsr::linear_complexity_words;
///
/// let field = Field::new(4, 0b1_0011)?;
/// // The Figure 1b stream: complexity 2, recurrence s_t = 2s_{t-1} + 2s_{t-2}.
/// let mut l = prt_lfsr::WordLfsr::from_feedback(field.clone(), &[1, 2, 2], &[0, 1])?;
/// let seq = l.sequence(32);
/// let lc = linear_complexity_words(&field, &seq);
/// assert_eq!(lc.complexity, 2);
/// assert!(lc.verifies(&field, &seq));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn linear_complexity_words(field: &Field, seq: &[u64]) -> LinearComplexity {
    let n = seq.len();
    let mut c = vec![0u64; n + 1]; // connection polynomial
    let mut b = vec![0u64; n + 1]; // previous connection polynomial
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize; // current complexity
    let mut m = 1usize; // steps since last update
    let mut bb = 1u64; // discrepancy at last update

    for i in 0..n {
        // Discrepancy d = s_i + Σ_{j=1..L} c_j s_{i−j}
        let mut d = seq[i];
        for j in 1..=l {
            d = field.add(d, field.mul(c[j], seq[i - j]));
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= i {
            let t = c.clone();
            let coef = field.mul(d, field.inv(bb).expect("bb non-zero"));
            for j in 0..=(n - m) {
                let adj = field.mul(coef, b[j]);
                c[j + m] = field.add(c[j + m], adj);
            }
            l = i + 1 - l;
            b = t;
            bb = d;
            m = 1;
        } else {
            let coef = field.mul(d, field.inv(bb).expect("bb non-zero"));
            for j in 0..=(n - m) {
                let adj = field.mul(coef, b[j]);
                c[j + m] = field.add(c[j + m], adj);
            }
            m += 1;
        }
    }
    c.truncate(l + 1);
    LinearComplexity { complexity: l, connection: c }
}

/// Berlekamp–Massey specialised to bit sequences.
pub fn linear_complexity_bits(seq: &[u8]) -> LinearComplexity {
    let field = Field::gf(1).expect("GF(2) always constructible");
    let words: Vec<u64> = seq.iter().map(|&b| u64::from(b & 1)).collect();
    linear_complexity_words(&field, &words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitLfsr, WordLfsr};
    use prt_gf::Poly2;

    #[test]
    fn zero_sequence_has_zero_complexity() {
        let lc = linear_complexity_bits(&[0, 0, 0, 0, 0, 0]);
        assert_eq!(lc.complexity, 0);
    }

    #[test]
    fn impulse_has_full_complexity() {
        // 0…01 needs an LFSR as long as the run of zeros + 1.
        let lc = linear_complexity_bits(&[0, 0, 0, 1]);
        assert_eq!(lc.complexity, 4);
    }

    #[test]
    fn m_sequence_complexity_is_degree() {
        let mut l = BitLfsr::new(Poly2::from_bits(0b1_0011), 0b0001).unwrap();
        let seq = l.sequence(64);
        let lc = linear_complexity_bits(&seq);
        assert_eq!(lc.complexity, 4);
    }

    #[test]
    fn figure_1a_stream_has_complexity_2() {
        let mut l = BitLfsr::new(Poly2::from_bits(0b111), 0b10).unwrap();
        let seq = l.sequence(30);
        let lc = linear_complexity_bits(&seq);
        assert_eq!(lc.complexity, 2);
    }

    #[test]
    fn word_stream_recovers_connection() {
        let field = prt_gf::Field::new(4, 0b1_0011).unwrap();
        let mut l = WordLfsr::from_feedback(field.clone(), &[1, 2, 2], &[0, 1]).unwrap();
        let seq = l.sequence(40);
        let lc = linear_complexity_words(&field, &seq);
        assert_eq!(lc.complexity, 2);
        // Connection polynomial should encode c1 = c2 = 2.
        assert_eq!(lc.connection, vec![1, 2, 2]);
        assert!(lc.verifies(&field, &seq));
    }

    #[test]
    fn corrupted_stream_complexity_jumps() {
        let field = prt_gf::Field::new(4, 0b1_0011).unwrap();
        let mut l = WordLfsr::from_feedback(field.clone(), &[1, 2, 2], &[0, 1]).unwrap();
        let mut seq = l.sequence(40);
        seq[17] ^= 0x4; // single injected bit error
        let lc = linear_complexity_words(&field, &seq);
        assert!(lc.complexity > 2, "complexity {} should exceed 2", lc.complexity);
        assert!(lc.verifies(&field, &seq));
    }

    #[test]
    fn random_looking_stream_verifies() {
        let field = prt_gf::Field::gf(8).unwrap();
        // A fixed arbitrary stream.
        let seq: Vec<u64> = (0..48u64).map(|i| (i * i * 37 + 11) % 256).collect();
        let lc = linear_complexity_words(&field, &seq);
        assert!(lc.verifies(&field, &seq));
        assert!(lc.complexity <= seq.len());
    }
}
