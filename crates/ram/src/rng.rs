//! Deterministic pseudo-random number generation.
//!
//! The simulator deliberately avoids platform- or version-dependent RNGs:
//! random fault placement and the "random trajectory" of §2 of the paper
//! must be bit-reproducible across machines so that every experiment table
//! regenerates identically. SplitMix64 (Steele, Lea & Flood, OOPSLA 2014)
//! is tiny, fast, passes BigCrush, and is trivially seedable.

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use prt_ram::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (rejection-free multiply-shift; the bias
    /// is below 2⁻⁶⁴·bound, negligible for simulation workloads).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_first_value_for_seed_zero() {
        // Reference value from the published SplitMix64 algorithm.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} = {c}");
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let p = r.permutation(17);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
