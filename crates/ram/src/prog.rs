//! The compiled memory-test program IR.
//!
//! Every test family in this workspace — March tests, π-tests, PRT schemes
//! and bit-plane schemes — ultimately reduces to a fixed, data-independent
//! sequence of memory operations whose *values* are known at configuration
//! time (the fault-free LFSR sequences, March backgrounds and stale-cell
//! expectations are all precomputable). The historical runners re-derived
//! that sequence from their high-level notation on **every fault trial**:
//! a campaign over 10⁵–10⁶ faults paid the trajectory materialisation,
//! field clones and coefficient normalisation 10⁵–10⁶ times.
//!
//! [`TestProgram`] is the compile-once alternative: a flat sequence of
//! typed [`MemOp`]s plus a table of GF(2)-linear maps, executed by one
//! allocation-free interpreter ([`TestProgram::execute`] /
//! [`TestProgram::detect`]) that drives a [`Ram`] through
//! [`Ram::read`] / [`Ram::write`] / [`Ram::cycle_ref`].
//!
//! # Execution model
//!
//! The interpreter owns [`ACC_LANES`] `u64` *accumulator lanes* (one per
//! concurrently running automaton — the quad-port multi-LFSR scheme drives
//! two). Data-dependent tests (the π-wave, whose writes combine previous
//! **actual** read values so that errors propagate to the signature)
//! compile to [`MemOp::AccSet`] / [`MemOp::ReadAcc`] / [`MemOp::WriteAcc`]:
//! each `ReadAcc` XORs a linear image of the value read into its lane.
//! Multiplication by a constant `c` in GF(2^m) is GF(2)-linear in its
//! operand, so `c·v` is exactly the XOR of per-bit masks `c·z^j` over the
//! set bits `j` of `v` — the interpreter needs **no field arithmetic**,
//! only the precompiled mask table, and reproduces the interpreted
//! runners' results bit-for-bit (property-tested).
//!
//! Checked reads come in three flavours that feed two error channels:
//!
//! * [`MemOp::ReadExpect`] — verdict channel (a March `r d`, a readback
//!   sweep),
//! * [`MemOp::ReadCapture`] — verdict channel *and* records the value read
//!   (the π-test's `Fin` cells),
//! * [`MemOp::ReadStale`] — stale channel (pre-read mode's check of the
//!   previous iteration's leftovers).
//!
//! Every checked read is also a **response observation**: the diagnosis
//! layer (`prt-diag`) taps the observed stream through
//! [`TestProgram::execute_observed`] and compacts it into a MISR
//! signature, with the fault-free reference stream available without a
//! device from [`TestProgram::expected_responses`].
//!
//! # Multi-port slots
//!
//! [`MemOp::CycleN`] issues up to [`MAX_PORTS`] [`SlotOp`]s in **one**
//! device cycle via [`Ram::cycle_ref`] (slot position = port index, so
//! idle slots keep the port assignment of the source schedule). Reads
//! observe the pre-cycle state and writes commit after all reads (the
//! device contract), which is what makes the dual-port *pre-read*
//! transformation free: a stale check and the wave write of the same cell
//! fuse into a single cycle.
//!
//! # Example
//!
//! ```
//! use prt_ram::prog::ProgramBuilder;
//! use prt_ram::{FaultKind, Geometry, Ram};
//!
//! // A two-op "program": write 1, read it back.
//! let mut b = ProgramBuilder::new(Geometry::bom(4));
//! b.write(2, 1);
//! b.read_expect(2, 1);
//! let prog = b.build();
//!
//! let mut good = Ram::new(Geometry::bom(4));
//! assert!(!prog.detect(&mut good));
//! let mut bad = Ram::new(Geometry::bom(4));
//! bad.inject(FaultKind::StuckAt { cell: 2, bit: 0, value: 0 })?;
//! assert!(prog.detect(&mut bad));
//! # Ok::<(), prt_ram::RamError>(())
//! ```

use crate::batch::{lane_word, LaneChunk, LaneRam};
use crate::slice::{ActiveSet, ActivityIndex, NO_READ};
use crate::{Geometry, PortOp, Ram, RamError, MAX_PORTS};
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Lazily-built cache of the program's [`ActivityIndex`]. The index is a
/// pure function of the program, so the cache is transparent: equality
/// ignores it, and clones taken after the first build share the built
/// index through the `Arc`.
#[derive(Default)]
struct ActivityCache(OnceLock<Arc<ActivityIndex>>);

impl Clone for ActivityCache {
    fn clone(&self) -> ActivityCache {
        ActivityCache(self.0.clone())
    }
}

impl std::fmt::Debug for ActivityCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately constant: program Debug output feeds checkpoint
        // fingerprints and service cache keys, which must not change when
        // the lazy index happens to build.
        f.write_str("ActivityCache")
    }
}

impl PartialEq for ActivityCache {
    fn eq(&self, _other: &ActivityCache) -> bool {
        true
    }
}

impl Eq for ActivityCache {}

/// Number of independent accumulator lanes the interpreter provides (one
/// per concurrently running automaton; the §4 multi-LFSR quad-port scheme
/// uses two).
pub const ACC_LANES: usize = 4;

/// Per-accumulator-lane bit-plane images (one plane set per trial lane)
/// of the batch interpreters.
type AccPlanes<const K: usize> = [[LaneChunk<K>; Geometry::MAX_WIDTH as usize]; ACC_LANES];

/// Per-port buffered read planes of one batched multi-port cycle.
type ReadPlanes<const K: usize> = [[LaneChunk<K>; Geometry::MAX_WIDTH as usize]; MAX_PORTS];

/// One operation of a port slot inside a [`MemOp::CycleN`].
///
/// Slot reads observe the pre-cycle memory state; slot writes commit after
/// every read of the same cycle. A [`SlotOp::WriteAcc`] uses the lane
/// value from *before* the cycle (its reads have not been folded in
/// yet) — schedule accumulator reads in an earlier cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOp {
    /// The port stays idle this cycle.
    Idle,
    /// Read and XOR the mapped value into an accumulator lane.
    ReadAcc {
        /// Address to read.
        addr: u32,
        /// Index into the program's linear-map table.
        map: u16,
        /// Accumulator lane.
        lane: u8,
    },
    /// Read and compare on the verdict channel.
    ReadExpect {
        /// Address to read.
        addr: u32,
        /// Expected word.
        expect: u64,
    },
    /// Read and compare on the stale (pre-read) channel.
    ReadStale {
        /// Address to read.
        addr: u32,
        /// Contents the previous iteration should have left.
        expect: u64,
    },
    /// Read, record the value, and compare on the verdict channel.
    ReadCapture {
        /// Address to read.
        addr: u32,
        /// Expected word.
        expect: u64,
    },
    /// Write an immediate word.
    Write {
        /// Address to write.
        addr: u32,
        /// Data word.
        data: u64,
    },
    /// Write an accumulator lane (value as of the start of this cycle).
    WriteAcc {
        /// Address to write.
        addr: u32,
        /// Accumulator lane.
        lane: u8,
    },
}

/// One compiled memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Write an immediate word (seeds, March writes).
    Write {
        /// Address to write.
        addr: u32,
        /// Data word.
        data: u64,
    },
    /// Read and compare against a precomputed expected word; a mismatch
    /// counts on the **verdict** channel.
    ReadExpect {
        /// Address to read.
        addr: u32,
        /// Expected word.
        expect: u64,
    },
    /// Read and compare against the previous iteration's expected
    /// contents; a mismatch counts on the **stale** channel (pre-read
    /// mode).
    ReadStale {
        /// Address to read.
        addr: u32,
        /// Expected stale word.
        expect: u64,
    },
    /// Read, record the value into the caller's capture buffer, and
    /// compare on the verdict channel (signature / `Fin` reads).
    ReadCapture {
        /// Address to read.
        addr: u32,
        /// Expected word (`Fin*`).
        expect: u64,
    },
    /// Read and discard (keeps the op-count structure of schedules whose
    /// hardware senses a whole operand window, and of windowed diagnosis
    /// programs whose comparator is gated off outside the window).
    ReadAny {
        /// Address to read.
        addr: u32,
    },
    /// Load an accumulator lane with an immediate (a π-iteration's affine
    /// term, or 0).
    AccSet {
        /// Accumulator lane.
        lane: u8,
        /// New lane value.
        value: u64,
    },
    /// Read and XOR the mapped value into an accumulator lane:
    /// `acc[lane] ^= map(value)` — the compiled form of `acc += c·value`
    /// over GF(2^m).
    ReadAcc {
        /// Address to read.
        addr: u32,
        /// Index into the program's linear-map table.
        map: u16,
        /// Accumulator lane.
        lane: u8,
    },
    /// Write an accumulator lane.
    WriteAcc {
        /// Address to write.
        addr: u32,
        /// Accumulator lane.
        lane: u8,
    },
    /// One multi-port cycle: `len` slots from the program's slot table
    /// (slot position = port index) issue simultaneously through
    /// [`Ram::cycle_ref`].
    CycleN {
        /// First slot in the program's slot table.
        start: u32,
        /// Number of slots (1..=[`MAX_PORTS`]).
        len: u8,
    },
}

/// First verdict-channel mismatch of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMismatch {
    /// Index of the [`MemOp`] that observed the mismatch.
    pub op_index: usize,
    /// Address read.
    pub addr: usize,
    /// Expected word.
    pub expected: u64,
    /// Word actually returned.
    pub got: u64,
}

/// Summary of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Execution {
    /// Verdict-channel mismatches observed
    /// ([`MemOp::ReadExpect`] / [`MemOp::ReadCapture`]).
    pub mismatches: u64,
    /// Stale-channel mismatches observed ([`MemOp::ReadStale`]).
    pub stale_errors: u64,
    /// The first verdict-channel mismatch, if any.
    pub first_mismatch: Option<OpMismatch>,
    /// Read + write operations performed.
    pub ops: u64,
    /// Device cycles consumed.
    pub cycles: u64,
}

impl Execution {
    /// `true` when any channel flagged the memory as faulty.
    pub fn detected(&self) -> bool {
        self.mismatches > 0 || self.stale_errors > 0
    }
}

/// A compiled memory-test program: flat ops, linear-map table, geometry.
///
/// Build with [`ProgramBuilder`]; run with [`TestProgram::detect`] (early
/// exit, allocation-free — the campaign hot path) or
/// [`TestProgram::execute`] (full counts, optional signature capture).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestProgram {
    name: String,
    geom: Geometry,
    ports: usize,
    background: Option<u64>,
    window: Option<(u32, u32)>,
    ops: Vec<MemOp>,
    /// Slot table backing [`MemOp::CycleN`] ops.
    slots: Vec<SlotOp>,
    /// `maps[m][j]` is the XOR contribution of input bit `j` under linear
    /// map `m` (for a GF(2^m) constant `c`: `c·z^j`).
    maps: Vec<Vec<u64>>,
    /// `(op index, marker id)` pairs in ascending op order — compilers use
    /// these to recover source structure (March element, iteration…).
    marks: Vec<(usize, u32)>,
    captures: usize,
    /// Lazily-built activity index (see [`TestProgram::activity_index`]).
    activity: ActivityCache,
}

impl TestProgram {
    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Geometry the program was compiled for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Ports the program needs (1, or the widest [`MemOp::CycleN`]).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The data background this program was compiled for, when the source
    /// notation has one (March compilers declare it; π/PRT/bit-plane
    /// programs have no background notion and leave it `None`). Campaign
    /// runners use it to reject a program/background mismatch loudly.
    pub fn background(&self) -> Option<u64> {
        self.background
    }

    /// The program's [`ActivityIndex`] — compiled on first use by one
    /// fault-free reference simulation, then shared: clones taken after
    /// the build reuse the same index through the `Arc`, so campaigns,
    /// signature collectors and services slicing the same program pay
    /// the compile once.
    pub fn activity_index(&self) -> Arc<ActivityIndex> {
        Arc::clone(self.activity.0.get_or_init(|| Arc::new(ActivityIndex::build(self))))
    }

    /// The check window this program was compiled with
    /// ([`ProgramBuilder::with_window`]), if any: only
    /// [`ProgramBuilder::read_checked`] reads of in-window addresses carry
    /// a comparison; out-of-window reads were demoted to
    /// [`MemOp::ReadAny`].
    pub fn window(&self) -> Option<Range<usize>> {
        self.window.map(|(lo, hi)| lo as usize..hi as usize)
    }

    /// The compiled operations.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// The slot table backing [`MemOp::CycleN`] ops.
    pub fn slots(&self) -> &[SlotOp] {
        &self.slots
    }

    /// The GF(2)-linear map mask table (crate-internal: the activity
    /// index's fault-free reference simulation applies the same maps the
    /// interpreter does).
    pub(crate) fn map_table(&self) -> &[Vec<u64>] {
        &self.maps
    }

    /// Number of [`MemOp::ReadCapture`] ops (capacity needed by the
    /// capture buffer).
    pub fn captures(&self) -> usize {
        self.captures
    }

    /// The `(op index, marker id)` pairs, ascending.
    pub fn marks(&self) -> &[(usize, u32)] {
        &self.marks
    }

    /// The id of the last marker at or before `op_index`.
    pub fn mark_before(&self, op_index: usize) -> Option<u32> {
        match self.marks.binary_search_by_key(&op_index, |&(i, _)| i) {
            Ok(i) => Some(self.marks[i].1),
            Err(0) => None,
            Err(i) => Some(self.marks[i - 1].1),
        }
    }

    /// The fault-free response stream: the expected word of every checked
    /// read ([`MemOp::ReadExpect`] / [`MemOp::ReadStale`] /
    /// [`MemOp::ReadCapture`], scalar or slot) in execution order — the
    /// exact sequence an observer passed to
    /// [`TestProgram::execute_observed`] sees on a fault-free device
    /// (asserted in tests). Signature collectors compact this once at
    /// configuration time to obtain the reference signature without
    /// touching a device.
    pub fn expected_responses(&self) -> impl Iterator<Item = u64> + '_ {
        self.ops.iter().flat_map(move |op| {
            let (scalar, slots): (Option<u64>, &[SlotOp]) = match *op {
                MemOp::ReadExpect { expect, .. }
                | MemOp::ReadStale { expect, .. }
                | MemOp::ReadCapture { expect, .. } => (Some(expect), &[]),
                MemOp::CycleN { start, len } => {
                    (None, &self.slots[start as usize..start as usize + len as usize])
                }
                _ => (None, &[]),
            };
            scalar.into_iter().chain(slots.iter().filter_map(|s| match *s {
                SlotOp::ReadExpect { expect, .. }
                | SlotOp::ReadStale { expect, .. }
                | SlotOp::ReadCapture { expect, .. } => Some(expect),
                _ => None,
            }))
        })
    }

    /// Runs the program to the first failing read and reports whether the
    /// memory was flagged. Allocation-free (single-port programs touch the
    /// heap nowhere; multi-port cycles go through the [`Ram::cycle_ref`]
    /// scratch); a device error (a geometry-mismatched device, or e.g. a
    /// decoder-fault write conflict on a multi-port cycle) counts as *not
    /// detected*, mirroring the interpreted runners' error-as-escape
    /// convention.
    pub fn detect(&self, ram: &mut Ram) -> bool {
        self.run(ram, true, None, None).map(|e| e.detected()).unwrap_or(false)
    }

    /// `true` when this program can drive a lane-sliced batch run.
    ///
    /// Since the multi-port `CycleN` interpreter arm was batched, every
    /// compiled program batches — the predicate is kept only as the
    /// partition seam campaign engines query, so a future scalar-only
    /// program variant has somewhere to opt out.
    pub fn lane_batchable(&self) -> bool {
        true
    }

    /// Runs the program against up to [`LaneRam::<K>::LANES`] fault
    /// trials **simultaneously** on a lane-sliced [`LaneRam`], and
    /// returns the mask of lanes whose trial was flagged (either channel
    /// — the lane counterpart of [`TestProgram::detect`]).
    ///
    /// Checked reads compare every bit-plane against the broadcast
    /// expected word; accumulator lanes are widened to one bit-plane set
    /// per trial lane, with the precompiled GF(2)-linear maps applied
    /// per bit-plane (`acc_plane[i] ^= value_plane[j]` for every set bit
    /// `i` of mask `j` — no per-lane arithmetic anywhere). The run early
    /// exits once every active lane has been flagged (the lane-masked
    /// form of the scalar early exit; verdicts are unaffected because a
    /// flagged lane's verdict is final).
    ///
    /// Per lane, the returned verdict is **bit-identical** to
    /// [`TestProgram::detect`] on a scalar [`Ram`] carrying that lane's
    /// fault (property-tested in `tests/batch.rs`).
    ///
    /// Multi-port `CycleN` schedules batch too: each cycle stages its
    /// write claims through [`LaneRam::cycle_conflicts`] first (the
    /// bit-sliced form of the scalar write-write conflict check), then
    /// performs all reads in port order, all writes in port order, and
    /// finally processes the slot table in slot order — the exact scalar
    /// cycle sequencing. Lanes whose decoder image produces a conflict
    /// are *frozen*: their verdict is final (`false`, the scalar
    /// error-as-escape convention) and later reads on them can neither
    /// set nor clear detection.
    ///
    /// # Panics
    ///
    /// Panics when the program needs more ports than `ram` was built
    /// with, or when `ram`'s geometry differs from the one the program
    /// was compiled for. A whole *batch* on the wrong device would
    /// silently report every lane as an escape (0% coverage), so unlike
    /// the scalar per-trial error-as-escape convention these
    /// configuration errors are surfaced loudly. Resilient campaign
    /// runtimes that must not abort use [`TestProgram::try_detect_batch`],
    /// which this is a thin wrapper over.
    pub fn detect_batch<const K: usize>(&self, ram: &mut LaneRam<K>) -> LaneChunk<K> {
        self.try_detect_batch(ram).unwrap_or_else(|e| self.panic_batch_config(e))
    }

    /// The fallible form of [`TestProgram::detect_batch`]: the same batch
    /// interpreter pass, with the two whole-batch configuration errors
    /// surfaced as typed [`RamError`]s instead of panics — the entry point
    /// fault-tolerant campaign services dispatch through.
    ///
    /// # Errors
    ///
    /// [`RamError::TooManyPortOps`] when the program needs more ports
    /// than `ram` was built with (construct the pool with
    /// [`LaneRam::with_ports`]); [`RamError::ProgramGeometryMismatch`]
    /// when `ram` was built for a different geometry than the program
    /// was compiled for.
    pub fn try_detect_batch<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
    ) -> Result<LaneChunk<K>, RamError> {
        self.check_batch_config(ram)?;
        Ok(self.detect_batch_unchecked(ram))
    }

    /// Rejects the whole-batch configuration errors (validated before any
    /// lane is touched, so a rejected batch has no side effects).
    fn check_batch_config<const K: usize>(&self, ram: &LaneRam<K>) -> Result<(), RamError> {
        if self.ports > ram.ports() {
            return Err(RamError::TooManyPortOps { submitted: self.ports, ports: ram.ports() });
        }
        if ram.geometry() != self.geom {
            return Err(RamError::ProgramGeometryMismatch {
                compiled: self.geom,
                device: ram.geometry(),
            });
        }
        Ok(())
    }

    /// Maps a batch configuration error back onto the exact panic message
    /// the panicking wrappers have always used (regression-tested since
    /// the silent-zero-coverage fix).
    fn panic_batch_config(&self, e: RamError) -> ! {
        match e {
            RamError::TooManyPortOps { submitted, ports } => panic!(
                "program '{}' needs {} ports but the LaneRam was built with {}",
                self.name, submitted, ports
            ),
            RamError::ProgramGeometryMismatch { .. } => panic!(
                "program '{}' was compiled for a different geometry than the LaneRam",
                self.name
            ),
            e => panic!("{e}"),
        }
    }

    fn detect_batch_unchecked<const K: usize>(&self, ram: &mut LaneRam<K>) -> LaneChunk<K> {
        let full = ram.active_lanes();
        let mut acc = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; ACC_LANES];
        let mut reads = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; MAX_PORTS];
        let mut detected = LaneChunk::<K>::ZERO;
        let mut errored = LaneChunk::<K>::ZERO;
        for op in &self.ops {
            self.detect_step(ram, op, &mut acc, &mut reads, &mut detected, &mut errored);
            if (detected | errored) & full == full {
                break;
            }
        }
        detected & full
    }

    /// One op of the detection batch interpreter — the body shared by the
    /// full pass ([`TestProgram::detect_batch`]) and the sliced pass
    /// ([`TestProgram::detect_batch_sliced`]), so the two modes cannot
    /// drift apart semantically.
    #[inline]
    fn detect_step<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        op: &MemOp,
        acc: &mut AccPlanes<K>,
        reads: &mut ReadPlanes<K>,
        detected: &mut LaneChunk<K>,
        errored: &mut LaneChunk<K>,
    ) {
        let m = self.geom.width() as usize;
        match *op {
            MemOp::Write { addr, data } => ram.write_broadcast(addr as usize, data),
            MemOp::ReadExpect { addr, expect }
            | MemOp::ReadStale { addr, expect }
            | MemOp::ReadCapture { addr, expect } => {
                let planes = ram.read(addr as usize);
                let mut diff = LaneChunk::<K>::ZERO;
                for (j, &p) in planes.iter().enumerate() {
                    diff |= p ^ LaneChunk::broadcast(expect, j as u32);
                }
                *detected |= diff & !*errored;
            }
            MemOp::ReadAny { addr } => {
                let _ = ram.read(addr as usize);
            }
            MemOp::AccSet { lane, value } => {
                for (j, plane) in acc[lane as usize][..m].iter_mut().enumerate() {
                    *plane = LaneChunk::broadcast(value, j as u32);
                }
            }
            MemOp::ReadAcc { addr, map, lane } => {
                let planes = ram.read(addr as usize);
                let masks = &self.maps[map as usize];
                let a = &mut acc[lane as usize];
                for (j, &p) in planes.iter().enumerate() {
                    let mut img = masks[j];
                    while img != 0 {
                        let i = img.trailing_zeros() as usize;
                        a[i] ^= p;
                        img &= img - 1;
                    }
                }
            }
            MemOp::WriteAcc { addr, lane } => {
                ram.write_planes(addr as usize, &acc[lane as usize][..m]);
            }
            MemOp::CycleN { start, len } => {
                let slots = &self.slots[start as usize..start as usize + len as usize];
                *errored = self.cycle_batch_ram_phase(ram, slots, acc, reads);
                for (port, &slot) in slots.iter().enumerate() {
                    match slot {
                        SlotOp::Idle | SlotOp::Write { .. } | SlotOp::WriteAcc { .. } => {}
                        SlotOp::ReadAcc { map, lane, .. } => {
                            let masks = &self.maps[map as usize];
                            let a = &mut acc[lane as usize];
                            for (j, &p) in reads[port][..m].iter().enumerate() {
                                let mut img = masks[j];
                                while img != 0 {
                                    let i = img.trailing_zeros() as usize;
                                    a[i] ^= p;
                                    img &= img - 1;
                                }
                            }
                        }
                        SlotOp::ReadExpect { expect, .. }
                        | SlotOp::ReadStale { expect, .. }
                        | SlotOp::ReadCapture { expect, .. } => {
                            let mut diff = LaneChunk::<K>::ZERO;
                            for (j, &p) in reads[port][..m].iter().enumerate() {
                                diff |= p ^ LaneChunk::broadcast(expect, j as u32);
                            }
                            *detected |= diff & !*errored;
                        }
                    }
                }
            }
        }
    }

    /// [`TestProgram::detect_batch`] in **sliced execution mode**: only
    /// the ops in `active` (the chunk's span-union activity set resolved
    /// against `index`) execute on the device; the fault-free effect of
    /// every skipped gap is spliced in from the precomputed reference —
    /// the operation clock jumps, out-of-union cells an active op reads
    /// are poked to their pre-op reference value, and stuck-open sense
    /// amplifiers are restored from the per-port read history.
    ///
    /// Per lane, the verdict is **bit-identical** to
    /// [`TestProgram::detect_batch`] (property-tested in
    /// `tests/slicing.rs`): outside the span union the device state
    /// equals the fault-free reference on every lane, so a skipped op
    /// can neither flag a lane nor change any state an active op
    /// observes.
    ///
    /// # Panics
    ///
    /// As [`TestProgram::detect_batch`], plus when `index` was not built
    /// for this program.
    pub fn detect_batch_sliced<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        index: &ActivityIndex,
        active: &ActiveSet,
    ) -> LaneChunk<K> {
        self.try_detect_batch_sliced(ram, index, active)
            .unwrap_or_else(|e| self.panic_batch_config(e))
    }

    /// The fallible form of [`TestProgram::detect_batch_sliced`].
    ///
    /// # Errors
    ///
    /// As [`TestProgram::try_detect_batch`].
    pub fn try_detect_batch_sliced<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        index: &ActivityIndex,
        active: &ActiveSet,
    ) -> Result<LaneChunk<K>, RamError> {
        self.check_batch_config(ram)?;
        assert!(index.matches(self), "activity index was built for a different program");
        let full = ram.active_lanes();
        let base_time = ram.op_time();
        let sof = ram.has_sof();
        let mut acc = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; ACC_LANES];
        let mut reads = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; MAX_PORTS];
        let mut detected = LaneChunk::<K>::ZERO;
        let mut errored = LaneChunk::<K>::ZERO;
        let mut next = 0u32;
        for &opi in active.ops() {
            self.splice_gap(ram, index, active, base_time, sof, next..opi);
            self.detect_step(
                ram,
                &self.ops[opi as usize],
                &mut acc,
                &mut reads,
                &mut detected,
                &mut errored,
            );
            if (detected | errored) & full == full {
                break;
            }
            next = opi + 1;
        }
        Ok(detected & full)
    }

    /// Splices the fault-free reference effects of the skipped gap
    /// `[next, opi)` and preps active op `opi`: sense restores on
    /// stuck-open banks (the last skipped read's reference value, per
    /// port), device-clock re-sync, and reference pokes for every
    /// out-of-union cell the op is about to read (skipped writes to
    /// those cells never materialised — on every lane they would have
    /// stored exactly the reference value).
    fn splice_gap<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        index: &ActivityIndex,
        active: &ActiveSet,
        base_time: u64,
        sof: bool,
        gap: std::ops::Range<u32>,
    ) {
        let (next, opi) = (gap.start, gap.end);
        let j = opi as usize;
        if sof && opi > next {
            for (port, &(ri, rv)) in index.last_read_before[j][..self.ports].iter().enumerate() {
                if ri != NO_READ && ri >= next {
                    ram.force_sense_broadcast(port, rv);
                }
            }
        }
        ram.set_op_time(base_time + index.time_before[j]);
        for &(a, v) in index.read_refs_for(j) {
            if !active.contains(a as usize) {
                ram.poke_broadcast(a as usize, v);
            }
        }
    }

    /// The ram half of one batched multi-port cycle, mirroring the scalar
    /// [`crate::Ram::cycle_ref`] sequencing exactly: stage every write
    /// slot's decoder claims and freeze the lanes where two writes land
    /// on one cell (*before* any side effect), then perform all reads in
    /// port order, then all writes in port order. Read slots' bit-planes
    /// are buffered into `reads[port]`; write-accumulator slots take the
    /// **pre-cycle** accumulator image, as the scalar interpreter builds
    /// its port-op table before the cycle runs. Returns the cumulative
    /// frozen-lane mask.
    fn cycle_batch_ram_phase<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        slots: &[SlotOp],
        acc: &[[LaneChunk<K>; Geometry::MAX_WIDTH as usize]; ACC_LANES],
        reads: &mut [[LaneChunk<K>; Geometry::MAX_WIDTH as usize]; MAX_PORTS],
    ) -> LaneChunk<K> {
        let m = self.geom.width() as usize;
        let mut write_addrs = [0usize; MAX_PORTS];
        let mut nw = 0;
        for &slot in slots {
            if let SlotOp::Write { addr, .. } | SlotOp::WriteAcc { addr, .. } = slot {
                write_addrs[nw] = addr as usize;
                nw += 1;
            }
        }
        let errored = ram.cycle_conflicts(&write_addrs[..nw]);
        for (port, &slot) in slots.iter().enumerate() {
            if let SlotOp::ReadAcc { addr, .. }
            | SlotOp::ReadExpect { addr, .. }
            | SlotOp::ReadStale { addr, .. }
            | SlotOp::ReadCapture { addr, .. } = slot
            {
                reads[port][..m].copy_from_slice(ram.read_on_port(port, addr as usize));
            }
        }
        for &slot in slots {
            match slot {
                SlotOp::Write { addr, data } => ram.write_broadcast(addr as usize, data),
                SlotOp::WriteAcc { addr, lane } => {
                    ram.write_planes(addr as usize, &acc[lane as usize][..m]);
                }
                _ => {}
            }
        }
        errored
    }

    /// Runs the program against up to [`LaneRam::<K>::LANES`] fault
    /// trials simultaneously **without early exit**, reporting per-lane
    /// channel counts and feeding `observer` the bit-planes of every
    /// checked read — the lane counterpart of
    /// [`TestProgram::execute_observed`], and the engine batched
    /// *measurement* campaigns (MISR signature collection, fault
    /// dictionaries) run on: the response-stream length is
    /// lane-independent, so a per-lane compactor sees exactly the stream
    /// a scalar run of that lane's fault would produce.
    ///
    /// `execs[k]` receives lane `k`'s execution summary (reset first);
    /// per lane it equals the scalar
    /// `execute_observed(ram, false, None, ..)` summary on a [`Ram`]
    /// carrying that lane's fault — counts, first mismatch, ops and
    /// cycles (property-tested in `tests/batch.rs`). Returns the mask of
    /// active lanes whose trial was flagged on either channel.
    ///
    /// Lanes frozen by a multi-port write-write conflict mirror the
    /// scalar error-as-escape convention for the *whole* execution: the
    /// scalar run returns `Err` and its summary is discarded, so frozen
    /// lanes report a default [`Execution`] and are excluded from the
    /// returned mask even if they mismatched before the conflict.
    /// Compactors consuming the observed stream substitute the reference
    /// observation for lanes in [`LaneRam::errored_lanes`].
    ///
    /// # Panics
    ///
    /// As [`TestProgram::detect_batch`]: a port shortfall and a
    /// geometry-mismatched `ram` are loud configuration errors
    /// ([`TestProgram::try_execute_batch_observed`] is the fallible form
    /// this is a thin wrapper over). Also panics unless
    /// `execs.len() == LaneRam::<K>::LANES`.
    pub fn execute_batch_observed<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        execs: &mut [Execution],
        observer: &mut dyn FnMut(&[LaneChunk<K>]),
    ) -> LaneChunk<K> {
        self.try_execute_batch_observed(ram, execs, observer)
            .unwrap_or_else(|e| self.panic_batch_config(e))
    }

    /// The fallible form of [`TestProgram::execute_batch_observed`]: the
    /// same full-counts batch pass, with the whole-batch configuration
    /// errors surfaced as typed [`RamError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// As [`TestProgram::try_detect_batch`].
    pub fn try_execute_batch_observed<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        execs: &mut [Execution],
        observer: &mut dyn FnMut(&[LaneChunk<K>]),
    ) -> Result<LaneChunk<K>, RamError> {
        self.check_batch_config(ram)?;
        assert_eq!(execs.len(), LaneRam::<K>::LANES, "one execution summary per lane");
        execs.fill(Execution::default());
        let mut acc = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; ACC_LANES];
        let mut reads = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; MAX_PORTS];
        let mut detected = LaneChunk::<K>::ZERO;
        let mut errored = LaneChunk::<K>::ZERO;
        let mut ops = 0u64;
        let mut cycles = 0u64;
        for idx in 0..self.ops.len() {
            self.observed_step(
                ram,
                idx,
                &mut acc,
                &mut reads,
                &mut detected,
                &mut errored,
                &mut ops,
                &mut cycles,
                execs,
                observer,
            );
        }
        // Every lane executes every op — there is no early exit — so the
        // op/cycle totals are lane-independent. Frozen lanes report the
        // default summary: the scalar run they mirror returned `Err` and
        // its counts were discarded.
        for (lane, e) in execs.iter_mut().enumerate() {
            if errored.get(lane) {
                *e = Execution::default();
            } else {
                e.ops = ops;
                e.cycles = cycles;
            }
        }
        Ok(detected & !errored & ram.active_lanes())
    }

    /// One op of the observed batch interpreter — the body shared by the
    /// full pass ([`TestProgram::execute_batch_observed`]) and the sliced
    /// pass ([`TestProgram::execute_batch_observed_sliced`]), so the two
    /// modes cannot drift apart semantically.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn observed_step<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        idx: usize,
        acc: &mut AccPlanes<K>,
        reads: &mut ReadPlanes<K>,
        detected: &mut LaneChunk<K>,
        errored: &mut LaneChunk<K>,
        ops: &mut u64,
        cycles: &mut u64,
        execs: &mut [Execution],
        observer: &mut dyn FnMut(&[LaneChunk<K>]),
    ) {
        let m = self.geom.width() as usize;
        let op = &self.ops[idx];
        match *op {
            MemOp::Write { addr, data } => {
                ram.write_broadcast(addr as usize, data);
                *ops += 1;
                *cycles += 1;
            }
            MemOp::ReadExpect { addr, expect }
            | MemOp::ReadStale { addr, expect }
            | MemOp::ReadCapture { addr, expect } => {
                let planes = ram.read(addr as usize);
                observer(planes);
                *ops += 1;
                *cycles += 1;
                let mut diff = LaneChunk::<K>::ZERO;
                for (j, &p) in planes.iter().enumerate() {
                    diff |= p ^ LaneChunk::broadcast(expect, j as u32);
                }
                diff &= !*errored;
                if !diff.is_zero() {
                    let stale = matches!(op, MemOp::ReadStale { .. });
                    Self::book_lanes(execs, diff, planes, stale, idx, addr as usize, expect);
                    *detected |= diff;
                }
            }
            MemOp::ReadAny { addr } => {
                let _ = ram.read(addr as usize);
                *ops += 1;
                *cycles += 1;
            }
            MemOp::AccSet { lane, value } => {
                for (j, plane) in acc[lane as usize][..m].iter_mut().enumerate() {
                    *plane = LaneChunk::broadcast(value, j as u32);
                }
            }
            MemOp::ReadAcc { addr, map, lane } => {
                let planes = ram.read(addr as usize);
                *ops += 1;
                *cycles += 1;
                let masks = &self.maps[map as usize];
                let a = &mut acc[lane as usize];
                for (j, &p) in planes.iter().enumerate() {
                    let mut img = masks[j];
                    while img != 0 {
                        let i = img.trailing_zeros() as usize;
                        a[i] ^= p;
                        img &= img - 1;
                    }
                }
            }
            MemOp::WriteAcc { addr, lane } => {
                ram.write_planes(addr as usize, &acc[lane as usize][..m]);
                *ops += 1;
                *cycles += 1;
            }
            MemOp::CycleN { start, len } => {
                let slots = &self.slots[start as usize..start as usize + len as usize];
                *errored = self.cycle_batch_ram_phase(ram, slots, acc, reads);
                *ops += slots.iter().filter(|s| !matches!(s, SlotOp::Idle)).count() as u64;
                *cycles += 1;
                for (port, &slot) in slots.iter().enumerate() {
                    match slot {
                        SlotOp::Idle | SlotOp::Write { .. } | SlotOp::WriteAcc { .. } => {}
                        SlotOp::ReadAcc { map, lane, .. } => {
                            let masks = &self.maps[map as usize];
                            let a = &mut acc[lane as usize];
                            for (j, &p) in reads[port][..m].iter().enumerate() {
                                let mut img = masks[j];
                                while img != 0 {
                                    let i = img.trailing_zeros() as usize;
                                    a[i] ^= p;
                                    img &= img - 1;
                                }
                            }
                        }
                        SlotOp::ReadExpect { addr, expect }
                        | SlotOp::ReadStale { addr, expect }
                        | SlotOp::ReadCapture { addr, expect } => {
                            let planes = &reads[port][..m];
                            observer(planes);
                            let mut diff = LaneChunk::<K>::ZERO;
                            for (j, &p) in planes.iter().enumerate() {
                                diff |= p ^ LaneChunk::broadcast(expect, j as u32);
                            }
                            diff &= !*errored;
                            if !diff.is_zero() {
                                let stale = matches!(slot, SlotOp::ReadStale { .. });
                                Self::book_lanes(
                                    execs,
                                    diff,
                                    planes,
                                    stale,
                                    idx,
                                    addr as usize,
                                    expect,
                                );
                                *detected |= diff;
                            }
                        }
                    }
                }
            }
        }
    }

    /// [`TestProgram::execute_batch_observed`] in **sliced execution
    /// mode** (see [`TestProgram::detect_batch_sliced`]): only the active
    /// ops execute; every *skipped* checked read feeds `observer` the
    /// broadcast of its expected word — exactly the fault-free response
    /// every unfrozen lane would have produced, per the
    /// [`TestProgram::expected_responses`] contract — so the observed
    /// stream keeps its lane-independent length and, for lanes outside
    /// [`LaneRam::errored_lanes`], is bit-identical to the full pass.
    /// (Frozen lanes' observations are unspecified in both modes:
    /// compactors substitute the reference observation for them.)
    ///
    /// Execution summaries report the precompiled full-pass op/cycle
    /// totals, and first-mismatch records keep their original op indices:
    /// a skipped checked read cannot mismatch on an unfrozen lane.
    ///
    /// # Panics
    ///
    /// As [`TestProgram::execute_batch_observed`], plus when `index` was
    /// not built for this program.
    pub fn execute_batch_observed_sliced<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        index: &ActivityIndex,
        active: &ActiveSet,
        execs: &mut [Execution],
        observer: &mut dyn FnMut(&[LaneChunk<K>]),
    ) -> LaneChunk<K> {
        self.try_execute_batch_observed_sliced(ram, index, active, execs, observer)
            .unwrap_or_else(|e| self.panic_batch_config(e))
    }

    /// The fallible form of
    /// [`TestProgram::execute_batch_observed_sliced`].
    ///
    /// # Errors
    ///
    /// As [`TestProgram::try_detect_batch`].
    pub fn try_execute_batch_observed_sliced<const K: usize>(
        &self,
        ram: &mut LaneRam<K>,
        index: &ActivityIndex,
        active: &ActiveSet,
        execs: &mut [Execution],
        observer: &mut dyn FnMut(&[LaneChunk<K>]),
    ) -> Result<LaneChunk<K>, RamError> {
        self.check_batch_config(ram)?;
        assert!(index.matches(self), "activity index was built for a different program");
        assert_eq!(execs.len(), LaneRam::<K>::LANES, "one execution summary per lane");
        let m = self.geom.width() as usize;
        execs.fill(Execution::default());
        let base_time = ram.op_time();
        let sof = ram.has_sof();
        let mut acc = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; ACC_LANES];
        let mut reads = [[LaneChunk::<K>::ZERO; Geometry::MAX_WIDTH as usize]; MAX_PORTS];
        let mut detected = LaneChunk::<K>::ZERO;
        let mut errored = LaneChunk::<K>::ZERO;
        let mut ops = 0u64;
        let mut cycles = 0u64;
        let mut gap_planes = vec![LaneChunk::<K>::ZERO; m];
        let mut emitted = 0u32;
        let mut next = 0u32;
        for &opi in active.ops() {
            let j = opi as usize;
            Self::emit_reference(
                &index.responses,
                emitted,
                index.responses_before[j],
                &mut gap_planes,
                observer,
            );
            self.splice_gap(ram, index, active, base_time, sof, next..opi);
            self.observed_step(
                ram,
                j,
                &mut acc,
                &mut reads,
                &mut detected,
                &mut errored,
                &mut ops,
                &mut cycles,
                execs,
                observer,
            );
            emitted = index.responses_before[j + 1];
            next = opi + 1;
        }
        Self::emit_reference(
            &index.responses,
            emitted,
            index.responses.len() as u32,
            &mut gap_planes,
            observer,
        );
        // Per-lane totals come from the precompiled full pass, not from
        // the (shorter) sliced walk.
        for (lane, e) in execs.iter_mut().enumerate() {
            if errored.get(lane) {
                *e = Execution::default();
            } else {
                e.ops = index.total_ops;
                e.cycles = index.total_cycles;
            }
        }
        Ok(detected & !errored & ram.active_lanes())
    }

    /// Feeds `observer` the broadcast reference response of every skipped
    /// checked read in stream positions `[lo, hi)`.
    fn emit_reference<const K: usize>(
        responses: &[u64],
        lo: u32,
        hi: u32,
        planes: &mut [LaneChunk<K>],
        observer: &mut dyn FnMut(&[LaneChunk<K>]),
    ) {
        for &expect in &responses[lo as usize..hi as usize] {
            for (j, plane) in planes.iter_mut().enumerate() {
                *plane = LaneChunk::broadcast(expect, j as u32);
            }
            observer(planes);
        }
    }

    /// Per-lane mismatch bookkeeping for one checked batch read: `diff`
    /// holds the (unfrozen) lanes whose word differed from the broadcast
    /// expectation; each gets its channel counter bumped and, for the
    /// mismatch channel, its first mismatch recorded with the lane's own
    /// de-sliced word.
    fn book_lanes<const K: usize>(
        execs: &mut [Execution],
        diff: LaneChunk<K>,
        planes: &[LaneChunk<K>],
        stale: bool,
        op_index: usize,
        addr: usize,
        expected: u64,
    ) {
        diff.for_each_lane(|lane| {
            let e = &mut execs[lane];
            if stale {
                e.stale_errors += 1;
            } else {
                e.mismatches += 1;
                if e.first_mismatch.is_none() {
                    e.first_mismatch =
                        Some(OpMismatch { op_index, addr, expected, got: lane_word(planes, lane) });
                }
            }
        });
    }

    /// Runs the program and reports full channel counts. With
    /// `stop_at_first` the run halts at the first failing read (either
    /// channel); `captures`, when given, receives the value of every
    /// [`MemOp::ReadCapture`] in program order (the buffer is cleared
    /// first and reused across calls).
    ///
    /// # Errors
    ///
    /// [`RamError::ProgramGeometryMismatch`] when `ram`'s geometry differs
    /// from the one the program was compiled for; otherwise device errors
    /// from multi-port cycles (single-port programs cannot fail beyond the
    /// geometry check: the builder validated every operand).
    pub fn execute(
        &self,
        ram: &mut Ram,
        stop_at_first: bool,
        captures: Option<&mut Vec<u64>>,
    ) -> Result<Execution, RamError> {
        self.run(ram, stop_at_first, captures, None)
    }

    /// [`TestProgram::execute`] with a response observer: `observer` is
    /// called with the word returned by **every checked read**
    /// (`ReadExpect` / `ReadStale` / `ReadCapture`, scalar or slot) in
    /// execution order — the stream a hardware response compactor (MISR)
    /// sees. On a fault-free device the observed stream equals
    /// [`TestProgram::expected_responses`]; run with
    /// `stop_at_first = false` so the stream length is
    /// response-independent.
    ///
    /// # Errors
    ///
    /// As [`TestProgram::execute`].
    pub fn execute_observed(
        &self,
        ram: &mut Ram,
        stop_at_first: bool,
        captures: Option<&mut Vec<u64>>,
        observer: &mut dyn FnMut(u64),
    ) -> Result<Execution, RamError> {
        self.run(ram, stop_at_first, captures, Some(observer))
    }

    fn run(
        &self,
        ram: &mut Ram,
        stop_at_first: bool,
        captures: Option<&mut Vec<u64>>,
        mut observer: Option<&mut dyn FnMut(u64)>,
    ) -> Result<Execution, RamError> {
        // A program's operands were validated against its own geometry at
        // build time — running it on a different device would panic inside
        // the access layer. Surface the mismatch as an error instead, so
        // campaigns apply the usual error-as-escape convention.
        if ram.geometry() != self.geom {
            return Err(RamError::ProgramGeometryMismatch {
                compiled: self.geom,
                device: ram.geometry(),
            });
        }
        let before = ram.stats();
        let mut acc = [0u64; ACC_LANES];
        let mut exec = Execution::default();
        let mut caps = captures;
        if let Some(c) = caps.as_deref_mut() {
            c.clear();
        }
        for (idx, op) in self.ops.iter().enumerate() {
            match *op {
                MemOp::Write { addr, data } => ram.write(addr as usize, data),
                MemOp::ReadExpect { addr, expect } => {
                    let got = ram.read(addr as usize);
                    if let Some(o) = observer.as_deref_mut() {
                        o(got);
                    }
                    if got != expect {
                        self.flag(&mut exec, idx, addr, expect, got);
                    }
                }
                MemOp::ReadStale { addr, expect } => {
                    let got = ram.read(addr as usize);
                    if let Some(o) = observer.as_deref_mut() {
                        o(got);
                    }
                    if got != expect {
                        exec.stale_errors += 1;
                    }
                }
                MemOp::ReadCapture { addr, expect } => {
                    let got = ram.read(addr as usize);
                    if let Some(o) = observer.as_deref_mut() {
                        o(got);
                    }
                    if let Some(c) = caps.as_deref_mut() {
                        c.push(got);
                    }
                    if got != expect {
                        self.flag(&mut exec, idx, addr, expect, got);
                    }
                }
                MemOp::ReadAny { addr } => {
                    let _ = ram.read(addr as usize);
                }
                MemOp::AccSet { lane, value } => acc[lane as usize] = value,
                MemOp::ReadAcc { addr, map, lane } => {
                    let v = ram.read(addr as usize);
                    acc[lane as usize] ^= apply_map(&self.maps[map as usize], v);
                }
                MemOp::WriteAcc { addr, lane } => ram.write(addr as usize, acc[lane as usize]),
                MemOp::CycleN { start, len } => {
                    let slots = &self.slots[start as usize..start as usize + len as usize];
                    let mut port_ops = [PortOp::Idle; MAX_PORTS];
                    for (p, &slot) in slots.iter().enumerate() {
                        port_ops[p] = self.slot_port_op(slot, &acc);
                    }
                    // Copy the results out before the next borrow of `ram`.
                    let res = ram.cycle_ref(&port_ops[..slots.len()])?;
                    let mut got = [None; MAX_PORTS];
                    got[..slots.len()].copy_from_slice(res);
                    for (&slot, got) in slots.iter().zip(got) {
                        self.apply_slot(
                            slot,
                            got,
                            &mut acc,
                            &mut exec,
                            idx,
                            &mut caps,
                            &mut observer,
                        );
                    }
                }
            }
            if stop_at_first && exec.detected() {
                break;
            }
        }
        let after = ram.stats();
        exec.ops = after.ops() - before.ops();
        exec.cycles = after.cycles - before.cycles;
        Ok(exec)
    }

    fn flag(&self, exec: &mut Execution, idx: usize, addr: u32, expected: u64, got: u64) {
        exec.mismatches += 1;
        if exec.first_mismatch.is_none() {
            exec.first_mismatch =
                Some(OpMismatch { op_index: idx, addr: addr as usize, expected, got });
        }
    }

    fn slot_port_op(&self, slot: SlotOp, acc: &[u64; ACC_LANES]) -> PortOp {
        match slot {
            SlotOp::Idle => PortOp::Idle,
            SlotOp::ReadAcc { addr, .. }
            | SlotOp::ReadExpect { addr, .. }
            | SlotOp::ReadStale { addr, .. }
            | SlotOp::ReadCapture { addr, .. } => PortOp::Read { addr: addr as usize },
            SlotOp::Write { addr, data } => PortOp::Write { addr: addr as usize, data },
            SlotOp::WriteAcc { addr, lane } => {
                PortOp::Write { addr: addr as usize, data: acc[lane as usize] }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // interpreter internals, one call site
    fn apply_slot(
        &self,
        slot: SlotOp,
        got: Option<u64>,
        acc: &mut [u64; ACC_LANES],
        exec: &mut Execution,
        idx: usize,
        caps: &mut Option<&mut Vec<u64>>,
        observer: &mut Option<&mut dyn FnMut(u64)>,
    ) {
        match slot {
            SlotOp::Idle | SlotOp::Write { .. } | SlotOp::WriteAcc { .. } => {}
            SlotOp::ReadAcc { map, lane, .. } => {
                let v = got.expect("read slot produced a value");
                acc[lane as usize] ^= apply_map(&self.maps[map as usize], v);
            }
            SlotOp::ReadExpect { addr, expect } => {
                let v = got.expect("read slot produced a value");
                if let Some(o) = observer.as_deref_mut() {
                    o(v);
                }
                if v != expect {
                    self.flag(exec, idx, addr, expect, v);
                }
            }
            SlotOp::ReadStale { expect, .. } => {
                let v = got.expect("read slot produced a value");
                if let Some(o) = observer.as_deref_mut() {
                    o(v);
                }
                if v != expect {
                    exec.stale_errors += 1;
                }
            }
            SlotOp::ReadCapture { addr, expect } => {
                let v = got.expect("read slot produced a value");
                if let Some(o) = observer.as_deref_mut() {
                    o(v);
                }
                if let Some(c) = caps.as_deref_mut() {
                    c.push(v);
                }
                if v != expect {
                    self.flag(exec, idx, addr, expect, v);
                }
            }
        }
    }
}

/// Applies a precompiled GF(2)-linear map: XOR of the per-bit masks over
/// the set bits of `v`.
#[inline]
fn apply_map(masks: &[u64], v: u64) -> u64 {
    let mut out = 0u64;
    let mut rest = v;
    while rest != 0 {
        let j = rest.trailing_zeros();
        out ^= masks[j as usize];
        rest &= rest - 1;
    }
    out
}

/// Incremental builder for [`TestProgram`]s.
///
/// Operand validation happens here, once per compile, so the interpreter
/// can run unguarded: every push method panics on an out-of-range address
/// or an over-wide data word, exactly like the corresponding [`Ram`]
/// access would.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    geom: Geometry,
    ports: usize,
    background: Option<u64>,
    window: Option<(u32, u32)>,
    ops: Vec<MemOp>,
    slots: Vec<SlotOp>,
    maps: Vec<Vec<u64>>,
    marks: Vec<(usize, u32)>,
    captures: usize,
}

impl ProgramBuilder {
    /// A builder for a single-port program over `geom`.
    pub fn new(geom: Geometry) -> ProgramBuilder {
        ProgramBuilder {
            name: "program".to_string(),
            geom,
            ports: 1,
            background: None,
            window: None,
            ops: Vec::new(),
            slots: Vec::new(),
            maps: Vec::new(),
            marks: Vec::new(),
            captures: 0,
        }
    }

    /// Sets the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> ProgramBuilder {
        self.name = name.into();
        self
    }

    /// Declares the data background the program is compiled for (see
    /// [`TestProgram::background`]).
    pub fn with_background(mut self, background: u64) -> ProgramBuilder {
        self.background = Some(background);
        self
    }

    /// Restricts the **check window** to `window`:
    /// [`ProgramBuilder::read_checked`] emits a verdict-channel
    /// [`MemOp::ReadExpect`] for in-window addresses and an unchecked
    /// [`MemOp::ReadAny`] otherwise. The operation stream — every read and
    /// write actually issued — is therefore *window-invariant*: only the
    /// comparator is gated, which is what makes windowed diagnosis
    /// bisection sound (a fault observable on the full window is
    /// observable on at least one half). Models address-range gating of a
    /// BIST comparator.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or one that exceeds the geometry.
    pub fn with_window(mut self, window: Range<usize>) -> ProgramBuilder {
        assert!(window.start < window.end, "empty check window");
        assert!(window.end <= self.geom.cells(), "check window exceeds the geometry");
        self.window = Some((window.start as u32, window.end as u32));
        self
    }

    /// Registers a GF(2)-linear map given its per-bit masks
    /// (`masks[j]` = image of input bit `j`) and returns its table index.
    /// Identical maps are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if the mask count differs from the cell width, any mask
    /// exceeds the data mask, or the table outgrows `u16`.
    pub fn add_map(&mut self, masks: Vec<u64>) -> u16 {
        assert_eq!(masks.len(), self.geom.width() as usize, "one mask per data bit");
        assert!(
            masks.iter().all(|&m| m <= self.geom.data_mask()),
            "map image exceeds the cell width"
        );
        if let Some(i) = self.maps.iter().position(|m| *m == masks) {
            return i as u16;
        }
        let idx = u16::try_from(self.maps.len()).expect("map table fits u16");
        self.maps.push(masks);
        idx
    }

    /// Registers the identity map (plain XOR accumulation, the GF(2)
    /// bit-plane case).
    pub fn identity_map(&mut self) -> u16 {
        let masks = (0..self.geom.width()).map(|j| 1u64 << j).collect();
        self.add_map(masks)
    }

    /// Records a marker at the current op position (March element index,
    /// iteration number, …).
    pub fn mark(&mut self, id: u32) {
        self.marks.push((self.ops.len(), id));
    }

    /// Pushes an immediate write.
    pub fn write(&mut self, addr: usize, data: u64) {
        self.check(addr, Some(data));
        self.ops.push(MemOp::Write { addr: addr as u32, data });
    }

    /// Pushes a verdict-channel checked read.
    pub fn read_expect(&mut self, addr: usize, expect: u64) {
        self.check(addr, Some(expect));
        self.ops.push(MemOp::ReadExpect { addr: addr as u32, expect });
    }

    /// Pushes a verdict-channel checked read when `addr` lies inside the
    /// check window ([`ProgramBuilder::with_window`]), an unchecked read
    /// otherwise. Without a window this is [`ProgramBuilder::read_expect`].
    pub fn read_checked(&mut self, addr: usize, expect: u64) {
        let in_window =
            self.window.is_none_or(|(lo, hi)| (lo as usize..hi as usize).contains(&addr));
        if in_window {
            self.read_expect(addr, expect);
        } else {
            self.read_any(addr);
        }
    }

    /// Pushes a stale-channel checked read (pre-read mode).
    pub fn read_stale(&mut self, addr: usize, expect: u64) {
        self.check(addr, Some(expect));
        self.ops.push(MemOp::ReadStale { addr: addr as u32, expect });
    }

    /// Pushes a capturing checked read (signature cell).
    pub fn read_capture(&mut self, addr: usize, expect: u64) {
        self.check(addr, Some(expect));
        self.captures += 1;
        self.ops.push(MemOp::ReadCapture { addr: addr as u32, expect });
    }

    /// Pushes an unchecked read.
    pub fn read_any(&mut self, addr: usize) {
        self.check(addr, None);
        self.ops.push(MemOp::ReadAny { addr: addr as u32 });
    }

    /// Pushes a lane-0 accumulator load.
    pub fn acc_set(&mut self, value: u64) {
        self.acc_set_in(0, value);
    }

    /// Pushes an accumulator load into `lane`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range lane or an over-wide value.
    pub fn acc_set_in(&mut self, lane: u8, value: u64) {
        self.check_lane(lane);
        assert!(value <= self.geom.data_mask(), "accumulator load exceeds the cell width");
        self.ops.push(MemOp::AccSet { lane, value });
    }

    /// Pushes a lane-0 accumulating read through map `map`.
    ///
    /// # Panics
    ///
    /// Panics if `map` was not registered.
    pub fn read_acc(&mut self, addr: usize, map: u16) {
        self.read_acc_in(0, addr, map);
    }

    /// Pushes an accumulating read into `lane` through map `map`.
    ///
    /// # Panics
    ///
    /// Panics if `map` was not registered or `lane` is out of range.
    pub fn read_acc_in(&mut self, lane: u8, addr: usize, map: u16) {
        self.check(addr, None);
        self.check_lane(lane);
        assert!((map as usize) < self.maps.len(), "unregistered map index");
        self.ops.push(MemOp::ReadAcc { addr: addr as u32, map, lane });
    }

    /// Pushes a lane-0 accumulator write.
    pub fn write_acc(&mut self, addr: usize) {
        self.write_acc_in(0, addr);
    }

    /// Pushes an accumulator write from `lane`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range lane.
    pub fn write_acc_in(&mut self, lane: u8, addr: usize) {
        self.check(addr, None);
        self.check_lane(lane);
        self.ops.push(MemOp::WriteAcc { addr: addr as u32, lane });
    }

    /// Pushes one multi-port cycle of `slots.len()` port slots (slot
    /// position = port index, so pad with [`SlotOp::Idle`] to address a
    /// specific port); the program then needs at least that many ports.
    ///
    /// # Panics
    ///
    /// Panics on zero slots or more than [`MAX_PORTS`], and on any invalid
    /// slot operand.
    pub fn cyclen(&mut self, slots: &[SlotOp]) {
        assert!(
            !slots.is_empty() && slots.len() <= MAX_PORTS,
            "a cycle carries 1..={MAX_PORTS} slots"
        );
        for &slot in slots {
            match slot {
                SlotOp::Idle => {}
                SlotOp::ReadAcc { addr, map, lane } => {
                    self.check(addr as usize, None);
                    self.check_lane(lane);
                    assert!((map as usize) < self.maps.len(), "unregistered map index");
                }
                SlotOp::ReadExpect { addr, expect }
                | SlotOp::ReadStale { addr, expect }
                | SlotOp::ReadCapture { addr, expect } => {
                    self.check(addr as usize, Some(expect));
                }
                SlotOp::Write { addr, data } => self.check(addr as usize, Some(data)),
                SlotOp::WriteAcc { addr, lane } => {
                    self.check(addr as usize, None);
                    self.check_lane(lane);
                }
            }
            if let SlotOp::ReadCapture { .. } = slot {
                self.captures += 1;
            }
        }
        self.ports = self.ports.max(slots.len());
        let start = u32::try_from(self.slots.len()).expect("slot table fits u32");
        self.slots.extend_from_slice(slots);
        self.ops.push(MemOp::CycleN { start, len: slots.len() as u8 });
    }

    /// Pushes one dual-port cycle (sugar for a two-slot
    /// [`ProgramBuilder::cyclen`]).
    pub fn cycle2(&mut self, a: SlotOp, b: SlotOp) {
        self.cyclen(&[a, b]);
    }

    /// Pushes a run of slot ops as dual-port cycles, two per cycle, the
    /// odd tail padded with [`SlotOp::Idle`] — the standard pairing every
    /// dual-port schedule (seeds, operand reads, signature, readback)
    /// uses.
    pub fn cycle2_pairs(&mut self, slots: impl IntoIterator<Item = SlotOp>) {
        let mut slots = slots.into_iter();
        while let Some(a) = slots.next() {
            self.cycle2(a, slots.next().unwrap_or(SlotOp::Idle));
        }
    }

    /// Finalises the program.
    pub fn build(self) -> TestProgram {
        TestProgram {
            name: self.name,
            geom: self.geom,
            ports: self.ports,
            background: self.background,
            window: self.window,
            ops: self.ops,
            slots: self.slots,
            maps: self.maps,
            marks: self.marks,
            captures: self.captures,
            activity: ActivityCache::default(),
        }
    }

    fn check(&self, addr: usize, data: Option<u64>) {
        assert!(u32::try_from(addr).is_ok(), "address exceeds the IR's u32 range");
        self.geom.check_addr(addr).expect("address in range");
        if let Some(d) = data {
            self.geom.check_data(d).expect("data fits cell width");
        }
    }

    fn check_lane(&self, lane: u8) {
        assert!((lane as usize) < ACC_LANES, "accumulator lane out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    #[test]
    fn march_like_program_detects_stuck_at() {
        let geom = Geometry::bom(8);
        let mut b = ProgramBuilder::new(geom);
        for a in 0..8 {
            b.write(a, 0);
        }
        for a in 0..8 {
            b.read_expect(a, 0);
            b.write(a, 1);
        }
        for a in 0..8 {
            b.read_expect(a, 1);
        }
        let prog = b.build();
        assert_eq!(prog.ports(), 1);
        let mut good = Ram::new(geom);
        let exec = prog.execute(&mut good, false, None).unwrap();
        assert!(!exec.detected());
        assert_eq!(exec.ops, 8 * 4);
        let mut bad = Ram::new(geom);
        bad.inject(FaultKind::StuckAt { cell: 5, bit: 0, value: 0 }).unwrap();
        let exec = prog.execute(&mut bad, false, None).unwrap();
        assert!(exec.detected());
        let m = exec.first_mismatch.unwrap();
        assert_eq!((m.addr, m.expected, m.got), (5, 1, 0));
    }

    #[test]
    fn stop_at_first_halts_early() {
        let geom = Geometry::bom(16);
        let mut b = ProgramBuilder::new(geom);
        for a in 0..16 {
            b.write(a, 1);
        }
        for a in 0..16 {
            b.read_expect(a, 1);
        }
        let prog = b.build();
        let mut bad = Ram::new(geom);
        bad.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }).unwrap();
        let full = prog.execute(&mut bad, false, None).unwrap();
        bad.eject_faults();
        bad.reset_to(0);
        bad.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }).unwrap();
        let early = prog.execute(&mut bad, true, None).unwrap();
        assert!(full.detected() && early.detected());
        assert!(early.ops < full.ops);
        assert_eq!(full.mismatches, 1); // only cell 0 is wrong
    }

    #[test]
    fn accumulator_reproduces_gf2_wave() {
        // k = 2 XOR wave: s_{t+2} = s_t ⊕ s_{t+1}, seeds (0, 1) — the
        // Figure 1a sequence 0 1 1 0 1 1 …
        let geom = Geometry::bom(9);
        let mut b = ProgramBuilder::new(geom);
        let id = b.identity_map();
        b.write(0, 0);
        b.write(1, 1);
        for t in 0..7 {
            b.acc_set(0);
            b.read_acc(t + 1, id);
            b.read_acc(t, id);
            b.write_acc(t + 2);
        }
        let expect = [0u64, 1, 1, 0, 1, 1, 0, 1, 1];
        b.read_capture(7, expect[7]);
        b.read_capture(8, expect[8]);
        let prog = b.build();
        assert_eq!(prog.captures(), 2);
        let mut ram = Ram::new(geom);
        let mut caps = Vec::new();
        let exec = prog.execute(&mut ram, false, Some(&mut caps)).unwrap();
        assert!(!exec.detected());
        assert_eq!(caps, vec![expect[7], expect[8]]);
        for (c, &e) in expect.iter().enumerate() {
            assert_eq!(ram.peek(c), e, "cell {c}");
        }
        assert_eq!(exec.ops, 3 * 9 - 2);
    }

    #[test]
    fn accumulator_lanes_are_independent() {
        // Two interleaved XOR waves over disjoint halves, one lane each —
        // the quad-port compilation pattern in miniature (single-port).
        let geom = Geometry::bom(12);
        let mut b = ProgramBuilder::new(geom);
        let id = b.identity_map();
        for base in [0usize, 6] {
            b.write(base, 0);
            b.write(base + 1, 1);
        }
        for t in 0..4 {
            for (lane, base) in [(0u8, 0usize), (1, 6)] {
                b.acc_set_in(lane, 0);
                b.read_acc_in(lane, base + t + 1, id);
                b.read_acc_in(lane, base + t, id);
            }
            // Writes deliberately after BOTH lanes accumulated, to prove
            // lane isolation.
            for (lane, base) in [(0u8, 0usize), (1, 6)] {
                b.write_acc_in(lane, base + t + 2);
            }
        }
        let prog = b.build();
        let mut ram = Ram::new(geom);
        assert!(!prog.execute(&mut ram, false, None).unwrap().detected());
        let expect = [0u64, 1, 1, 0, 1, 1];
        for (c, &e) in expect.iter().enumerate() {
            assert_eq!(ram.peek(c), e, "lo cell {c}");
            assert_eq!(ram.peek(6 + c), e, "hi cell {c}");
        }
    }

    #[test]
    fn linear_map_equals_field_multiplication() {
        // GF(2^4), p = 1 + z + z^4: mul-by-c as mask XOR must equal a
        // reference shift-and-add multiply for every (c, v).
        let poly = 0b1_0011u64;
        let clmul = |mut a: u64, mut b: u64| {
            let mut r = 0u64;
            while b != 0 {
                if b & 1 == 1 {
                    r ^= a;
                }
                b >>= 1;
                a <<= 1;
                if a & 0b1_0000 != 0 {
                    a ^= poly;
                }
            }
            r
        };
        let geom = Geometry::wom(4, 4).unwrap();
        for c in 0..16u64 {
            let mut b = ProgramBuilder::new(geom);
            let masks: Vec<u64> = (0..4).map(|j| clmul(c, 1 << j)).collect();
            let m = b.add_map(masks.clone());
            assert_eq!(m, 0);
            for v in 0..16u64 {
                assert_eq!(apply_map(&masks, v), clmul(c, v), "c={c} v={v}");
            }
        }
    }

    #[test]
    fn map_deduplication() {
        let mut b = ProgramBuilder::new(Geometry::bom(4));
        let a = b.identity_map();
        let c = b.add_map(vec![1]);
        assert_eq!(a, c);
        let d = b.add_map(vec![0]);
        assert_ne!(a, d);
    }

    #[test]
    fn stale_channel_is_separate() {
        let geom = Geometry::bom(4);
        let mut b = ProgramBuilder::new(geom);
        b.read_stale(0, 1); // fresh memory holds 0 → stale error
        b.read_expect(0, 0); // verdict channel is clean
        let prog = b.build();
        let mut ram = Ram::new(geom);
        let exec = prog.execute(&mut ram, false, None).unwrap();
        assert_eq!(exec.stale_errors, 1);
        assert_eq!(exec.mismatches, 0);
        assert!(exec.first_mismatch.is_none());
        assert!(exec.detected());
        assert!(prog.detect(&mut Ram::new(geom)));
    }

    #[test]
    fn dual_port_cycle_reads_before_writes() {
        let geom = Geometry::bom(4);
        let mut b = ProgramBuilder::new(geom);
        b.write(0, 1);
        // Same-cycle read + write of cell 0: the read must see the
        // pre-cycle value — the fused pre-read transformation.
        b.cycle2(SlotOp::ReadStale { addr: 0, expect: 1 }, SlotOp::Write { addr: 0, data: 0 });
        b.read_expect(0, 0);
        let prog = b.build();
        assert_eq!(prog.ports(), 2);
        let mut ram = Ram::with_ports(geom, 2).unwrap();
        let exec = prog.execute(&mut ram, false, None).unwrap();
        assert!(!exec.detected());
        assert_eq!(exec.cycles, 3);
        assert_eq!(exec.ops, 4);
    }

    #[test]
    fn quad_cycle_uses_port_positions() {
        // A 4-slot cycle with idle padding on ports 1 and 3, as the
        // multi-LFSR schedule issues; both lanes write in one cycle.
        let geom = Geometry::bom(8);
        let mut b = ProgramBuilder::new(geom);
        b.acc_set_in(0, 1);
        b.acc_set_in(1, 0);
        b.cyclen(&[
            SlotOp::WriteAcc { addr: 0, lane: 0 },
            SlotOp::Idle,
            SlotOp::WriteAcc { addr: 4, lane: 1 },
            SlotOp::Idle,
        ]);
        b.cyclen(&[
            SlotOp::ReadExpect { addr: 0, expect: 1 },
            SlotOp::Idle,
            SlotOp::ReadExpect { addr: 4, expect: 0 },
            SlotOp::Idle,
        ]);
        let prog = b.build();
        assert_eq!(prog.ports(), 4);
        let mut ram = Ram::with_ports(geom, 4).unwrap();
        let exec = prog.execute(&mut ram, false, None).unwrap();
        assert!(!exec.detected());
        assert_eq!(exec.cycles, 2);
        assert_eq!(exec.ops, 4);
        // A 2-port device cannot host it.
        let mut narrow = Ram::with_ports(geom, 2).unwrap();
        assert!(prog.execute(&mut narrow, false, None).is_err());
    }

    #[test]
    fn multi_port_program_on_single_port_device_is_an_escape() {
        let geom = Geometry::bom(4);
        let mut b = ProgramBuilder::new(geom);
        b.cycle2(SlotOp::ReadExpect { addr: 0, expect: 1 }, SlotOp::Idle);
        let prog = b.build();
        let mut ram = Ram::new(geom);
        assert!(prog.execute(&mut ram, false, None).is_err());
        assert!(!prog.detect(&mut ram), "device errors count as escapes");
    }

    #[test]
    fn geometry_mismatch_is_an_error_not_a_panic() {
        let mut b = ProgramBuilder::new(Geometry::wom(4, 4).unwrap());
        b.write(0, 0xF);
        let prog = b.build();
        let mut ram = Ram::new(Geometry::bom(4));
        assert!(matches!(
            prog.execute(&mut ram, false, None),
            Err(RamError::ProgramGeometryMismatch { .. })
        ));
        assert!(!prog.detect(&mut ram), "mismatch counts as an escape");
    }

    #[test]
    fn marks_recover_source_structure() {
        let mut b = ProgramBuilder::new(Geometry::bom(2));
        b.mark(0);
        b.write(0, 0);
        b.write(1, 0);
        b.mark(1);
        b.read_expect(0, 0);
        let prog = b.build();
        assert_eq!(prog.mark_before(0), Some(0));
        assert_eq!(prog.mark_before(1), Some(0));
        assert_eq!(prog.mark_before(2), Some(1));
        assert_eq!(prog.marks(), &[(0, 0), (2, 1)]);
    }

    #[test]
    fn observer_sees_checked_reads_in_order() {
        let geom = Geometry::bom(6);
        let mut b = ProgramBuilder::new(geom);
        b.write(0, 1);
        b.write(1, 0);
        b.read_expect(0, 1);
        b.read_any(2); // unchecked: invisible to the observer
        b.read_stale(1, 0);
        b.cycle2(
            SlotOp::ReadCapture { addr: 0, expect: 1 },
            SlotOp::ReadExpect { addr: 1, expect: 0 },
        );
        let prog = b.build();
        // Fault-free: observed stream equals the expected-response stream.
        let expected: Vec<u64> = prog.expected_responses().collect();
        assert_eq!(expected, vec![1, 0, 1, 0]);
        let mut ram = Ram::with_ports(geom, 2).unwrap();
        let mut seen = Vec::new();
        let exec = prog.execute_observed(&mut ram, false, None, &mut |v| seen.push(v)).unwrap();
        assert!(!exec.detected());
        assert_eq!(seen, expected);
        // Faulty: same stream length, different content.
        let mut bad = Ram::with_ports(geom, 2).unwrap();
        bad.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }).unwrap();
        let mut seen = Vec::new();
        let exec = prog.execute_observed(&mut bad, false, None, &mut |v| seen.push(v)).unwrap();
        assert!(exec.detected());
        assert_eq!(seen.len(), expected.len());
        assert_ne!(seen, expected);
    }

    #[test]
    fn check_window_gates_reads_but_not_the_op_stream() {
        let geom = Geometry::bom(8);
        let compile = |window: Option<Range<usize>>| {
            let mut b = ProgramBuilder::new(geom);
            if let Some(w) = window {
                b = b.with_window(w);
            }
            for a in 0..8 {
                b.write(a, 1);
            }
            for a in 0..8 {
                b.read_checked(a, 1);
            }
            b.build()
        };
        let full = compile(None);
        let lo = compile(Some(0..4));
        let hi = compile(Some(4..8));
        assert_eq!(full.window(), None);
        assert_eq!(lo.window(), Some(0..4));
        // Identical op stream on the device for every window.
        for prog in [&full, &lo, &hi] {
            let mut ram = Ram::new(geom);
            let exec = prog.execute(&mut ram, false, None).unwrap();
            assert_eq!(exec.ops, 16, "{}", prog.name());
            assert!(!exec.detected());
        }
        // A fault at cell 6 is flagged by the full and hi windows only.
        let run = |prog: &TestProgram| {
            let mut ram = Ram::new(geom);
            ram.inject(FaultKind::StuckAt { cell: 6, bit: 0, value: 0 }).unwrap();
            prog.detect(&mut ram)
        };
        assert!(run(&full));
        assert!(!run(&lo));
        assert!(run(&hi));
    }

    #[test]
    fn detect_batch_matches_scalar_per_lane() {
        // A March-like program over 64 lanes, each carrying a different
        // batchable fault: lane verdicts must equal scalar verdicts.
        let geom = Geometry::bom(8);
        let mut b = ProgramBuilder::new(geom);
        for a in 0..8 {
            b.write(a, 0);
        }
        for a in 0..8 {
            b.read_expect(a, 0);
            b.write(a, 1);
        }
        for a in (0..8).rev() {
            b.read_expect(a, 1);
            b.write(a, 0);
        }
        let prog = b.build();
        assert!(prog.lane_batchable());
        let mut faults = Vec::new();
        for cell in 0..8 {
            faults.push(FaultKind::StuckAt { cell, bit: 0, value: 0 });
            faults.push(FaultKind::StuckAt { cell, bit: 0, value: 1 });
            faults.push(FaultKind::Transition { cell, bit: 0, rising: true });
            faults.push(FaultKind::Transition { cell, bit: 0, rising: false });
        }
        for cell in 0..4 {
            for force in [0u8, 1] {
                faults.push(FaultKind::CouplingIdempotent {
                    agg_cell: cell,
                    agg_bit: 0,
                    victim_cell: cell + 4,
                    victim_bit: 0,
                    trigger: crate::CouplingTrigger::Rise,
                    force,
                });
            }
        }
        assert!(faults.len() <= 64);
        let mut lanes: crate::LaneRam = crate::LaneRam::new(geom);
        for (lane, fault) in faults.iter().enumerate() {
            lanes.inject(fault.clone(), lane).unwrap();
        }
        let got = prog.detect_batch(&mut lanes);
        for (lane, fault) in faults.iter().enumerate() {
            let mut ram = Ram::new(geom);
            ram.inject(fault.clone()).unwrap();
            let want = prog.detect(&mut ram);
            assert_eq!(got.get(lane), want, "{fault} in lane {lane}");
        }
    }

    #[test]
    fn detect_batch_accumulator_wave_is_lane_exact() {
        // The GF(2) XOR-wave program of `accumulator_reproduces_gf2_wave`
        // run batched: a fault-free lane passes, a faulted lane fails,
        // exactly as the scalar interpreter decides.
        let geom = Geometry::bom(9);
        let mut b = ProgramBuilder::new(geom);
        let id = b.identity_map();
        b.write(0, 0);
        b.write(1, 1);
        for t in 0..7 {
            b.acc_set(0);
            b.read_acc(t + 1, id);
            b.read_acc(t, id);
            b.write_acc(t + 2);
        }
        let expect = [0u64, 1, 1, 0, 1, 1, 0, 1, 1];
        for (c, &e) in expect.iter().enumerate() {
            b.read_expect(c, e);
        }
        let prog = b.build();
        let faults = [
            FaultKind::StuckAt { cell: 4, bit: 0, value: 0 },
            FaultKind::StuckAt { cell: 4, bit: 0, value: 1 },
            FaultKind::Transition { cell: 2, bit: 0, rising: true },
            FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, // matches the seed: escapes?
        ];
        let mut lanes: crate::LaneRam = crate::LaneRam::new(geom);
        for (lane, fault) in faults.iter().enumerate() {
            lanes.inject(fault.clone(), lane).unwrap();
        }
        let got = prog.detect_batch(&mut lanes);
        for (lane, fault) in faults.iter().enumerate() {
            let mut ram = Ram::new(geom);
            ram.inject(fault.clone()).unwrap();
            assert_eq!(got.get(lane), prog.detect(&mut ram), "{fault}");
        }
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn detect_batch_geometry_mismatch_is_loud() {
        // Regression: this used to return 0 ("all 64 lanes escaped"),
        // silently reporting 0% coverage for a mis-sized program, where
        // the scalar checked path errors with ProgramGeometryMismatch.
        let mut b = ProgramBuilder::new(Geometry::bom(8));
        b.read_expect(0, 1);
        let prog = b.build();
        let mut lanes: crate::LaneRam = crate::LaneRam::new(Geometry::bom(4));
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 0).unwrap();
        let _ = prog.detect_batch(&mut lanes);
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn execute_batch_observed_geometry_mismatch_is_loud() {
        let mut b = ProgramBuilder::new(Geometry::bom(8));
        b.read_expect(0, 1);
        let prog = b.build();
        let mut lanes: crate::LaneRam = crate::LaneRam::new(Geometry::bom(4));
        let mut execs = [Execution::default(); crate::LANES];
        let _ = prog.execute_batch_observed(&mut lanes, &mut execs, &mut |_| {});
    }

    #[test]
    fn execute_batch_observed_matches_scalar_per_lane() {
        // Per-lane execution summaries AND the per-lane observed response
        // stream must equal the scalar full-run (`stop_at_first = false`)
        // observed execution for every fault family, including the newly
        // batchable ones.
        let geom = Geometry::bom(8);
        let mut b = ProgramBuilder::new(geom);
        for a in 0..8 {
            b.write(a, 0);
        }
        for a in 0..8 {
            b.read_expect(a, 0);
            b.write(a, 1);
        }
        for a in (0..8).rev() {
            b.read_expect(a, 1);
            b.write(a, 0);
        }
        for a in 0..8 {
            b.read_expect(a, 0);
        }
        let prog = b.build();
        let faults = [
            FaultKind::StuckAt { cell: 5, bit: 0, value: 1 },
            FaultKind::Transition { cell: 2, bit: 0, rising: true },
            FaultKind::StuckOpen { cell: 3 },
            FaultKind::ReadDestructive { cell: 1, bit: 0 },
            FaultKind::DeceptiveRead { cell: 6, bit: 0 },
            FaultKind::IncorrectRead { cell: 4, bit: 0 },
            FaultKind::WriteDisturb { cell: 7, bit: 0 },
            FaultKind::DecoderNoAccess { addr: 2 },
            FaultKind::DecoderExtraCell { addr: 1, extra_cell: 6 },
            FaultKind::DecoderShadow { addr: 4, instead_cell: 0 },
        ];
        let mut lanes: crate::LaneRam = crate::LaneRam::new(geom);
        // Spread the trials over arbitrary lane positions.
        let lane_of = |i: usize| (i * 7 + 3) % crate::LANES;
        for (i, fault) in faults.iter().enumerate() {
            lanes.inject(fault.clone(), lane_of(i)).unwrap();
        }
        let mut execs = [Execution::default(); crate::LANES];
        let mut streams: Vec<Vec<u64>> = vec![Vec::new(); crate::LANES];
        let flagged = prog.execute_batch_observed(&mut lanes, &mut execs, &mut |planes| {
            for (lane, stream) in streams.iter_mut().enumerate() {
                stream.push(crate::batch::lane_word(planes, lane));
            }
        });
        for (i, fault) in faults.iter().enumerate() {
            let lane = lane_of(i);
            let mut ram = Ram::new(geom);
            ram.inject(fault.clone()).unwrap();
            let mut seen = Vec::new();
            let exec = prog
                .execute_observed(&mut ram, false, None, &mut |v| seen.push(v))
                .expect("single-port run");
            assert_eq!(execs[lane], exec, "{fault}: execution summary diverged");
            assert_eq!(streams[lane], seen, "{fault}: observed stream diverged");
            assert_eq!(flagged.get(lane), exec.detected(), "{fault}");
        }
    }

    fn dual_port_march(geom: Geometry) -> TestProgram {
        // A dual-port March-like schedule: paired read/write cycles that
        // sweep the array, exercising read slots and write slots on both
        // ports, plus an accumulator slot pair.
        let n = geom.cells();
        let mut b = ProgramBuilder::new(geom);
        let id = b.identity_map();
        for a in 0..n {
            b.write(a, 0);
        }
        for a in 0..n / 2 {
            b.cycle2(
                SlotOp::ReadExpect { addr: a as u32, expect: 0 },
                SlotOp::Write { addr: (a + n / 2) as u32, data: 1 },
            );
        }
        for a in 0..n / 2 {
            b.cycle2(
                SlotOp::Write { addr: a as u32, data: 1 },
                SlotOp::ReadExpect { addr: (a + n / 2) as u32, expect: 1 },
            );
        }
        b.acc_set(0);
        b.cycle2(
            SlotOp::ReadAcc { addr: 0, map: id, lane: 0 },
            SlotOp::WriteAcc { addr: 1, lane: 0 }, // pre-cycle acc: writes 0
        );
        b.read_expect(1, 0);
        for a in (0..n).rev() {
            b.read_any(a);
        }
        b.cycle2(
            SlotOp::ReadStale { addr: 0, expect: 1 },
            SlotOp::ReadCapture { addr: 2, expect: 1 },
        );
        b.build()
    }

    #[test]
    fn cycle_batch_matches_scalar_per_lane() {
        // Multi-port programs batch now: per-lane verdicts, execution
        // summaries, and observed streams must equal the scalar dual-port
        // run for faults across the taxonomy, decoder families included.
        let geom = Geometry::bom(8);
        let prog = dual_port_march(geom);
        assert!(prog.lane_batchable(), "multi-port programs batch since the CycleN arm landed");
        let faults = [
            FaultKind::StuckAt { cell: 5, bit: 0, value: 1 },
            FaultKind::StuckAt { cell: 1, bit: 0, value: 0 },
            FaultKind::Transition { cell: 2, bit: 0, rising: true },
            FaultKind::StuckOpen { cell: 3 },
            FaultKind::ReadDestructive { cell: 1, bit: 0 },
            FaultKind::DeceptiveRead { cell: 6, bit: 0 },
            FaultKind::IncorrectRead { cell: 4, bit: 0 },
            FaultKind::WriteDisturb { cell: 7, bit: 0 },
            FaultKind::DecoderNoAccess { addr: 2 },
            FaultKind::DecoderExtraCell { addr: 1, extra_cell: 6 },
            FaultKind::DecoderShadow { addr: 4, instead_cell: 0 },
        ];
        let mut lanes = crate::LaneRam::<1>::with_ports(geom, 2).unwrap();
        let lane_of = |i: usize| (i * 5 + 2) % crate::LANES;
        for (i, fault) in faults.iter().enumerate() {
            lanes.inject(fault.clone(), lane_of(i)).unwrap();
        }
        let mut execs = [Execution::default(); crate::LANES];
        let mut streams: Vec<Vec<u64>> = vec![Vec::new(); crate::LANES];
        let flagged = prog.execute_batch_observed(&mut lanes, &mut execs, &mut |planes| {
            for (lane, stream) in streams.iter_mut().enumerate() {
                stream.push(crate::batch::lane_word(planes, lane));
            }
        });
        for (i, fault) in faults.iter().enumerate() {
            let lane = lane_of(i);
            let mut ram = Ram::with_ports(geom, 2).unwrap();
            ram.inject(fault.clone()).unwrap();
            let mut seen = Vec::new();
            let exec = prog
                .execute_observed(&mut ram, false, None, &mut |v| seen.push(v))
                .expect("dual-port run on a conflict-free schedule");
            assert_eq!(execs[lane], exec, "{fault}: execution summary diverged");
            assert_eq!(streams[lane], seen, "{fault}: observed stream diverged");
            assert_eq!(flagged.get(lane), exec.detected(), "{fault}");
        }
        // And the detect (early-exit) channel agrees with scalar detect.
        let mut lanes = crate::LaneRam::<1>::with_ports(geom, 2).unwrap();
        for (i, fault) in faults.iter().enumerate() {
            lanes.inject(fault.clone(), lane_of(i)).unwrap();
        }
        let got = prog.detect_batch(&mut lanes);
        for (i, fault) in faults.iter().enumerate() {
            let mut ram = Ram::with_ports(geom, 2).unwrap();
            ram.inject(fault.clone()).unwrap();
            assert_eq!(got.get(lane_of(i)), prog.detect(&mut ram), "{fault}");
        }
    }

    #[test]
    fn cycle_batch_write_conflicts_escape_like_scalar() {
        // A decoder shadow can fold a dual-port cycle's two writes onto
        // one cell: the scalar device errors (escape); the batch freezes
        // that lane and reports the same escape, while a healthy lane
        // with a detectable fault is still flagged.
        let geom = Geometry::bom(8);
        let mut b = ProgramBuilder::new(geom);
        b.write(6, 0);
        b.cycle2(SlotOp::Write { addr: 3, data: 1 }, SlotOp::Write { addr: 4, data: 1 });
        b.read_expect(3, 1);
        b.read_expect(6, 0);
        let prog = b.build();
        let shadow = FaultKind::DecoderShadow { addr: 4, instead_cell: 3 };
        let stuck = FaultKind::StuckAt { cell: 6, bit: 0, value: 1 };
        let mut lanes = crate::LaneRam::<1>::with_ports(geom, 2).unwrap();
        lanes.inject(shadow.clone(), 9).unwrap();
        lanes.inject(stuck.clone(), 20).unwrap();
        let got = prog.detect_batch(&mut lanes);
        let scalar = |fault: &FaultKind| {
            let mut ram = Ram::with_ports(geom, 2).unwrap();
            ram.inject(fault.clone()).unwrap();
            prog.detect(&mut ram)
        };
        assert!(!scalar(&shadow), "scalar conflict is an escape");
        assert!(!got.get(9), "conflicting lane escapes like scalar");
        assert!(scalar(&stuck));
        assert!(got.get(20), "healthy lanes keep detecting");
        assert_eq!(lanes.errored_lanes(), LaneChunk::single(9));
        // Observed form: the frozen lane's summary is the default one,
        // exactly as the scalar Err discards its counts.
        let mut lanes = crate::LaneRam::<1>::with_ports(geom, 2).unwrap();
        lanes.inject(shadow, 9).unwrap();
        lanes.inject(stuck, 20).unwrap();
        let mut execs = [Execution::default(); crate::LANES];
        let flagged = prog.execute_batch_observed(&mut lanes, &mut execs, &mut |_| {});
        assert!(!flagged.get(9));
        assert!(flagged.get(20));
        assert_eq!(execs[9], Execution::default());
        assert!(execs[20].detected());
    }

    #[test]
    #[should_panic(expected = "needs 2 ports")]
    fn detect_batch_port_shortfall_is_loud() {
        // A whole batch on an under-ported pool is a configuration error,
        // surfaced loudly like the geometry mismatch (the scalar path
        // treats TooManyPortOps per trial as an escape; a batch would
        // silently report 0% coverage).
        let geom = Geometry::bom(4);
        let mut b = ProgramBuilder::new(geom);
        b.cycle2(SlotOp::ReadExpect { addr: 0, expect: 0 }, SlotOp::Idle);
        let prog = b.build();
        assert!(prog.lane_batchable());
        let _ = prog.detect_batch::<1>(&mut crate::LaneRam::new(geom));
    }

    #[test]
    #[should_panic(expected = "address in range")]
    fn builder_rejects_out_of_range_address() {
        ProgramBuilder::new(Geometry::bom(4)).write(4, 0);
    }

    #[test]
    #[should_panic(expected = "data fits cell width")]
    fn builder_rejects_wide_data() {
        ProgramBuilder::new(Geometry::bom(4)).write(0, 2);
    }

    #[test]
    #[should_panic(expected = "accumulator lane out of range")]
    fn builder_rejects_bad_lane() {
        ProgramBuilder::new(Geometry::bom(4)).acc_set_in(ACC_LANES as u8, 0);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn builder_rejects_oversized_cycle() {
        ProgramBuilder::new(Geometry::bom(4)).cyclen(&[SlotOp::Idle; MAX_PORTS + 1]);
    }

    #[test]
    #[should_panic(expected = "check window exceeds the geometry")]
    fn builder_rejects_bad_window() {
        let _ = ProgramBuilder::new(Geometry::bom(4)).with_window(0..5);
    }
}
