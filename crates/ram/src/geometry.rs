//! Memory array geometry.

use crate::RamError;

/// Shape of a memory array: `cells` words of `width` bits.
///
/// The paper's taxonomy: *bit-oriented memory* (BOM) has `width = 1`;
/// *word-oriented memory* (WOM) has `width > 1`.
///
/// # Example
///
/// ```
/// use prt_ram::Geometry;
///
/// let bom = Geometry::bom(64);
/// assert_eq!((bom.cells(), bom.width()), (64, 1));
/// let wom = Geometry::wom(16, 4)?;
/// assert_eq!(wom.capacity_bits(), 64);
/// # Ok::<(), prt_ram::RamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    cells: usize,
    width: u32,
}

impl Geometry {
    /// Maximum supported cell width (bits per word).
    pub const MAX_WIDTH: u32 = 32;

    /// Bit-oriented memory: `n` one-bit cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`.
    pub fn bom(cells: usize) -> Geometry {
        assert!(cells > 0, "memory must have at least one cell");
        Geometry { cells, width: 1 }
    }

    /// Word-oriented memory: `cells` words of `width` bits.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if `cells == 0`, `width == 0`, or
    /// `width` exceeds [`Geometry::MAX_WIDTH`].
    pub fn wom(cells: usize, width: u32) -> Result<Geometry, RamError> {
        if cells == 0 {
            return Err(RamError::UnsupportedGeometry { reason: "zero cells" });
        }
        if width == 0 || width > Self::MAX_WIDTH {
            return Err(RamError::UnsupportedGeometry { reason: "width must be 1..=32" });
        }
        Ok(Geometry { cells, width })
    }

    /// Number of addressable cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Bits per cell.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u128 {
        self.cells as u128 * self.width as u128
    }

    /// Mask selecting the valid data bits of a word.
    pub fn data_mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// `true` for bit-oriented memories.
    pub fn is_bom(&self) -> bool {
        self.width == 1
    }

    /// Validates an address.
    ///
    /// # Errors
    ///
    /// [`RamError::AddressOutOfRange`] if `addr ≥ cells`.
    pub fn check_addr(&self, addr: usize) -> Result<(), RamError> {
        if addr < self.cells {
            Ok(())
        } else {
            Err(RamError::AddressOutOfRange { addr, cells: self.cells })
        }
    }

    /// Validates a data word.
    ///
    /// # Errors
    ///
    /// [`RamError::DataOutOfRange`] if `data` has bits above the width.
    pub fn check_data(&self, data: u64) -> Result<(), RamError> {
        if data & !self.data_mask() == 0 {
            Ok(())
        } else {
            Err(RamError::DataOutOfRange { data, width: self.width })
        }
    }

    /// Validates a bit index.
    ///
    /// # Errors
    ///
    /// [`RamError::BitOutOfRange`] if `bit ≥ width`.
    pub fn check_bit(&self, bit: u32) -> Result<(), RamError> {
        if bit < self.width {
            Ok(())
        } else {
            Err(RamError::BitOutOfRange { bit, width: self.width })
        }
    }
}

impl std::fmt::Display for Geometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}×{}b", self.cells, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bom_geometry() {
        let g = Geometry::bom(16);
        assert!(g.is_bom());
        assert_eq!(g.capacity_bits(), 16);
        assert_eq!(g.data_mask(), 1);
    }

    #[test]
    fn wom_geometry() {
        let g = Geometry::wom(8, 4).unwrap();
        assert!(!g.is_bom());
        assert_eq!(g.capacity_bits(), 32);
        assert_eq!(g.data_mask(), 0xF);
        assert_eq!(g.to_string(), "8×4b");
    }

    #[test]
    fn invalid_geometries() {
        assert!(Geometry::wom(0, 4).is_err());
        assert!(Geometry::wom(8, 0).is_err());
        assert!(Geometry::wom(8, 33).is_err());
    }

    #[test]
    fn validation_helpers() {
        let g = Geometry::wom(8, 4).unwrap();
        assert!(g.check_addr(7).is_ok());
        assert!(matches!(g.check_addr(8), Err(RamError::AddressOutOfRange { .. })));
        assert!(g.check_data(0xF).is_ok());
        assert!(matches!(g.check_data(0x10), Err(RamError::DataOutOfRange { .. })));
        assert!(g.check_bit(3).is_ok());
        assert!(matches!(g.check_bit(4), Err(RamError::BitOutOfRange { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cell_bom_panics() {
        let _ = Geometry::bom(0);
    }
}
