//! Access accounting.
//!
//! The paper's complexity claims — `O(3n)` per π-iteration on single-port
//! RAM, `2n` cycles on dual-port RAM, `5n`…`17n` for the March baselines —
//! are *measured* by these counters rather than asserted.

/// Operation and cycle counters for a memory device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Completed read operations (across all ports).
    pub reads: u64,
    /// Completed write operations (across all ports).
    pub writes: u64,
    /// Elapsed device cycles. A single-port operation costs one cycle; a
    /// multi-port [`crate::Ram::cycle`] call costs one cycle regardless of
    /// how many ports were active.
    pub cycles: u64,
}

impl AccessStats {
    /// Total operations, reads plus writes.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = AccessStats::default();
    }
}

impl std::fmt::Display for AccessStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} reads, {} writes, {} cycles", self.reads, self.writes, self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_is_sum() {
        let s = AccessStats { reads: 3, writes: 4, cycles: 7 };
        assert_eq!(s.ops(), 7);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = AccessStats { reads: 1, writes: 2, cycles: 3 };
        s.reset();
        assert_eq!(s, AccessStats::default());
    }

    #[test]
    fn display_is_readable() {
        let s = AccessStats { reads: 1, writes: 2, cycles: 3 };
        assert_eq!(s.to_string(), "1 reads, 2 writes, 3 cycles");
    }
}
