//! Physical array topology: logical-address ↔ physical-address mapping.
//!
//! Neighbourhood pattern sensitive faults (NPSF) are defined over the
//! *physical* layout, not the logical address order. This module provides
//! the row-major mapping and the classic type-1 (von Neumann) neighbourhood
//! used to instantiate [`crate::FaultKind::Npsf`] faults, plus composable
//! address scrambling ([`Topology`]) so universes can model decoders whose
//! logical order differs from the physical one: bit swizzles, row/column
//! interleaving, folded arrays and bit-line twisting.
//!
//! ## Address spaces
//!
//! Everything downstream of universe enumeration — `FaultKind` cell
//! fields, test programs, lane banks, activity slicing — lives in
//! **logical** address space, the space the port interface exposes. The
//! topology enters exactly once, when a universe is enumerated
//! ([`crate::FaultUniverse::enumerate_with`],
//! [`crate::LazyUniverse::new_with`]): the enumeration loops walk
//! *physical* coordinates (so adjacency-defined families — coupling
//! radii, decoder neighbour pairs, NPSF neighbourhoods — are physical),
//! and every emitted address is mapped back through
//! [`Topology::to_logical`]. The identity topology maps every address to
//! itself, making the physical walk literally the legacy logical walk.

use crate::{FaultKind, Geometry, RamError, SplitMix64};

/// A rectangular physical layout for an `n`-cell array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    rows: usize,
    cols: usize,
}

impl Layout {
    /// Creates a `rows × cols` layout.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Layout, RamError> {
        if rows == 0 || cols == 0 {
            return Err(RamError::UnsupportedGeometry { reason: "zero layout dimension" });
        }
        Ok(Layout { rows, cols })
    }

    /// The most-square layout for a geometry (`cols ≥ rows`).
    ///
    /// The search starts from the **integer** square root: the float
    /// pipeline `(n as f64).sqrt() as usize` silently loses precision for
    /// `n ≥ 2⁵³`, where the rounded conversion can land the start point a
    /// full row off and mis-factor huge arrays (tested at the boundary).
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if the cell count has no
    /// rectangular factorisation (never: `1 × n` always works).
    pub fn squarish(geom: Geometry) -> Result<Layout, RamError> {
        let n = geom.cells();
        let mut rows = n.isqrt();
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        Layout::new(rows.max(1), n / rows.max(1))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Logical cell index of physical position `(row, col)` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the layout.
    pub fn cell_at(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "position outside layout");
        row * self.cols + col
    }

    /// Physical position of a logical cell index.
    ///
    /// # Panics
    ///
    /// Panics if the index is outside the layout.
    pub fn position_of(&self, cell: usize) -> (usize, usize) {
        assert!(cell < self.cells(), "cell outside layout");
        (cell / self.cols, cell % self.cols)
    }

    /// The von Neumann (N/E/S/W) neighbours of a cell, clipped at edges.
    pub fn von_neumann(&self, cell: usize) -> Vec<usize> {
        let (r, c) = self.position_of(cell);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.cell_at(r - 1, c));
        }
        if c + 1 < self.cols {
            out.push(self.cell_at(r, c + 1));
        }
        if r + 1 < self.rows {
            out.push(self.cell_at(r + 1, c));
        }
        if c > 0 {
            out.push(self.cell_at(r, c - 1));
        }
        out
    }

    /// Builds a static type-1 NPSF fault: the victim bit is forced to
    /// `force` whenever every von Neumann neighbour holds `pattern`'s
    /// corresponding bit (pattern bit `i` = i-th neighbour in N/E/S/W
    /// order after edge clipping).
    ///
    /// # Errors
    ///
    /// Propagates fault-site validation when the fault is later injected;
    /// this constructor itself fails only for a victim outside the layout.
    pub fn npsf(
        &self,
        victim_cell: usize,
        victim_bit: u32,
        pattern: u64,
        force: u8,
    ) -> Result<FaultKind, RamError> {
        self.npsf_with(&Topology::identity(self.cells()), victim_cell, victim_bit, pattern, force)
    }

    /// [`Layout::npsf`] under an address scrambling: `victim_cell` and the
    /// neighbourhood are **physical** coordinates of this layout, and the
    /// emitted [`FaultKind::Npsf`] carries their logical images under
    /// `topo` — the addresses a test program must drive to exercise the
    /// physical neighbourhood.
    ///
    /// # Errors
    ///
    /// As [`Layout::npsf`]; additionally
    /// [`RamError::UnsupportedGeometry`] when `topo` covers a different
    /// cell count than this layout.
    pub fn npsf_with(
        &self,
        topo: &Topology,
        victim_cell: usize,
        victim_bit: u32,
        pattern: u64,
        force: u8,
    ) -> Result<FaultKind, RamError> {
        if topo.cells() != self.cells() {
            return Err(RamError::UnsupportedGeometry {
                reason: "topology cell count does not match the layout",
            });
        }
        if victim_cell >= self.cells() {
            return Err(RamError::AddressOutOfRange { addr: victim_cell, cells: self.cells() });
        }
        let neighbors: Vec<(usize, u32, u8)> = self
            .von_neumann(victim_cell)
            .into_iter()
            .enumerate()
            .map(|(i, c)| (topo.to_logical(c), victim_bit, ((pattern >> i) & 1) as u8))
            .collect();
        Ok(FaultKind::Npsf {
            victim_cell: topo.to_logical(victim_cell),
            victim_bit,
            neighbors,
            force,
        })
    }

    /// Enumerates all type-1 static NPSF instances (every interior victim,
    /// every neighbour pattern, both forced values) for bit `bit`.
    pub fn npsf_universe(&self, bit: u32) -> Vec<FaultKind> {
        self.npsf_universe_with(&Topology::identity(self.cells()), bit)
    }

    /// [`Layout::npsf_universe`] under an address scrambling: victims and
    /// neighbourhoods are walked over the **physical** grid and emitted in
    /// their logical addresses (identity topology ⇒ exactly
    /// [`Layout::npsf_universe`]).
    ///
    /// # Panics
    ///
    /// Panics when `topo` covers a different cell count than this layout —
    /// a whole-universe configuration error.
    pub fn npsf_universe_with(&self, topo: &Topology, bit: u32) -> Vec<FaultKind> {
        assert_eq!(topo.cells(), self.cells(), "topology cell count does not match the layout");
        let mut out = Vec::new();
        for r in 1..self.rows.saturating_sub(1) {
            for c in 1..self.cols.saturating_sub(1) {
                let victim = self.cell_at(r, c);
                for pattern in 0..16u64 {
                    for force in [0u8, 1] {
                        out.push(
                            self.npsf_with(topo, victim, bit, pattern, force)
                                .expect("victim inside layout"),
                        );
                    }
                }
            }
        }
        out
    }
}

/// A deterministic address scrambler: logical address → physical cell,
/// modelling decoders whose bit order is permuted/inverted (common in real
/// parts, and the reason topological tests must un-scramble).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scrambler {
    bits: u32,
    /// For each physical address bit: (source logical bit, invert?).
    map: Vec<(u32, bool)>,
}

impl Scrambler {
    /// Identity scrambler over `bits` address bits.
    pub fn identity(bits: u32) -> Scrambler {
        Scrambler { bits, map: (0..bits).map(|b| (b, false)).collect() }
    }

    /// Bit-reversal scrambler.
    pub fn reversed(bits: u32) -> Scrambler {
        Scrambler { bits, map: (0..bits).rev().map(|b| (b, false)).collect() }
    }

    /// Scrambler from an explicit `(source bit, invert)` table.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if the table is not a permutation
    /// of the address bits.
    pub fn from_table(map: Vec<(u32, bool)>) -> Result<Scrambler, RamError> {
        let bits = map.len() as u32;
        let mut seen = vec![false; bits as usize];
        for &(src, _) in &map {
            if src >= bits || seen[src as usize] {
                return Err(RamError::UnsupportedGeometry {
                    reason: "scrambler table is not a bit permutation",
                });
            }
            seen[src as usize] = true;
        }
        Ok(Scrambler { bits, map })
    }

    /// Number of address bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Applies the scrambling to a logical address.
    pub fn scramble(&self, logical: usize) -> usize {
        let mut out = 0usize;
        for (phys_bit, &(src, inv)) in self.map.iter().enumerate() {
            let mut b = (logical >> src) & 1;
            if inv {
                b ^= 1;
            }
            out |= b << phys_bit;
        }
        out
    }

    /// The inverse mapping (physical → logical).
    pub fn unscramble(&self, physical: usize) -> usize {
        let mut out = 0usize;
        for (phys_bit, &(src, inv)) in self.map.iter().enumerate() {
            let mut b = (physical >> phys_bit) & 1;
            if inv {
                b ^= 1;
            }
            out |= b << src;
        }
        out
    }

    /// The per-physical-bit `(source logical bit, invert)` table.
    pub fn table(&self) -> &[(u32, bool)] {
        &self.map
    }
}

/// One bijective stage of a [`Topology`]: a permutation of a fixed-size
/// address space, with a closed-form inverse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyStage {
    /// Address-bit permutation/inversion ([`Scrambler`]); requires the
    /// cell count to be `2^bits`.
    Swizzle(Scrambler),
    /// Row/column interleave (transpose): the row-major position
    /// `(r, c)` of a `rows × cols` grid lands at the column-major index
    /// `c·rows + r` — consecutive logical addresses spread across rows.
    Interleave {
        /// Grid rows (`rows · cols` must equal the cell count).
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Array folding: the address space is folded in half and the halves
    /// interleaved, as in folded bit-line arrays — `a < n/2 ↦ 2a`,
    /// `a ≥ n/2 ↦ 2(n−1−a)+1`. Logical neighbours across the fold seam
    /// become physical neighbours. Requires an even cell count.
    Fold,
    /// Bit-line twist: on a `rows × cols` grid, every odd row swaps each
    /// even/odd column pair (`c ↔ c^1`), modelling twisted bit-line
    /// pairs. Self-inverse.
    Twist {
        /// Grid rows (`rows · cols` must equal the cell count).
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// An explicit permutation: `fwd[logical] = physical`, with the
    /// inverse precomputed so both directions stay O(1).
    Table {
        /// logical → physical.
        fwd: Vec<usize>,
        /// physical → logical (the inverse permutation of `fwd`).
        inv: Vec<usize>,
    },
}

impl TopologyStage {
    /// logical → physical through this stage (`Fold` needs the cell
    /// count, which the owning [`Topology`] supplies).
    fn forward(&self, cells: usize, a: usize) -> usize {
        match self {
            TopologyStage::Swizzle(s) => s.scramble(a),
            TopologyStage::Interleave { rows, cols } => {
                let (r, c) = (a / cols, a % cols);
                c * rows + r
            }
            TopologyStage::Fold => {
                if a < cells / 2 {
                    2 * a
                } else {
                    2 * (cells - 1 - a) + 1
                }
            }
            TopologyStage::Twist { rows: _, cols } => {
                let (r, c) = (a / cols, a % cols);
                let c = if r % 2 == 1 && (c ^ 1) < *cols { c ^ 1 } else { c };
                r * cols + c
            }
            TopologyStage::Table { fwd, .. } => fwd[a],
        }
    }

    /// physical → logical through this stage.
    fn backward(&self, cells: usize, p: usize) -> usize {
        match self {
            TopologyStage::Swizzle(s) => s.unscramble(p),
            TopologyStage::Interleave { rows, cols } => {
                let (c, r) = (p / rows, p % rows);
                r * cols + c
            }
            TopologyStage::Fold => {
                if p.is_multiple_of(2) {
                    p / 2
                } else {
                    cells - 1 - (p - 1) / 2
                }
            }
            // The twist is an involution: forward is its own inverse.
            TopologyStage::Twist { .. } => self.forward(cells, p),
            TopologyStage::Table { inv, .. } => inv[p],
        }
    }
}

/// A composable logical ↔ physical address mapping over a fixed cell
/// count: an ordered stack of [`TopologyStage`] bijections applied
/// logical-side first. The empty stack is the identity, which every layer
/// treats as "logical = physical" — bit-identical to the pre-topology
/// behaviour.
///
/// # Composition laws
///
/// `to_logical` is the exact inverse of `to_physical` (round-trip
/// property), and [`Topology::compose`] is associative — both are
/// proptest-pinned in `tests/topology.rs`.
///
/// # Example
///
/// ```
/// use prt_ram::{Scrambler, Topology};
///
/// let topo = Topology::identity(16).then_swizzle(Scrambler::reversed(4)).unwrap();
/// assert_eq!(topo.to_physical(0b0001), 0b1000);
/// assert_eq!(topo.to_logical(topo.to_physical(13)), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    cells: usize,
    stages: Vec<TopologyStage>,
}

impl Topology {
    /// The identity mapping over `cells` addresses (any count, including
    /// 0-stage topologies over non-power-of-two arrays).
    pub fn identity(cells: usize) -> Topology {
        Topology { cells, stages: Vec::new() }
    }

    /// Number of addresses the mapping covers.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// The stage stack, logical-side first.
    pub fn stages(&self) -> &[TopologyStage] {
        &self.stages
    }

    /// `true` when the mapping sends every address to itself. The empty
    /// stack short-circuits; a non-empty stack is checked pointwise (a
    /// swizzle of identity scramblers *is* the identity).
    pub fn is_identity(&self) -> bool {
        self.stages.is_empty() || (0..self.cells).all(|a| self.to_physical(a) == a)
    }

    /// Validates and appends one stage.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] when the stage does not form a
    /// bijection over exactly this topology's cell count.
    pub fn then(mut self, stage: TopologyStage) -> Result<Topology, RamError> {
        let ok = match &stage {
            TopologyStage::Swizzle(s) => {
                (s.bits() < usize::BITS) && self.cells == 1usize << s.bits()
            }
            TopologyStage::Interleave { rows, cols } | TopologyStage::Twist { rows, cols } => {
                *rows > 0 && *cols > 0 && rows.checked_mul(*cols) == Some(self.cells)
            }
            TopologyStage::Fold => self.cells > 0 && self.cells.is_multiple_of(2),
            TopologyStage::Table { fwd, inv } => {
                fwd.len() == self.cells
                    && inv.len() == self.cells
                    && fwd.iter().all(|&p| p < self.cells)
                    && fwd.iter().enumerate().all(|(a, &p)| inv[p] == a)
            }
        };
        if !ok {
            return Err(RamError::UnsupportedGeometry {
                reason: "topology stage does not fit the cell count",
            });
        }
        self.stages.push(stage);
        Ok(self)
    }

    /// Appends an address-bit swizzle (cell count must be `2^bits`).
    ///
    /// # Errors
    ///
    /// As [`Topology::then`].
    pub fn then_swizzle(self, s: Scrambler) -> Result<Topology, RamError> {
        self.then(TopologyStage::Swizzle(s))
    }

    /// Appends a row/column interleave over a `rows × cols` grid.
    ///
    /// # Errors
    ///
    /// As [`Topology::then`].
    pub fn then_interleave(self, rows: usize, cols: usize) -> Result<Topology, RamError> {
        self.then(TopologyStage::Interleave { rows, cols })
    }

    /// Appends an array fold (cell count must be even).
    ///
    /// # Errors
    ///
    /// As [`Topology::then`].
    pub fn then_fold(self) -> Result<Topology, RamError> {
        self.then(TopologyStage::Fold)
    }

    /// Appends a bit-line twist over a `rows × cols` grid.
    ///
    /// # Errors
    ///
    /// As [`Topology::then`].
    pub fn then_twist(self, rows: usize, cols: usize) -> Result<Topology, RamError> {
        self.then(TopologyStage::Twist { rows, cols })
    }

    /// Appends an explicit permutation `fwd[logical] = physical` (the
    /// inverse is derived and validated here).
    ///
    /// # Errors
    ///
    /// As [`Topology::then`], for a table that is not a permutation of
    /// exactly this cell count.
    pub fn then_table(self, fwd: Vec<usize>) -> Result<Topology, RamError> {
        if fwd.len() != self.cells || fwd.iter().any(|&p| p >= self.cells) {
            return Err(RamError::UnsupportedGeometry {
                reason: "topology stage does not fit the cell count",
            });
        }
        let mut inv = vec![usize::MAX; self.cells];
        for (a, &p) in fwd.iter().enumerate() {
            if inv[p] != usize::MAX {
                return Err(RamError::UnsupportedGeometry {
                    reason: "topology stage does not fit the cell count",
                });
            }
            inv[p] = a;
        }
        self.then(TopologyStage::Table { fwd, inv })
    }

    /// The composition `self ∘ other` reading left to right: addresses
    /// flow through `self`'s stages, then `other`'s.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] when the cell counts differ.
    pub fn compose(mut self, other: &Topology) -> Result<Topology, RamError> {
        if self.cells != other.cells {
            return Err(RamError::UnsupportedGeometry {
                reason: "composed topologies cover different cell counts",
            });
        }
        self.stages.extend(other.stages.iter().cloned());
        Ok(self)
    }

    /// Physical address of logical address `a`.
    ///
    /// # Panics
    ///
    /// Panics when `a` is out of range.
    pub fn to_physical(&self, a: usize) -> usize {
        assert!(a < self.cells, "address {a} outside topology of {} cells", self.cells);
        let mut x = a;
        for stage in &self.stages {
            x = stage.forward(self.cells, x);
        }
        x
    }

    /// Logical address stored at physical address `p` — the exact inverse
    /// of [`Topology::to_physical`].
    ///
    /// # Panics
    ///
    /// Panics when `p` is out of range.
    pub fn to_logical(&self, p: usize) -> usize {
        assert!(p < self.cells, "address {p} outside topology of {} cells", self.cells);
        let mut x = p;
        for stage in self.stages.iter().rev() {
            x = stage.backward(self.cells, x);
        }
        x
    }

    /// A deterministic, seed-fuzzable topology over `cells` addresses:
    /// 1–3 random stages drawn from every family valid for this cell
    /// count (swizzles only on powers of two, folds only on even counts,
    /// grid stages only when a non-trivial factorisation exists; a random
    /// permutation table is always available, so every seed yields a real
    /// scramble for every `cells ≥ 2`).
    pub fn generate(cells: usize, seed: u64) -> Topology {
        let mut rng = SplitMix64::new(seed);
        let mut topo = Topology::identity(cells);
        if cells < 2 {
            return topo;
        }
        let bits = cells.trailing_zeros();
        let pow2 = cells == 1usize << bits;
        let grid = {
            let r = Layout::squarish(Geometry::bom(cells)).expect("1×n always factors");
            (r.rows() > 1).then(|| (r.rows(), r.cols()))
        };
        let stages = 1 + rng.next_below(3) as usize;
        for _ in 0..stages {
            let choice = rng.next_below(5);
            topo = match choice {
                0 if pow2 => {
                    // Random bit permutation with random inversions.
                    let mut order: Vec<u32> = (0..bits).collect();
                    rng.shuffle(&mut order);
                    let table: Vec<(u32, bool)> =
                        order.into_iter().map(|b| (b, rng.next_bool())).collect();
                    topo.then_swizzle(Scrambler::from_table(table).expect("permutation"))
                }
                1 if grid.is_some() => {
                    let (r, c) = grid.expect("checked");
                    topo.then_interleave(r, c)
                }
                2 if cells.is_multiple_of(2) => topo.then_fold(),
                3 if grid.is_some() => {
                    let (r, c) = grid.expect("checked");
                    topo.then_twist(r, c)
                }
                _ => {
                    let mut fwd: Vec<usize> = (0..cells).collect();
                    rng.shuffle(&mut fwd);
                    topo.then_table(fwd)
                }
            }
            .expect("generated stages are valid by construction");
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ram;

    #[test]
    fn layout_roundtrip() {
        let l = Layout::new(4, 8).unwrap();
        assert_eq!(l.cells(), 32);
        for cell in 0..32 {
            let (r, c) = l.position_of(cell);
            assert_eq!(l.cell_at(r, c), cell);
        }
    }

    #[test]
    fn squarish_prefers_square() {
        let l = Layout::squarish(Geometry::bom(36)).unwrap();
        assert_eq!((l.rows(), l.cols()), (6, 6));
        let l = Layout::squarish(Geometry::bom(15)).unwrap();
        assert_eq!((l.rows(), l.cols()), (3, 5));
        let l = Layout::squarish(Geometry::bom(13)).unwrap(); // prime
        assert_eq!((l.rows(), l.cols()), (1, 13));
    }

    #[test]
    fn von_neumann_neighbourhoods() {
        let l = Layout::new(3, 3).unwrap();
        // Centre cell 4 has all four neighbours: N=1, E=5, S=7, W=3.
        assert_eq!(l.von_neumann(4), vec![1, 5, 7, 3]);
        // Corner cell 0 has two.
        assert_eq!(l.von_neumann(0), vec![1, 3]);
    }

    #[test]
    fn npsf_fault_behaves_topologically() {
        let l = Layout::new(3, 3).unwrap();
        let fault = l.npsf(4, 0, 0b1111, 1).unwrap(); // all neighbours 1 → victim forced 1
        let mut ram = Ram::new(Geometry::bom(9));
        ram.inject(fault).unwrap();
        for nb in [1usize, 5, 7] {
            ram.write(nb, 1);
        }
        assert_eq!(ram.read(4), 0, "pattern incomplete");
        ram.write(3, 1); // completes N/E/S/W = 1111
        assert_eq!(ram.read(4), 1, "victim forced by the neighbourhood");
    }

    #[test]
    fn npsf_universe_size() {
        let l = Layout::new(4, 4).unwrap();
        // interior victims: 2×2 = 4; patterns 16; forces 2 → 128.
        assert_eq!(l.npsf_universe(0).len(), 128);
    }

    #[test]
    fn scrambler_roundtrip_and_validation() {
        for s in [Scrambler::identity(4), Scrambler::reversed(4)] {
            for a in 0..16 {
                assert_eq!(s.unscramble(s.scramble(a)), a);
            }
        }
        let custom = Scrambler::from_table(vec![(1, true), (0, false), (2, true)]).unwrap();
        for a in 0..8 {
            assert_eq!(custom.unscramble(custom.scramble(a)), a);
        }
        assert!(Scrambler::from_table(vec![(0, false), (0, true)]).is_err());
        assert!(Scrambler::from_table(vec![(0, false), (2, false)]).is_err());
    }

    #[test]
    fn reversed_scrambler_maps_as_expected() {
        let s = Scrambler::reversed(3);
        assert_eq!(s.scramble(0b001), 0b100);
        assert_eq!(s.scramble(0b110), 0b011);
    }

    #[test]
    fn squarish_integer_isqrt_at_the_f64_boundary() {
        // Above 2^53 the float pipeline `(n as f64).sqrt() as usize` is
        // untrustworthy: the conversion alone can be off by 2^11 near
        // 2^64. The integer isqrt must factor huge perfect squares
        // exactly (Geometry carries only the count — nothing allocates).
        for k in [1usize << 31, (1 << 31) + 1, (1 << 32) - 1] {
            let l = Layout::squarish(Geometry::bom(k * k)).unwrap();
            assert_eq!((l.rows(), l.cols()), (k, k), "k = {k}");
        }
        // Non-squares just below/above a huge square keep rows ≤ cols and
        // an exact factorisation.
        let n = (1usize << 31) * ((1 << 31) + 2);
        let l = Layout::squarish(Geometry::bom(n)).unwrap();
        assert_eq!(l.rows() * l.cols(), n);
        assert!(l.rows() <= l.cols());
        assert_eq!((l.rows(), l.cols()), (1 << 31, (1 << 31) + 2));
    }

    #[test]
    fn identity_topology_maps_every_address_to_itself() {
        let t = Topology::identity(13);
        assert!(t.is_identity());
        for a in 0..13 {
            assert_eq!(t.to_physical(a), a);
            assert_eq!(t.to_logical(a), a);
        }
        // A swizzle of identity scramblers is semantically the identity
        // even with a non-empty stage stack.
        let t = Topology::identity(8).then_swizzle(Scrambler::identity(3)).unwrap();
        assert!(!t.stages().is_empty());
        assert!(t.is_identity());
    }

    #[test]
    fn stage_round_trips_and_known_images() {
        let n = 16usize;
        let topos = [
            Topology::identity(n).then_swizzle(Scrambler::reversed(4)).unwrap(),
            Topology::identity(n).then_interleave(4, 4).unwrap(),
            Topology::identity(n).then_fold().unwrap(),
            Topology::identity(n).then_twist(4, 4).unwrap(),
            Topology::identity(n).then_table((0..n).rev().collect()).unwrap(),
            Topology::generate(n, 7),
        ];
        for t in &topos {
            let mut seen = vec![false; n];
            for a in 0..n {
                let p = t.to_physical(a);
                assert_eq!(t.to_logical(p), a, "{t:?}");
                assert!(!seen[p], "{t:?} not a bijection");
                seen[p] = true;
            }
        }
        // Fold: 0..8 land on even slots, 15..8 on odd slots.
        let fold = Topology::identity(8).then_fold().unwrap();
        let images: Vec<usize> = (0..8).map(|a| fold.to_physical(a)).collect();
        assert_eq!(images, vec![0, 2, 4, 6, 7, 5, 3, 1]);
        // Twist: odd rows swap column pairs.
        let twist = Topology::identity(8).then_twist(2, 4).unwrap();
        let images: Vec<usize> = (0..8).map(|a| twist.to_physical(a)).collect();
        assert_eq!(images, vec![0, 1, 2, 3, 5, 4, 7, 6]);
    }

    #[test]
    fn topology_stage_validation_is_loud() {
        assert!(Topology::identity(12).then_swizzle(Scrambler::identity(4)).is_err());
        assert!(Topology::identity(12).then_interleave(5, 2).is_err());
        assert!(Topology::identity(13).then_fold().is_err());
        assert!(Topology::identity(12).then_twist(0, 12).is_err());
        assert!(Topology::identity(4).then_table(vec![0, 1, 2]).is_err());
        assert!(Topology::identity(4).then_table(vec![0, 1, 2, 2]).is_err());
        assert!(Topology::identity(4).then_table(vec![0, 1, 2, 4]).is_err());
        assert!(Topology::identity(8).compose(&Topology::identity(4)).is_err());
    }

    #[test]
    fn composition_applies_left_to_right() {
        let n = 16usize;
        let a = Topology::identity(n).then_swizzle(Scrambler::reversed(4)).unwrap();
        let b = Topology::identity(n).then_fold().unwrap();
        let ab = a.clone().compose(&b).unwrap();
        for x in 0..n {
            assert_eq!(ab.to_physical(x), b.to_physical(a.to_physical(x)));
            assert_eq!(ab.to_logical(ab.to_physical(x)), x);
        }
    }

    #[test]
    fn generated_topologies_are_bijections_for_awkward_sizes() {
        // Primes, evens, powers of two, and 1-cell arrays all generate.
        for n in [1usize, 2, 5, 12, 13, 16, 24, 64] {
            for seed in 0..8u64 {
                let t = Topology::generate(n, seed);
                let mut seen = vec![false; n];
                for a in 0..n {
                    let p = t.to_physical(a);
                    assert_eq!(t.to_logical(p), a, "n={n} seed={seed}");
                    assert!(!seen[p], "n={n} seed={seed} not a bijection");
                    seen[p] = true;
                }
            }
        }
    }

    #[test]
    fn npsf_with_topology_maps_neighbourhoods_to_logical_addresses() {
        let l = Layout::new(3, 3).unwrap();
        let topo = Topology::identity(9).then_table(vec![8, 7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        // Identity path unchanged.
        assert_eq!(l.npsf_universe(0), l.npsf_universe_with(&Topology::identity(9), 0));
        // Physical victim 4 (centre) is logical 4 under reversal too, but
        // its physical neighbours 1/5/7/3 carry logical addresses 7/3/1/5.
        let fault = l.npsf_with(&topo, 4, 0, 0b1111, 1).unwrap();
        match fault {
            FaultKind::Npsf { victim_cell, ref neighbors, .. } => {
                assert_eq!(victim_cell, 4);
                let cells: Vec<usize> = neighbors.iter().map(|&(c, _, _)| c).collect();
                assert_eq!(cells, vec![7, 3, 1, 5]);
            }
            other => panic!("unexpected fault {other:?}"),
        }
        // The fault still behaves topologically when driven through the
        // *logical* port interface of a scrambled part.
        let mut ram = Ram::new(Geometry::bom(9));
        ram.inject(l.npsf_with(&topo, 4, 0, 0b1111, 1).unwrap()).unwrap();
        for nb in [7usize, 3, 1, 5] {
            ram.write(nb, 1);
        }
        assert_eq!(ram.read(4), 1, "victim forced by the physical neighbourhood");
    }
}
