//! Physical array topology: logical-address → (row, column) mapping.
//!
//! Neighbourhood pattern sensitive faults (NPSF) are defined over the
//! *physical* layout, not the logical address order. This module provides
//! the row-major mapping and the classic type-1 (von Neumann) neighbourhood
//! used to instantiate [`crate::FaultKind::Npsf`] faults, plus address
//! scrambling so tests can model decoders whose logical order differs from
//! the physical one.

use crate::{FaultKind, Geometry, RamError};

/// A rectangular physical layout for an `n`-cell array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    rows: usize,
    cols: usize,
}

impl Layout {
    /// Creates a `rows × cols` layout.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Layout, RamError> {
        if rows == 0 || cols == 0 {
            return Err(RamError::UnsupportedGeometry { reason: "zero layout dimension" });
        }
        Ok(Layout { rows, cols })
    }

    /// The most-square layout for a geometry (`cols ≥ rows`).
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if the cell count has no
    /// rectangular factorisation (never: `1 × n` always works).
    pub fn squarish(geom: Geometry) -> Result<Layout, RamError> {
        let n = geom.cells();
        let mut rows = (n as f64).sqrt() as usize;
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        Layout::new(rows.max(1), n / rows.max(1))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cells.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Logical cell index of physical position `(row, col)` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the layout.
    pub fn cell_at(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "position outside layout");
        row * self.cols + col
    }

    /// Physical position of a logical cell index.
    ///
    /// # Panics
    ///
    /// Panics if the index is outside the layout.
    pub fn position_of(&self, cell: usize) -> (usize, usize) {
        assert!(cell < self.cells(), "cell outside layout");
        (cell / self.cols, cell % self.cols)
    }

    /// The von Neumann (N/E/S/W) neighbours of a cell, clipped at edges.
    pub fn von_neumann(&self, cell: usize) -> Vec<usize> {
        let (r, c) = self.position_of(cell);
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(self.cell_at(r - 1, c));
        }
        if c + 1 < self.cols {
            out.push(self.cell_at(r, c + 1));
        }
        if r + 1 < self.rows {
            out.push(self.cell_at(r + 1, c));
        }
        if c > 0 {
            out.push(self.cell_at(r, c - 1));
        }
        out
    }

    /// Builds a static type-1 NPSF fault: the victim bit is forced to
    /// `force` whenever every von Neumann neighbour holds `pattern`'s
    /// corresponding bit (pattern bit `i` = i-th neighbour in N/E/S/W
    /// order after edge clipping).
    ///
    /// # Errors
    ///
    /// Propagates fault-site validation when the fault is later injected;
    /// this constructor itself fails only for a victim outside the layout.
    pub fn npsf(
        &self,
        victim_cell: usize,
        victim_bit: u32,
        pattern: u64,
        force: u8,
    ) -> Result<FaultKind, RamError> {
        if victim_cell >= self.cells() {
            return Err(RamError::AddressOutOfRange { addr: victim_cell, cells: self.cells() });
        }
        let neighbors: Vec<(usize, u32, u8)> = self
            .von_neumann(victim_cell)
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, victim_bit, ((pattern >> i) & 1) as u8))
            .collect();
        Ok(FaultKind::Npsf { victim_cell, victim_bit, neighbors, force })
    }

    /// Enumerates all type-1 static NPSF instances (every interior victim,
    /// every neighbour pattern, both forced values) for bit `bit`.
    pub fn npsf_universe(&self, bit: u32) -> Vec<FaultKind> {
        let mut out = Vec::new();
        for r in 1..self.rows.saturating_sub(1) {
            for c in 1..self.cols.saturating_sub(1) {
                let victim = self.cell_at(r, c);
                for pattern in 0..16u64 {
                    for force in [0u8, 1] {
                        out.push(
                            self.npsf(victim, bit, pattern, force).expect("victim inside layout"),
                        );
                    }
                }
            }
        }
        out
    }
}

/// A deterministic address scrambler: logical address → physical cell,
/// modelling decoders whose bit order is permuted/inverted (common in real
/// parts, and the reason topological tests must un-scramble).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scrambler {
    bits: u32,
    /// For each physical address bit: (source logical bit, invert?).
    map: Vec<(u32, bool)>,
}

impl Scrambler {
    /// Identity scrambler over `bits` address bits.
    pub fn identity(bits: u32) -> Scrambler {
        Scrambler { bits, map: (0..bits).map(|b| (b, false)).collect() }
    }

    /// Bit-reversal scrambler.
    pub fn reversed(bits: u32) -> Scrambler {
        Scrambler { bits, map: (0..bits).rev().map(|b| (b, false)).collect() }
    }

    /// Scrambler from an explicit `(source bit, invert)` table.
    ///
    /// # Errors
    ///
    /// [`RamError::UnsupportedGeometry`] if the table is not a permutation
    /// of the address bits.
    pub fn from_table(map: Vec<(u32, bool)>) -> Result<Scrambler, RamError> {
        let bits = map.len() as u32;
        let mut seen = vec![false; bits as usize];
        for &(src, _) in &map {
            if src >= bits || seen[src as usize] {
                return Err(RamError::UnsupportedGeometry {
                    reason: "scrambler table is not a bit permutation",
                });
            }
            seen[src as usize] = true;
        }
        Ok(Scrambler { bits, map })
    }

    /// Number of address bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Applies the scrambling to a logical address.
    pub fn scramble(&self, logical: usize) -> usize {
        let mut out = 0usize;
        for (phys_bit, &(src, inv)) in self.map.iter().enumerate() {
            let mut b = (logical >> src) & 1;
            if inv {
                b ^= 1;
            }
            out |= b << phys_bit;
        }
        out
    }

    /// The inverse mapping (physical → logical).
    pub fn unscramble(&self, physical: usize) -> usize {
        let mut out = 0usize;
        for (phys_bit, &(src, inv)) in self.map.iter().enumerate() {
            let mut b = (physical >> phys_bit) & 1;
            if inv {
                b ^= 1;
            }
            out |= b << src;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ram;

    #[test]
    fn layout_roundtrip() {
        let l = Layout::new(4, 8).unwrap();
        assert_eq!(l.cells(), 32);
        for cell in 0..32 {
            let (r, c) = l.position_of(cell);
            assert_eq!(l.cell_at(r, c), cell);
        }
    }

    #[test]
    fn squarish_prefers_square() {
        let l = Layout::squarish(Geometry::bom(36)).unwrap();
        assert_eq!((l.rows(), l.cols()), (6, 6));
        let l = Layout::squarish(Geometry::bom(15)).unwrap();
        assert_eq!((l.rows(), l.cols()), (3, 5));
        let l = Layout::squarish(Geometry::bom(13)).unwrap(); // prime
        assert_eq!((l.rows(), l.cols()), (1, 13));
    }

    #[test]
    fn von_neumann_neighbourhoods() {
        let l = Layout::new(3, 3).unwrap();
        // Centre cell 4 has all four neighbours: N=1, E=5, S=7, W=3.
        assert_eq!(l.von_neumann(4), vec![1, 5, 7, 3]);
        // Corner cell 0 has two.
        assert_eq!(l.von_neumann(0), vec![1, 3]);
    }

    #[test]
    fn npsf_fault_behaves_topologically() {
        let l = Layout::new(3, 3).unwrap();
        let fault = l.npsf(4, 0, 0b1111, 1).unwrap(); // all neighbours 1 → victim forced 1
        let mut ram = Ram::new(Geometry::bom(9));
        ram.inject(fault).unwrap();
        for nb in [1usize, 5, 7] {
            ram.write(nb, 1);
        }
        assert_eq!(ram.read(4), 0, "pattern incomplete");
        ram.write(3, 1); // completes N/E/S/W = 1111
        assert_eq!(ram.read(4), 1, "victim forced by the neighbourhood");
    }

    #[test]
    fn npsf_universe_size() {
        let l = Layout::new(4, 4).unwrap();
        // interior victims: 2×2 = 4; patterns 16; forces 2 → 128.
        assert_eq!(l.npsf_universe(0).len(), 128);
    }

    #[test]
    fn scrambler_roundtrip_and_validation() {
        for s in [Scrambler::identity(4), Scrambler::reversed(4)] {
            for a in 0..16 {
                assert_eq!(s.unscramble(s.scramble(a)), a);
            }
        }
        let custom = Scrambler::from_table(vec![(1, true), (0, false), (2, true)]).unwrap();
        for a in 0..8 {
            assert_eq!(custom.unscramble(custom.scramble(a)), a);
        }
        assert!(Scrambler::from_table(vec![(0, false), (0, true)]).is_err());
        assert!(Scrambler::from_table(vec![(0, false), (2, false)]).is_err());
    }

    #[test]
    fn reversed_scrambler_maps_as_expected() {
        let s = Scrambler::reversed(3);
        assert_eq!(s.scramble(0b001), 0b100);
        assert_eq!(s.scramble(0b110), 0b011);
    }
}
