//! Cycle-accurate RAM simulator with functional fault injection.
//!
//! The PRT paper evaluates pseudo-ring testing against the *functional*
//! memory fault models of van de Goor's "Testing Semiconductor Memories"
//! (its reference \[1\]): stuck-at, transition, coupling, address-decoder and
//! read/write-logic faults. This crate is the substitute for the physical
//! SRAM the authors had: a simulator whose observable behaviour under each
//! fault model matches the textbook definitions, with the exact semantics
//! documented on each [`FaultKind`] variant.
//!
//! # Architecture
//!
//! * [`Geometry`] — `n` cells of `m` bits (bit-oriented memory is `m = 1`).
//! * [`Ram`] — the device: storage + [`FaultBank`] + address decoder +
//!   per-port sense amplifiers + [`AccessStats`] (operation and cycle
//!   counts, which is how the paper's `3n` vs `2n` complexity claims are
//!   measured rather than asserted).
//! * Multi-port access happens through [`Ram::cycle`]: one *cycle* carries
//!   up to `P` simultaneous port operations, with read-before-write
//!   semantics and explicit conflict errors.
//! * [`universe`] — enumerators for exhaustive fault universes, used by the
//!   coverage experiments (E3/E4/E10).
//! * [`prog`] — the compiled memory-test program IR ([`TestProgram`]): a
//!   flat [`MemOp`] sequence plus one allocation-free interpreter that the
//!   March/π/PRT/bit-plane compilers target, so fault-simulation campaigns
//!   pay notation interpretation once instead of once per trial.
//!
//! # Example
//!
//! ```
//! use prt_ram::{FaultKind, Geometry, Ram};
//!
//! // An 8-cell bit-oriented memory with a stuck-at-0 fault in cell 3.
//! let mut ram = Ram::new(Geometry::bom(8));
//! ram.inject(FaultKind::StuckAt { cell: 3, bit: 0, value: 0 })?;
//! ram.write(3, 1);
//! assert_eq!(ram.read(3), 0); // the write could not flip the cell
//! # Ok::<(), prt_ram::RamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod error;
pub mod fault;
pub mod geometry;
pub mod memory;
pub mod prog;
pub mod rng;
pub mod slice;
pub mod stats;
pub mod topology;
pub mod universe;

pub use batch::{lane_word, LaneChunk, LaneFaultBank, LaneRam, LANES};
pub use error::RamError;
pub use fault::{CouplingTrigger, FaultBank, FaultKind};
pub use geometry::Geometry;
pub use memory::{MemoryDevice, PortOp, Ram, ReadWired, MAX_PORTS};
pub use prog::{Execution, MemOp, OpMismatch, ProgramBuilder, SlotOp, TestProgram, ACC_LANES};
pub use rng::SplitMix64;
pub use slice::{fault_cells, fault_locality_key, ActiveSet, ActivityIndex};
pub use stats::AccessStats;
pub use topology::{Layout, Scrambler, Topology, TopologyStage};
pub use universe::{FaultUniverse, LazyUniverse, UniverseSpec};
