//! Functional memory fault models.
//!
//! Variants follow the taxonomy of van de Goor, *Testing Semiconductor
//! Memories* (the paper's reference \[1\]). Every variant documents the exact
//! observable semantics the simulator implements, because several textbook
//! faults leave room for interpretation; the choices below are the standard
//! ones used in March-test proofs, and experiment E10 validates them by
//! reproducing the known coverage table of the classic March algorithms.
//!
//! Fault sites are `(cell, bit)` pairs so that *intra-word* faults of
//! word-oriented memories (coupling between bits of one cell) are expressible
//! — the paper's §2 discusses exactly those.
//!
//! # Application order
//!
//! On a write to a cell: stuck-open (write lost) → transition blocking →
//! write-disturb → stuck-at enforcement → store → coupling triggers (CFin /
//! CFid on the bits that actually flipped, one level, no cascading) → state
//! coupling (CFst) enforcement.
//!
//! On a read: stuck-open (sense-amp latch) → data-retention decay → CFst
//! enforcement → stuck-at enforcement → destructive/deceptive read flips →
//! incorrect-read output inversion.

use crate::{Geometry, RamError};
use std::collections::HashMap;

/// Direction of the aggressor transition that triggers a coupling fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CouplingTrigger {
    /// Aggressor bit transitions 0 → 1 (written ↑).
    Rise,
    /// Aggressor bit transitions 1 → 0 (written ↓).
    Fall,
}

/// A single functional fault.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// SAF — the bit always holds `value`; writes cannot change it and
    /// reads always observe it.
    StuckAt {
        /// Victim cell.
        cell: usize,
        /// Victim bit within the cell.
        bit: u32,
        /// The stuck value (0 or 1).
        value: u8,
    },
    /// TF — the bit cannot make one transition direction. With
    /// `rising = true` the bit cannot go 0 → 1 (an up-transition fault
    /// ⟨↑/0⟩); with `rising = false` it cannot go 1 → 0.
    Transition {
        /// Victim cell.
        cell: usize,
        /// Victim bit.
        bit: u32,
        /// Which transition is blocked.
        rising: bool,
    },
    /// CFin — inversion coupling: when the aggressor bit makes the trigger
    /// transition (via a write), the victim bit is inverted.
    CouplingInversion {
        /// Aggressor cell.
        agg_cell: usize,
        /// Aggressor bit.
        agg_bit: u32,
        /// Victim cell.
        victim_cell: usize,
        /// Victim bit.
        victim_bit: u32,
        /// Aggressor transition that fires the fault.
        trigger: CouplingTrigger,
    },
    /// CFid — idempotent coupling: when the aggressor bit makes the trigger
    /// transition, the victim bit is forced to `force`.
    CouplingIdempotent {
        /// Aggressor cell.
        agg_cell: usize,
        /// Aggressor bit.
        agg_bit: u32,
        /// Victim cell.
        victim_cell: usize,
        /// Victim bit.
        victim_bit: u32,
        /// Aggressor transition that fires the fault.
        trigger: CouplingTrigger,
        /// Value forced into the victim (0 or 1).
        force: u8,
    },
    /// CFst — state coupling: while the aggressor bit holds `agg_state`,
    /// the victim bit is forced to `force`. Enforced when the aggressor is
    /// written into the state, when the victim is written while the
    /// condition holds, and when the victim is read while the condition
    /// holds.
    CouplingState {
        /// Aggressor cell.
        agg_cell: usize,
        /// Aggressor bit.
        agg_bit: u32,
        /// Aggressor state that activates the fault (0 or 1).
        agg_state: u8,
        /// Victim cell.
        victim_cell: usize,
        /// Victim bit.
        victim_bit: u32,
        /// Value forced into the victim (0 or 1).
        force: u8,
    },
    /// AF type A/B — the address decodes to no cell: reads float to the
    /// wired default (all-0 for wired-OR bitlines, all-1 for wired-AND) and
    /// writes are lost. The cell that should belong to `addr` becomes
    /// unreachable through this address.
    DecoderNoAccess {
        /// The faulty address.
        addr: usize,
    },
    /// AF type C — the address accesses its own cell *plus* `extra_cell`:
    /// writes hit both, reads return the wired combination.
    DecoderExtraCell {
        /// The faulty address.
        addr: usize,
        /// The additional cell erroneously selected.
        extra_cell: usize,
    },
    /// AF type D — the address accesses `instead_cell` *instead of* its own
    /// cell (so `instead_cell` is reachable through two addresses and the
    /// cell of `addr` through none).
    DecoderShadow {
        /// The faulty address.
        addr: usize,
        /// The cell erroneously selected.
        instead_cell: usize,
    },
    /// SOF — stuck-open cell: writes are lost and reads return the previous
    /// value latched in the port's sense amplifier.
    StuckOpen {
        /// The inaccessible cell.
        cell: usize,
    },
    /// RDF — destructive read: a read flips the bit and returns the *new*
    /// (incorrect) value.
    ReadDestructive {
        /// Victim cell.
        cell: usize,
        /// Victim bit.
        bit: u32,
    },
    /// DRDF — deceptive destructive read: a read flips the bit but returns
    /// the *old* (correct) value, deferring detection to a later read.
    DeceptiveRead {
        /// Victim cell.
        cell: usize,
        /// Victim bit.
        bit: u32,
    },
    /// IRF — incorrect read: the read returns the complement of the bit;
    /// the stored value is unchanged.
    IncorrectRead {
        /// Victim cell.
        cell: usize,
        /// Victim bit.
        bit: u32,
    },
    /// WDF — write disturb: a *non-transition* write (writing the value the
    /// bit already holds) flips the bit.
    WriteDisturb {
        /// Victim cell.
        cell: usize,
        /// Victim bit.
        bit: u32,
    },
    /// DRF — data retention: if the cell is not rewritten within `after`
    /// device operations, the bit decays to `decays_to` (observed at the
    /// next read).
    DataRetention {
        /// Victim cell.
        cell: usize,
        /// Victim bit.
        bit: u32,
        /// The value the bit leaks towards (0 or 1).
        decays_to: u8,
        /// Retention time in device operations.
        after: u64,
    },
    /// Static NPSF — neighbourhood pattern sensitive fault: whenever every
    /// listed neighbour bit holds its listed value, the victim bit is
    /// forced to `force`. Enforced after writes to neighbours and at reads
    /// of the victim.
    Npsf {
        /// Victim cell.
        victim_cell: usize,
        /// Victim bit.
        victim_bit: u32,
        /// `(cell, bit, value)` conditions that must all hold.
        neighbors: Vec<(usize, u32, u8)>,
        /// Value forced into the victim (0 or 1).
        force: u8,
    },
}

impl FaultKind {
    /// A short mnemonic for tables: `SAF`, `TF`, `CFin`, ….
    pub fn mnemonic(&self) -> &'static str {
        match self {
            FaultKind::StuckAt { .. } => "SAF",
            FaultKind::Transition { .. } => "TF",
            FaultKind::CouplingInversion { .. } => "CFin",
            FaultKind::CouplingIdempotent { .. } => "CFid",
            FaultKind::CouplingState { .. } => "CFst",
            FaultKind::DecoderNoAccess { .. }
            | FaultKind::DecoderExtraCell { .. }
            | FaultKind::DecoderShadow { .. } => "AF",
            FaultKind::StuckOpen { .. } => "SOF",
            FaultKind::ReadDestructive { .. } => "RDF",
            FaultKind::DeceptiveRead { .. } => "DRDF",
            FaultKind::IncorrectRead { .. } => "IRF",
            FaultKind::WriteDisturb { .. } => "WDF",
            FaultKind::DataRetention { .. } => "DRF",
            FaultKind::Npsf { .. } => "NPSF",
        }
    }

    /// Validates all sites against a geometry.
    ///
    /// # Errors
    ///
    /// Address/bit range errors, or [`RamError::SelfCoupling`] when a
    /// coupling fault's aggressor and victim coincide.
    pub fn validate(&self, geom: &Geometry) -> Result<(), RamError> {
        let site = |cell: usize, bit: u32| -> Result<(), RamError> {
            geom.check_addr(cell)?;
            geom.check_bit(bit)
        };
        match self {
            FaultKind::StuckAt { cell, bit, .. }
            | FaultKind::Transition { cell, bit, .. }
            | FaultKind::ReadDestructive { cell, bit }
            | FaultKind::DeceptiveRead { cell, bit }
            | FaultKind::IncorrectRead { cell, bit }
            | FaultKind::WriteDisturb { cell, bit }
            | FaultKind::DataRetention { cell, bit, .. } => site(*cell, *bit),
            FaultKind::StuckOpen { cell } => geom.check_addr(*cell),
            FaultKind::CouplingInversion { agg_cell, agg_bit, victim_cell, victim_bit, .. }
            | FaultKind::CouplingIdempotent {
                agg_cell, agg_bit, victim_cell, victim_bit, ..
            }
            | FaultKind::CouplingState { agg_cell, agg_bit, victim_cell, victim_bit, .. } => {
                site(*agg_cell, *agg_bit)?;
                site(*victim_cell, *victim_bit)?;
                if agg_cell == victim_cell && agg_bit == victim_bit {
                    return Err(RamError::SelfCoupling { cell: *agg_cell });
                }
                Ok(())
            }
            FaultKind::DecoderNoAccess { addr } => geom.check_addr(*addr),
            FaultKind::DecoderExtraCell { addr, extra_cell } => {
                geom.check_addr(*addr)?;
                geom.check_addr(*extra_cell)?;
                if addr == extra_cell {
                    return Err(RamError::SelfCoupling { cell: *addr });
                }
                Ok(())
            }
            FaultKind::DecoderShadow { addr, instead_cell } => {
                geom.check_addr(*addr)?;
                geom.check_addr(*instead_cell)?;
                if addr == instead_cell {
                    return Err(RamError::SelfCoupling { cell: *addr });
                }
                Ok(())
            }
            FaultKind::Npsf { victim_cell, victim_bit, neighbors, .. } => {
                site(*victim_cell, *victim_bit)?;
                for &(c, b, _) in neighbors {
                    site(c, b)?;
                    if c == *victim_cell && b == *victim_bit {
                        return Err(RamError::SelfCoupling { cell: c });
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::StuckAt { cell, bit, value } => write!(f, "SA{value}@{cell}.{bit}"),
            FaultKind::Transition { cell, bit, rising } => {
                write!(f, "TF{}@{cell}.{bit}", if *rising { "↑" } else { "↓" })
            }
            FaultKind::CouplingInversion {
                agg_cell,
                agg_bit,
                victim_cell,
                victim_bit,
                trigger,
            } => {
                write!(
                    f,
                    "CFin⟨{}⟩ {agg_cell}.{agg_bit}→{victim_cell}.{victim_bit}",
                    match trigger {
                        CouplingTrigger::Rise => "↑",
                        CouplingTrigger::Fall => "↓",
                    }
                )
            }
            FaultKind::CouplingIdempotent {
                agg_cell,
                agg_bit,
                victim_cell,
                victim_bit,
                trigger,
                force,
            } => write!(
                f,
                "CFid⟨{};{force}⟩ {agg_cell}.{agg_bit}→{victim_cell}.{victim_bit}",
                match trigger {
                    CouplingTrigger::Rise => "↑",
                    CouplingTrigger::Fall => "↓",
                }
            ),
            FaultKind::CouplingState {
                agg_cell,
                agg_bit,
                agg_state,
                victim_cell,
                victim_bit,
                force,
            } => write!(
                f,
                "CFst⟨{agg_state};{force}⟩ {agg_cell}.{agg_bit}→{victim_cell}.{victim_bit}"
            ),
            FaultKind::DecoderNoAccess { addr } => write!(f, "AF-none@{addr}"),
            FaultKind::DecoderExtraCell { addr, extra_cell } => {
                write!(f, "AF-extra@{addr}+{extra_cell}")
            }
            FaultKind::DecoderShadow { addr, instead_cell } => {
                write!(f, "AF-shadow@{addr}→{instead_cell}")
            }
            FaultKind::StuckOpen { cell } => write!(f, "SOF@{cell}"),
            FaultKind::ReadDestructive { cell, bit } => write!(f, "RDF@{cell}.{bit}"),
            FaultKind::DeceptiveRead { cell, bit } => write!(f, "DRDF@{cell}.{bit}"),
            FaultKind::IncorrectRead { cell, bit } => write!(f, "IRF@{cell}.{bit}"),
            FaultKind::WriteDisturb { cell, bit } => write!(f, "WDF@{cell}.{bit}"),
            FaultKind::DataRetention { cell, bit, decays_to, after } => {
                write!(f, "DRF→{decays_to}({after})@{cell}.{bit}")
            }
            FaultKind::Npsf { victim_cell, victim_bit, force, .. } => {
                write!(f, "NPSF⟨{force}⟩@{victim_cell}.{victim_bit}")
            }
        }
    }
}

/// An indexed collection of faults, organised for O(1) lookup on the hot
/// access path.
///
/// The victim/aggressor indexes are plain per-cell buckets (lazily sized to
/// the geometry on first insert) rather than hash maps: the simulator
/// performs several index lookups per memory operation, and an array index
/// beats hashing on every one of them. [`FaultBank::clear`] empties only
/// the buckets previous inserts touched, so recycling a bank across
/// campaign trials is O(#faults) and allocation-free in the steady state.
#[derive(Debug, Clone, Default)]
pub struct FaultBank {
    faults: Vec<FaultKind>,
    /// Fault indices whose *victim site* lies in the indexed cell
    /// (everything except decoder faults and pure aggressor roles).
    by_victim: Vec<Vec<usize>>,
    /// Fault indices with a coupling/NPSF *aggressor or neighbour* in the
    /// indexed cell.
    by_aggressor: Vec<Vec<usize>>,
    /// Cells whose buckets may be non-empty (deduplicated lazily by
    /// [`FaultBank::clear`]; duplicates are harmless).
    touched: Vec<usize>,
    /// Decoder behaviour overrides by address (rare — kept as a map).
    decoder: HashMap<usize, DecoderMap>,
}

/// Resolved decoder behaviour for one address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecoderMap {
    /// No cell is selected.
    None,
    /// The listed cells are selected (1 = normal, ≥2 = multi-select).
    Cells(Vec<usize>),
}

impl FaultBank {
    /// Creates an empty bank.
    pub fn new() -> FaultBank {
        FaultBank::default()
    }

    /// `true` when no faults are present (fast-path check).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The injected faults in insertion order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Adds a fault after validating it against the geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultKind::validate`] errors.
    pub fn add(&mut self, geom: &Geometry, fault: FaultKind) -> Result<(), RamError> {
        fault.validate(geom)?;
        let idx = self.faults.len();
        match &fault {
            FaultKind::StuckAt { cell, .. }
            | FaultKind::Transition { cell, .. }
            | FaultKind::StuckOpen { cell }
            | FaultKind::ReadDestructive { cell, .. }
            | FaultKind::DeceptiveRead { cell, .. }
            | FaultKind::IncorrectRead { cell, .. }
            | FaultKind::WriteDisturb { cell, .. }
            | FaultKind::DataRetention { cell, .. } => {
                self.index_site(*cell, idx, true);
            }
            FaultKind::CouplingInversion { agg_cell, victim_cell, .. }
            | FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. }
            | FaultKind::CouplingState { agg_cell, victim_cell, .. } => {
                self.index_site(*agg_cell, idx, false);
                self.index_site(*victim_cell, idx, true);
            }
            FaultKind::DecoderNoAccess { addr } => {
                self.decoder.insert(*addr, DecoderMap::None);
            }
            FaultKind::DecoderExtraCell { addr, extra_cell } => {
                self.decoder.insert(*addr, DecoderMap::Cells(vec![*addr, *extra_cell]));
            }
            FaultKind::DecoderShadow { addr, instead_cell } => {
                self.decoder.insert(*addr, DecoderMap::Cells(vec![*instead_cell]));
            }
            FaultKind::Npsf { victim_cell, neighbors, .. } => {
                self.index_site(*victim_cell, idx, true);
                for &(c, _, _) in neighbors {
                    self.index_site(c, idx, false);
                }
            }
        }
        self.faults.push(fault);
        Ok(())
    }

    /// Removes every fault while retaining the allocated per-cell index
    /// buckets, so a pooled [`crate::Ram`] can be recycled across campaign
    /// trials without reallocating its fault indexes: only the buckets
    /// previous inserts touched are emptied (O(#faults), not O(cells)),
    /// and the steady-state inject path pushes into already-sized buffers.
    pub fn clear(&mut self) {
        self.faults.clear();
        for &cell in &self.touched {
            self.by_victim[cell].clear();
            self.by_aggressor[cell].clear();
        }
        self.touched.clear();
        self.decoder.clear();
    }

    /// Grows the per-cell buckets to cover `cell`, then records the fault
    /// index in the chosen index (`victim` or aggressor).
    fn index_site(&mut self, cell: usize, idx: usize, victim: bool) {
        if self.by_victim.len() <= cell {
            self.by_victim.resize_with(cell + 1, Vec::new);
            self.by_aggressor.resize_with(cell + 1, Vec::new);
        }
        let bucket = if victim { &mut self.by_victim[cell] } else { &mut self.by_aggressor[cell] };
        bucket.push(idx);
        self.touched.push(cell);
    }

    /// Decoder mapping for an address (`Cells(vec![addr])` when fault-free).
    pub fn map_addr(&self, addr: usize) -> DecoderMap {
        match self.decoder.get(&addr) {
            Some(m) => m.clone(),
            None => DecoderMap::Cells(vec![addr]),
        }
    }

    /// The decoder override for `addr`, if some decoder fault remapped it.
    /// `None` means the address decodes normally — unlike
    /// [`FaultBank::map_addr`] this never allocates, which keeps the
    /// fault-free access path of [`crate::Ram`] allocation-free.
    pub fn decoder_override(&self, addr: usize) -> Option<&DecoderMap> {
        if self.decoder.is_empty() {
            None
        } else {
            self.decoder.get(&addr)
        }
    }

    /// Fault indices with victim site in `cell`.
    pub fn victims_in(&self, cell: usize) -> &[usize] {
        self.by_victim.get(cell).map_or(&[], Vec::as_slice)
    }

    /// Fault indices with an aggressor/neighbour in `cell`.
    pub fn aggressors_in(&self, cell: usize) -> &[usize] {
        self.by_aggressor.get(cell).map_or(&[], Vec::as_slice)
    }

    /// The fault at a given index.
    pub fn fault(&self, idx: usize) -> &FaultKind {
        &self.faults[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::wom(8, 4).unwrap()
    }

    #[test]
    fn validation_catches_bad_sites() {
        let g = geom();
        assert!(FaultKind::StuckAt { cell: 8, bit: 0, value: 0 }.validate(&g).is_err());
        assert!(FaultKind::StuckAt { cell: 0, bit: 4, value: 0 }.validate(&g).is_err());
        assert!(FaultKind::StuckAt { cell: 7, bit: 3, value: 1 }.validate(&g).is_ok());
        assert!(matches!(
            FaultKind::CouplingInversion {
                agg_cell: 1,
                agg_bit: 2,
                victim_cell: 1,
                victim_bit: 2,
                trigger: CouplingTrigger::Rise
            }
            .validate(&g),
            Err(RamError::SelfCoupling { .. })
        ));
        // Intra-word coupling between different bits of one cell is legal.
        assert!(FaultKind::CouplingInversion {
            agg_cell: 1,
            agg_bit: 2,
            victim_cell: 1,
            victim_bit: 3,
            trigger: CouplingTrigger::Rise
        }
        .validate(&g)
        .is_ok());
    }

    #[test]
    fn bank_indexes_victims_and_aggressors() {
        let g = geom();
        let mut b = FaultBank::new();
        b.add(&g, FaultKind::StuckAt { cell: 3, bit: 0, value: 1 }).unwrap();
        b.add(
            &g,
            FaultKind::CouplingIdempotent {
                agg_cell: 1,
                agg_bit: 0,
                victim_cell: 5,
                victim_bit: 2,
                trigger: CouplingTrigger::Fall,
                force: 1,
            },
        )
        .unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.victims_in(3), &[0]);
        assert_eq!(b.victims_in(5), &[1]);
        assert_eq!(b.aggressors_in(1), &[1]);
        assert!(b.victims_in(0).is_empty());
    }

    #[test]
    fn decoder_mapping() {
        let g = geom();
        let mut b = FaultBank::new();
        b.add(&g, FaultKind::DecoderNoAccess { addr: 2 }).unwrap();
        b.add(&g, FaultKind::DecoderExtraCell { addr: 3, extra_cell: 6 }).unwrap();
        b.add(&g, FaultKind::DecoderShadow { addr: 4, instead_cell: 0 }).unwrap();
        assert_eq!(b.map_addr(2), DecoderMap::None);
        assert_eq!(b.map_addr(3), DecoderMap::Cells(vec![3, 6]));
        assert_eq!(b.map_addr(4), DecoderMap::Cells(vec![0]));
        assert_eq!(b.map_addr(5), DecoderMap::Cells(vec![5]));
    }

    #[test]
    fn mnemonics_cover_all_kinds() {
        let cases = vec![
            (FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, "SAF"),
            (FaultKind::Transition { cell: 0, bit: 0, rising: true }, "TF"),
            (FaultKind::StuckOpen { cell: 0 }, "SOF"),
            (FaultKind::ReadDestructive { cell: 0, bit: 0 }, "RDF"),
            (FaultKind::DeceptiveRead { cell: 0, bit: 0 }, "DRDF"),
            (FaultKind::IncorrectRead { cell: 0, bit: 0 }, "IRF"),
            (FaultKind::WriteDisturb { cell: 0, bit: 0 }, "WDF"),
            (FaultKind::DecoderNoAccess { addr: 0 }, "AF"),
            (FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 10 }, "DRF"),
        ];
        for (k, m) in cases {
            assert_eq!(k.mnemonic(), m);
        }
    }

    #[test]
    fn display_is_compact() {
        let f = FaultKind::StuckAt { cell: 3, bit: 1, value: 0 };
        assert_eq!(f.to_string(), "SA0@3.1");
        let c = FaultKind::CouplingState {
            agg_cell: 1,
            agg_bit: 0,
            agg_state: 1,
            victim_cell: 2,
            victim_bit: 0,
            force: 0,
        };
        assert_eq!(c.to_string(), "CFst⟨1;0⟩ 1.0→2.0");
    }

    #[test]
    fn npsf_validation() {
        let g = geom();
        let ok = FaultKind::Npsf {
            victim_cell: 4,
            victim_bit: 0,
            neighbors: vec![(3, 0, 1), (5, 0, 0)],
            force: 1,
        };
        assert!(ok.validate(&g).is_ok());
        let self_ref =
            FaultKind::Npsf { victim_cell: 4, victim_bit: 0, neighbors: vec![(4, 0, 1)], force: 1 };
        assert!(matches!(self_ref.validate(&g), Err(RamError::SelfCoupling { .. })));
    }
}
