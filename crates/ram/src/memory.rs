//! The simulated RAM device.
//!
//! [`Ram`] combines storage, a [`FaultBank`], an address decoder (which
//! decoder faults can remap), per-port sense amplifiers (whose latching
//! behaviour realises stuck-open faults) and [`AccessStats`].
//!
//! Single-port access uses [`Ram::read`] / [`Ram::write`] (one cycle each).
//! Multi-port access uses [`Ram::cycle`], which issues up to one operation
//! per port *simultaneously*: all reads observe the pre-cycle state
//! (read-before-write), then writes commit in port order. This is the
//! mechanism by which the paper's dual-port π-test achieves `2n` cycles
//! instead of `3n`.

use crate::fault::{CouplingTrigger, DecoderMap, FaultBank, FaultKind};
use crate::{AccessStats, Geometry, RamError, SplitMix64};

/// Maximum number of ports (the paper discusses up to quad-port devices).
pub const MAX_PORTS: usize = 4;

/// Behaviour of the bitline when a decoder fault selects zero or several
/// cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadWired {
    /// Wired-OR: multi-select returns the OR of the cells; no-select reads 0.
    #[default]
    Or,
    /// Wired-AND: multi-select returns the AND; no-select reads all-ones.
    And,
}

/// One port's operation within a [`Ram::cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortOp {
    /// The port does nothing this cycle.
    Idle,
    /// Read the cell at `addr`.
    Read {
        /// Address to read.
        addr: usize,
    },
    /// Write `data` to the cell at `addr`.
    Write {
        /// Address to write.
        addr: usize,
        /// Data word (must fit the cell width).
        data: u64,
    },
}

/// Minimal single-port view of a memory, the interface test algorithms
/// program against.
pub trait MemoryDevice {
    /// Array geometry.
    fn geometry(&self) -> Geometry;
    /// Reads the word at `addr` (port 0).
    fn read(&mut self, addr: usize) -> u64;
    /// Writes the word at `addr` (port 0).
    fn write(&mut self, addr: usize, data: u64);
    /// Access counters so far.
    fn stats(&self) -> AccessStats;
}

/// A simulated (possibly faulty, possibly multi-port) RAM.
///
/// # Example
///
/// ```
/// use prt_ram::{Geometry, PortOp, Ram};
///
/// let mut ram = Ram::with_ports(Geometry::wom(16, 4)?, 2)?;
/// ram.write(0, 0xA);
/// ram.write(1, 0x5);
/// // Dual-port: read both cells in ONE cycle.
/// let r = ram.cycle(&[PortOp::Read { addr: 0 }, PortOp::Read { addr: 1 }])?;
/// assert_eq!(r, vec![Some(0xA), Some(0x5)]);
/// assert_eq!(ram.stats().cycles, 3); // two writes + one dual read
/// # Ok::<(), prt_ram::RamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ram {
    geom: Geometry,
    ports: usize,
    wired: ReadWired,
    store: Vec<u64>,
    bank: FaultBank,
    last_write: Vec<u64>,
    sense: [u64; MAX_PORTS],
    stats: AccessStats,
    /// Device operation counter (drives data-retention decay).
    time: u64,
    /// Reusable buffer of victim-fault indices for the current access, so
    /// the faulty-access path performs no per-operation allocation.
    scratch_victims: Vec<usize>,
    /// Reusable buffer of pending bit actions (`None` = invert,
    /// `Some(v)` = force to `v`) fired by CFin/CFid coupling triggers.
    scratch_actions: Vec<(usize, u32, Option<u8>)>,
    /// Reusable buffer of pending forced-bit writes staged by CFst/NPSF
    /// enforcement (always a concrete value — kept separate from
    /// `scratch_actions` so the force-only paths stay force-only by type).
    scratch_forces: Vec<(usize, u32, u8)>,
    /// Reusable buffer of mapped write-target cells used by the multi-port
    /// write-write conflict check in [`Ram::cycle_ref`].
    scratch_write_targets: Vec<usize>,
    /// Reusable per-port read-result buffer returned by [`Ram::cycle_ref`],
    /// so steady-state multi-port campaigns allocate nothing per cycle.
    scratch_results: Vec<Option<u64>>,
}

impl Ram {
    /// Creates a fault-free single-port memory, zero-initialised.
    pub fn new(geom: Geometry) -> Ram {
        Ram::with_ports(geom, 1).expect("1 port is always valid")
    }

    /// Creates a fault-free `ports`-port memory.
    ///
    /// # Errors
    ///
    /// [`RamError::TooManyPortOps`] if `ports` is 0 or exceeds
    /// [`MAX_PORTS`].
    pub fn with_ports(geom: Geometry, ports: usize) -> Result<Ram, RamError> {
        if ports == 0 || ports > MAX_PORTS {
            return Err(RamError::TooManyPortOps { submitted: ports, ports: MAX_PORTS });
        }
        Ok(Ram {
            geom,
            ports,
            wired: ReadWired::default(),
            store: vec![0; geom.cells()],
            bank: FaultBank::new(),
            last_write: vec![0; geom.cells()],
            sense: [0; MAX_PORTS],
            stats: AccessStats::default(),
            time: 0,
            scratch_victims: Vec::new(),
            scratch_actions: Vec::new(),
            scratch_forces: Vec::new(),
            scratch_write_targets: Vec::new(),
            scratch_results: Vec::new(),
        })
    }

    /// Resets the device state in place to a just-constructed memory whose
    /// every cell holds `background`: storage, retention timestamps, sense
    /// amplifiers, access counters and the operation clock. Injected faults
    /// are untouched (use [`Ram::eject_faults`] to drop them) and the
    /// [`ReadWired`] convention is preserved.
    ///
    /// Together with [`Ram::eject_faults`] this lets fault-simulation
    /// campaigns keep one `Ram` per worker and reuse it for millions of
    /// trials with **zero steady-state heap allocation** — the storage and
    /// index buffers are recycled rather than reallocated. A
    /// `reset_to(0)`-then-inject sequence is observationally identical to a
    /// freshly constructed memory (property-tested in
    /// `tests/proptests.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `background` exceeds the cell width.
    pub fn reset_to(&mut self, background: u64) {
        assert!(self.geom.check_data(background).is_ok(), "data wider than cells");
        self.store.fill(background);
        self.last_write.fill(0);
        self.sense = [0; MAX_PORTS];
        self.stats.reset();
        self.time = 0;
    }

    /// Removes every injected fault in place, retaining the fault bank's
    /// allocated index capacity (see [`FaultBank::clear`]). The storage is
    /// untouched — pair with [`Ram::reset_to`] when recycling the device
    /// for a new trial.
    pub fn eject_faults(&mut self) {
        self.bank.clear();
    }

    /// Selects the bitline wiring convention used for decoder faults.
    pub fn set_wired(&mut self, wired: ReadWired) {
        self.wired = wired;
    }

    /// Array geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Access counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the access counters (storage and faults untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The injected faults.
    pub fn fault_bank(&self) -> &FaultBank {
        &self.bank
    }

    /// Injects a fault.
    ///
    /// # Errors
    ///
    /// Propagates site validation errors from [`FaultKind::validate`].
    pub fn inject(&mut self, fault: FaultKind) -> Result<(), RamError> {
        self.bank.add(&self.geom, fault)
    }

    /// Raw storage inspection, bypassing all fault semantics and counters.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn peek(&self, cell: usize) -> u64 {
        self.store[cell]
    }

    /// Raw storage mutation, bypassing all fault semantics and counters.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range or `data` exceeds the cell width.
    pub fn poke(&mut self, cell: usize, data: u64) {
        assert!(self.geom.check_data(data).is_ok(), "data wider than cells");
        self.store[cell] = data;
    }

    /// Fills every cell with `value` (raw, no fault semantics, no counters).
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds the cell width.
    pub fn fill(&mut self, value: u64) {
        assert!(self.geom.check_data(value).is_ok(), "data wider than cells");
        self.store.fill(value);
    }

    /// Fills storage with deterministic pseudo-random words (raw).
    pub fn randomize(&mut self, rng: &mut SplitMix64) {
        let mask = self.geom.data_mask();
        for w in &mut self.store {
            *w = rng.next_u64() & mask;
        }
    }

    /// Reads the word at `addr` through port 0, costing one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> u64 {
        self.geom.check_addr(addr).expect("address in range");
        self.stats.cycles += 1;
        self.read_port(0, addr)
    }

    /// Writes the word at `addr` through port 0, costing one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` exceeds the cell width.
    pub fn write(&mut self, addr: usize, data: u64) {
        self.geom.check_addr(addr).expect("address in range");
        self.geom.check_data(data).expect("data fits cell width");
        self.stats.cycles += 1;
        self.write_port(0, addr, data);
    }

    /// Issues one multi-port cycle: `ops[p]` executes on port `p`, all
    /// simultaneously. Reads observe the pre-cycle state; writes commit
    /// after every read, in port order. Returns the read results per port
    /// (`None` for `Idle`/`Write` ports).
    ///
    /// # Errors
    ///
    /// * [`RamError::TooManyPortOps`] if more ops than ports are given.
    /// * [`RamError::AddressOutOfRange`] / [`RamError::DataOutOfRange`] for
    ///   invalid operands.
    /// * [`RamError::WriteWriteConflict`] when two writes target the same
    ///   cell (after decoder mapping).
    pub fn cycle(&mut self, ops: &[PortOp]) -> Result<Vec<Option<u64>>, RamError> {
        self.cycle_ref(ops).map(<[Option<u64>]>::to_vec)
    }

    /// [`Ram::cycle`] without the per-cycle result allocation: the read
    /// results are returned as a borrow of an internal scratch buffer that
    /// is recycled on the next call. The conflict-detection work list is
    /// likewise a persistent scratch, so the steady-state multi-port path
    /// performs **zero heap allocation per cycle** — this is the access
    /// path the compiled-program interpreter ([`crate::prog`]) drives.
    ///
    /// Copy any values you need out of the returned slice before issuing
    /// the next operation.
    ///
    /// # Errors
    ///
    /// As [`Ram::cycle`].
    pub fn cycle_ref(&mut self, ops: &[PortOp]) -> Result<&[Option<u64>], RamError> {
        if ops.len() > self.ports {
            return Err(RamError::TooManyPortOps { submitted: ops.len(), ports: self.ports });
        }
        // Validate.
        for op in ops {
            match *op {
                PortOp::Idle => {}
                PortOp::Read { addr } => self.geom.check_addr(addr)?,
                PortOp::Write { addr, data } => {
                    self.geom.check_addr(addr)?;
                    self.geom.check_data(data)?;
                }
            }
        }
        // Write-write conflict detection on mapped cells, staged in the
        // persistent scratch (taken out so the bank can stay borrowed).
        let mut write_targets = std::mem::take(&mut self.scratch_write_targets);
        write_targets.clear();
        let mut conflict: Option<usize> = None;
        'detect: for op in ops {
            if let PortOp::Write { addr, .. } = *op {
                let mut claim = |c: usize| -> bool {
                    if write_targets.contains(&c) {
                        return false;
                    }
                    write_targets.push(c);
                    true
                };
                match self.bank.decoder_override(addr) {
                    None => {
                        if !claim(addr) {
                            conflict = Some(addr);
                            break 'detect;
                        }
                    }
                    Some(DecoderMap::None) => {}
                    Some(DecoderMap::Cells(cells)) => {
                        for &c in cells {
                            if !claim(c) {
                                conflict = Some(c);
                                break 'detect;
                            }
                        }
                    }
                }
            }
        }
        self.scratch_write_targets = write_targets;
        if let Some(cell) = conflict {
            return Err(RamError::WriteWriteConflict { cell });
        }
        // Reads first (read-before-write), port order as tiebreak.
        let mut results = std::mem::take(&mut self.scratch_results);
        results.clear();
        results.resize(ops.len(), None);
        for (p, op) in ops.iter().enumerate() {
            if let PortOp::Read { addr } = *op {
                results[p] = Some(self.read_port(p, addr));
            }
        }
        self.scratch_results = results;
        for (p, op) in ops.iter().enumerate() {
            if let PortOp::Write { addr, data } = *op {
                self.write_port(p, addr, data);
            }
        }
        self.stats.cycles += 1;
        Ok(&self.scratch_results)
    }

    // ------------------------------------------------------------------
    // Internal access paths (fault semantics).
    // ------------------------------------------------------------------

    fn read_port(&mut self, port: usize, addr: usize) -> u64 {
        self.stats.reads += 1;
        self.time += 1;
        // Fast path: no decoder fault remaps this address, so the access
        // targets exactly its own cell — no `DecoderMap` is materialised
        // (the map clone below only happens for decoder-faulted addresses).
        let value = match self.bank.decoder_override(addr).cloned() {
            None => self.read_cell(port, addr),
            Some(DecoderMap::None) => match self.wired {
                ReadWired::Or => 0,
                ReadWired::And => self.geom.data_mask(),
            },
            Some(DecoderMap::Cells(cells)) => {
                let mut acc: Option<u64> = None;
                for c in cells {
                    let v = self.read_cell(port, c);
                    acc = Some(match (acc, self.wired) {
                        (None, _) => v,
                        (Some(a), ReadWired::Or) => a | v,
                        (Some(a), ReadWired::And) => a & v,
                    });
                }
                acc.unwrap_or(0)
            }
        };
        self.sense[port] = value;
        value
    }

    fn write_port(&mut self, port: usize, addr: usize, data: u64) {
        let _ = port;
        self.stats.writes += 1;
        self.time += 1;
        match self.bank.decoder_override(addr).cloned() {
            None => self.write_cell(addr, data),
            Some(DecoderMap::None) => {} // write lost
            Some(DecoderMap::Cells(cells)) => {
                for c in cells {
                    self.write_cell(c, data);
                }
            }
        }
    }

    /// Read effects for one physical cell. Order: SOF → DRF decay → CFst /
    /// NPSF enforcement → SA enforcement → RDF/DRDF flips → IRF inversion.
    fn read_cell(&mut self, port: usize, cell: usize) -> u64 {
        if self.bank.is_empty() {
            return self.store[cell];
        }
        // Snapshot the victim indices into the reusable scratch buffer (the
        // bank cannot stay borrowed across the mutating enforcement calls,
        // and allocating a fresh Vec per access would dominate campaigns).
        let mut victim_faults = std::mem::take(&mut self.scratch_victims);
        victim_faults.clear();
        victim_faults.extend_from_slice(self.bank.victims_in(cell));
        let returned = 'body: {
            // Stuck-open: sense amplifier retains its previous value.
            for &i in &victim_faults {
                if matches!(self.bank.fault(i), FaultKind::StuckOpen { .. }) {
                    break 'body self.sense[port];
                }
            }
            // Data retention decay.
            for &i in &victim_faults {
                if let FaultKind::DataRetention { bit, decays_to, after, .. } = *self.bank.fault(i)
                {
                    if self.time.saturating_sub(self.last_write[cell]) > after {
                        self.force_bit(cell, bit, decays_to);
                    }
                }
            }
            self.enforce_state_on_victim(cell);
            self.enforce_npsf_on_victim(cell);
            self.store[cell] = self.enforce_sa(cell, self.store[cell]);
            let stored = self.store[cell];
            let mut flips_store = 0u64;
            let mut returned = stored;
            for &i in &victim_faults {
                match *self.bank.fault(i) {
                    FaultKind::ReadDestructive { bit, .. } => {
                        flips_store |= 1 << bit;
                        returned ^= 1 << bit; // returns the new, wrong value
                    }
                    FaultKind::DeceptiveRead { bit, .. } => {
                        flips_store |= 1 << bit; // returns the old, correct value
                    }
                    FaultKind::IncorrectRead { bit, .. } => {
                        returned ^= 1 << bit; // store unchanged
                    }
                    _ => {}
                }
            }
            if flips_store != 0 {
                self.store[cell] = self.enforce_sa(cell, stored ^ flips_store);
            }
            returned
        };
        self.scratch_victims = victim_faults;
        returned
    }

    /// Write effects for one physical cell. Order: SOF → TF blocking → WDF
    /// → SA → store → coupling triggers → CFst/NPSF enforcement.
    fn write_cell(&mut self, cell: usize, data: u64) {
        if self.bank.is_empty() {
            self.store[cell] = data;
            return;
        }
        let mut victim_faults = std::mem::take(&mut self.scratch_victims);
        victim_faults.clear();
        victim_faults.extend_from_slice(self.bank.victims_in(cell));
        'body: {
            for &i in &victim_faults {
                if matches!(self.bank.fault(i), FaultKind::StuckOpen { .. }) {
                    break 'body; // write lost
                }
            }
            let old = self.store[cell];
            let mut new = data;
            for &i in &victim_faults {
                match *self.bank.fault(i) {
                    FaultKind::Transition { bit, rising, .. } => {
                        let ob = (old >> bit) & 1;
                        let nb = (new >> bit) & 1;
                        let blocked = if rising { ob == 0 && nb == 1 } else { ob == 1 && nb == 0 };
                        if blocked {
                            new = (new & !(1 << bit)) | (ob << bit);
                        }
                    }
                    FaultKind::WriteDisturb { bit, .. } if (old >> bit) & 1 == (new >> bit) & 1 => {
                        new ^= 1 << bit;
                    }
                    _ => {}
                }
            }
            new = self.enforce_sa(cell, new);
            self.store[cell] = new;
            self.last_write[cell] = self.time;
            // Coupling triggers on the bits that actually flipped.
            let rising = !old & new;
            let falling = old & !new;
            if rising != 0 || falling != 0 {
                self.fire_couplings(cell, rising, falling);
            }
            self.enforce_state_from_aggressor(cell);
            self.enforce_state_on_victim(cell);
            self.enforce_npsf_from_neighbor(cell);
        }
        self.scratch_victims = victim_faults;
    }

    /// Applies CFin/CFid triggered by transitions in `cell`. One level deep:
    /// fault-induced victim flips do not re-trigger further couplings
    /// (unlinked-fault assumption, the same one March proofs use).
    fn fire_couplings(&mut self, cell: usize, rising: u64, falling: u64) {
        // (cell, bit, None=flip / Some(v)=force), staged in the reusable
        // action buffer so the aggressor path allocates nothing.
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        for &i in self.bank.aggressors_in(cell) {
            match *self.bank.fault(i) {
                FaultKind::CouplingInversion {
                    agg_cell,
                    agg_bit,
                    victim_cell,
                    victim_bit,
                    trigger,
                } if agg_cell == cell => {
                    let fired = match trigger {
                        CouplingTrigger::Rise => (rising >> agg_bit) & 1 == 1,
                        CouplingTrigger::Fall => (falling >> agg_bit) & 1 == 1,
                    };
                    if fired {
                        actions.push((victim_cell, victim_bit, None));
                    }
                }
                FaultKind::CouplingIdempotent {
                    agg_cell,
                    agg_bit,
                    victim_cell,
                    victim_bit,
                    trigger,
                    force,
                } if agg_cell == cell => {
                    let fired = match trigger {
                        CouplingTrigger::Rise => (rising >> agg_bit) & 1 == 1,
                        CouplingTrigger::Fall => (falling >> agg_bit) & 1 == 1,
                    };
                    if fired {
                        actions.push((victim_cell, victim_bit, Some(force)));
                    }
                }
                _ => {}
            }
        }
        for &(vc, vb, act) in &actions {
            match act {
                None => {
                    let v = (self.store[vc] >> vb) & 1;
                    self.force_bit(vc, vb, (v ^ 1) as u8);
                }
                Some(f) => self.force_bit(vc, vb, f),
            }
        }
        self.scratch_actions = actions;
    }

    /// CFst where `cell` is the aggressor: enforce on current state.
    fn enforce_state_from_aggressor(&mut self, cell: usize) {
        let mut forces = std::mem::take(&mut self.scratch_forces);
        forces.clear();
        for &i in self.bank.aggressors_in(cell) {
            if let FaultKind::CouplingState {
                agg_cell,
                agg_bit,
                agg_state,
                victim_cell,
                victim_bit,
                force,
            } = *self.bank.fault(i)
            {
                if agg_cell == cell && ((self.store[cell] >> agg_bit) & 1) as u8 == agg_state {
                    forces.push((victim_cell, victim_bit, force));
                }
            }
        }
        for &(vc, vb, f) in &forces {
            self.force_bit(vc, vb, f);
        }
        self.scratch_forces = forces;
    }

    /// CFst where `cell` is the victim: re-enforce if the aggressor
    /// currently holds the trigger state.
    fn enforce_state_on_victim(&mut self, cell: usize) {
        let mut forces = std::mem::take(&mut self.scratch_forces);
        forces.clear();
        for &i in self.bank.victims_in(cell) {
            if let FaultKind::CouplingState {
                agg_cell,
                agg_bit,
                agg_state,
                victim_cell,
                victim_bit,
                force,
            } = *self.bank.fault(i)
            {
                if victim_cell == cell && ((self.store[agg_cell] >> agg_bit) & 1) as u8 == agg_state
                {
                    forces.push((victim_cell, victim_bit, force));
                }
            }
        }
        for &(vc, vb, f) in &forces {
            self.force_bit(vc, vb, f);
        }
        self.scratch_forces = forces;
    }

    /// NPSF where `cell` is one of the neighbours.
    fn enforce_npsf_from_neighbor(&mut self, cell: usize) {
        let mut forces = std::mem::take(&mut self.scratch_forces);
        forces.clear();
        for &i in self.bank.aggressors_in(cell) {
            if let FaultKind::Npsf { victim_cell, victim_bit, neighbors, force } =
                self.bank.fault(i)
            {
                if neighbors.iter().all(|&(c, b, v)| ((self.store[c] >> b) & 1) as u8 == v) {
                    forces.push((*victim_cell, *victim_bit, *force));
                }
            }
        }
        for &(vc, vb, f) in &forces {
            self.force_bit(vc, vb, f);
        }
        self.scratch_forces = forces;
    }

    /// NPSF where `cell` is the victim (checked at read).
    fn enforce_npsf_on_victim(&mut self, cell: usize) {
        let mut forces = std::mem::take(&mut self.scratch_forces);
        forces.clear();
        for &i in self.bank.victims_in(cell) {
            if let FaultKind::Npsf { victim_cell, victim_bit, neighbors, force } =
                self.bank.fault(i)
            {
                if *victim_cell == cell
                    && neighbors.iter().all(|&(c, b, v)| ((self.store[c] >> b) & 1) as u8 == v)
                {
                    forces.push((*victim_cell, *victim_bit, *force));
                }
            }
        }
        for &(vc, vb, f) in &forces {
            self.force_bit(vc, vb, f);
        }
        self.scratch_forces = forces;
    }

    /// Forces one stored bit, respecting any stuck-at fault on the same
    /// site (a hard defect dominates a disturbance).
    fn force_bit(&mut self, cell: usize, bit: u32, value: u8) {
        let v = self.store[cell];
        let forced = (v & !(1 << bit)) | ((value as u64 & 1) << bit);
        self.store[cell] = self.enforce_sa(cell, forced);
    }

    /// Applies stuck-at masks of `cell` to a value.
    fn enforce_sa(&self, cell: usize, value: u64) -> u64 {
        let mut v = value;
        for &i in self.bank.victims_in(cell) {
            if let FaultKind::StuckAt { bit, value: sv, .. } = *self.bank.fault(i) {
                v = (v & !(1 << bit)) | ((sv as u64 & 1) << bit);
            }
        }
        v
    }
}

impl MemoryDevice for Ram {
    fn geometry(&self) -> Geometry {
        self.geom
    }
    fn read(&mut self, addr: usize) -> u64 {
        Ram::read(self, addr)
    }
    fn write(&mut self, addr: usize, data: u64) {
        Ram::write(self, addr, data)
    }
    fn stats(&self) -> AccessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bom(n: usize) -> Ram {
        Ram::new(Geometry::bom(n))
    }

    #[test]
    fn fault_free_read_write_roundtrip() {
        let mut r = Ram::new(Geometry::wom(8, 4).unwrap());
        for a in 0..8 {
            r.write(a, (a as u64 * 3) & 0xF);
        }
        for a in 0..8 {
            assert_eq!(r.read(a), (a as u64 * 3) & 0xF);
        }
        assert_eq!(r.stats().ops(), 16);
        assert_eq!(r.stats().cycles, 16);
    }

    #[test]
    #[should_panic(expected = "address in range")]
    fn out_of_range_read_panics() {
        bom(4).read(4);
    }

    #[test]
    #[should_panic(expected = "data fits cell width")]
    fn oversized_write_panics() {
        bom(4).write(0, 2);
    }

    #[test]
    fn stuck_at_zero_and_one() {
        let mut r = bom(4);
        r.inject(FaultKind::StuckAt { cell: 1, bit: 0, value: 0 }).unwrap();
        r.inject(FaultKind::StuckAt { cell: 2, bit: 0, value: 1 }).unwrap();
        r.write(1, 1);
        r.write(2, 0);
        assert_eq!(r.read(1), 0);
        assert_eq!(r.read(2), 1);
    }

    #[test]
    fn transition_fault_blocks_one_direction() {
        let mut r = bom(2);
        r.inject(FaultKind::Transition { cell: 0, bit: 0, rising: true }).unwrap();
        r.write(0, 1); // blocked: cell starts at 0
        assert_eq!(r.read(0), 0);
        r.poke(0, 1); // put a 1 in by force
        r.write(0, 0); // falling is fine
        assert_eq!(r.read(0), 0);
        r.write(0, 1); // blocked again
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn falling_transition_fault() {
        let mut r = bom(2);
        r.inject(FaultKind::Transition { cell: 0, bit: 0, rising: false }).unwrap();
        r.write(0, 1);
        assert_eq!(r.read(0), 1);
        r.write(0, 0); // blocked
        assert_eq!(r.read(0), 1);
    }

    #[test]
    fn coupling_inversion_fires_on_rise_only() {
        let mut r = bom(4);
        r.inject(FaultKind::CouplingInversion {
            agg_cell: 0,
            agg_bit: 0,
            victim_cell: 2,
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
        })
        .unwrap();
        r.write(2, 1);
        r.write(0, 1); // rise → victim inverts 1→0
        assert_eq!(r.read(2), 0);
        r.write(0, 0); // fall → nothing
        assert_eq!(r.read(2), 0);
        r.write(0, 1); // rise again → 0→1
        assert_eq!(r.read(2), 1);
        // Writing the same value is no transition → no trigger.
        r.write(0, 1);
        assert_eq!(r.read(2), 1);
    }

    #[test]
    fn coupling_idempotent_forces_value() {
        let mut r = bom(4);
        r.inject(FaultKind::CouplingIdempotent {
            agg_cell: 1,
            agg_bit: 0,
            victim_cell: 3,
            victim_bit: 0,
            trigger: CouplingTrigger::Fall,
            force: 1,
        })
        .unwrap();
        r.write(1, 1);
        assert_eq!(r.read(3), 0);
        r.write(1, 0); // fall → victim forced to 1
        assert_eq!(r.read(3), 1);
        r.write(3, 0);
        r.write(1, 0); // no transition (already 0) → no force
        assert_eq!(r.read(3), 0);
    }

    #[test]
    fn state_coupling_enforced_on_victim_write_and_read() {
        let mut r = bom(4);
        r.inject(FaultKind::CouplingState {
            agg_cell: 0,
            agg_bit: 0,
            agg_state: 0,
            victim_cell: 2,
            victim_bit: 0,
            force: 0,
        })
        .unwrap();
        // Aggressor holds 0 → victim cannot keep a 1.
        r.write(2, 1);
        assert_eq!(r.read(2), 0);
        // Free the victim by putting the aggressor in state 1.
        r.write(0, 1);
        r.write(2, 1);
        assert_eq!(r.read(2), 1);
        // Aggressor back to 0 → victim forced again.
        r.write(0, 0);
        assert_eq!(r.read(2), 0);
    }

    #[test]
    fn intra_word_coupling() {
        let mut r = Ram::new(Geometry::wom(4, 4).unwrap());
        r.inject(FaultKind::CouplingInversion {
            agg_cell: 1,
            agg_bit: 0,
            victim_cell: 1,
            victim_bit: 3,
            trigger: CouplingTrigger::Rise,
        })
        .unwrap();
        r.write(1, 0b0001); // bit0 rises → bit3 inverts
        assert_eq!(r.read(1), 0b1001);
    }

    #[test]
    fn decoder_no_access() {
        let mut r = bom(4);
        r.inject(FaultKind::DecoderNoAccess { addr: 2 }).unwrap();
        r.write(2, 1); // lost
        assert_eq!(r.read(2), 0); // wired-OR default
        r.set_wired(ReadWired::And);
        assert_eq!(r.read(2), 1); // wired-AND default (precharged high)
        assert_eq!(r.peek(2), 0); // the physical cell was never touched
    }

    #[test]
    fn decoder_extra_cell_wired_or() {
        let mut r = bom(8);
        r.inject(FaultKind::DecoderExtraCell { addr: 1, extra_cell: 5 }).unwrap();
        r.write(1, 1); // writes cells 1 and 5
        assert_eq!(r.peek(5), 1);
        r.poke(1, 0);
        assert_eq!(r.read(1), 1); // OR(0, 1)
        r.set_wired(ReadWired::And);
        assert_eq!(r.read(1), 0); // AND(0, 1)
    }

    #[test]
    fn decoder_shadow() {
        let mut r = bom(8);
        r.inject(FaultKind::DecoderShadow { addr: 3, instead_cell: 6 }).unwrap();
        r.write(3, 1);
        assert_eq!(r.peek(3), 0); // own cell untouched
        assert_eq!(r.peek(6), 1);
        assert_eq!(r.read(3), 1); // reads the shadow cell
        r.write(6, 0);
        assert_eq!(r.read(3), 0); // aliased through both addresses
    }

    #[test]
    fn stuck_open_latches_sense_amp() {
        let mut r = bom(4);
        r.inject(FaultKind::StuckOpen { cell: 2 }).unwrap();
        r.write(1, 1);
        r.write(2, 1); // lost
        assert_eq!(r.peek(2), 0);
        let _ = r.read(1); // sense amp now holds 1
        assert_eq!(r.read(2), 1); // SOF returns latched value, not the cell
        r.write(0, 0);
        let _ = r.read(0); // sense amp now holds 0
        assert_eq!(r.read(2), 0);
    }

    #[test]
    fn read_destructive_flips_and_lies() {
        let mut r = bom(2);
        r.inject(FaultKind::ReadDestructive { cell: 0, bit: 0 }).unwrap();
        r.write(0, 1);
        assert_eq!(r.read(0), 0); // flipped and returned wrong
        assert_eq!(r.peek(0), 0);
        assert_eq!(r.read(0), 1); // flips again
    }

    #[test]
    fn deceptive_read_returns_truth_but_flips() {
        let mut r = bom(2);
        r.inject(FaultKind::DeceptiveRead { cell: 0, bit: 0 }).unwrap();
        r.write(0, 1);
        assert_eq!(r.read(0), 1); // correct value returned…
        assert_eq!(r.peek(0), 0); // …but the cell flipped underneath
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn incorrect_read_is_output_only() {
        let mut r = bom(2);
        r.inject(FaultKind::IncorrectRead { cell: 0, bit: 0 }).unwrap();
        r.write(0, 1);
        assert_eq!(r.read(0), 0);
        assert_eq!(r.peek(0), 1); // storage intact
        assert_eq!(r.read(0), 0); // consistently wrong
    }

    #[test]
    fn write_disturb_on_non_transition_write() {
        let mut r = bom(2);
        r.inject(FaultKind::WriteDisturb { cell: 0, bit: 0 }).unwrap();
        r.write(0, 1); // 0→1 transition: fine
        assert_eq!(r.peek(0), 1);
        r.write(0, 1); // non-transition write → disturbed to 0
        assert_eq!(r.peek(0), 0);
    }

    #[test]
    fn data_retention_decay() {
        let mut r = bom(4);
        r.inject(FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 3 }).unwrap();
        r.write(0, 1);
        assert_eq!(r.read(0), 1); // within retention
                                  // Three unrelated operations pass the retention window.
        r.write(1, 1);
        r.write(2, 1);
        r.write(3, 1);
        assert_eq!(r.read(0), 0); // decayed
    }

    #[test]
    fn npsf_forces_on_pattern() {
        let mut r = bom(5);
        r.inject(FaultKind::Npsf {
            victim_cell: 2,
            victim_bit: 0,
            neighbors: vec![(1, 0, 1), (3, 0, 1)],
            force: 1,
        })
        .unwrap();
        r.write(2, 0);
        r.write(1, 1);
        assert_eq!(r.read(2), 0); // pattern incomplete
        r.write(3, 1); // completes the pattern
        assert_eq!(r.read(2), 1);
    }

    #[test]
    fn dual_port_simultaneous_reads() {
        let mut r = Ram::with_ports(Geometry::bom(8), 2).unwrap();
        r.write(3, 1);
        let res = r.cycle(&[PortOp::Read { addr: 3 }, PortOp::Read { addr: 4 }]).unwrap();
        assert_eq!(res, vec![Some(1), Some(0)]);
        assert_eq!(r.stats().reads, 2);
        assert_eq!(r.stats().cycles, 2); // one write + one dual-read cycle
    }

    #[test]
    fn read_before_write_in_same_cycle() {
        let mut r = Ram::with_ports(Geometry::bom(4), 2).unwrap();
        r.write(0, 1);
        let res = r.cycle(&[PortOp::Read { addr: 0 }, PortOp::Write { addr: 0, data: 0 }]).unwrap();
        assert_eq!(res[0], Some(1)); // read saw the pre-cycle value
        assert_eq!(r.peek(0), 0); // write committed afterwards
    }

    #[test]
    fn write_write_conflict_rejected() {
        let mut r = Ram::with_ports(Geometry::bom(4), 2).unwrap();
        let err = r
            .cycle(&[PortOp::Write { addr: 1, data: 1 }, PortOp::Write { addr: 1, data: 0 }])
            .unwrap_err();
        assert!(matches!(err, RamError::WriteWriteConflict { cell: 1 }));
    }

    #[test]
    fn too_many_port_ops_rejected() {
        let mut r = Ram::new(Geometry::bom(4));
        let err = r.cycle(&[PortOp::Idle, PortOp::Idle]).unwrap_err();
        assert!(matches!(err, RamError::TooManyPortOps { .. }));
    }

    #[test]
    fn idle_cycle_still_costs_a_cycle() {
        let mut r = Ram::with_ports(Geometry::bom(4), 2).unwrap();
        r.cycle(&[PortOp::Idle, PortOp::Idle]).unwrap();
        assert_eq!(r.stats().cycles, 1);
        assert_eq!(r.stats().ops(), 0);
    }

    #[test]
    fn randomize_is_deterministic() {
        let mut a = Ram::new(Geometry::wom(16, 8).unwrap());
        let mut b = Ram::new(Geometry::wom(16, 8).unwrap());
        a.randomize(&mut SplitMix64::new(1));
        b.randomize(&mut SplitMix64::new(1));
        for c in 0..16 {
            assert_eq!(a.peek(c), b.peek(c));
            assert!(a.peek(c) <= 0xFF);
        }
    }

    #[test]
    fn stats_reset() {
        let mut r = bom(2);
        r.write(0, 1);
        r.reset_stats();
        assert_eq!(r.stats(), AccessStats::default());
    }

    #[test]
    fn reset_to_restores_pristine_state() {
        let mut r = Ram::new(Geometry::wom(8, 4).unwrap());
        for a in 0..8 {
            r.write(a, 0xF);
        }
        let _ = r.read(3); // sense amp now holds 0xF
        r.reset_to(0);
        assert_eq!(r.stats(), AccessStats::default());
        for a in 0..8 {
            assert_eq!(r.peek(a), 0, "cell {a}");
        }
        // Sense amplifiers were cleared: a stuck-open read returns 0, as
        // it would on a fresh device after the same op sequence.
        r.inject(FaultKind::StuckOpen { cell: 2 }).unwrap();
        assert_eq!(r.read(2), 0);
    }

    #[test]
    fn reset_to_fills_background_and_keeps_faults() {
        let mut r = Ram::new(Geometry::wom(4, 4).unwrap());
        r.inject(FaultKind::StuckAt { cell: 1, bit: 0, value: 0 }).unwrap();
        r.reset_to(0xA);
        for a in 0..4 {
            assert_eq!(r.peek(a), 0xA, "raw fill bypasses fault semantics");
        }
        // The fault survived the reset.
        r.write(1, 0xB);
        assert_eq!(r.read(1), 0xA, "stuck-at bit 0 still enforced");
    }

    #[test]
    #[should_panic(expected = "data wider than cells")]
    fn reset_to_rejects_wide_background() {
        bom(4).reset_to(2);
    }

    #[test]
    fn reset_to_restarts_retention_clock() {
        let mut r = bom(4);
        r.inject(FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 3 }).unwrap();
        // Age the device past the retention window…
        for _ in 0..2 {
            for a in 0..4 {
                r.write(a, 1);
            }
        }
        // …then recycle it: the write below must sit within a fresh window.
        r.reset_to(0);
        r.write(0, 1);
        assert_eq!(r.read(0), 1, "retention window must restart at reset");
        r.write(1, 1);
        r.write(2, 1);
        r.write(3, 1);
        assert_eq!(r.read(0), 0, "and decay again once exceeded");
    }

    #[test]
    fn eject_faults_heals_the_device() {
        let mut r = bom(4);
        r.inject(FaultKind::StuckAt { cell: 1, bit: 0, value: 0 }).unwrap();
        r.inject(FaultKind::DecoderNoAccess { addr: 2 }).unwrap();
        r.write(1, 1);
        assert_eq!(r.read(1), 0);
        r.eject_faults();
        assert!(r.fault_bank().is_empty());
        r.write(1, 1);
        r.write(2, 1);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(2), 1, "decoder override must be gone");
    }

    #[test]
    fn recycled_ram_matches_fresh_ram() {
        // The pooling contract in miniature: eject + reset ≡ fresh.
        let geom = Geometry::bom(8);
        let mut pooled = Ram::new(geom);
        pooled.inject(FaultKind::StuckOpen { cell: 3 }).unwrap();
        for a in 0..8 {
            pooled.write(a, a as u64 & 1);
            let _ = pooled.read(a);
        }
        pooled.eject_faults();
        pooled.reset_to(0);

        let mut fresh = Ram::new(geom);
        let fault = FaultKind::CouplingIdempotent {
            agg_cell: 0,
            agg_bit: 0,
            victim_cell: 5,
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
            force: 1,
        };
        pooled.inject(fault.clone()).unwrap();
        fresh.inject(fault).unwrap();
        for step in [(5usize, 0u64), (0, 1), (5, 0), (0, 0), (0, 1)] {
            pooled.write(step.0, step.1);
            fresh.write(step.0, step.1);
        }
        for c in 0..8 {
            assert_eq!(pooled.read(c), fresh.read(c), "cell {c}");
            assert_eq!(pooled.peek(c), fresh.peek(c), "cell {c}");
        }
        assert_eq!(pooled.stats(), fresh.stats());
    }

    #[test]
    fn stuck_at_dominates_coupling() {
        let mut r = bom(4);
        r.inject(FaultKind::StuckAt { cell: 2, bit: 0, value: 0 }).unwrap();
        r.inject(FaultKind::CouplingIdempotent {
            agg_cell: 0,
            agg_bit: 0,
            victim_cell: 2,
            victim_bit: 0,
            trigger: CouplingTrigger::Rise,
            force: 1,
        })
        .unwrap();
        r.write(0, 1); // tries to force victim to 1, but SA0 wins
        assert_eq!(r.read(2), 0);
    }
}
