//! Lane-sliced batch fault simulation: 64 fault trials per device.
//!
//! A fault-simulation campaign runs the *same data-independent operation
//! sequence* against many single-fault memories; the only thing that
//! differs between trials is which fault is present. [`LaneRam`] exploits
//! that by packing **64 faulty machines into the bit lanes of one `u64`**:
//! storage is bit-sliced into `width` *bit-planes* per cell, where bit `k`
//! of the plane word is the value that bit holds in trial lane `k`. Every
//! read, write, transition check and coupling trigger then becomes a
//! handful of bitwise word operations that act on all 64 trials at once —
//! the classic bit-parallel multi-fault propagation of hardware fault
//! simulators.
//!
//! [`LaneFaultBank`] injects the *batchable* fault families as per-lane
//! masks: SAF, TF, CFin, CFid, CFst, NPSF and data retention — the
//! overwhelming bulk of every enumerated universe (coupling families grow
//! quadratically with the cell count; the scalar-only families are linear).
//! Decoder faults (which remap whole addresses), stuck-open cells (which
//! latch the sense amplifier) and the read/write-logic families stay on
//! the scalar [`crate::Ram`] path, as do multi-port cycle programs —
//! [`is_lane_batchable`] is the partition predicate campaign engines use.
//!
//! # Exactness
//!
//! Per lane, [`LaneRam`] is **bitwise-exact** against [`crate::Ram`] with
//! the same single fault injected: every enforcement phase of the scalar
//! access path (transition blocking → stuck-at → store → coupling
//! triggers → state-coupling → NPSF on writes; retention decay →
//! state-coupling → NPSF → stuck-at on reads) is reproduced in the same
//! order with the fault's effect masked to its lane. The device clock and
//! per-cell write timestamps are shared across lanes — sound because the
//! driving program issues the identical operation sequence to every lane.
//! The scalar engine remains the differential oracle (property-tested in
//! `tests/batch.rs` and `crates/ram/tests/proptests.rs`).

use crate::fault::{CouplingTrigger, FaultKind};
use crate::{Geometry, RamError};

/// Number of fault-trial lanes one [`LaneRam`] carries (the width of the
/// host word the storage is sliced over).
pub const LANES: usize = 64;

/// `true` when `fault` belongs to a family [`LaneRam`] can express as a
/// per-lane mask. Decoder faults, stuck-open cells and the
/// read/write-logic families (RDF, DRDF, IRF, WDF) must run on the scalar
/// [`crate::Ram`] path.
pub fn is_lane_batchable(fault: &FaultKind) -> bool {
    matches!(
        fault,
        FaultKind::StuckAt { .. }
            | FaultKind::Transition { .. }
            | FaultKind::CouplingInversion { .. }
            | FaultKind::CouplingIdempotent { .. }
            | FaultKind::CouplingState { .. }
            | FaultKind::Npsf { .. }
            | FaultKind::DataRetention { .. }
    )
}

/// An indexed collection of `(fault, lane mask)` pairs, organised exactly
/// like the scalar [`crate::FaultBank`]: per-cell victim/aggressor buckets
/// for O(1) hot-path lookup, recycled allocation-free across campaign
/// batches via [`LaneFaultBank::clear`].
#[derive(Debug, Clone, Default)]
pub struct LaneFaultBank {
    faults: Vec<(FaultKind, u64)>,
    /// Fault indices whose victim site lies in the indexed cell.
    by_victim: Vec<Vec<usize>>,
    /// Fault indices with a coupling/NPSF aggressor or neighbour in the
    /// indexed cell.
    by_aggressor: Vec<Vec<usize>>,
    /// Cells whose buckets may be non-empty (cleared lazily).
    touched: Vec<usize>,
}

impl LaneFaultBank {
    /// Creates an empty bank.
    pub fn new() -> LaneFaultBank {
        LaneFaultBank::default()
    }

    /// `true` when no faults are present.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The injected `(fault, lane mask)` pairs in insertion order.
    pub fn faults(&self) -> &[(FaultKind, u64)] {
        &self.faults
    }

    /// Adds a batchable fault affecting the lanes of `mask`.
    ///
    /// # Errors
    ///
    /// [`RamError::FaultNotBatchable`] for a scalar-only family;
    /// otherwise propagates [`FaultKind::validate`] errors.
    pub fn add(&mut self, geom: &Geometry, fault: FaultKind, mask: u64) -> Result<(), RamError> {
        if !is_lane_batchable(&fault) {
            return Err(RamError::FaultNotBatchable { mnemonic: fault.mnemonic() });
        }
        fault.validate(geom)?;
        let idx = self.faults.len();
        match &fault {
            FaultKind::StuckAt { cell, .. }
            | FaultKind::Transition { cell, .. }
            | FaultKind::DataRetention { cell, .. } => {
                self.index_site(*cell, idx, true);
            }
            FaultKind::CouplingInversion { agg_cell, victim_cell, .. }
            | FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. }
            | FaultKind::CouplingState { agg_cell, victim_cell, .. } => {
                self.index_site(*agg_cell, idx, false);
                self.index_site(*victim_cell, idx, true);
            }
            FaultKind::Npsf { victim_cell, neighbors, .. } => {
                self.index_site(*victim_cell, idx, true);
                for &(c, _, _) in neighbors {
                    self.index_site(c, idx, false);
                }
            }
            _ => unreachable!("is_lane_batchable gated the families above"),
        }
        self.faults.push((fault, mask));
        Ok(())
    }

    /// Removes every fault while retaining the allocated buckets
    /// (O(#faults), allocation-free in the steady state).
    pub fn clear(&mut self) {
        self.faults.clear();
        for &cell in &self.touched {
            self.by_victim[cell].clear();
            self.by_aggressor[cell].clear();
        }
        self.touched.clear();
    }

    fn index_site(&mut self, cell: usize, idx: usize, victim: bool) {
        if self.by_victim.len() <= cell {
            self.by_victim.resize_with(cell + 1, Vec::new);
            self.by_aggressor.resize_with(cell + 1, Vec::new);
        }
        let bucket = if victim { &mut self.by_victim[cell] } else { &mut self.by_aggressor[cell] };
        bucket.push(idx);
        self.touched.push(cell);
    }
}

/// A bit-sliced memory carrying up to [`LANES`] independent single-fault
/// trials: `width` bit-planes per cell, one `u64` of 64 trial lanes per
/// plane.
///
/// # Example
///
/// ```
/// use prt_ram::batch::LaneRam;
/// use prt_ram::{FaultKind, Geometry};
///
/// let mut ram = LaneRam::new(Geometry::bom(8));
/// ram.inject(FaultKind::StuckAt { cell: 3, bit: 0, value: 0 }, 5)?;
/// ram.write_broadcast(3, 1); // every lane writes 1…
/// let planes = ram.read(3);
/// assert_eq!(planes[0], !(1u64 << 5)); // …but lane 5 is stuck at 0
/// # Ok::<(), prt_ram::RamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneRam {
    geom: Geometry,
    /// Bit-plane storage: `store[cell * width + bit]` holds bit `bit` of
    /// `cell` across all 64 lanes.
    store: Vec<u64>,
    /// Per-cell timestamp of the last write (shared by all lanes — the
    /// driving op sequence is identical per lane).
    last_write: Vec<u64>,
    /// Device operation counter (drives data-retention decay).
    time: u64,
    /// Mask of lanes with an injected trial.
    active: u64,
    bank: LaneFaultBank,
    /// Reusable staging planes for the value being written.
    scratch_new: Vec<u64>,
    /// Reusable copy of the pre-write planes.
    scratch_old: Vec<u64>,
    /// Reusable pending bit actions `(cell, bit, None=invert/Some(v),
    /// lanes)` fired by coupling triggers and enforcement phases.
    scratch_actions: Vec<(usize, u32, Option<u8>, u64)>,
}

impl LaneRam {
    /// Creates a fault-free lane memory, zero-initialised.
    pub fn new(geom: Geometry) -> LaneRam {
        let m = geom.width() as usize;
        LaneRam {
            geom,
            store: vec![0; geom.cells() * m],
            last_write: vec![0; geom.cells()],
            time: 0,
            active: 0,
            bank: LaneFaultBank::new(),
            scratch_new: Vec::new(),
            scratch_old: Vec::new(),
            scratch_actions: Vec::new(),
        }
    }

    /// Array geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Mask of lanes holding an injected trial.
    pub fn active_lanes(&self) -> u64 {
        self.active
    }

    /// The injected faults.
    pub fn fault_bank(&self) -> &LaneFaultBank {
        &self.bank
    }

    /// Injects a batchable fault into trial lane `lane`.
    ///
    /// # Errors
    ///
    /// As [`LaneFaultBank::add`].
    ///
    /// # Panics
    ///
    /// Panics when `lane` is not below [`LANES`].
    pub fn inject(&mut self, fault: FaultKind, lane: usize) -> Result<(), RamError> {
        assert!(lane < LANES, "trial lane out of range");
        self.bank.add(&self.geom, fault, 1u64 << lane)?;
        self.active |= 1u64 << lane;
        Ok(())
    }

    /// Removes every injected fault and clears the active-lane mask; the
    /// bucket allocations are retained for the next batch.
    pub fn eject_faults(&mut self) {
        self.bank.clear();
        self.active = 0;
    }

    /// Resets storage (every lane of every cell to `background`), the
    /// retention timestamps and the operation clock — the lane counterpart
    /// of [`crate::Ram::reset_to`]. Injected faults are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `background` exceeds the cell width.
    pub fn reset_to(&mut self, background: u64) {
        assert!(self.geom.check_data(background).is_ok(), "data wider than cells");
        let m = self.geom.width() as usize;
        for (idx, p) in self.store.iter_mut().enumerate() {
            *p = broadcast(background, (idx % m) as u32);
        }
        self.last_write.fill(0);
        self.time = 0;
    }

    /// The word trial lane `lane` holds in `cell` — raw storage
    /// inspection, bypassing fault semantics (the lane counterpart of
    /// [`crate::Ram::peek`]).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn peek_lane(&self, cell: usize, lane: usize) -> u64 {
        assert!(lane < LANES, "trial lane out of range");
        let m = self.geom.width() as usize;
        let mut word = 0u64;
        for bit in 0..m {
            word |= ((self.store[cell * m + bit] >> lane) & 1) << bit;
        }
        word
    }

    /// Reads `addr` on every lane at once, applying fault semantics in the
    /// scalar read order (retention decay → state coupling → NPSF →
    /// stuck-at), and returns the cell's bit-planes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> &[u64] {
        self.geom.check_addr(addr).expect("address in range");
        self.time += 1;
        let m = self.geom.width() as usize;
        if !self.bank.is_empty() {
            // Data-retention decay.
            let mut actions = std::mem::take(&mut self.scratch_actions);
            actions.clear();
            if let Some(bucket) = self.bank.by_victim.get(addr) {
                for &i in bucket {
                    let (f, lanes) = &self.bank.faults[i];
                    if let FaultKind::DataRetention { bit, decays_to, after, .. } = *f {
                        if self.time.saturating_sub(self.last_write[addr]) > after {
                            actions.push((addr, bit, Some(decays_to), *lanes));
                        }
                    }
                }
            }
            self.apply_actions(&actions);
            self.scratch_actions = actions;
            self.enforce_state_on_victim(addr);
            self.enforce_npsf_on_victim(addr);
            self.enforce_sa(addr);
        }
        &self.store[addr * m..addr * m + m]
    }

    /// Writes the same word `data` to `addr` on every lane.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` exceeds the cell width.
    pub fn write_broadcast(&mut self, addr: usize, data: u64) {
        self.geom.check_data(data).expect("data fits cell width");
        let m = self.geom.width() as usize;
        let mut new = std::mem::take(&mut self.scratch_new);
        new.clear();
        for bit in 0..m {
            new.push(broadcast(data, bit as u32));
        }
        self.write_planes_inner(addr, &mut new);
        self.scratch_new = new;
    }

    /// Writes per-lane values to `addr`, given as bit-planes (`planes[j]`
    /// holds bit `j` of the written word across lanes) — the accumulator
    /// write path of the batch interpreter.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `planes` is not exactly one
    /// plane per data bit.
    pub fn write_planes(&mut self, addr: usize, planes: &[u64]) {
        let m = self.geom.width() as usize;
        assert_eq!(planes.len(), m, "one plane per data bit");
        let mut new = std::mem::take(&mut self.scratch_new);
        new.clear();
        new.extend_from_slice(planes);
        self.write_planes_inner(addr, &mut new);
        self.scratch_new = new;
    }

    /// The shared write path: transition blocking → stuck-at → store →
    /// coupling triggers → state coupling → NPSF, each masked per lane —
    /// the scalar write order exactly.
    fn write_planes_inner(&mut self, cell: usize, new: &mut [u64]) {
        self.geom.check_addr(cell).expect("address in range");
        self.time += 1;
        let m = self.geom.width() as usize;
        let base = cell * m;
        if self.bank.is_empty() {
            self.store[base..base + m].copy_from_slice(new);
            return;
        }
        let mut old = std::mem::take(&mut self.scratch_old);
        old.clear();
        old.extend_from_slice(&self.store[base..base + m]);
        // Transition blocking, then stuck-at enforcement on the incoming
        // value — two passes, the scalar write order.
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::Transition { bit, rising, .. } = *f {
                    let b = bit as usize;
                    let blocked = if rising { !old[b] & new[b] } else { old[b] & !new[b] } & lanes;
                    new[b] = (new[b] & !blocked) | (old[b] & blocked);
                }
            }
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::StuckAt { bit, value, .. } = *f {
                    let b = bit as usize;
                    if value & 1 == 1 {
                        new[b] |= lanes;
                    } else {
                        new[b] &= !lanes;
                    }
                }
            }
        }
        self.store[base..base + m].copy_from_slice(new);
        self.last_write[cell] = self.time;
        // Coupling triggers on the lanes whose bits actually flipped.
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_aggressor.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                match *f {
                    FaultKind::CouplingInversion {
                        agg_cell,
                        agg_bit,
                        victim_cell,
                        victim_bit,
                        trigger,
                    } if agg_cell == cell => {
                        let b = agg_bit as usize;
                        let fired = match trigger {
                            CouplingTrigger::Rise => !old[b] & new[b],
                            CouplingTrigger::Fall => old[b] & !new[b],
                        } & lanes;
                        if fired != 0 {
                            actions.push((victim_cell, victim_bit, None, fired));
                        }
                    }
                    FaultKind::CouplingIdempotent {
                        agg_cell,
                        agg_bit,
                        victim_cell,
                        victim_bit,
                        trigger,
                        force,
                    } if agg_cell == cell => {
                        let b = agg_bit as usize;
                        let fired = match trigger {
                            CouplingTrigger::Rise => !old[b] & new[b],
                            CouplingTrigger::Fall => old[b] & !new[b],
                        } & lanes;
                        if fired != 0 {
                            actions.push((victim_cell, victim_bit, Some(force), fired));
                        }
                    }
                    _ => {}
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
        self.scratch_old = old;
        self.enforce_state_from_aggressor(cell);
        self.enforce_state_on_victim(cell);
        self.enforce_npsf_from_neighbor(cell);
    }

    /// Applies staged bit actions: `None` inverts the victim bit on the
    /// masked lanes, `Some(v)` forces it — each followed by stuck-at
    /// enforcement of the victim cell, like the scalar `force_bit`.
    fn apply_actions(&mut self, actions: &[(usize, u32, Option<u8>, u64)]) {
        let m = self.geom.width() as usize;
        for &(vc, vb, act, lanes) in actions {
            let p = &mut self.store[vc * m + vb as usize];
            match act {
                None => *p ^= lanes,
                Some(v) => {
                    if v & 1 == 1 {
                        *p |= lanes;
                    } else {
                        *p &= !lanes;
                    }
                }
            }
            self.enforce_sa(vc);
        }
    }

    /// CFst where `cell` is the aggressor: enforce on the lanes whose
    /// aggressor bit currently holds the trigger state.
    fn enforce_state_from_aggressor(&mut self, cell: usize) {
        let m = self.geom.width() as usize;
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_aggressor.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::CouplingState {
                    agg_cell,
                    agg_bit,
                    agg_state,
                    victim_cell,
                    victim_bit,
                    force,
                } = *f
                {
                    if agg_cell == cell {
                        let plane = self.store[agg_cell * m + agg_bit as usize];
                        let cond = if agg_state & 1 == 1 { plane } else { !plane } & lanes;
                        if cond != 0 {
                            actions.push((victim_cell, victim_bit, Some(force), cond));
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// CFst where `cell` is the victim: re-enforce on the lanes whose
    /// aggressor currently holds the trigger state.
    fn enforce_state_on_victim(&mut self, cell: usize) {
        let m = self.geom.width() as usize;
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::CouplingState {
                    agg_cell,
                    agg_bit,
                    agg_state,
                    victim_cell,
                    victim_bit,
                    force,
                } = *f
                {
                    if victim_cell == cell {
                        let plane = self.store[agg_cell * m + agg_bit as usize];
                        let cond = if agg_state & 1 == 1 { plane } else { !plane } & lanes;
                        if cond != 0 {
                            actions.push((victim_cell, victim_bit, Some(force), cond));
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// NPSF where `cell` is one of the neighbours (checked after writes).
    fn enforce_npsf_from_neighbor(&mut self, cell: usize) {
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_aggressor.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::Npsf { victim_cell, victim_bit, neighbors, force } = f {
                    let cond = self.npsf_condition(neighbors, *lanes);
                    if cond != 0 {
                        actions.push((*victim_cell, *victim_bit, Some(*force), cond));
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// NPSF where `cell` is the victim (checked at reads).
    fn enforce_npsf_on_victim(&mut self, cell: usize) {
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::Npsf { victim_cell, victim_bit, neighbors, force } = f {
                    if *victim_cell == cell {
                        let cond = self.npsf_condition(neighbors, *lanes);
                        if cond != 0 {
                            actions.push((*victim_cell, *victim_bit, Some(*force), cond));
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// The lanes on which every listed neighbour bit holds its listed
    /// value.
    fn npsf_condition(&self, neighbors: &[(usize, u32, u8)], lanes: u64) -> u64 {
        let m = self.geom.width() as usize;
        let mut cond = lanes;
        for &(c, b, v) in neighbors {
            let plane = self.store[c * m + b as usize];
            cond &= if v & 1 == 1 { plane } else { !plane };
        }
        cond
    }

    /// Applies the stuck-at masks of `cell` to its stored planes.
    fn enforce_sa(&mut self, cell: usize) {
        let m = self.geom.width() as usize;
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::StuckAt { bit, value, .. } = *f {
                    let p = &mut self.store[cell * m + bit as usize];
                    if value & 1 == 1 {
                        *p |= lanes;
                    } else {
                        *p &= !lanes;
                    }
                }
            }
        }
    }
}

/// The plane word broadcasting bit `bit` of `word` to all 64 lanes
/// (shared with the batch interpreter in [`crate::prog`]).
#[inline]
pub(crate) fn broadcast(word: u64, bit: u32) -> u64 {
    if (word >> bit) & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ram;

    /// Drives the same op sequence through a scalar single-fault `Ram`
    /// and a `LaneRam` with the fault in `lane`, asserting bitwise-equal
    /// reads and storage at every step.
    fn assert_lane_matches_scalar(
        geom: Geometry,
        fault: FaultKind,
        lane: usize,
        script: &[(bool, usize, u64)], // (is_write, addr, data)
    ) {
        let mut scalar = Ram::new(geom);
        scalar.inject(fault.clone()).unwrap();
        let mut lanes = LaneRam::new(geom);
        lanes.inject(fault.clone(), lane).unwrap();
        for (step, &(is_write, addr, data)) in script.iter().enumerate() {
            if is_write {
                scalar.write(addr, data);
                lanes.write_broadcast(addr, data);
            } else {
                let want = scalar.read(addr);
                let planes = lanes.read(addr);
                let mut got = 0u64;
                for (j, p) in planes.iter().enumerate() {
                    got |= ((p >> lane) & 1) << j;
                }
                assert_eq!(got, want, "{fault} lane {lane} step {step}: read @{addr}");
            }
            for c in 0..geom.cells() {
                assert_eq!(
                    lanes.peek_lane(c, lane),
                    scalar.peek(c),
                    "{fault} lane {lane} step {step}: cell {c}"
                );
            }
        }
    }

    #[test]
    fn stuck_at_matches_scalar_in_any_lane() {
        for lane in [0usize, 17, 63] {
            for value in [0u8, 1] {
                assert_lane_matches_scalar(
                    Geometry::bom(4),
                    FaultKind::StuckAt { cell: 1, bit: 0, value },
                    lane,
                    &[(true, 1, 1), (false, 1, 0), (true, 1, 0), (false, 1, 0)],
                );
            }
        }
    }

    #[test]
    fn transition_blocking_matches_scalar() {
        for rising in [true, false] {
            assert_lane_matches_scalar(
                Geometry::bom(2),
                FaultKind::Transition { cell: 0, bit: 0, rising },
                9,
                &[(true, 0, 1), (false, 0, 0), (true, 0, 0), (false, 0, 0), (true, 0, 1)],
            );
        }
    }

    #[test]
    fn couplings_match_scalar() {
        let script: Vec<(bool, usize, u64)> = vec![
            (true, 2, 1),
            (true, 0, 1),
            (false, 2, 0),
            (true, 0, 0),
            (false, 2, 0),
            (true, 0, 1),
            (false, 2, 0),
            (true, 2, 0),
            (false, 2, 0),
        ];
        for trigger in [CouplingTrigger::Rise, CouplingTrigger::Fall] {
            assert_lane_matches_scalar(
                Geometry::bom(4),
                FaultKind::CouplingInversion {
                    agg_cell: 0,
                    agg_bit: 0,
                    victim_cell: 2,
                    victim_bit: 0,
                    trigger,
                },
                31,
                &script,
            );
            for force in [0u8, 1] {
                assert_lane_matches_scalar(
                    Geometry::bom(4),
                    FaultKind::CouplingIdempotent {
                        agg_cell: 0,
                        agg_bit: 0,
                        victim_cell: 2,
                        victim_bit: 0,
                        trigger,
                        force,
                    },
                    31,
                    &script,
                );
            }
        }
        for agg_state in [0u8, 1] {
            for force in [0u8, 1] {
                assert_lane_matches_scalar(
                    Geometry::bom(4),
                    FaultKind::CouplingState {
                        agg_cell: 0,
                        agg_bit: 0,
                        agg_state,
                        victim_cell: 2,
                        victim_bit: 0,
                        force,
                    },
                    62,
                    &script,
                );
            }
        }
    }

    #[test]
    fn intra_word_coupling_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::wom(4, 4).unwrap(),
            FaultKind::CouplingInversion {
                agg_cell: 1,
                agg_bit: 0,
                victim_cell: 1,
                victim_bit: 3,
                trigger: CouplingTrigger::Rise,
            },
            5,
            &[(true, 1, 0b0001), (false, 1, 0), (true, 1, 0b0000), (false, 1, 0)],
        );
    }

    #[test]
    fn retention_decay_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::bom(4),
            FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 3 },
            44,
            &[(true, 0, 1), (false, 0, 0), (true, 1, 1), (true, 2, 1), (true, 3, 1), (false, 0, 0)],
        );
    }

    #[test]
    fn npsf_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::bom(5),
            FaultKind::Npsf {
                victim_cell: 2,
                victim_bit: 0,
                neighbors: vec![(1, 0, 1), (3, 0, 1)],
                force: 1,
            },
            3,
            &[(true, 2, 0), (true, 1, 1), (false, 2, 0), (true, 3, 1), (false, 2, 0)],
        );
    }

    #[test]
    fn lanes_are_isolated() {
        // Two different faults in two lanes: each lane behaves like its
        // own scalar device, the other lane's fault invisible to it.
        let geom = Geometry::bom(4);
        let mut lanes = LaneRam::new(geom);
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 2).unwrap();
        lanes.inject(FaultKind::StuckAt { cell: 1, bit: 0, value: 1 }, 7).unwrap();
        assert_eq!(lanes.active_lanes(), (1 << 2) | (1 << 7));
        lanes.write_broadcast(0, 1);
        lanes.write_broadcast(1, 0);
        let p0 = lanes.read(0)[0];
        assert_eq!((p0 >> 2) & 1, 0, "lane 2 is stuck at 0");
        assert_eq!((p0 >> 7) & 1, 1, "lane 7 sees a healthy cell 0");
        let p1 = lanes.read(1)[0];
        assert_eq!((p1 >> 2) & 1, 0, "lane 2 sees a healthy cell 1");
        assert_eq!((p1 >> 7) & 1, 1, "lane 7 is stuck at 1");
    }

    #[test]
    fn reset_and_eject_recycle_the_device() {
        let geom = Geometry::wom(4, 4).unwrap();
        let mut lanes = LaneRam::new(geom);
        lanes.inject(FaultKind::StuckAt { cell: 1, bit: 2, value: 1 }, 0).unwrap();
        lanes.write_broadcast(1, 0xF);
        lanes.eject_faults();
        lanes.reset_to(0xA);
        assert_eq!(lanes.active_lanes(), 0);
        assert!(lanes.fault_bank().is_empty());
        for c in 0..4 {
            for l in [0usize, 63] {
                assert_eq!(lanes.peek_lane(c, l), 0xA);
            }
        }
        // And the recycled device accepts a fresh batch.
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 63).unwrap();
        lanes.write_broadcast(0, 0xF);
        assert_eq!(lanes.peek_lane(0, 63), 0xE);
    }

    #[test]
    fn unbatchable_families_are_rejected() {
        let mut lanes = LaneRam::new(Geometry::bom(4));
        for fault in [
            FaultKind::DecoderNoAccess { addr: 0 },
            FaultKind::StuckOpen { cell: 1 },
            FaultKind::ReadDestructive { cell: 0, bit: 0 },
            FaultKind::DeceptiveRead { cell: 0, bit: 0 },
            FaultKind::IncorrectRead { cell: 0, bit: 0 },
            FaultKind::WriteDisturb { cell: 0, bit: 0 },
        ] {
            assert!(!is_lane_batchable(&fault));
            assert!(matches!(lanes.inject(fault, 0), Err(RamError::FaultNotBatchable { .. })));
        }
        assert_eq!(lanes.active_lanes(), 0, "rejected faults must not claim a lane");
    }

    #[test]
    fn validation_errors_propagate() {
        let mut lanes = LaneRam::new(Geometry::bom(4));
        assert!(lanes.inject(FaultKind::StuckAt { cell: 9, bit: 0, value: 0 }, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "trial lane out of range")]
    fn lane_bound_is_enforced() {
        let mut lanes = LaneRam::new(Geometry::bom(4));
        let _ = lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, LANES);
    }
}
