//! Lane-sliced batch fault simulation: whole lane *chunks* of fault
//! trials per device.
//!
//! A fault-simulation campaign runs the *same data-independent operation
//! sequence* against many single-fault memories; the only thing that
//! differs between trials is which fault is present. [`LaneRam`] exploits
//! that by packing faulty machines into the bit lanes of a
//! [`LaneChunk`] — `K` host words of 64 lanes each, so one interpreter
//! pass carries `64 * K` trials (64/256/512 for the stock K ∈ {1, 4, 8}).
//! Storage is bit-sliced into `width` *bit-planes* per cell, where lane
//! `k` of the plane chunk is the value that bit holds in trial `k`. Every
//! read, write, transition check and coupling trigger then becomes a
//! handful of bitwise chunk operations that act on all lanes at once —
//! the classic bit-parallel multi-fault propagation of hardware fault
//! simulators, widened to a SIMD-friendly `[u64; K]` that the compiler
//! auto-vectorizes.
//!
//! [`LaneFaultBank`] injects **every fault family** as per-lane state:
//! SAF, TF, CFin, CFid, CFst, NPSF and data retention as per-lane masks
//! applied in the enforcement phases; the read/write-logic families
//! (RDF, DRDF, IRF, WDF) as per-lane flip masks in the read and write
//! phases; stuck-open cells via per-lane, per-port sense-amplifier
//! planes; and address-decoder faults through a bit-sliced decoder model
//! — per-lane address remap masks, the lane analogue of the scalar
//! decoder table. Multi-port cycle programs batch too: [`LaneRam`] pools
//! per-port sense planes and a per-lane write-write conflict engine
//! ([`LaneRam::cycle_conflicts`]), so nothing is left on the scalar
//! [`crate::Ram`] path. Every modelled [`crate::FaultKind`] batches —
//! the exhaustive match in [`LaneFaultBank::add`] is the compile-time
//! proof, and the historical `is_lane_batchable` partition seam is
//! retired: campaigns no longer split a universe into batchable and
//! scalar-remainder halves.
//!
//! # Exactness
//!
//! Per lane, [`LaneRam`] is **bitwise-exact** against [`crate::Ram`] with
//! the same single fault injected: every enforcement phase of the scalar
//! access path (stuck-open write loss → transition blocking →
//! write-disturb → stuck-at → store → coupling triggers → state-coupling
//! → NPSF on writes; stuck-open sense latch → retention decay →
//! state-coupling → NPSF → stuck-at → destructive/deceptive-read flips →
//! incorrect-read inversion on reads) is reproduced in the same order
//! with the fault's effect masked to its lane. Decoder faults remap which
//! *cells* an address touches per lane, so every per-cell side effect is
//! additionally masked to the lanes that actually access the cell — a
//! lane whose decoder fault diverts an access must not observe another
//! lane's read-triggered flips, and retention windows are clocked per
//! fault rather than per cell for the same reason. The device operation
//! clock is shared across lanes — sound because the driving program
//! issues the identical operation sequence to every lane. The scalar
//! engine remains the differential oracle (property-tested in
//! `tests/batch.rs` and `crates/ram/tests/proptests.rs`).
//!
//! # Frozen lanes
//!
//! A multi-port cycle whose writes collide (after per-lane decoder
//! mapping) is a device error on the scalar path: `cycle_ref` rejects the
//! cycle before any side effect and the run aborts, which campaigns map
//! to an escape. The lane engine mirrors that with the **frozen-lane
//! convention**: [`LaneRam::cycle_conflicts`] accumulates the conflicted
//! lanes into [`LaneRam::errored_lanes`], and the batch interpreter stops
//! *counting* those lanes (verdicts, mismatch counts) from that point on.
//! The frozen lanes' storage keeps evolving — masking them out of the
//! access hot paths would cost every operation a chunk AND for state
//! nobody reads: a frozen lane's verdict is final, its observations are
//! substituted by the measurement collector, and lane isolation
//! guarantees its (now don't-care) state never leaks into another lane.

use crate::fault::{CouplingTrigger, FaultKind};
use crate::memory::{ReadWired, MAX_PORTS};
use crate::{Geometry, RamError};
use std::collections::HashMap;

/// Number of fault-trial lanes per chunk *word* (the width of the host
/// word the storage is sliced over). A [`LaneChunk<K>`] carries
/// `K * LANES` lanes — see [`LaneChunk::LANES`] for the per-chunk count.
pub const LANES: usize = 64;

/// A chunk of `K * 64` trial lanes: the lane-mask word of the batch
/// engine, generalised from one `u64` to `[u64; K]` so a single
/// interpreter pass (and a single campaign batch) carries 64, 256 or 512
/// trials. All plane and mask arithmetic goes through the bitwise
/// operator impls below — fixed-size word loops the compiler unrolls and
/// auto-vectorizes.
///
/// Lane `l` lives in bit `l % 64` of word `l / 64`; a `K = 1` chunk is
/// bit-for-bit the legacy `u64` lane mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneChunk<const K: usize>(pub(crate) [u64; K]);

impl<const K: usize> LaneChunk<K> {
    /// Number of trial lanes in this chunk width.
    pub const LANES: usize = 64 * K;

    /// The empty lane mask.
    pub const ZERO: LaneChunk<K> = LaneChunk([0; K]);

    /// The all-lanes mask.
    pub const FULL: LaneChunk<K> = LaneChunk([u64::MAX; K]);

    /// The plane chunk broadcasting bit `bit` of `word` to every lane
    /// (shared with the batch interpreter in [`crate::prog`]).
    #[inline]
    pub fn broadcast(word: u64, bit: u32) -> LaneChunk<K> {
        if (word >> bit) & 1 == 1 {
            Self::FULL
        } else {
            Self::ZERO
        }
    }

    /// The mask selecting exactly trial lane `lane`.
    #[inline]
    pub fn single(lane: usize) -> LaneChunk<K> {
        debug_assert!(lane < Self::LANES, "trial lane out of range");
        let mut c = Self::ZERO;
        c.0[lane / 64] = 1u64 << (lane % 64);
        c
    }

    /// The mask selecting the first `k` lanes (batches fill lanes from 0
    /// upward, so a partial batch's active mask is a prefix).
    #[inline]
    pub fn prefix(k: usize) -> LaneChunk<K> {
        debug_assert!(k <= Self::LANES, "prefix wider than the chunk");
        let mut c = Self::ZERO;
        for (i, w) in c.0.iter_mut().enumerate() {
            let lo = i * 64;
            *w = match k.saturating_sub(lo) {
                0 => 0,
                n if n >= 64 => u64::MAX,
                n => (1u64 << n) - 1,
            };
        }
        c
    }

    /// `true` when lane `lane` is set.
    #[inline]
    pub fn get(&self, lane: usize) -> bool {
        debug_assert!(lane < Self::LANES, "trial lane out of range");
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// `true` when no lane is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; K]
    }

    /// Number of set lanes.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Calls `f` with the index of every set lane, in ascending order.
    #[inline]
    pub fn for_each_lane(&self, mut f: impl FnMut(usize)) {
        for (i, &word) in self.0.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(i * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// The raw lane words (word `i` carries lanes `64 * i ..  64 * i + 64`).
    #[inline]
    pub fn words(&self) -> &[u64; K] {
        &self.0
    }
}

impl<const K: usize> Default for LaneChunk<K> {
    fn default() -> Self {
        Self::ZERO
    }
}

macro_rules! chunk_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl<const K: usize> std::ops::$assign_trait for LaneChunk<K> {
            #[inline]
            fn $assign_method(&mut self, rhs: Self) {
                for i in 0..K {
                    self.0[i] $op rhs.0[i];
                }
            }
        }
        impl<const K: usize> std::ops::$trait for LaneChunk<K> {
            type Output = LaneChunk<K>;
            #[inline]
            fn $method(mut self, rhs: Self) -> LaneChunk<K> {
                use std::ops::$assign_trait;
                self.$assign_method(rhs);
                self
            }
        }
    };
}

chunk_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
chunk_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
chunk_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

impl<const K: usize> std::ops::Not for LaneChunk<K> {
    type Output = LaneChunk<K>;
    #[inline]
    fn not(mut self) -> LaneChunk<K> {
        for w in &mut self.0 {
            *w = !*w;
        }
        self
    }
}

/// The word trial lane `lane` reads off a slice of bit-plane chunks
/// (`planes[j]` holds bit `j` across lanes) — the de-slicing helper the
/// batch interpreter, the measurement collectors and the differential
/// tests share.
#[inline]
pub fn lane_word<const K: usize>(planes: &[LaneChunk<K>], lane: usize) -> u64 {
    let mut word = 0u64;
    for (j, p) in planes.iter().enumerate() {
        word |= (p.get(lane) as u64) << j;
    }
    word
}

/// Per-lane decoder behaviour for one faulty address (the lane analogue
/// of the scalar `DecoderMap`, bit-sliced: each entry carries the lanes it
/// applies to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneDecode {
    /// The address selects no cell on these lanes (AF type A/B).
    None,
    /// The address selects its own cell *plus* this one (AF type C).
    Extra(usize),
    /// The address selects this cell *instead of* its own (AF type D).
    Shadow(usize),
}

/// An indexed collection of `(fault, lane mask)` pairs, organised exactly
/// like the scalar [`crate::FaultBank`]: per-cell victim/aggressor buckets
/// for O(1) hot-path lookup, a per-address lane-decoder table for AF, and
/// Per-cell fault-kind presence bits (victim side): each enforcement
/// pass of the read/write hot paths is gated on its bit, so a cell
/// carrying only (say) stuck-at faults skips the transition, disturb,
/// retention, coupling and NPSF scans entirely instead of matching every
/// bucket entry against every pass.
const VK_SA: u16 = 1 << 0;
const VK_TF: u16 = 1 << 1;
const VK_WD: u16 = 1 << 2;
const VK_DR: u16 = 1 << 3;
const VK_SOF: u16 = 1 << 4;
const VK_RDLOGIC: u16 = 1 << 5;
const VK_CFST: u16 = 1 << 6;
const VK_NPSF: u16 = 1 << 7;

/// Aggressor-side presence bits: coupling triggers (inversion /
/// idempotent), state-coupling aggressors and NPSF neighbours.
const AK_CF_TRIG: u8 = 1 << 0;
const AK_CFST: u8 = 1 << 1;
const AK_NPSF: u8 = 1 << 2;

/// per-fault retention clocks — recycled allocation-free across campaign
/// batches via [`LaneFaultBank::clear`].
#[derive(Debug, Clone)]
pub struct LaneFaultBank<const K: usize = 1> {
    faults: Vec<(FaultKind, LaneChunk<K>)>,
    /// Per-fault `(lo, hi)` range of the chunk words its lane mask
    /// occupies. Campaign injection puts each fault in one lane, so the
    /// span is almost always a single word — the enforcement hot paths
    /// loop over it instead of the whole chunk, keeping per-fault cost
    /// O(1) in `K`. (Bucket population grows with the lane count, so
    /// whole-chunk per-fault ops would make enforcement cost per *lane*
    /// grow linearly with `K` — measured as the dominant term at K = 8.)
    spans: Vec<(u32, u32)>,
    /// Per-fault clock of the victim cell's last write *on the fault's
    /// lanes* (drives data-retention decay; meaningful for DRF entries).
    /// Per fault, not per cell: decoder remaps make lanes write different
    /// cells, so a shared per-cell timestamp would leak across lanes.
    stamps: Vec<u64>,
    /// Fault indices whose victim site lies in the indexed cell.
    by_victim: Vec<Vec<usize>>,
    /// Fault indices with a coupling/NPSF aggressor or neighbour in the
    /// indexed cell.
    by_aggressor: Vec<Vec<usize>>,
    /// Per-cell `VK_*` presence bits for the victim bucket.
    victim_kinds: Vec<u16>,
    /// Per-cell `AK_*` presence bits for the aggressor bucket.
    agg_kinds: Vec<u8>,
    /// Cells whose buckets may be non-empty (cleared lazily).
    touched: Vec<usize>,
    /// Lane-decoder overrides by address (rare — kept as a map, like the
    /// scalar bank's): each address lists `(remap, lanes)` entries.
    decoder: HashMap<usize, Vec<(LaneDecode, LaneChunk<K>)>>,
    /// Number of stuck-open faults (gates the sense-plane maintenance).
    sof_count: usize,
    /// Number of read-logic faults (RDF/DRDF/IRF) — with none injected a
    /// read returns the stored planes directly, no staging copy.
    readlogic_count: usize,
}

impl<const K: usize> Default for LaneFaultBank<K> {
    fn default() -> Self {
        LaneFaultBank {
            faults: Vec::new(),
            spans: Vec::new(),
            stamps: Vec::new(),
            by_victim: Vec::new(),
            by_aggressor: Vec::new(),
            victim_kinds: Vec::new(),
            agg_kinds: Vec::new(),
            touched: Vec::new(),
            decoder: HashMap::new(),
            sof_count: 0,
            readlogic_count: 0,
        }
    }
}

impl<const K: usize> LaneFaultBank<K> {
    /// Creates an empty bank.
    pub fn new() -> LaneFaultBank<K> {
        LaneFaultBank::default()
    }

    /// `true` when no faults are present.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The injected `(fault, lane mask)` pairs in insertion order.
    pub fn faults(&self) -> &[(FaultKind, LaneChunk<K>)] {
        &self.faults
    }

    /// Adds a fault affecting the lanes of `mask`. Every modelled family
    /// batches — the exhaustive match below is the compile-time proof; a
    /// future [`FaultKind`] variant fails to build here until it gets a
    /// lane model.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultKind::validate`] errors.
    pub fn add(
        &mut self,
        geom: &Geometry,
        fault: FaultKind,
        mask: LaneChunk<K>,
    ) -> Result<(), RamError> {
        fault.validate(geom)?;
        let idx = self.faults.len();
        match &fault {
            FaultKind::StuckAt { cell, .. }
            | FaultKind::Transition { cell, .. }
            | FaultKind::DataRetention { cell, .. }
            | FaultKind::StuckOpen { cell }
            | FaultKind::ReadDestructive { cell, .. }
            | FaultKind::DeceptiveRead { cell, .. }
            | FaultKind::IncorrectRead { cell, .. }
            | FaultKind::WriteDisturb { cell, .. } => {
                self.index_site(*cell, idx, true);
                let vk = match fault {
                    FaultKind::StuckAt { .. } => VK_SA,
                    FaultKind::Transition { .. } => VK_TF,
                    FaultKind::DataRetention { .. } => VK_DR,
                    FaultKind::WriteDisturb { .. } => VK_WD,
                    FaultKind::StuckOpen { .. } => {
                        self.sof_count += 1;
                        VK_SOF
                    }
                    _ => {
                        self.readlogic_count += 1;
                        VK_RDLOGIC
                    }
                };
                self.victim_kinds[*cell] |= vk;
            }
            FaultKind::CouplingInversion { agg_cell, victim_cell, .. }
            | FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. } => {
                self.index_site(*agg_cell, idx, false);
                self.index_site(*victim_cell, idx, true);
                self.agg_kinds[*agg_cell] |= AK_CF_TRIG;
            }
            FaultKind::CouplingState { agg_cell, victim_cell, .. } => {
                self.index_site(*agg_cell, idx, false);
                self.index_site(*victim_cell, idx, true);
                self.agg_kinds[*agg_cell] |= AK_CFST;
                self.victim_kinds[*victim_cell] |= VK_CFST;
            }
            FaultKind::Npsf { victim_cell, neighbors, .. } => {
                self.index_site(*victim_cell, idx, true);
                self.victim_kinds[*victim_cell] |= VK_NPSF;
                for &(c, _, _) in neighbors {
                    self.index_site(c, idx, false);
                    self.agg_kinds[c] |= AK_NPSF;
                }
            }
            FaultKind::DecoderNoAccess { addr } => {
                self.decoder.entry(*addr).or_default().push((LaneDecode::None, mask));
            }
            FaultKind::DecoderExtraCell { addr, extra_cell } => {
                self.decoder.entry(*addr).or_default().push((LaneDecode::Extra(*extra_cell), mask));
            }
            FaultKind::DecoderShadow { addr, instead_cell } => {
                self.decoder
                    .entry(*addr)
                    .or_default()
                    .push((LaneDecode::Shadow(*instead_cell), mask));
            }
        }
        self.faults.push((fault, mask));
        let lo = mask.0.iter().position(|&w| w != 0).unwrap_or(0);
        let hi = mask.0.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        self.spans.push((lo as u32, hi as u32));
        self.stamps.push(0);
        Ok(())
    }

    /// The chunk-word range fault `i`'s lane mask occupies (a single word
    /// for the usual one-lane-per-fault injection). Outside the span the
    /// mask words are zero, so masked enforcement ops are identities —
    /// skipping them is exact.
    #[inline]
    fn span(&self, i: usize) -> std::ops::Range<usize> {
        let (lo, hi) = self.spans[i];
        lo as usize..hi as usize
    }

    /// Removes every fault while retaining the allocated buckets
    /// (O(#faults), allocation-free in the steady state).
    pub fn clear(&mut self) {
        self.faults.clear();
        self.spans.clear();
        self.stamps.clear();
        for &cell in &self.touched {
            self.by_victim[cell].clear();
            self.by_aggressor[cell].clear();
            self.victim_kinds[cell] = 0;
            self.agg_kinds[cell] = 0;
        }
        self.touched.clear();
        self.decoder.clear();
        self.sof_count = 0;
        self.readlogic_count = 0;
    }

    /// Restarts every retention clock (device reset; the faults stay).
    fn reset_clocks(&mut self) {
        self.stamps.fill(0);
    }

    /// The lane-decoder entries for `addr`, if any decoder fault remapped
    /// it (never allocates; empty-map fast path).
    fn decoder_at(&self, addr: usize) -> Option<&[(LaneDecode, LaneChunk<K>)]> {
        if self.decoder.is_empty() {
            None
        } else {
            self.decoder.get(&addr).map(Vec::as_slice)
        }
    }

    fn index_site(&mut self, cell: usize, idx: usize, victim: bool) {
        if self.by_victim.len() <= cell {
            self.by_victim.resize_with(cell + 1, Vec::new);
            self.by_aggressor.resize_with(cell + 1, Vec::new);
            self.victim_kinds.resize(cell + 1, 0);
            self.agg_kinds.resize(cell + 1, 0);
        }
        let bucket = if victim { &mut self.by_victim[cell] } else { &mut self.by_aggressor[cell] };
        bucket.push(idx);
        self.touched.push(cell);
    }

    /// `VK_*` presence bits for `cell`'s victim bucket (0 out of range).
    #[inline]
    fn vkinds(&self, cell: usize) -> u16 {
        self.victim_kinds.get(cell).copied().unwrap_or(0)
    }

    /// `AK_*` presence bits for `cell`'s aggressor bucket (0 out of
    /// range).
    #[inline]
    fn akinds(&self, cell: usize) -> u8 {
        self.agg_kinds.get(cell).copied().unwrap_or(0)
    }
}

/// A bit-sliced memory carrying one [`LaneChunk`] of independent
/// single-fault trials (`64 * K` lanes): `width` bit-planes per cell, one
/// chunk of lanes per plane, plus per-lane, per-port sense-amplifier
/// planes (for stuck-open cells under multi-port cycles) and a per-lane
/// address decoder (for decoder faults). `LaneRam` (no parameter) is the
/// legacy 64-lane width.
///
/// # Example
///
/// ```
/// use prt_ram::batch::{LaneChunk, LaneRam};
/// use prt_ram::{FaultKind, Geometry};
///
/// let mut ram: LaneRam = LaneRam::new(Geometry::bom(8));
/// ram.inject(FaultKind::StuckAt { cell: 3, bit: 0, value: 0 }, 5)?;
/// ram.write_broadcast(3, 1); // every lane writes 1…
/// let planes = ram.read(3);
/// assert_eq!(planes[0], !LaneChunk::single(5)); // …but lane 5 is stuck at 0
/// # Ok::<(), prt_ram::RamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneRam<const K: usize = 1> {
    geom: Geometry,
    wired: ReadWired,
    ports: usize,
    /// Bit-plane storage: `store[cell * width + bit]` holds bit `bit` of
    /// `cell` across all lanes.
    store: Vec<LaneChunk<K>>,
    /// Per-lane, per-port sense-amplifier planes (`sense[port * width ..
    /// (port + 1) * width]`): the value each lane's last read on that port
    /// returned — what a stuck-open read latches onto.
    sense: Vec<LaneChunk<K>>,
    /// Device operation counter (drives data-retention decay).
    time: u64,
    /// Mask of lanes with an injected trial.
    active: LaneChunk<K>,
    /// Mask of lanes frozen by a device error (write-write conflict in a
    /// multi-port cycle) — the lane analogue of the scalar run aborting.
    errored: LaneChunk<K>,
    bank: LaneFaultBank<K>,
    /// Reusable staging planes for the value being written (the write
    /// operand, shared by every cell the decoder selects).
    scratch_new: Vec<LaneChunk<K>>,
    /// Reusable per-cell working copy of the staged value (transition
    /// blocking and stuck-at enforcement mutate it per target cell).
    scratch_val: Vec<LaneChunk<K>>,
    /// Reusable copy of the pre-write planes.
    scratch_old: Vec<LaneChunk<K>>,
    /// Reusable buffer for the planes a read returns.
    scratch_read: Vec<LaneChunk<K>>,
    /// Reusable buffer for one cell's read contribution (decoder
    /// multi-select combines several into `scratch_read`).
    scratch_cell: Vec<LaneChunk<K>>,
    /// Reusable copy of an address's lane-decoder entries (the bank must
    /// not stay borrowed across the mutating per-cell accesses).
    scratch_decode: Vec<(LaneDecode, LaneChunk<K>)>,
    /// Reusable pending bit actions `(cell, bit, None=invert/Some(v),
    /// chunk word, lane-mask word)` fired by coupling triggers and
    /// enforcement phases. Word-granular (not whole-chunk) so a fired
    /// fault costs O(1) in `K` — its lanes live in one chunk word.
    scratch_actions: Vec<(usize, u32, Option<u8>, usize, u64)>,
    /// Reusable per-bit store-flip masks for the read-logic faults
    /// (sized to the cell width — a `MAX_WIDTH` stack array would zero
    /// `32 · K` words on every read, which dominates at wide `K`).
    scratch_flips: Vec<LaneChunk<K>>,
    /// Reusable write-claim list for the cycle conflict engine.
    scratch_claims: Vec<(usize, LaneChunk<K>)>,
}

impl<const K: usize> LaneRam<K> {
    /// Number of trial lanes this chunk width carries per pass.
    pub const LANES: usize = LaneChunk::<K>::LANES;

    /// Creates a fault-free single-port lane memory, zero-initialised.
    pub fn new(geom: Geometry) -> LaneRam<K> {
        LaneRam::with_ports(geom, 1).expect("one port is always valid")
    }

    /// Creates a fault-free `ports`-port lane memory, zero-initialised —
    /// the lane counterpart of [`crate::Ram::with_ports`]. Multi-port
    /// cycle programs require a device pooled with at least as many
    /// ports as the program's widest cycle.
    ///
    /// # Errors
    ///
    /// [`RamError::TooManyPortOps`] if `ports` is 0 or exceeds
    /// [`MAX_PORTS`].
    pub fn with_ports(geom: Geometry, ports: usize) -> Result<LaneRam<K>, RamError> {
        if ports == 0 || ports > MAX_PORTS {
            return Err(RamError::TooManyPortOps { submitted: ports, ports: MAX_PORTS });
        }
        let m = geom.width() as usize;
        Ok(LaneRam {
            geom,
            wired: ReadWired::default(),
            ports,
            store: vec![LaneChunk::ZERO; geom.cells() * m],
            sense: vec![LaneChunk::ZERO; ports * m],
            time: 0,
            active: LaneChunk::ZERO,
            errored: LaneChunk::ZERO,
            bank: LaneFaultBank::new(),
            scratch_new: Vec::new(),
            scratch_val: Vec::new(),
            scratch_old: Vec::new(),
            scratch_read: Vec::new(),
            scratch_cell: Vec::new(),
            scratch_decode: Vec::new(),
            scratch_actions: Vec::new(),
            scratch_claims: Vec::new(),
            scratch_flips: Vec::new(),
        })
    }

    /// Array geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Number of ports the device was pooled with.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of trial lanes per pass (`64 * K` — the runtime accessor
    /// for code that is not generic over the chunk width).
    pub fn lanes(&self) -> usize {
        Self::LANES
    }

    /// Selects the bitline wiring convention decoder faults observe (the
    /// lane counterpart of [`crate::Ram::set_wired`]; default wired-OR).
    pub fn set_wired(&mut self, wired: ReadWired) {
        self.wired = wired;
    }

    /// Mask of lanes holding an injected trial.
    pub fn active_lanes(&self) -> LaneChunk<K> {
        self.active
    }

    /// Mask of lanes frozen by a device error — so far, only write-write
    /// conflicts in multi-port cycles ([`LaneRam::cycle_conflicts`]). On
    /// the scalar path these trials abort with
    /// [`RamError::WriteWriteConflict`] and campaigns score them as
    /// escapes; batched measurement substitutes the escape observation
    /// for exactly these lanes. Cleared by [`LaneRam::reset_to`] and
    /// [`LaneRam::eject_faults`].
    pub fn errored_lanes(&self) -> LaneChunk<K> {
        self.errored
    }

    /// The injected faults.
    pub fn fault_bank(&self) -> &LaneFaultBank<K> {
        &self.bank
    }

    /// Injects a batchable fault into trial lane `lane`.
    ///
    /// Inject **before** driving operations (the campaign contract:
    /// eject → reset → inject → run). Sense-amplifier latching is only
    /// maintained while a stuck-open fault is present, so a `StuckOpen`
    /// injected after reads were already issued observes a latch those
    /// reads did not update — the scalar device latches on every read
    /// unconditionally, and the bitwise-exactness guarantee holds for
    /// runs whose faults were in place from the first operation.
    ///
    /// # Errors
    ///
    /// As [`LaneFaultBank::add`].
    ///
    /// # Panics
    ///
    /// Panics when `lane` is not below [`LaneRam::LANES`].
    pub fn inject(&mut self, fault: FaultKind, lane: usize) -> Result<(), RamError> {
        assert!(lane < Self::LANES, "trial lane out of range");
        let mask = LaneChunk::single(lane);
        self.bank.add(&self.geom, fault, mask)?;
        self.active |= mask;
        Ok(())
    }

    /// Removes every injected fault and clears the active-lane and
    /// frozen-lane masks; the bucket allocations are retained for the
    /// next batch.
    pub fn eject_faults(&mut self) {
        self.bank.clear();
        self.active = LaneChunk::ZERO;
        self.errored = LaneChunk::ZERO;
    }

    /// Resets storage (every lane of every cell to `background`), the
    /// sense amplifiers, the retention clocks, the frozen-lane mask and
    /// the operation clock — the lane counterpart of
    /// [`crate::Ram::reset_to`]. Injected faults are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `background` exceeds the cell width.
    pub fn reset_to(&mut self, background: u64) {
        assert!(self.geom.check_data(background).is_ok(), "data wider than cells");
        let m = self.geom.width() as usize;
        for (idx, p) in self.store.iter_mut().enumerate() {
            *p = LaneChunk::broadcast(background, (idx % m) as u32);
        }
        self.sense.fill(LaneChunk::ZERO);
        self.bank.reset_clocks();
        self.errored = LaneChunk::ZERO;
        self.time = 0;
    }

    /// The word trial lane `lane` holds in `cell` — raw storage
    /// inspection, bypassing fault semantics (the lane counterpart of
    /// [`crate::Ram::peek`]).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn peek_lane(&self, cell: usize, lane: usize) -> u64 {
        assert!(lane < Self::LANES, "trial lane out of range");
        let m = self.geom.width() as usize;
        lane_word(&self.store[cell * m..cell * m + m], lane)
    }

    /// The device operation clock (reads + writes issued so far). The
    /// slicing layer records it on entry and re-syncs it across skipped
    /// op ranges so data-retention windows observe full-pass time.
    pub(crate) fn op_time(&self) -> u64 {
        self.time
    }

    /// Forces the operation clock — slicing gap jumps only.
    pub(crate) fn set_op_time(&mut self, time: u64) {
        self.time = time;
    }

    /// Overwrites `cell`'s storage with `word` on every lane, bypassing
    /// fault semantics, sense latching and the operation clock: the
    /// slicing layer's reference splice for cells no fault in the chunk
    /// can perturb.
    pub(crate) fn poke_broadcast(&mut self, cell: usize, word: u64) {
        let m = self.geom.width() as usize;
        for bit in 0..m {
            self.store[cell * m + bit] = LaneChunk::broadcast(word, bit as u32);
        }
    }

    /// Forces `port`'s sense-amplifier planes to `word` on every lane —
    /// the reference value the last skipped read on that port would have
    /// latched.
    pub(crate) fn force_sense_broadcast(&mut self, port: usize, word: u64) {
        let m = self.geom.width() as usize;
        for bit in 0..m {
            self.sense[port * m + bit] = LaneChunk::broadcast(word, bit as u32);
        }
    }

    /// Whether a stuck-open fault is present — the gate for the slicing
    /// layer's sense restores, mirroring the read path's own latch gate.
    pub(crate) fn has_sof(&self) -> bool {
        self.bank.sof_count > 0
    }

    /// Reads `addr` on every lane at once through port 0, applying fault
    /// semantics in the scalar read order (stuck-open latch → retention
    /// decay → state coupling → NPSF → stuck-at → read-logic flips) with
    /// any decoder fault remapping the accessed cells per lane, and
    /// returns the bit-planes of the value read.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&mut self, addr: usize) -> &[LaneChunk<K>] {
        self.read_on_port(0, addr)
    }

    /// [`LaneRam::read`] through a specific port: identical fault
    /// semantics, but the stuck-open sense amplifier latched (and
    /// consulted) is `port`'s — the lane counterpart of the scalar
    /// per-port sense in multi-port cycles.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or `port` is out of range.
    pub fn read_on_port(&mut self, port: usize, addr: usize) -> &[LaneChunk<K>] {
        assert!(port < self.ports, "port out of range");
        self.geom.check_addr(addr).expect("address in range");
        self.time += 1;
        let m = self.geom.width() as usize;
        if self.bank.is_empty() {
            return &self.store[addr * m..addr * m + m];
        }
        if self.bank.decoder_at(addr).is_none() {
            // Every lane reads its own cell. Without stuck-open or
            // read-logic faults anywhere, the value read IS the stored
            // planes — no staging copy, no sense maintenance (the PR-4
            // hot path, preserved).
            if self.bank.sof_count == 0 && self.bank.readlogic_count == 0 {
                self.read_enforce(addr, LaneChunk::FULL);
                return &self.store[addr * m..addr * m + m];
            }
            self.read_cell(addr, LaneChunk::FULL, port);
            let mut out = std::mem::take(&mut self.scratch_read);
            out.clear();
            out.extend_from_slice(&self.scratch_cell);
            self.scratch_read = out;
        } else {
            self.read_decoded(addr, port);
        }
        if self.bank.sof_count > 0 {
            // Every read latches the port's sense amplifier with the
            // value returned — on every lane, exactly like the scalar
            // port.
            self.sense[port * m..(port + 1) * m].copy_from_slice(&self.scratch_read);
        }
        &self.scratch_read
    }

    /// The decoder-faulted read path: partitions the lanes by the cells
    /// their decoder actually selects and combines the per-cell
    /// contributions under the bitline wiring convention (wired-OR floats
    /// to 0 on no-select lanes, wired-AND to all-ones — the scalar
    /// semantics, bit-sliced).
    fn read_decoded(&mut self, addr: usize, port: usize) {
        let m = self.geom.width() as usize;
        let mut remap = std::mem::take(&mut self.scratch_decode);
        remap.clear();
        remap.extend_from_slice(self.bank.decoder_at(addr).expect("caller checked"));
        let mut base_lanes = LaneChunk::FULL;
        for &(_, lanes) in &remap {
            base_lanes &= !lanes;
        }
        let mut out = std::mem::take(&mut self.scratch_read);
        out.clear();
        let init = match self.wired {
            ReadWired::Or => LaneChunk::ZERO,
            ReadWired::And => LaneChunk::FULL,
        };
        out.resize(m, init);
        let fold =
            |out: &mut [LaneChunk<K>], cell_planes: &[LaneChunk<K>], lanes: LaneChunk<K>, wired| {
                for (o, &p) in out.iter_mut().zip(cell_planes) {
                    match wired {
                        ReadWired::Or => *o |= p & lanes,
                        ReadWired::And => *o &= p | !lanes,
                    }
                }
            };
        if !base_lanes.is_zero() {
            self.read_cell(addr, base_lanes, port);
            fold(&mut out, &self.scratch_cell, base_lanes, self.wired);
        }
        for &(decode, lanes) in &remap {
            match decode {
                // No cell selected: the bitline default already seeded
                // `out` on these lanes.
                LaneDecode::None => {}
                LaneDecode::Extra(extra) => {
                    self.read_cell(addr, lanes, port);
                    fold(&mut out, &self.scratch_cell, lanes, self.wired);
                    self.read_cell(extra, lanes, port);
                    fold(&mut out, &self.scratch_cell, lanes, self.wired);
                }
                LaneDecode::Shadow(instead) => {
                    self.read_cell(instead, lanes, port);
                    fold(&mut out, &self.scratch_cell, lanes, self.wired);
                }
            }
        }
        self.scratch_read = out;
        self.scratch_decode = remap;
    }

    /// Read effects for one physical cell on the `access` lanes, leaving
    /// the planes of the value read in `scratch_cell`. Scalar order:
    /// stuck-open latch → retention decay → CFst → NPSF → stuck-at →
    /// RDF/DRDF store flips → IRF output inversion — every effect masked
    /// to the lanes that actually access the cell.
    fn read_cell(&mut self, cell: usize, access: LaneChunk<K>, port: usize) {
        let m = self.geom.width() as usize;
        let base = cell * m;
        let sof = self.sof_lanes(cell) & access;
        let act = access & !sof;
        self.read_enforce(cell, act);
        let mut out = std::mem::take(&mut self.scratch_cell);
        out.clear();
        out.extend_from_slice(&self.store[base..base + m]);
        // Read-logic faults: RDF flips the store and returns the new,
        // wrong value; DRDF flips the store but returns the old, correct
        // one; IRF inverts the output only. Store flips are OR-staged so
        // the post-flip stuck-at enforcement runs once, like the scalar
        // path.
        if self.bank.vkinds(cell) & VK_RDLOGIC != 0 {
            let bucket = &self.bank.by_victim[cell];
            let mut flips = std::mem::take(&mut self.scratch_flips);
            flips.clear();
            flips.resize(m, LaneChunk::ZERO);
            let mut any_flip = false;
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                match *f {
                    FaultKind::ReadDestructive { bit, .. } => {
                        for w in self.bank.span(i) {
                            let eff = lanes.0[w] & act.0[w];
                            if eff != 0 {
                                flips[bit as usize].0[w] |= eff;
                                out[bit as usize].0[w] ^= eff;
                                any_flip = true;
                            }
                        }
                    }
                    FaultKind::DeceptiveRead { bit, .. } => {
                        for w in self.bank.span(i) {
                            let eff = lanes.0[w] & act.0[w];
                            if eff != 0 {
                                flips[bit as usize].0[w] |= eff;
                                any_flip = true;
                            }
                        }
                    }
                    FaultKind::IncorrectRead { bit, .. } => {
                        for w in self.bank.span(i) {
                            out[bit as usize].0[w] ^= lanes.0[w] & act.0[w];
                        }
                    }
                    _ => {}
                }
            }
            if any_flip {
                for (b, &flip) in flips[..m].iter().enumerate() {
                    self.store[base + b] ^= flip;
                }
                self.enforce_sa(cell);
            }
            self.scratch_flips = flips;
        }
        // Stuck-open lanes return the port's latched sense-amplifier
        // value.
        if !sof.is_zero() {
            for (o, &s) in out.iter_mut().zip(&self.sense[port * m..(port + 1) * m]) {
                *o = (*o & !sof) | (s & sof);
            }
        }
        self.scratch_cell = out;
    }

    /// The state-enforcement half of a read on the `act` lanes (scalar
    /// order: retention decay → CFst → NPSF → stuck-at), leaving the
    /// stored planes as the value a divergence-free read returns.
    fn read_enforce(&mut self, cell: usize, act: LaneChunk<K>) {
        let vk = self.bank.vkinds(cell);
        if vk & (VK_DR | VK_CFST | VK_NPSF | VK_SA) == 0 {
            return;
        }
        // Data-retention decay (per-fault clocks).
        if vk & VK_DR != 0 {
            let mut actions = std::mem::take(&mut self.scratch_actions);
            actions.clear();
            let bucket = &self.bank.by_victim[cell];
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::DataRetention { bit, decays_to, after, .. } = *f {
                    if self.time.saturating_sub(self.bank.stamps[i]) > after {
                        for w in self.bank.span(i) {
                            let eff = lanes.0[w] & act.0[w];
                            if eff != 0 {
                                actions.push((cell, bit, Some(decays_to), w, eff));
                            }
                        }
                    }
                }
            }
            self.apply_actions(&actions);
            self.scratch_actions = actions;
        }
        self.enforce_state_on_victim(cell, act);
        self.enforce_npsf_on_victim(cell, act);
        self.enforce_sa(cell);
    }

    /// Writes the same word `data` to `addr` on every lane.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` exceeds the cell width.
    pub fn write_broadcast(&mut self, addr: usize, data: u64) {
        self.geom.check_data(data).expect("data fits cell width");
        let m = self.geom.width() as usize;
        let mut new = std::mem::take(&mut self.scratch_new);
        new.clear();
        for bit in 0..m {
            new.push(LaneChunk::broadcast(data, bit as u32));
        }
        self.scratch_new = new;
        self.write_decoded(addr);
    }

    /// Writes per-lane values to `addr`, given as bit-planes (`planes[j]`
    /// holds bit `j` of the written word across lanes) — the accumulator
    /// write path of the batch interpreter.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `planes` is not exactly one
    /// plane per data bit.
    pub fn write_planes(&mut self, addr: usize, planes: &[LaneChunk<K>]) {
        let m = self.geom.width() as usize;
        assert_eq!(planes.len(), m, "one plane per data bit");
        let mut new = std::mem::take(&mut self.scratch_new);
        new.clear();
        new.extend_from_slice(planes);
        self.scratch_new = new;
        self.write_decoded(addr);
    }

    /// The per-lane write-write conflict engine for one multi-port cycle:
    /// given the cycle's write addresses, stages each lane's decoder-
    /// mapped claims exactly like the scalar `cycle_ref` conflict check
    /// (an unfaulted write claims its own cell; `Extra` claims the
    /// address *and* the extra cell; `Shadow` claims the shadow cell;
    /// `None` claims nothing — the write is lost) and accumulates every
    /// lane on which two writes claim the same cell into
    /// [`LaneRam::errored_lanes`].
    ///
    /// Call **before** driving the cycle's reads and writes, mirroring
    /// the scalar ordering (conflicts are detected before any side
    /// effect). Like the scalar check, a colliding pair of writes errors
    /// on *every* lane whose decoder maps them to one cell — including
    /// fault-free lanes when the program itself writes one address twice.
    /// Does not advance the operation clock. Returns the cumulative
    /// frozen-lane mask.
    pub fn cycle_conflicts(&mut self, write_addrs: &[usize]) -> LaneChunk<K> {
        fn stage<const K: usize>(
            claims: &mut Vec<(usize, LaneChunk<K>)>,
            conflict: &mut LaneChunk<K>,
            cell: usize,
            lanes: LaneChunk<K>,
        ) {
            if lanes.is_zero() {
                return;
            }
            for (c, l) in claims.iter_mut() {
                if *c == cell {
                    *conflict |= *l & lanes;
                    *l |= lanes;
                    return;
                }
            }
            claims.push((cell, lanes));
        }
        let mut claims = std::mem::take(&mut self.scratch_claims);
        claims.clear();
        let mut conflict = LaneChunk::ZERO;
        for &addr in write_addrs {
            match self.bank.decoder_at(addr) {
                None => stage(&mut claims, &mut conflict, addr, LaneChunk::FULL),
                Some(entries) => {
                    let mut base = LaneChunk::FULL;
                    for &(_, lanes) in entries {
                        base &= !lanes;
                    }
                    stage(&mut claims, &mut conflict, addr, base);
                    for &(decode, lanes) in entries {
                        match decode {
                            LaneDecode::None => {}
                            LaneDecode::Extra(extra) => {
                                stage(&mut claims, &mut conflict, addr, lanes);
                                stage(&mut claims, &mut conflict, extra, lanes);
                            }
                            LaneDecode::Shadow(instead) => {
                                stage(&mut claims, &mut conflict, instead, lanes);
                            }
                        }
                    }
                }
            }
        }
        self.scratch_claims = claims;
        self.errored |= conflict;
        self.errored
    }

    /// The shared write entry: resolves which cells each lane's decoder
    /// selects for `addr` (its own cell when no decoder fault remaps it)
    /// and commits the staged `scratch_new` planes to each.
    fn write_decoded(&mut self, addr: usize) {
        self.geom.check_addr(addr).expect("address in range");
        self.time += 1;
        if self.bank.decoder_at(addr).is_none() {
            self.write_cell(addr, LaneChunk::FULL);
            return;
        }
        let mut remap = std::mem::take(&mut self.scratch_decode);
        remap.clear();
        remap.extend_from_slice(self.bank.decoder_at(addr).expect("checked above"));
        let mut base_lanes = LaneChunk::FULL;
        for &(_, lanes) in &remap {
            base_lanes &= !lanes;
        }
        if !base_lanes.is_zero() {
            self.write_cell(addr, base_lanes);
        }
        for &(decode, lanes) in &remap {
            match decode {
                LaneDecode::None => {} // write lost on these lanes
                LaneDecode::Extra(extra) => {
                    self.write_cell(addr, lanes);
                    self.write_cell(extra, lanes);
                }
                LaneDecode::Shadow(instead) => {
                    self.write_cell(instead, lanes);
                }
            }
        }
        self.scratch_decode = remap;
    }

    /// Write effects for one physical cell on the `access` lanes, from the
    /// staged `scratch_new` planes. Scalar order: stuck-open (write lost)
    /// → transition blocking → write-disturb → stuck-at → store →
    /// coupling triggers → state coupling → NPSF, each masked per lane
    /// and to the accessing lanes.
    fn write_cell(&mut self, cell: usize, access: LaneChunk<K>) {
        let m = self.geom.width() as usize;
        let base = cell * m;
        if self.bank.is_empty() {
            self.store[base..base + m].copy_from_slice(&self.scratch_new);
            return;
        }
        // Stuck-open lanes lose the write entirely.
        let eff = access & !self.sof_lanes(cell);
        if eff.is_zero() {
            return;
        }
        let mut new = std::mem::take(&mut self.scratch_val);
        new.clear();
        new.extend_from_slice(&self.scratch_new);
        let mut old = std::mem::take(&mut self.scratch_old);
        old.clear();
        old.extend_from_slice(&self.store[base..base + m]);
        // Transition blocking, then write-disturb, then stuck-at
        // enforcement on the incoming value — the scalar write order.
        let vk = self.bank.vkinds(cell);
        if vk & VK_TF != 0 {
            for &i in &self.bank.by_victim[cell] {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::Transition { bit, rising, .. } = *f {
                    let b = bit as usize;
                    for w in self.bank.span(i) {
                        let blocked = (if rising {
                            !old[b].0[w] & new[b].0[w]
                        } else {
                            old[b].0[w] & !new[b].0[w]
                        }) & lanes.0[w]
                            & eff.0[w];
                        new[b].0[w] = (new[b].0[w] & !blocked) | (old[b].0[w] & blocked);
                    }
                }
            }
        }
        if vk & VK_WD != 0 {
            for &i in &self.bank.by_victim[cell] {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::WriteDisturb { bit, .. } = *f {
                    let b = bit as usize;
                    for w in self.bank.span(i) {
                        // A non-transition write (bit already holds the
                        // value) flips the bit.
                        let disturbed = !(old[b].0[w] ^ new[b].0[w]) & lanes.0[w] & eff.0[w];
                        new[b].0[w] ^= disturbed;
                    }
                }
            }
        }
        if vk & VK_SA != 0 {
            for &i in &self.bank.by_victim[cell] {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::StuckAt { bit, value, .. } = *f {
                    let b = bit as usize;
                    for w in self.bank.span(i) {
                        if value & 1 == 1 {
                            new[b].0[w] |= lanes.0[w] & eff.0[w];
                        } else {
                            new[b].0[w] &= !(lanes.0[w] & eff.0[w]);
                        }
                    }
                }
            }
        }
        for (b, &v) in new.iter().enumerate() {
            let p = &mut self.store[base + b];
            *p = (v & eff) | (*p & !eff);
        }
        // Restart the retention clock of every DRF whose lanes wrote.
        if vk & VK_DR != 0 {
            for bi in 0..self.bank.by_victim[cell].len() {
                let i = self.bank.by_victim[cell][bi];
                let (f, lanes) = &self.bank.faults[i];
                if matches!(f, FaultKind::DataRetention { .. })
                    && self.bank.span(i).any(|w| lanes.0[w] & eff.0[w] != 0)
                {
                    self.bank.stamps[i] = self.time;
                }
            }
        }
        // Coupling triggers on the lanes whose bits actually flipped.
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if self.bank.akinds(cell) & AK_CF_TRIG != 0 {
            let bucket = &self.bank.by_aggressor[cell];
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                match *f {
                    FaultKind::CouplingInversion {
                        agg_cell,
                        agg_bit,
                        victim_cell,
                        victim_bit,
                        trigger,
                    } if agg_cell == cell => {
                        let b = agg_bit as usize;
                        for w in self.bank.span(i) {
                            let fired = (match trigger {
                                CouplingTrigger::Rise => !old[b].0[w] & new[b].0[w],
                                CouplingTrigger::Fall => old[b].0[w] & !new[b].0[w],
                            }) & lanes.0[w]
                                & eff.0[w];
                            if fired != 0 {
                                actions.push((victim_cell, victim_bit, None, w, fired));
                            }
                        }
                    }
                    FaultKind::CouplingIdempotent {
                        agg_cell,
                        agg_bit,
                        victim_cell,
                        victim_bit,
                        trigger,
                        force,
                    } if agg_cell == cell => {
                        let b = agg_bit as usize;
                        for w in self.bank.span(i) {
                            let fired = (match trigger {
                                CouplingTrigger::Rise => !old[b].0[w] & new[b].0[w],
                                CouplingTrigger::Fall => old[b].0[w] & !new[b].0[w],
                            }) & lanes.0[w]
                                & eff.0[w];
                            if fired != 0 {
                                actions.push((victim_cell, victim_bit, Some(force), w, fired));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
        self.scratch_old = old;
        self.scratch_val = new;
        self.enforce_state_from_aggressor(cell, eff);
        self.enforce_state_on_victim(cell, eff);
        self.enforce_npsf_from_neighbor(cell, eff);
    }

    /// The lanes on which `cell` carries a stuck-open fault.
    fn sof_lanes(&self, cell: usize) -> LaneChunk<K> {
        let mut sof = LaneChunk::ZERO;
        if self.bank.sof_count > 0 && self.bank.vkinds(cell) & VK_SOF != 0 {
            if let Some(bucket) = self.bank.by_victim.get(cell) {
                for &i in bucket {
                    let (f, lanes) = &self.bank.faults[i];
                    if matches!(f, FaultKind::StuckOpen { .. }) {
                        for w in self.bank.span(i) {
                            sof.0[w] |= lanes.0[w];
                        }
                    }
                }
            }
        }
        sof
    }

    /// Applies staged bit actions: `None` inverts the victim bit on the
    /// masked lanes, `Some(v)` forces it — each followed by stuck-at
    /// enforcement of the victim cell, like the scalar `force_bit`.
    fn apply_actions(&mut self, actions: &[(usize, u32, Option<u8>, usize, u64)]) {
        let m = self.geom.width() as usize;
        for &(vc, vb, act, w, lanes) in actions {
            let p = &mut self.store[vc * m + vb as usize].0[w];
            match act {
                None => *p ^= lanes,
                Some(v) => {
                    if v & 1 == 1 {
                        *p |= lanes;
                    } else {
                        *p &= !lanes;
                    }
                }
            }
            self.enforce_sa(vc);
        }
    }

    /// CFst where `cell` is the aggressor: enforce on the accessing lanes
    /// whose aggressor bit currently holds the trigger state.
    fn enforce_state_from_aggressor(&mut self, cell: usize, access: LaneChunk<K>) {
        if self.bank.akinds(cell) & AK_CFST == 0 {
            return;
        }
        let m = self.geom.width() as usize;
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_aggressor.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::CouplingState {
                    agg_cell,
                    agg_bit,
                    agg_state,
                    victim_cell,
                    victim_bit,
                    force,
                } = *f
                {
                    if agg_cell == cell {
                        for w in self.bank.span(i) {
                            let pw = self.store[agg_cell * m + agg_bit as usize].0[w];
                            let cond = (if agg_state & 1 == 1 { pw } else { !pw })
                                & lanes.0[w]
                                & access.0[w];
                            if cond != 0 {
                                actions.push((victim_cell, victim_bit, Some(force), w, cond));
                            }
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// CFst where `cell` is the victim: re-enforce on the accessing lanes
    /// whose aggressor currently holds the trigger state.
    fn enforce_state_on_victim(&mut self, cell: usize, access: LaneChunk<K>) {
        if self.bank.vkinds(cell) & VK_CFST == 0 {
            return;
        }
        let m = self.geom.width() as usize;
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::CouplingState {
                    agg_cell,
                    agg_bit,
                    agg_state,
                    victim_cell,
                    victim_bit,
                    force,
                } = *f
                {
                    if victim_cell == cell {
                        for w in self.bank.span(i) {
                            let pw = self.store[agg_cell * m + agg_bit as usize].0[w];
                            let cond = (if agg_state & 1 == 1 { pw } else { !pw })
                                & lanes.0[w]
                                & access.0[w];
                            if cond != 0 {
                                actions.push((victim_cell, victim_bit, Some(force), w, cond));
                            }
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// NPSF where `cell` is one of the neighbours (checked after writes).
    fn enforce_npsf_from_neighbor(&mut self, cell: usize, access: LaneChunk<K>) {
        if self.bank.akinds(cell) & AK_NPSF == 0 {
            return;
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_aggressor.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::Npsf { victim_cell, victim_bit, neighbors, force } = f {
                    for w in self.bank.span(i) {
                        let cond = self.npsf_condition(neighbors, w, lanes.0[w] & access.0[w]);
                        if cond != 0 {
                            actions.push((*victim_cell, *victim_bit, Some(*force), w, cond));
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// NPSF where `cell` is the victim (checked at reads).
    fn enforce_npsf_on_victim(&mut self, cell: usize, access: LaneChunk<K>) {
        if self.bank.vkinds(cell) & VK_NPSF == 0 {
            return;
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        actions.clear();
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::Npsf { victim_cell, victim_bit, neighbors, force } = f {
                    if *victim_cell == cell {
                        for w in self.bank.span(i) {
                            let cond = self.npsf_condition(neighbors, w, lanes.0[w] & access.0[w]);
                            if cond != 0 {
                                actions.push((*victim_cell, *victim_bit, Some(*force), w, cond));
                            }
                        }
                    }
                }
            }
        }
        self.apply_actions(&actions);
        self.scratch_actions = actions;
    }

    /// The lanes of chunk word `w` on which every listed neighbour bit
    /// holds its listed value.
    fn npsf_condition(&self, neighbors: &[(usize, u32, u8)], w: usize, lanes: u64) -> u64 {
        let m = self.geom.width() as usize;
        let mut cond = lanes;
        for &(c, b, v) in neighbors {
            let pw = self.store[c * m + b as usize].0[w];
            cond &= if v & 1 == 1 { pw } else { !pw };
        }
        cond
    }

    /// Applies the stuck-at masks of `cell` to its stored planes.
    /// Unmasked by design: stuck-at enforcement is idempotent, so
    /// re-applying it on lanes whose device did not access the cell is
    /// harmless (the bit already holds the stuck value).
    fn enforce_sa(&mut self, cell: usize) {
        if self.bank.vkinds(cell) & VK_SA == 0 {
            return;
        }
        let m = self.geom.width() as usize;
        if let Some(bucket) = self.bank.by_victim.get(cell) {
            for &i in bucket {
                let (f, lanes) = &self.bank.faults[i];
                if let FaultKind::StuckAt { bit, value, .. } = *f {
                    for w in self.bank.span(i) {
                        let p = &mut self.store[cell * m + bit as usize].0[w];
                        if value & 1 == 1 {
                            *p |= lanes.0[w];
                        } else {
                            *p &= !lanes.0[w];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ram;

    /// Drives the same op sequence through a scalar single-fault `Ram`
    /// and a `LaneRam<K>` with the fault in `lane`, asserting bitwise-
    /// equal reads and storage at every step.
    fn assert_chunk_matches_scalar<const K: usize>(
        geom: Geometry,
        fault: &FaultKind,
        lane: usize,
        script: &[(bool, usize, u64)], // (is_write, addr, data)
        wired: ReadWired,
    ) {
        let mut scalar = Ram::new(geom);
        scalar.set_wired(wired);
        scalar.inject(fault.clone()).unwrap();
        let mut lanes = LaneRam::<K>::new(geom);
        lanes.set_wired(wired);
        lanes.inject(fault.clone(), lane).unwrap();
        for (step, &(is_write, addr, data)) in script.iter().enumerate() {
            if is_write {
                scalar.write(addr, data);
                lanes.write_broadcast(addr, data);
            } else {
                let want = scalar.read(addr);
                let got = lane_word(lanes.read(addr), lane);
                assert_eq!(got, want, "{fault} lane {lane} step {step}: read @{addr}");
            }
            for c in 0..geom.cells() {
                assert_eq!(
                    lanes.peek_lane(c, lane),
                    scalar.peek(c),
                    "{fault} lane {lane} step {step}: cell {c}"
                );
            }
        }
    }

    fn assert_lane_matches_scalar(
        geom: Geometry,
        fault: FaultKind,
        lane: usize,
        script: &[(bool, usize, u64)],
    ) {
        assert_lane_matches_scalar_wired(geom, fault, lane, script, ReadWired::Or);
    }

    fn assert_lane_matches_scalar_wired(
        geom: Geometry,
        fault: FaultKind,
        lane: usize,
        script: &[(bool, usize, u64)],
        wired: ReadWired,
    ) {
        assert_chunk_matches_scalar::<1>(geom, &fault, lane, script, wired);
        // The same trial relocated into the top word of a 4-word chunk:
        // widening the lane dimension must not change per-lane semantics
        // wherever the lane lands.
        assert_chunk_matches_scalar::<4>(geom, &fault, lane + 3 * LANES, script, wired);
    }

    #[test]
    fn stuck_at_matches_scalar_in_any_lane() {
        for lane in [0usize, 17, 63] {
            for value in [0u8, 1] {
                assert_lane_matches_scalar(
                    Geometry::bom(4),
                    FaultKind::StuckAt { cell: 1, bit: 0, value },
                    lane,
                    &[(true, 1, 1), (false, 1, 0), (true, 1, 0), (false, 1, 0)],
                );
            }
        }
    }

    #[test]
    fn transition_blocking_matches_scalar() {
        for rising in [true, false] {
            assert_lane_matches_scalar(
                Geometry::bom(2),
                FaultKind::Transition { cell: 0, bit: 0, rising },
                9,
                &[(true, 0, 1), (false, 0, 0), (true, 0, 0), (false, 0, 0), (true, 0, 1)],
            );
        }
    }

    #[test]
    fn couplings_match_scalar() {
        let script: Vec<(bool, usize, u64)> = vec![
            (true, 2, 1),
            (true, 0, 1),
            (false, 2, 0),
            (true, 0, 0),
            (false, 2, 0),
            (true, 0, 1),
            (false, 2, 0),
            (true, 2, 0),
            (false, 2, 0),
        ];
        for trigger in [CouplingTrigger::Rise, CouplingTrigger::Fall] {
            assert_lane_matches_scalar(
                Geometry::bom(4),
                FaultKind::CouplingInversion {
                    agg_cell: 0,
                    agg_bit: 0,
                    victim_cell: 2,
                    victim_bit: 0,
                    trigger,
                },
                31,
                &script,
            );
            for force in [0u8, 1] {
                assert_lane_matches_scalar(
                    Geometry::bom(4),
                    FaultKind::CouplingIdempotent {
                        agg_cell: 0,
                        agg_bit: 0,
                        victim_cell: 2,
                        victim_bit: 0,
                        trigger,
                        force,
                    },
                    31,
                    &script,
                );
            }
        }
        for agg_state in [0u8, 1] {
            for force in [0u8, 1] {
                assert_lane_matches_scalar(
                    Geometry::bom(4),
                    FaultKind::CouplingState {
                        agg_cell: 0,
                        agg_bit: 0,
                        agg_state,
                        victim_cell: 2,
                        victim_bit: 0,
                        force,
                    },
                    62,
                    &script,
                );
            }
        }
    }

    #[test]
    fn intra_word_coupling_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::wom(4, 4).unwrap(),
            FaultKind::CouplingInversion {
                agg_cell: 1,
                agg_bit: 0,
                victim_cell: 1,
                victim_bit: 3,
                trigger: CouplingTrigger::Rise,
            },
            5,
            &[(true, 1, 0b0001), (false, 1, 0), (true, 1, 0b0000), (false, 1, 0)],
        );
    }

    #[test]
    fn retention_decay_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::bom(4),
            FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 3 },
            44,
            &[(true, 0, 1), (false, 0, 0), (true, 1, 1), (true, 2, 1), (true, 3, 1), (false, 0, 0)],
        );
    }

    #[test]
    fn npsf_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::bom(5),
            FaultKind::Npsf {
                victim_cell: 2,
                victim_bit: 0,
                neighbors: vec![(1, 0, 1), (3, 0, 1)],
                force: 1,
            },
            3,
            &[(true, 2, 0), (true, 1, 1), (false, 2, 0), (true, 3, 1), (false, 2, 0)],
        );
    }

    #[test]
    fn stuck_open_matches_scalar() {
        // The sense amplifier latches the last read value; SOF reads
        // return the latch, SOF writes are lost — mirror the scalar
        // `stuck_open_latches_sense_amp` scenario step by step.
        assert_lane_matches_scalar(
            Geometry::bom(4),
            FaultKind::StuckOpen { cell: 2 },
            29,
            &[
                (true, 1, 1),
                (true, 2, 1),  // lost
                (false, 1, 0), // latch 1
                (false, 2, 0), // returns latched 1
                (true, 0, 0),
                (false, 0, 0), // latch 0
                (false, 2, 0), // returns latched 0
            ],
        );
    }

    #[test]
    fn read_logic_families_match_scalar() {
        let script: &[(bool, usize, u64)] = &[
            (true, 0, 1),
            (false, 0, 0),
            (false, 0, 0),
            (true, 0, 1),
            (false, 0, 0),
            (true, 0, 0),
            (false, 0, 0),
            (false, 0, 0),
        ];
        for fault in [
            FaultKind::ReadDestructive { cell: 0, bit: 0 },
            FaultKind::DeceptiveRead { cell: 0, bit: 0 },
            FaultKind::IncorrectRead { cell: 0, bit: 0 },
        ] {
            for lane in [0usize, 40, 63] {
                assert_lane_matches_scalar(Geometry::bom(2), fault.clone(), lane, script);
            }
        }
    }

    #[test]
    fn write_disturb_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::bom(2),
            FaultKind::WriteDisturb { cell: 0, bit: 0 },
            13,
            &[
                (true, 0, 1), // transition: fine
                (false, 0, 0),
                (true, 0, 1), // non-transition: disturbed to 0
                (false, 0, 0),
                (true, 0, 0), // now a non-transition 0-write: disturbed to 1
                (false, 0, 0),
            ],
        );
    }

    #[test]
    fn decoder_faults_match_scalar_under_both_wirings() {
        let script: &[(bool, usize, u64)] = &[
            (true, 2, 1),
            (false, 2, 0),
            (true, 5, 1),
            (false, 5, 0),
            (true, 2, 0),
            (false, 2, 0),
            (false, 5, 0),
            (true, 6, 1),
            (false, 3, 0),
            (false, 6, 0),
        ];
        for wired in [ReadWired::Or, ReadWired::And] {
            for fault in [
                FaultKind::DecoderNoAccess { addr: 2 },
                FaultKind::DecoderExtraCell { addr: 2, extra_cell: 5 },
                FaultKind::DecoderShadow { addr: 3, instead_cell: 6 },
            ] {
                for lane in [0usize, 21, 63] {
                    assert_lane_matches_scalar_wired(
                        Geometry::bom(8),
                        fault.clone(),
                        lane,
                        script,
                        wired,
                    );
                }
            }
        }
    }

    #[test]
    fn decoder_extra_cell_wom_matches_scalar() {
        assert_lane_matches_scalar(
            Geometry::wom(6, 4).unwrap(),
            FaultKind::DecoderExtraCell { addr: 1, extra_cell: 4 },
            50,
            &[
                (true, 1, 0xA), // writes cells 1 and 4
                (false, 4, 0),
                (true, 4, 0x5),
                (false, 1, 0), // OR(0xA, 0x5)
                (false, 4, 0),
            ],
        );
    }

    #[test]
    fn wide_chunks_match_scalar_in_every_word() {
        // One trial per chunk word of an 8-word (512-lane) chunk,
        // including both word-boundary lanes.
        let geom = Geometry::bom(4);
        let fault = FaultKind::StuckAt { cell: 1, bit: 0, value: 0 };
        let script: &[(bool, usize, u64)] =
            &[(true, 1, 1), (false, 1, 0), (true, 1, 0), (false, 1, 0)];
        for lane in [0usize, 63, 64, 130, 255, 256, 320, 511] {
            assert_chunk_matches_scalar::<8>(geom, &fault, lane, script, ReadWired::Or);
        }
    }

    #[test]
    fn lanes_are_isolated() {
        // Two different faults in two lanes: each lane behaves like its
        // own scalar device, the other lane's fault invisible to it.
        let geom = Geometry::bom(4);
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 2).unwrap();
        lanes.inject(FaultKind::StuckAt { cell: 1, bit: 0, value: 1 }, 7).unwrap();
        assert_eq!(lanes.active_lanes(), LaneChunk::single(2) | LaneChunk::single(7));
        lanes.write_broadcast(0, 1);
        lanes.write_broadcast(1, 0);
        let p0 = lanes.read(0)[0];
        assert!(!p0.get(2), "lane 2 is stuck at 0");
        assert!(p0.get(7), "lane 7 sees a healthy cell 0");
        let p1 = lanes.read(1)[0];
        assert!(!p1.get(2), "lane 2 sees a healthy cell 1");
        assert!(p1.get(7), "lane 7 is stuck at 1");
    }

    #[test]
    fn cross_word_lanes_are_isolated() {
        // The same two-fault isolation, with the trials in different
        // words of a 4-word chunk.
        let geom = Geometry::bom(4);
        let mut lanes: LaneRam<4> = LaneRam::new(geom);
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 70).unwrap();
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 1 }, 200).unwrap();
        lanes.write_broadcast(0, 1);
        let p = lanes.read(0)[0];
        assert!(!p.get(70), "lane 70 is stuck at 0");
        assert!(p.get(200), "lane 200 is stuck at 1");
        assert!(p.get(0) && p.get(130) && p.get(255), "unfaulted lanes read the written 1");
    }

    #[test]
    fn decoder_and_read_logic_lanes_stay_isolated() {
        // A decoder fault in one lane diverts its accesses; the diverted
        // accesses must not fire another lane's read-triggered fault, and
        // vice versa — the cross-lane hazard the per-access lane masks
        // exist to prevent.
        let geom = Geometry::bom(8);
        let shadow = FaultKind::DecoderShadow { addr: 3, instead_cell: 6 };
        let rdf = FaultKind::ReadDestructive { cell: 6, bit: 0 };
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(shadow.clone(), 11).unwrap();
        lanes.inject(rdf.clone(), 44).unwrap();
        let mut s_shadow = Ram::new(geom);
        s_shadow.inject(shadow).unwrap();
        let mut s_rdf = Ram::new(geom);
        s_rdf.inject(rdf).unwrap();
        let script: &[(bool, usize, u64)] = &[
            (true, 6, 1),
            (true, 3, 0),  // lane 11 writes cell 6 instead
            (false, 3, 0), // lane 11 reads cell 6; lane 44's RDF must not fire
            (false, 6, 0), // lane 44's RDF fires exactly once here
            (false, 6, 0),
        ];
        for (step, &(is_write, addr, data)) in script.iter().enumerate() {
            if is_write {
                s_shadow.write(addr, data);
                s_rdf.write(addr, data);
                lanes.write_broadcast(addr, data);
            } else {
                let w_shadow = s_shadow.read(addr);
                let w_rdf = s_rdf.read(addr);
                let planes = lanes.read(addr);
                assert_eq!(lane_word(planes, 11), w_shadow, "shadow lane, step {step}");
                assert_eq!(lane_word(planes, 44), w_rdf, "rdf lane, step {step}");
            }
            for c in 0..8 {
                assert_eq!(lanes.peek_lane(c, 11), s_shadow.peek(c), "step {step} cell {c}");
                assert_eq!(lanes.peek_lane(c, 44), s_rdf.peek(c), "step {step} cell {c}");
            }
        }
    }

    #[test]
    fn multi_port_sense_planes_are_independent() {
        // A stuck-open read returns the latch of the port doing the
        // read; reads on other ports must not disturb it — the scalar
        // per-port sense array, bit-sliced.
        let geom = Geometry::bom(4);
        let mut lanes = LaneRam::<1>::with_ports(geom, 2).unwrap();
        lanes.inject(FaultKind::StuckOpen { cell: 2 }, 7).unwrap();
        lanes.write_broadcast(0, 1);
        lanes.write_broadcast(1, 0);
        let _ = lanes.read_on_port(0, 0); // port 0 latches 1
        let _ = lanes.read_on_port(1, 1); // port 1 latches 0
        assert_eq!(lane_word(lanes.read_on_port(0, 2), 7), 1, "port 0 returns its own latch");
        assert_eq!(lane_word(lanes.read_on_port(1, 2), 7), 0, "port 1 returns its own latch");
    }

    #[test]
    fn cycle_conflicts_follow_per_lane_decoder_claims() {
        let geom = Geometry::bom(8);
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(FaultKind::DecoderShadow { addr: 1, instead_cell: 0 }, 5).unwrap();
        // Writes to 0 and 1 land on one cell only where the shadow
        // diverts them…
        assert_eq!(lanes.cycle_conflicts(&[0, 1]), LaneChunk::single(5));
        assert_eq!(lanes.errored_lanes(), LaneChunk::single(5));
        // …a conflict-free cycle leaves the frozen set sticky…
        assert_eq!(lanes.cycle_conflicts(&[2, 3]), LaneChunk::single(5));
        // …and recycling the device clears it.
        lanes.reset_to(0);
        assert!(lanes.errored_lanes().is_zero());
        // Two writes to one address conflict on every lane, fault-free
        // included (the scalar device errors regardless of faults).
        assert_eq!(lanes.cycle_conflicts(&[4, 4]), LaneChunk::FULL);
        lanes.eject_faults();
        assert!(lanes.errored_lanes().is_zero());
    }

    #[test]
    fn lost_writes_claim_no_cell() {
        let geom = Geometry::bom(8);
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(FaultKind::DecoderNoAccess { addr: 1 }, 3).unwrap();
        // Both writes to address 1 are lost on lane 3 — every other lane
        // conflicts.
        assert_eq!(lanes.cycle_conflicts(&[1, 1]), !LaneChunk::single(3));
    }

    #[test]
    fn port_pool_bounds_are_enforced() {
        let geom = Geometry::bom(4);
        assert!(LaneRam::<1>::with_ports(geom, 0).is_err());
        assert!(LaneRam::<1>::with_ports(geom, MAX_PORTS + 1).is_err());
        assert_eq!(LaneRam::<1>::with_ports(geom, 4).unwrap().ports(), 4);
    }

    #[test]
    fn reset_and_eject_recycle_the_device() {
        let geom = Geometry::wom(4, 4).unwrap();
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(FaultKind::StuckAt { cell: 1, bit: 2, value: 1 }, 0).unwrap();
        lanes.write_broadcast(1, 0xF);
        lanes.eject_faults();
        lanes.reset_to(0xA);
        assert!(lanes.active_lanes().is_zero());
        assert!(lanes.fault_bank().is_empty());
        for c in 0..4 {
            for l in [0usize, 63] {
                assert_eq!(lanes.peek_lane(c, l), 0xA);
            }
        }
        // And the recycled device accepts a fresh batch.
        lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 63).unwrap();
        lanes.write_broadcast(0, 0xF);
        assert_eq!(lanes.peek_lane(0, 63), 0xE);
    }

    #[test]
    fn reset_recycles_sense_and_retention_state() {
        let geom = Geometry::bom(4);
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(FaultKind::StuckOpen { cell: 2 }, 3).unwrap();
        lanes.write_broadcast(1, 1);
        let _ = lanes.read(1); // latch 1
        lanes.reset_to(0);
        // A fresh device after reset: the latch was cleared, so the SOF
        // read returns 0, as on a just-constructed memory.
        assert!(!lanes.read(2)[0].get(3), "sense latch must reset");

        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes
            .inject(FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 3 }, 9)
            .unwrap();
        // Age the device past the retention window, then recycle it.
        for _ in 0..2 {
            for a in 0..4 {
                lanes.write_broadcast(a, 1);
            }
        }
        lanes.reset_to(0);
        lanes.write_broadcast(0, 1);
        assert!(lanes.read(0)[0].get(9), "retention window must restart at reset");
        lanes.write_broadcast(1, 1);
        lanes.write_broadcast(2, 1);
        lanes.write_broadcast(3, 1);
        assert!(!lanes.read(0)[0].get(9), "and decay again once exceeded");
    }

    #[test]
    fn every_family_is_batchable() {
        let mut lanes: LaneRam = LaneRam::new(Geometry::bom(4));
        for (lane, fault) in [
            FaultKind::DecoderNoAccess { addr: 0 },
            FaultKind::DecoderExtraCell { addr: 1, extra_cell: 2 },
            FaultKind::DecoderShadow { addr: 2, instead_cell: 3 },
            FaultKind::StuckOpen { cell: 1 },
            FaultKind::ReadDestructive { cell: 0, bit: 0 },
            FaultKind::DeceptiveRead { cell: 0, bit: 0 },
            FaultKind::IncorrectRead { cell: 0, bit: 0 },
            FaultKind::WriteDisturb { cell: 0, bit: 0 },
            FaultKind::StuckAt { cell: 0, bit: 0, value: 0 },
            FaultKind::Transition { cell: 0, bit: 0, rising: true },
            FaultKind::DataRetention { cell: 0, bit: 0, decays_to: 0, after: 2 },
        ]
        .into_iter()
        .enumerate()
        {
            lanes.inject(fault, lane).expect("every modelled family injects");
        }
        assert_eq!(lanes.active_lanes().count_ones(), 11);
    }

    #[test]
    fn chunk_mask_helpers_are_consistent() {
        assert_eq!(LaneChunk::<4>::LANES, 256);
        assert_eq!(LaneChunk::<4>::prefix(0), LaneChunk::ZERO);
        assert_eq!(LaneChunk::<4>::prefix(256), LaneChunk::FULL);
        let p = LaneChunk::<4>::prefix(100);
        assert_eq!(p.count_ones(), 100);
        assert!(p.get(99) && !p.get(100));
        let mut seen = Vec::new();
        (LaneChunk::<4>::single(3) | LaneChunk::single(64) | LaneChunk::single(255))
            .for_each_lane(|l| seen.push(l));
        assert_eq!(seen, [3, 64, 255]);
        assert_eq!(lane_word(&[LaneChunk::<4>::single(70), LaneChunk::ZERO], 70), 0b01);
    }

    #[test]
    fn validation_errors_propagate() {
        let mut lanes: LaneRam = LaneRam::new(Geometry::bom(4));
        assert!(lanes.inject(FaultKind::StuckAt { cell: 9, bit: 0, value: 0 }, 0).is_err());
        assert!(lanes.inject(FaultKind::DecoderNoAccess { addr: 4 }, 0).is_err());
        assert!(lanes.active_lanes().is_zero(), "rejected faults must not claim a lane");
    }

    #[test]
    #[should_panic(expected = "trial lane out of range")]
    fn lane_bound_is_enforced() {
        let mut lanes: LaneRam = LaneRam::new(Geometry::bom(4));
        let _ = lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, LANES);
    }

    #[test]
    #[should_panic(expected = "trial lane out of range")]
    fn wide_lane_bound_is_enforced() {
        let mut lanes: LaneRam<4> = LaneRam::new(Geometry::bom(4));
        let _ = lanes.inject(FaultKind::StuckAt { cell: 0, bit: 0, value: 0 }, 4 * LANES);
    }
}
