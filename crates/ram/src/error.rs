use std::error::Error;
use std::fmt;

/// Errors produced by the RAM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RamError {
    /// An address is outside the array.
    AddressOutOfRange {
        /// The offending address.
        addr: usize,
        /// Number of cells.
        cells: usize,
    },
    /// A data value has bits above the cell width.
    DataOutOfRange {
        /// The offending value.
        data: u64,
        /// Cell width in bits.
        width: u32,
    },
    /// A bit index is at or above the cell width.
    BitOutOfRange {
        /// The offending bit index.
        bit: u32,
        /// Cell width in bits.
        width: u32,
    },
    /// A fault references an aggressor and victim that coincide.
    SelfCoupling {
        /// The cell that was both aggressor and victim.
        cell: usize,
    },
    /// More port operations were submitted than the device has ports.
    TooManyPortOps {
        /// Operations submitted.
        submitted: usize,
        /// Ports available.
        ports: usize,
    },
    /// Two ports wrote the same cell in one cycle.
    WriteWriteConflict {
        /// The contested cell.
        cell: usize,
    },
    /// A geometry was requested that the simulator does not support.
    UnsupportedGeometry {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A compiled program met a device with a different geometry.
    ProgramGeometryMismatch {
        /// Cells/width the program was compiled for.
        compiled: crate::Geometry,
        /// Cells/width of the device it was run on.
        device: crate::Geometry,
    },
    /// A multi-port program was asked to drive a lane-sliced batch run
    /// ([`crate::batch::LaneRam`] has no port or decoder model).
    ProgramNotBatchable {
        /// Name of the offending program.
        program: String,
        /// Ports the program needs.
        ports: usize,
    },
}

impl fmt::Display for RamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RamError::AddressOutOfRange { addr, cells } => {
                write!(f, "address {addr} out of range for {cells} cells")
            }
            RamError::DataOutOfRange { data, width } => {
                write!(f, "data {data:#x} does not fit in {width}-bit cells")
            }
            RamError::BitOutOfRange { bit, width } => {
                write!(f, "bit index {bit} out of range for {width}-bit cells")
            }
            RamError::SelfCoupling { cell } => {
                write!(f, "coupling fault aggressor and victim are the same site in cell {cell}")
            }
            RamError::TooManyPortOps { submitted, ports } => {
                write!(f, "{submitted} port operations submitted to a {ports}-port memory")
            }
            RamError::WriteWriteConflict { cell } => {
                write!(f, "two ports wrote cell {cell} in the same cycle")
            }
            RamError::UnsupportedGeometry { reason } => {
                write!(f, "unsupported geometry: {reason}")
            }
            RamError::ProgramGeometryMismatch { compiled, device } => {
                write!(
                    f,
                    "program compiled for {}×{}b run on a {}×{}b device",
                    compiled.cells(),
                    compiled.width(),
                    device.cells(),
                    device.width()
                )
            }
            RamError::ProgramNotBatchable { program, ports } => {
                write!(f, "multi-port program '{program}' ({ports} ports) cannot run lane-batched")
            }
        }
    }
}

impl Error for RamError {}
