//! Activity-driven program slicing: the address→op index and span-union
//! machinery that lets the batch interpreter skip the ops a fault can't
//! see.
//!
//! A memory fault only interacts with the cells of its *span* (victim,
//! aggressor, decoder image, NPSF neighbourhood). Outside the union of a
//! lane chunk's spans the device state equals the fault-free reference on
//! every lane, so every op touching only out-of-union cells is provably a
//! pass/no-op whose effect is known at compile time — the memory-test
//! analogue of event-driven (concurrent) fault simulation.
//!
//! [`ActivityIndex::build`] runs one fault-free reference simulation of a
//! compiled [`TestProgram`] and records, per op: the device-clock prefix,
//! the checked-response prefix, the pre-op reference value of every
//! address the op reads, and the last read issued on each port. With
//! that, the sliced interpreters in [`crate::prog`] jump from active op
//! to active op and splice the gaps in O(1) per op:
//!
//! * the operation clock is re-synced (data-retention windows observe
//!   full-pass time),
//! * out-of-union cells an active op reads are poked to their pre-op
//!   reference (skipped writes never materialised),
//! * stuck-open sense amplifiers are restored to the last skipped read's
//!   reference value, and
//! * skipped checked reads emit their broadcast expected word to the
//!   observer (the fault-free response, per the
//!   [`TestProgram::expected_responses`] contract).
//!
//! [`ActiveSet`] is the per-chunk scratch: insert the chunk's faults,
//! [`ActiveSet::finalize`] against a program's index, and the sorted
//! active-op list plus the span-union membership test are ready for the
//! sliced pass. Ops whose behaviour is data-dependent on every lane
//! (accumulator ops, multi-port cycles with program-level write-write
//! conflicts, checked reads whose expectation diverges from the
//! reference) are *always active* and never skipped.

use crate::fault::FaultKind;
use crate::prog::{MemOp, SlotOp, TestProgram, ACC_LANES};
use crate::{Geometry, MAX_PORTS};

/// Sentinel op index for "no read has been issued on this port yet".
pub(crate) const NO_READ: u32 = u32::MAX;

/// Visits every cell of `fault`'s span: the addresses whose ops a sliced
/// pass must execute for the fault's behaviour to be bit-identical to the
/// full pass (victim and aggressor cells, decoder addresses and their
/// remapped images, the NPSF neighbourhood).
pub fn fault_cells(fault: &FaultKind, visit: &mut dyn FnMut(usize)) {
    match fault {
        FaultKind::StuckAt { cell, .. }
        | FaultKind::Transition { cell, .. }
        | FaultKind::StuckOpen { cell }
        | FaultKind::ReadDestructive { cell, .. }
        | FaultKind::DeceptiveRead { cell, .. }
        | FaultKind::IncorrectRead { cell, .. }
        | FaultKind::WriteDisturb { cell, .. }
        | FaultKind::DataRetention { cell, .. } => visit(*cell),
        FaultKind::CouplingInversion { agg_cell, victim_cell, .. }
        | FaultKind::CouplingIdempotent { agg_cell, victim_cell, .. }
        | FaultKind::CouplingState { agg_cell, victim_cell, .. } => {
            visit(*agg_cell);
            visit(*victim_cell);
        }
        FaultKind::DecoderNoAccess { addr } => visit(*addr),
        FaultKind::DecoderExtraCell { addr, extra_cell } => {
            visit(*addr);
            visit(*extra_cell);
        }
        FaultKind::DecoderShadow { addr, instead_cell } => {
            visit(*addr);
            visit(*instead_cell);
        }
        FaultKind::Npsf { victim_cell, neighbors, .. } => {
            visit(*victim_cell);
            for &(c, _, _) in neighbors {
                visit(c);
            }
        }
    }
}

/// The locality sort key for chunk assembly: the smallest cell of the
/// fault's span. Campaign engines sort a segment's faults by this key so
/// the faults sharing a lane chunk have tight span unions (coupling
/// faults group by their aggressor/victim window) — verdicts are keyed
/// by fault index, so reports and checkpoints are unaffected by the
/// assembly order.
pub fn fault_locality_key(fault: &FaultKind) -> usize {
    let mut min = usize::MAX;
    fault_cells(fault, &mut |c| min = min.min(c));
    min
}

/// XOR of `masks[j]` over the set bits `j` of `value` — the de-sliced
/// form of the interpreter's per-bit-plane GF(2)-linear map application.
fn apply_map(masks: &[u64], value: u64) -> u64 {
    let mut out = 0;
    let mut v = value;
    while v != 0 {
        let j = v.trailing_zeros() as usize;
        out ^= masks[j];
        v &= v - 1;
    }
    out
}

/// Appends `opi` to `addr`'s op list unless it is already the last entry
/// (one op may touch an address through several slots).
fn touch(ops_by_addr: &mut [Vec<u32>], addr: u32, opi: u32) {
    let list = &mut ops_by_addr[addr as usize];
    if list.last() != Some(&opi) {
        list.push(opi);
    }
}

/// The per-program compile of everything a sliced pass needs: the
/// address→op-index map plus per-op prefix state of one fault-free
/// reference execution (device clock, checked-response stream, pre-op
/// read values, per-port sense history).
///
/// Build it once per (program, campaign) — it assumes the device starts
/// from the all-zero reset state (`reset_to(0)`), which is the campaign
/// engines' contract before every trial.
#[derive(Debug, Clone)]
pub struct ActivityIndex {
    pub(crate) n_ops: usize,
    pub(crate) geom: Geometry,
    /// `addr → sorted op indices touching that address` (any read or
    /// write, scalar or slot).
    pub(crate) ops_by_addr: Vec<Vec<u32>>,
    /// Sorted ops that execute in every sliced pass: accumulator ops,
    /// cycles with program-level write-write conflicts or accumulator
    /// slots, and checked reads whose expectation diverges from the
    /// fault-free reference.
    pub(crate) always_active: Vec<u32>,
    /// Addresses forced into every span union: accumulator write targets,
    /// whose stored value is per-lane data-dependent.
    pub(crate) forced: Vec<u32>,
    /// Device-clock value before each op (`n_ops + 1` entries; the last
    /// is the full-pass total).
    pub(crate) time_before: Vec<u64>,
    /// Checked-read responses emitted before each op (`n_ops + 1`
    /// prefix counts into [`ActivityIndex::responses`]).
    pub(crate) responses_before: Vec<u32>,
    /// The full fault-free checked-read response stream, in observation
    /// order (equals [`TestProgram::expected_responses`]).
    pub(crate) responses: Vec<u64>,
    /// Flat `(addr, pre-op reference value)` pairs for every address each
    /// op reads, indexed by [`ActivityIndex::read_ref_offsets`].
    pub(crate) read_refs: Vec<(u32, u64)>,
    /// `n_ops + 1` prefix offsets into [`ActivityIndex::read_refs`].
    pub(crate) read_ref_offsets: Vec<u32>,
    /// Per op, per port: the last device read issued on that port
    /// *strictly before* the op, as `(op index, reference value)`
    /// ([`NO_READ`] when none) — the sense-amplifier restore table for
    /// stuck-open lanes.
    pub(crate) last_read_before: Vec<[(u32, u64); MAX_PORTS]>,
    /// Full-pass per-lane operation count ([`crate::Execution::ops`]).
    pub(crate) total_ops: u64,
    /// Full-pass per-lane cycle count ([`crate::Execution::cycles`]).
    pub(crate) total_cycles: u64,
}

impl ActivityIndex {
    /// Compiles the activity index for `program` by running one
    /// fault-free reference simulation from the all-zero reset state.
    pub fn build(program: &TestProgram) -> ActivityIndex {
        let geom = program.geometry();
        let mask = geom.data_mask();
        let ops = program.ops();
        let slot_tab = program.slots();
        let maps = program.map_table();
        let n_ops = ops.len();
        let mut idx = ActivityIndex {
            n_ops,
            geom,
            ops_by_addr: vec![Vec::new(); geom.cells()],
            always_active: Vec::new(),
            forced: Vec::new(),
            time_before: Vec::with_capacity(n_ops + 1),
            responses_before: Vec::with_capacity(n_ops + 1),
            responses: Vec::new(),
            read_refs: Vec::new(),
            read_ref_offsets: Vec::with_capacity(n_ops + 1),
            last_read_before: Vec::with_capacity(n_ops),
            total_ops: 0,
            total_cycles: 0,
        };
        let mut cells = vec![0u64; geom.cells()];
        let mut acc = [0u64; ACC_LANES];
        let mut last_read = [(NO_READ, 0u64); MAX_PORTS];
        let mut time = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let opi = i as u32;
            idx.time_before.push(time);
            idx.responses_before.push(idx.responses.len() as u32);
            idx.read_ref_offsets.push(idx.read_refs.len() as u32);
            idx.last_read_before.push(last_read);
            match *op {
                MemOp::Write { addr, data } => {
                    touch(&mut idx.ops_by_addr, addr, opi);
                    cells[addr as usize] = data;
                    time += 1;
                    idx.total_ops += 1;
                    idx.total_cycles += 1;
                }
                MemOp::ReadExpect { addr, expect }
                | MemOp::ReadStale { addr, expect }
                | MemOp::ReadCapture { addr, expect } => {
                    touch(&mut idx.ops_by_addr, addr, opi);
                    let v = cells[addr as usize];
                    idx.read_refs.push((addr, v));
                    last_read[0] = (opi, v);
                    idx.responses.push(expect);
                    if v != expect {
                        // The expectation diverges from the fault-free
                        // reference (possible only for hand-built
                        // programs): this read flags every lane, so it
                        // must execute in every sliced pass.
                        idx.always_active.push(opi);
                    }
                    time += 1;
                    idx.total_ops += 1;
                    idx.total_cycles += 1;
                }
                MemOp::ReadAny { addr } => {
                    touch(&mut idx.ops_by_addr, addr, opi);
                    let v = cells[addr as usize];
                    idx.read_refs.push((addr, v));
                    last_read[0] = (opi, v);
                    time += 1;
                    idx.total_ops += 1;
                    idx.total_cycles += 1;
                }
                MemOp::AccSet { lane, value } => {
                    idx.always_active.push(opi);
                    acc[lane as usize] = value;
                }
                MemOp::ReadAcc { addr, map, lane } => {
                    idx.always_active.push(opi);
                    touch(&mut idx.ops_by_addr, addr, opi);
                    let v = cells[addr as usize];
                    idx.read_refs.push((addr, v));
                    last_read[0] = (opi, v);
                    acc[lane as usize] ^= apply_map(&maps[map as usize], v);
                    time += 1;
                    idx.total_ops += 1;
                    idx.total_cycles += 1;
                }
                MemOp::WriteAcc { addr, lane } => {
                    idx.always_active.push(opi);
                    idx.forced.push(addr);
                    touch(&mut idx.ops_by_addr, addr, opi);
                    cells[addr as usize] = acc[lane as usize] & mask;
                    time += 1;
                    idx.total_ops += 1;
                    idx.total_cycles += 1;
                }
                MemOp::CycleN { start, len } => {
                    let slots = &slot_tab[start as usize..start as usize + len as usize];
                    idx.total_cycles += 1;
                    let mut write_addrs = [0u32; MAX_PORTS];
                    let mut nw = 0usize;
                    let mut vals = [0u64; MAX_PORTS];
                    let mut acc_slot = false;
                    // Reads observe the pre-cycle state.
                    for (port, &slot) in slots.iter().enumerate() {
                        match slot {
                            SlotOp::Idle => continue,
                            SlotOp::ReadAcc { addr, .. }
                            | SlotOp::ReadExpect { addr, .. }
                            | SlotOp::ReadStale { addr, .. }
                            | SlotOp::ReadCapture { addr, .. } => {
                                touch(&mut idx.ops_by_addr, addr, opi);
                                let v = cells[addr as usize];
                                vals[port] = v;
                                idx.read_refs.push((addr, v));
                                last_read[port] = (opi, v);
                            }
                            SlotOp::Write { addr, .. } | SlotOp::WriteAcc { addr, .. } => {
                                touch(&mut idx.ops_by_addr, addr, opi);
                                write_addrs[nw] = addr;
                                nw += 1;
                            }
                        }
                        time += 1;
                        idx.total_ops += 1;
                    }
                    // A program-level duplicate write address freezes
                    // every lane regardless of the chunk's faults: the
                    // cycle must execute in every sliced pass.
                    if write_addrs[..nw]
                        .iter()
                        .enumerate()
                        .any(|(a, x)| write_addrs[..nw].iter().skip(a + 1).any(|y| y == x))
                    {
                        idx.always_active.push(opi);
                    }
                    // Writes commit after all reads, in slot order, with
                    // pre-cycle accumulator images — the device contract.
                    for &slot in slots {
                        match slot {
                            SlotOp::Write { addr, data } => cells[addr as usize] = data,
                            SlotOp::WriteAcc { addr, lane } => {
                                acc_slot = true;
                                cells[addr as usize] = acc[lane as usize] & mask;
                                idx.forced.push(addr);
                            }
                            _ => {}
                        }
                    }
                    // Fold accumulator reads and collect responses, in
                    // slot order (the interpreter's slot-processing pass).
                    for (port, &slot) in slots.iter().enumerate() {
                        match slot {
                            SlotOp::ReadAcc { map, lane, .. } => {
                                acc_slot = true;
                                acc[lane as usize] ^= apply_map(&maps[map as usize], vals[port]);
                            }
                            SlotOp::ReadExpect { expect, .. }
                            | SlotOp::ReadStale { expect, .. }
                            | SlotOp::ReadCapture { expect, .. } => {
                                idx.responses.push(expect);
                                if vals[port] != expect {
                                    idx.always_active.push(opi);
                                }
                            }
                            _ => {}
                        }
                    }
                    if acc_slot {
                        idx.always_active.push(opi);
                    }
                }
            }
        }
        idx.time_before.push(time);
        idx.responses_before.push(idx.responses.len() as u32);
        idx.read_ref_offsets.push(idx.read_refs.len() as u32);
        idx.always_active.sort_unstable();
        idx.always_active.dedup();
        idx.forced.sort_unstable();
        idx.forced.dedup();
        idx
    }

    /// Geometry the index was built for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// `true` when this index was built for (a program shaped like)
    /// `program` — the cheap configuration guard the sliced entry points
    /// assert.
    pub fn matches(&self, program: &TestProgram) -> bool {
        self.n_ops == program.ops().len() && self.geom == program.geometry()
    }

    /// The `(addr, pre-op reference value)` pairs op `op` reads.
    pub(crate) fn read_refs_for(&self, op: usize) -> &[(u32, u64)] {
        let lo = self.read_ref_offsets[op] as usize;
        let hi = self.read_ref_offsets[op + 1] as usize;
        &self.read_refs[lo..hi]
    }
}

/// Reusable per-chunk scratch for sliced passes: the span-union cell set
/// of a lane chunk's faults plus, after [`ActiveSet::finalize`], the
/// sorted list of ops a sliced pass must execute.
#[derive(Debug, Default)]
pub struct ActiveSet {
    /// Cell-index bitset (lazily grown).
    bits: Vec<u64>,
    /// Cells whose bit is set — the O(#faults) clear list.
    dirty: Vec<u32>,
    /// Sorted, deduplicated active op indices (valid after `finalize`).
    ops: Vec<u32>,
    /// Op-index bitset scratch for [`ActiveSet::finalize`] — collecting
    /// through a bitmap yields the sorted, deduplicated op list without a
    /// per-batch sort.
    op_bits: Vec<u64>,
}

impl ActiveSet {
    /// An empty set; allocations grow on first use and are retained
    /// across [`ActiveSet::clear`] so a pooled set is allocation-free on
    /// the campaign hot path.
    pub fn new() -> ActiveSet {
        ActiveSet::default()
    }

    /// Empties the set in O(#inserted cells), retaining allocations.
    pub fn clear(&mut self) {
        for &c in &self.dirty {
            self.bits[c as usize / 64] = 0;
        }
        self.dirty.clear();
        self.ops.clear();
    }

    fn insert_cell(&mut self, cell: usize) {
        let w = cell / 64;
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let b = 1u64 << (cell % 64);
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.dirty.push(cell as u32);
        }
    }

    /// Adds `fault`'s span cells to the union.
    pub fn insert_fault(&mut self, fault: &FaultKind) {
        fault_cells(fault, &mut |c| self.insert_cell(c));
    }

    /// `true` when `cell` is in the span union (after `finalize`, this
    /// includes the index's forced addresses).
    pub fn contains(&self, cell: usize) -> bool {
        self.bits.get(cell / 64).is_some_and(|w| w >> (cell % 64) & 1 == 1)
    }

    /// Resolves the active-op list against `index`: the union's
    /// per-address op lists, the always-active ops, and the forced
    /// addresses (which also join the union), sorted and deduplicated.
    pub fn finalize(&mut self, index: &ActivityIndex) {
        for &a in &index.forced {
            self.insert_cell(a as usize);
        }
        self.op_bits.clear();
        self.op_bits.resize(index.n_ops.div_ceil(64), 0);
        for &o in &index.always_active {
            self.op_bits[o as usize / 64] |= 1u64 << (o % 64);
        }
        for &c in &self.dirty {
            if let Some(list) = index.ops_by_addr.get(c as usize) {
                for &o in list {
                    self.op_bits[o as usize / 64] |= 1u64 << (o % 64);
                }
            }
        }
        self.ops.clear();
        for (w, &word) in self.op_bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                self.ops.push(w as u32 * 64 + word.trailing_zeros());
                word &= word - 1;
            }
        }
    }

    /// The sorted active op indices (valid after [`ActiveSet::finalize`]).
    pub fn ops(&self) -> &[u32] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::prog::ProgramBuilder;

    fn sample_program() -> TestProgram {
        // A miniature March-like program with a multi-port cycle.
        let mut b = ProgramBuilder::new(Geometry::bom(8));
        for a in 0..8 {
            b.write(a, 0);
        }
        for a in 0..8 {
            b.read_expect(a, 0);
            b.write(a, 1);
        }
        for a in 0..8 {
            b.read_expect(a, 1);
        }
        b.build()
    }

    #[test]
    fn reference_stream_matches_expected_responses() {
        let p = sample_program();
        let idx = ActivityIndex::build(&p);
        let expected: Vec<u64> = p.expected_responses().collect();
        assert_eq!(idx.responses, expected);
        assert_eq!(*idx.responses_before.last().unwrap() as usize, expected.len());
    }

    #[test]
    fn totals_match_full_execution() {
        let p = sample_program();
        let idx = ActivityIndex::build(&p);
        let mut ram = crate::Ram::new(p.geometry());
        let exec = p.execute(&mut ram, false, None).unwrap();
        assert_eq!(idx.total_ops, exec.ops);
        assert_eq!(idx.total_cycles, exec.cycles);
        assert_eq!(*idx.time_before.last().unwrap(), exec.ops, "every device op ticks the clock");
    }

    #[test]
    fn every_op_is_reachable() {
        let p = sample_program();
        let idx = ActivityIndex::build(&p);
        let mut covered = vec![false; p.ops().len()];
        for &o in &idx.always_active {
            covered[o as usize] = true;
        }
        for list in &idx.ops_by_addr {
            for &o in list {
                covered[o as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "no op may be unreachable by any span");
    }

    #[test]
    fn active_set_collects_span_ops() {
        let p = sample_program();
        let idx = ActivityIndex::build(&p);
        let mut set = ActiveSet::new();
        set.insert_fault(&FaultKind::StuckAt { cell: 3, bit: 0, value: 1 });
        set.finalize(&idx);
        // Exactly the four ops touching cell 3 (w0, r0, w1, r1).
        assert_eq!(set.ops(), &idx.ops_by_addr[3][..]);
        assert!(set.contains(3));
        assert!(!set.contains(4));
        set.clear();
        set.insert_fault(&FaultKind::CouplingInversion {
            agg_cell: 1,
            agg_bit: 0,
            victim_cell: 6,
            victim_bit: 0,
            trigger: crate::CouplingTrigger::Rise,
        });
        set.finalize(&idx);
        assert!(set.contains(1) && set.contains(6) && !set.contains(3));
        assert_eq!(set.ops().len(), idx.ops_by_addr[1].len() + idx.ops_by_addr[6].len());
    }

    #[test]
    fn sliced_detect_is_bit_identical_on_a_dense_universe() {
        use crate::batch::LaneRam;
        use crate::universe::{FaultUniverse, UniverseSpec};
        let geom = Geometry::bom(10);
        let n = geom.cells();
        let mut b = ProgramBuilder::new(geom);
        for a in 0..n {
            b.write(a, 0);
        }
        for a in 0..n {
            b.read_expect(a, 0);
            b.write(a, 1);
        }
        for a in (0..n).rev() {
            b.read_expect(a, 1);
            b.write(a, 0);
        }
        for a in 0..n {
            b.read_expect(a, 0);
        }
        let p = b.build();
        let idx = ActivityIndex::build(&p);
        let uni = FaultUniverse::enumerate(geom, &UniverseSpec::full());
        let mut ram: LaneRam<1> = LaneRam::new(geom);
        let mut set = ActiveSet::new();
        for chunk in uni.faults().chunks(64) {
            ram.eject_faults();
            ram.reset_to(0);
            for (lane, f) in chunk.iter().enumerate() {
                ram.inject(f.clone(), lane).unwrap();
            }
            let full = p.detect_batch(&mut ram);
            ram.reset_to(0);
            set.clear();
            for f in chunk {
                set.insert_fault(f);
            }
            set.finalize(&idx);
            let sliced = p.detect_batch_sliced(&mut ram, &idx, &set);
            assert_eq!(sliced, full, "sliced and full verdicts diverged");
        }
    }

    #[test]
    fn locality_key_is_min_span_cell() {
        assert_eq!(fault_locality_key(&FaultKind::StuckAt { cell: 5, bit: 0, value: 0 }), 5);
        assert_eq!(
            fault_locality_key(&FaultKind::CouplingIdempotent {
                agg_cell: 9,
                agg_bit: 0,
                victim_cell: 2,
                victim_bit: 0,
                trigger: crate::CouplingTrigger::Fall,
                force: 1,
            }),
            2
        );
        assert_eq!(fault_locality_key(&FaultKind::DecoderShadow { addr: 4, instead_cell: 7 }), 4);
    }
}
