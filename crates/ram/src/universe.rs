//! Exhaustive fault-universe enumeration.
//!
//! The coverage experiments (E3, E4, E10) and the paper's §3 claim ("all
//! single and multi-cell memory faults are detected in 3 π-test iterations")
//! quantify detection over a *universe*: every instance of the selected
//! fault models on a given geometry. This module enumerates those
//! universes deterministically so the experiment tables are reproducible.

use crate::fault::{CouplingTrigger, FaultKind};
use crate::{Geometry, Ram, SplitMix64, Topology};

/// Which fault classes to include in a universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniverseSpec {
    /// Stuck-at 0/1 on every bit.
    pub saf: bool,
    /// Up/down transition faults on every bit.
    pub tf: bool,
    /// Inversion coupling faults (both triggers) on cell pairs.
    pub cfin: bool,
    /// Idempotent coupling faults (both triggers × both forced values).
    pub cfid: bool,
    /// State coupling faults (both states × both forced values).
    pub cfst: bool,
    /// Address-decoder faults (all three modelled types).
    pub af: bool,
    /// Stuck-open cells.
    pub sof: bool,
    /// Destructive reads.
    pub rdf: bool,
    /// Deceptive destructive reads.
    pub drdf: bool,
    /// Incorrect reads.
    pub irf: bool,
    /// Write disturbs.
    pub wdf: bool,
    /// Restrict coupling pairs to |aggressor − victim| ≤ this distance
    /// (`None` = all ordered pairs; quadratic in the cell count).
    pub coupling_radius: Option<usize>,
    /// Also enumerate *intra-word* coupling faults (aggressor and victim
    /// bits within the same cell) for the enabled coupling classes —
    /// the word-oriented fault family of the paper's §2.
    pub intra_word: bool,
}

impl UniverseSpec {
    /// The classic "all single and multi-cell faults" universe the paper's
    /// §3 claim quantifies over: SAF + TF + CFin + CFid + CFst + AF.
    pub fn paper_claim() -> UniverseSpec {
        UniverseSpec {
            saf: true,
            tf: true,
            cfin: true,
            cfid: true,
            cfst: true,
            af: true,
            ..UniverseSpec::default()
        }
    }

    /// Single-cell static faults only (SAF + TF).
    pub fn single_cell() -> UniverseSpec {
        UniverseSpec { saf: true, tf: true, ..UniverseSpec::default() }
    }

    /// Everything this simulator models.
    pub fn full() -> UniverseSpec {
        UniverseSpec {
            saf: true,
            tf: true,
            cfin: true,
            cfid: true,
            cfst: true,
            af: true,
            sof: true,
            rdf: true,
            drdf: true,
            irf: true,
            wdf: true,
            coupling_radius: None,
            intra_word: true,
        }
    }
}

/// An enumerated universe of single-fault instances on a fixed geometry.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    geom: Geometry,
    faults: Vec<FaultKind>,
    /// The physical topology the enumeration walked (identity unless
    /// built through [`FaultUniverse::enumerate_with`]).
    topology: Topology,
}

impl FaultUniverse {
    /// Enumerates the universe for `spec` on `geom` with the identity
    /// topology (logical = physical).
    pub fn enumerate(geom: Geometry, spec: &UniverseSpec) -> FaultUniverse {
        FaultUniverse::enumerate_with(geom, spec, Topology::identity(geom.cells()))
    }

    /// Enumerates the universe for `spec` on `geom` over a physical
    /// [`Topology`]: the enumeration loops walk **physical** coordinates
    /// — so the coupling radius is physical distance, decoder
    /// neighbour/shadow pairs are physically adjacent/opposite, and every
    /// other family sweeps the array in physical order — while the
    /// emitted [`FaultKind`] fields carry the corresponding **logical**
    /// addresses ([`Topology::to_logical`]), the space test programs and
    /// the port interface operate in. With the identity topology the
    /// walk and the output are bit-identical to [`FaultUniverse::enumerate`].
    ///
    /// # Panics
    ///
    /// Panics when `topology` covers a different cell count than `geom` —
    /// a whole-universe configuration error.
    pub fn enumerate_with(
        geom: Geometry,
        spec: &UniverseSpec,
        topology: Topology,
    ) -> FaultUniverse {
        assert_eq!(
            topology.cells(),
            geom.cells(),
            "topology cell count does not match the geometry"
        );
        let n = geom.cells();
        let m = geom.width();
        let log = |p: usize| topology.to_logical(p);
        let mut faults = Vec::new();

        if spec.saf {
            for cell in (0..n).map(log) {
                for bit in 0..m {
                    faults.push(FaultKind::StuckAt { cell, bit, value: 0 });
                    faults.push(FaultKind::StuckAt { cell, bit, value: 1 });
                }
            }
        }
        if spec.tf {
            for cell in (0..n).map(log) {
                for bit in 0..m {
                    faults.push(FaultKind::Transition { cell, bit, rising: true });
                    faults.push(FaultKind::Transition { cell, bit, rising: false });
                }
            }
        }
        // Physical a-major pair walk: the radius restricts *physical*
        // distance, then each side maps to its logical address.
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|a| (0..n).map(move |v| (a, v)))
            .filter(|&(a, v)| a != v)
            .filter(|&(a, v)| match spec.coupling_radius {
                Some(r) => a.abs_diff(v) <= r,
                None => true,
            })
            .map(|(a, v)| (log(a), log(v)))
            .collect();
        if spec.cfin {
            for &(a, v) in &pairs {
                for (ab, vb) in bit_pairs(m) {
                    for trigger in [CouplingTrigger::Rise, CouplingTrigger::Fall] {
                        faults.push(FaultKind::CouplingInversion {
                            agg_cell: a,
                            agg_bit: ab,
                            victim_cell: v,
                            victim_bit: vb,
                            trigger,
                        });
                    }
                }
            }
        }
        if spec.cfid {
            for &(a, v) in &pairs {
                for (ab, vb) in bit_pairs(m) {
                    for trigger in [CouplingTrigger::Rise, CouplingTrigger::Fall] {
                        for force in [0u8, 1] {
                            faults.push(FaultKind::CouplingIdempotent {
                                agg_cell: a,
                                agg_bit: ab,
                                victim_cell: v,
                                victim_bit: vb,
                                trigger,
                                force,
                            });
                        }
                    }
                }
            }
        }
        if spec.cfst {
            for &(a, v) in &pairs {
                for (ab, vb) in bit_pairs(m) {
                    for agg_state in [0u8, 1] {
                        for force in [0u8, 1] {
                            faults.push(FaultKind::CouplingState {
                                agg_cell: a,
                                agg_bit: ab,
                                agg_state,
                                victim_cell: v,
                                victim_bit: vb,
                                force,
                            });
                        }
                    }
                }
            }
        }
        if spec.intra_word && m > 1 {
            let intra: Vec<(u32, u32)> =
                (0..m).flat_map(|a| (0..m).map(move |v| (a, v))).filter(|&(a, v)| a != v).collect();
            for cell in (0..n).map(log) {
                for &(ab, vb) in &intra {
                    if spec.cfin {
                        for trigger in [CouplingTrigger::Rise, CouplingTrigger::Fall] {
                            faults.push(FaultKind::CouplingInversion {
                                agg_cell: cell,
                                agg_bit: ab,
                                victim_cell: cell,
                                victim_bit: vb,
                                trigger,
                            });
                        }
                    }
                    if spec.cfid {
                        for trigger in [CouplingTrigger::Rise, CouplingTrigger::Fall] {
                            for force in [0u8, 1] {
                                faults.push(FaultKind::CouplingIdempotent {
                                    agg_cell: cell,
                                    agg_bit: ab,
                                    victim_cell: cell,
                                    victim_bit: vb,
                                    trigger,
                                    force,
                                });
                            }
                        }
                    }
                    if spec.cfst {
                        for agg_state in [0u8, 1] {
                            for force in [0u8, 1] {
                                faults.push(FaultKind::CouplingState {
                                    agg_cell: cell,
                                    agg_bit: ab,
                                    agg_state,
                                    victim_cell: cell,
                                    victim_bit: vb,
                                    force,
                                });
                            }
                        }
                    }
                }
            }
        }
        if spec.af {
            // Decoder faults pair *physically* related addresses: the
            // extra cell is the physical successor, the shadow sits
            // half the array away — both mapped to logical addresses.
            for addr in (0..n).map(log) {
                faults.push(FaultKind::DecoderNoAccess { addr });
            }
            for p in 0..n {
                let extra = log((p + 1) % n);
                faults.push(FaultKind::DecoderExtraCell { addr: log(p), extra_cell: extra });
                let instead_p = (p + n / 2).max(p + 1) % n;
                if instead_p != p {
                    faults.push(FaultKind::DecoderShadow {
                        addr: log(p),
                        instead_cell: log(instead_p),
                    });
                }
            }
        }
        if spec.sof {
            for cell in (0..n).map(log) {
                faults.push(FaultKind::StuckOpen { cell });
            }
        }
        for cell in (0..n).map(log) {
            for bit in 0..m {
                if spec.rdf {
                    faults.push(FaultKind::ReadDestructive { cell, bit });
                }
                if spec.drdf {
                    faults.push(FaultKind::DeceptiveRead { cell, bit });
                }
                if spec.irf {
                    faults.push(FaultKind::IncorrectRead { cell, bit });
                }
                if spec.wdf {
                    faults.push(FaultKind::WriteDisturb { cell, bit });
                }
            }
        }
        FaultUniverse { geom, faults, topology }
    }

    /// Geometry the universe was enumerated for.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The physical topology the enumeration walked.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of fault instances.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault instances.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Iterates `(fault, fresh single-fault memory)` pairs.
    pub fn instances(&self) -> impl Iterator<Item = (FaultKind, Ram)> + '_ {
        self.faults.iter().map(move |f| {
            let mut ram = Ram::new(self.geom);
            ram.inject(f.clone()).expect("enumerated faults are valid");
            (f.clone(), ram)
        })
    }

    /// Iterates `(fault, fresh P-port single-fault memory)` pairs.
    pub fn instances_with_ports(
        &self,
        ports: usize,
    ) -> impl Iterator<Item = (FaultKind, Ram)> + '_ {
        self.faults.iter().map(move |f| {
            let mut ram = Ram::with_ports(self.geom, ports).expect("port count validated");
            ram.inject(f.clone()).expect("enumerated faults are valid");
            (f.clone(), ram)
        })
    }

    /// Deterministically subsamples the universe down to at most `max`
    /// instances (keeps tables tractable for large geometries). The sample
    /// is seeded so every run selects the same instances.
    pub fn sample(mut self, max: usize, seed: u64) -> FaultUniverse {
        if self.faults.len() > max {
            let mut rng = SplitMix64::new(seed);
            rng.shuffle(&mut self.faults);
            self.faults.truncate(max);
        }
        self
    }

    /// Counts instances per mnemonic, for table headers.
    pub fn census(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        for f in &self.faults {
            let m = f.mnemonic();
            match out.iter_mut().find(|(k, _)| *k == m) {
                Some((_, c)) => *c += 1,
                None => out.push((m, 1)),
            }
        }
        out
    }
}

/// The read/write-logic families in their enumeration order inside each
/// `(cell, bit)` sub-block of [`FaultUniverse::enumerate`]'s final loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RwKind {
    Rdf,
    Drdf,
    Irf,
    Wdf,
}

/// A **lazily enumerated** dense single-cell universe: the same fault
/// sequence [`FaultUniverse::enumerate`] would materialize for a spec
/// without coupling families, but computed on demand with O(1) random
/// access and O(1) memory.
///
/// Long-running services take jobs at `n ≥ 2²⁰`, where the dense universe
/// (`2(SAF) + 2(TF) + ~3(AF)/n + 1(SOF) + 4(RW)` instances per bit) runs
/// to tens of millions of `FaultKind`s — materializing it up front costs
/// hundreds of megabytes before the first trial runs. `LazyUniverse`
/// instead maps a universe **index** straight to its `FaultKind`, so a
/// shard scheduler can materialize one segment at a time and drop it when
/// the segment completes.
///
/// The enumeration **order is a contract**: `LazyUniverse` produces
/// exactly the sequence `FaultUniverse::enumerate(geom, spec).faults()`
/// yields for the same spec (asserted index-for-index in tests), so
/// verdict tables, checkpoints and streamed coverage deltas keyed by
/// universe index mean the same thing on either path.
///
/// Coupling families (CFin/CFid/CFst) enumerate over cell *pairs* — a
/// quadratic space callers restrict with
/// [`UniverseSpec::coupling_radius`]. The radius-filtered pair count per
/// aggressor is closed-form, so an index maps to its `(aggressor,
/// victim)` pair by inverting the pair-prefix function (a binary search
/// over aggressors — O(log n) arithmetic, still O(1) memory and
/// allocation-free); every other family decodes in O(1).
///
/// # Example
///
/// ```
/// use prt_ram::{FaultUniverse, Geometry, LazyUniverse, UniverseSpec};
///
/// let geom = Geometry::bom(1 << 10);
/// let spec = UniverseSpec { saf: true, tf: true, sof: true, ..UniverseSpec::default() };
/// let lazy = LazyUniverse::new(geom, spec);
/// let eager = FaultUniverse::enumerate(geom, &spec);
/// assert_eq!(lazy.len(), eager.len());
/// assert_eq!(lazy.fault(4321), eager.faults()[4321]);
/// ```
#[derive(Debug, Clone)]
pub struct LazyUniverse {
    geom: Geometry,
    /// Physical topology: decoded block coordinates are physical and map
    /// through [`Topology::to_logical`] on the way out — O(stage count)
    /// per lookup, no tables, so index→fault stays O(1) under scrambling.
    topology: Topology,
    /// Block sizes in enumeration order; an absent family contributes 0.
    saf: usize,
    tf: usize,
    cfin: usize,
    cfid: usize,
    cfst: usize,
    /// The intra-word coupling block (one sub-block per cell, the enabled
    /// classes interleaved per intra-cell bit pair).
    intra: usize,
    af: usize,
    sof: usize,
    /// Enabled coupling classes `[cfin, cfid, cfst]` — block sizes alone
    /// cannot recover these when the pair space is empty (n = 1 or
    /// radius 0) but the intra-word block is not.
    cf_on: [bool; 3],
    /// Effective coupling radius (clamped to `n - 1`; `n - 1` = all pairs).
    radius: usize,
    /// The enabled read/write-logic families, in sub-block order.
    rw_kinds: [Option<RwKind>; 4],
    rw_per_bit: usize,
    total: usize,
}

/// Number of radius-filtered ordered coupling pairs whose aggressor is
/// `< a` — the closed form of `Σ_{x<a} [min(n-1, x+r) − max(0, x−r)]`,
/// the per-aggressor victim counts of [`FaultUniverse::enumerate`]'s
/// a-major pair order. Requires `n ≥ 1` and `r ≤ n − 1`.
fn pair_prefix(n: usize, r: usize, a: usize) -> usize {
    // Σ min(n-1, x+r): linear (x + r) up to x = n-1-r, saturated after.
    let c1 = a.min(n - r);
    let sum_upper = c1 * r + c1 * (c1.saturating_sub(1)) / 2 + (a - c1) * (n - 1);
    // Σ max(0, x-r): zero up to x = r, then 1, 2, …
    let c2 = a.saturating_sub(r + 1);
    let sum_lower = c2 * (c2 + 1) / 2;
    sum_upper - sum_lower
}

/// The `idx`-th radius-filtered ordered pair in a-major order: binary
/// search for the aggressor (largest `a` with `pair_prefix(a) ≤ idx`),
/// then the victim by offset within `a`'s window, skipping `a` itself.
fn pair_at(n: usize, r: usize, idx: usize) -> (usize, usize) {
    let (mut lo, mut hi) = (0usize, n);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if pair_prefix(n, r, mid) <= idx {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let a = lo;
    let local = idx - pair_prefix(n, r, a);
    let mut v = a.saturating_sub(r) + local;
    if v >= a {
        v += 1;
    }
    (a, v)
}

/// `bit_pairs(m).len()` without the allocation: 1 for BOM, `2m` for WOM.
fn bit_pair_count(m: u32) -> usize {
    if m == 1 {
        1
    } else {
        2 * m as usize
    }
}

/// The `idx`-th entry of [`bit_pairs`]: the `m` same-bit pairs, then the
/// `m` diagonal-neighbour pairs.
fn bit_pair_at(m: u32, idx: usize) -> (u32, u32) {
    if m == 1 {
        return (0, 0);
    }
    let idx = idx as u32;
    if idx < m {
        (idx, idx)
    } else {
        (idx - m, (idx - m + 1) % m)
    }
}

/// The `idx`-th intra-word bit pair in a-major `a ≠ v` order.
fn intra_pair_at(m: usize, idx: usize) -> (u32, u32) {
    let a = idx / (m - 1);
    let o = idx % (m - 1);
    let v = if o < a { o } else { o + 1 };
    (a as u32, v as u32)
}

impl LazyUniverse {
    /// The lazy enumerator for `spec` on `geom`. Every spec enumerates
    /// lazily — coupling families included, via the closed-form pair
    /// arithmetic above — so services never need to materialize a
    /// universe up front.
    pub fn new(geom: Geometry, spec: UniverseSpec) -> LazyUniverse {
        LazyUniverse::new_with(geom, spec, Topology::identity(geom.cells()))
    }

    /// [`LazyUniverse::new`] over a physical [`Topology`] — the lazy
    /// counterpart of [`FaultUniverse::enumerate_with`], index-for-index
    /// identical to it for every spec (asserted in tests). Block sizes
    /// are topology-independent (a bijection renames addresses without
    /// changing counts), so only the per-index decode maps coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `topology` covers a different cell count than `geom`.
    pub fn new_with(geom: Geometry, spec: UniverseSpec, topology: Topology) -> LazyUniverse {
        assert_eq!(
            topology.cells(),
            geom.cells(),
            "topology cell count does not match the geometry"
        );
        let n = geom.cells();
        let m = geom.width() as usize;
        let bits = n * m;
        let mut rw_kinds = [None; 4];
        let mut rw_per_bit = 0usize;
        for (kind, enabled) in [
            (RwKind::Rdf, spec.rdf),
            (RwKind::Drdf, spec.drdf),
            (RwKind::Irf, spec.irf),
            (RwKind::Wdf, spec.wdf),
        ] {
            if enabled {
                rw_kinds[rw_per_bit] = Some(kind);
                rw_per_bit += 1;
            }
        }
        // AF sub-blocks: n no-access entries, then per address one extra
        // plus one shadow — the shadow target `(addr + n/2).max(addr + 1)
        // % n` differs from `addr` for every n ≥ 2, and never exists for
        // n = 1 (mirrors the conditional in `enumerate`).
        let af = if spec.af {
            if n >= 2 {
                3 * n
            } else {
                2 * n
            }
        } else {
            0
        };
        let radius = spec.coupling_radius.unwrap_or(n - 1).min(n - 1);
        let pairs = pair_prefix(n, radius, n);
        let bp = bit_pair_count(geom.width());
        let cf_on = [spec.cfin, spec.cfid, spec.cfst];
        let intra_stride =
            2 * usize::from(spec.cfin) + 4 * usize::from(spec.cfid) + 4 * usize::from(spec.cfst);
        let u = LazyUniverse {
            geom,
            topology,
            saf: if spec.saf { 2 * bits } else { 0 },
            tf: if spec.tf { 2 * bits } else { 0 },
            cfin: if spec.cfin { pairs * bp * 2 } else { 0 },
            cfid: if spec.cfid { pairs * bp * 4 } else { 0 },
            cfst: if spec.cfst { pairs * bp * 4 } else { 0 },
            intra: if spec.intra_word && m > 1 { n * m * (m - 1) * intra_stride } else { 0 },
            af,
            sof: if spec.sof { n } else { 0 },
            cf_on,
            radius,
            rw_kinds,
            rw_per_bit,
            total: 0,
        };
        let total =
            u.saf + u.tf + u.cfin + u.cfid + u.cfst + u.intra + u.af + u.sof + bits * rw_per_bit;
        LazyUniverse { total, ..u }
    }

    /// Geometry the universe enumerates over.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The physical topology the enumeration walks.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of fault instances.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when the spec enables no family on this geometry.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The fault at universe index `i` — allocation-free; O(1) for every
    /// family except the pair-coupling blocks, whose aggressor lookup is
    /// an O(log n) binary search on the closed-form pair prefix.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn fault(&self, i: usize) -> FaultKind {
        assert!(i < self.total, "universe index {i} out of range for {} instances", self.total);
        let n = self.geom.cells();
        let m = self.geom.width() as usize;
        // Block decode yields *physical* coordinates; addresses map to
        // logical on the way out (identity topology: log(p) = p).
        let log = |p: usize| self.topology.to_logical(p);
        let mut i = i;
        if i < self.saf {
            let (cell, rem) = (log(i / (2 * m)), i % (2 * m));
            return FaultKind::StuckAt { cell, bit: (rem / 2) as u32, value: (rem % 2) as u8 };
        }
        i -= self.saf;
        if i < self.tf {
            let (cell, rem) = (log(i / (2 * m)), i % (2 * m));
            return FaultKind::Transition { cell, bit: (rem / 2) as u32, rising: rem % 2 == 0 };
        }
        i -= self.tf;
        let bp = bit_pair_count(self.geom.width());
        if i < self.cfin {
            let (pair, rem) = (i / (bp * 2), i % (bp * 2));
            let (a, v) = pair_at(n, self.radius, pair);
            let (a, v) = (log(a), log(v));
            let (ab, vb) = bit_pair_at(m as u32, rem / 2);
            let trigger = if rem % 2 == 0 { CouplingTrigger::Rise } else { CouplingTrigger::Fall };
            return FaultKind::CouplingInversion {
                agg_cell: a,
                agg_bit: ab,
                victim_cell: v,
                victim_bit: vb,
                trigger,
            };
        }
        i -= self.cfin;
        if i < self.cfid {
            let (pair, rem) = (i / (bp * 4), i % (bp * 4));
            let (a, v) = pair_at(n, self.radius, pair);
            let (a, v) = (log(a), log(v));
            let (ab, vb) = bit_pair_at(m as u32, rem / 4);
            let sel = rem % 4;
            let trigger = if sel / 2 == 0 { CouplingTrigger::Rise } else { CouplingTrigger::Fall };
            return FaultKind::CouplingIdempotent {
                agg_cell: a,
                agg_bit: ab,
                victim_cell: v,
                victim_bit: vb,
                trigger,
                force: (sel % 2) as u8,
            };
        }
        i -= self.cfid;
        if i < self.cfst {
            let (pair, rem) = (i / (bp * 4), i % (bp * 4));
            let (a, v) = pair_at(n, self.radius, pair);
            let (a, v) = (log(a), log(v));
            let (ab, vb) = bit_pair_at(m as u32, rem / 4);
            let sel = rem % 4;
            return FaultKind::CouplingState {
                agg_cell: a,
                agg_bit: ab,
                agg_state: (sel / 2) as u8,
                victim_cell: v,
                victim_bit: vb,
                force: (sel % 2) as u8,
            };
        }
        i -= self.cfst;
        if i < self.intra {
            // Per cell: every a-major intra-word bit pair, the enabled
            // classes interleaved {CFin:2, CFid:4, CFst:4} per pair.
            let stride = 2 * usize::from(self.cf_on[0])
                + 4 * usize::from(self.cf_on[1])
                + 4 * usize::from(self.cf_on[2]);
            let cell_block = m * (m - 1) * stride;
            let (cell, rem) = (log(i / cell_block), i % cell_block);
            let (pidx, mut k) = (rem / stride, rem % stride);
            let (ab, vb) = intra_pair_at(m, pidx);
            if self.cf_on[0] {
                if k < 2 {
                    let trigger =
                        if k == 0 { CouplingTrigger::Rise } else { CouplingTrigger::Fall };
                    return FaultKind::CouplingInversion {
                        agg_cell: cell,
                        agg_bit: ab,
                        victim_cell: cell,
                        victim_bit: vb,
                        trigger,
                    };
                }
                k -= 2;
            }
            if self.cf_on[1] {
                if k < 4 {
                    let trigger =
                        if k / 2 == 0 { CouplingTrigger::Rise } else { CouplingTrigger::Fall };
                    return FaultKind::CouplingIdempotent {
                        agg_cell: cell,
                        agg_bit: ab,
                        victim_cell: cell,
                        victim_bit: vb,
                        trigger,
                        force: (k % 2) as u8,
                    };
                }
                k -= 4;
            }
            return FaultKind::CouplingState {
                agg_cell: cell,
                agg_bit: ab,
                agg_state: (k / 2) as u8,
                victim_cell: cell,
                victim_bit: vb,
                force: (k % 2) as u8,
            };
        }
        i -= self.intra;
        if i < self.af {
            if i < n {
                return FaultKind::DecoderNoAccess { addr: log(i) };
            }
            let j = i - n;
            if n < 2 {
                return FaultKind::DecoderExtraCell { addr: log(j), extra_cell: log((j + 1) % n) };
            }
            let addr = j / 2;
            return if j.is_multiple_of(2) {
                FaultKind::DecoderExtraCell { addr: log(addr), extra_cell: log((addr + 1) % n) }
            } else {
                FaultKind::DecoderShadow {
                    addr: log(addr),
                    instead_cell: log((addr + n / 2).max(addr + 1) % n),
                }
            };
        }
        i -= self.af;
        if i < self.sof {
            return FaultKind::StuckOpen { cell: log(i) };
        }
        i -= self.sof;
        let (cb, sel) = (i / self.rw_per_bit, i % self.rw_per_bit);
        let (cell, bit) = (log(cb / m), (cb % m) as u32);
        match self.rw_kinds[sel].expect("selector within enabled families") {
            RwKind::Rdf => FaultKind::ReadDestructive { cell, bit },
            RwKind::Drdf => FaultKind::DeceptiveRead { cell, bit },
            RwKind::Irf => FaultKind::IncorrectRead { cell, bit },
            RwKind::Wdf => FaultKind::WriteDisturb { cell, bit },
        }
    }

    /// Iterates the whole universe lazily, in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = FaultKind> + '_ {
        (0..self.total).map(move |i| self.fault(i))
    }

    /// Materializes the index range `[lo, hi)` — the shard primitive: a
    /// scheduler holds one segment's faults at a time, never the universe.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, lo: usize, hi: usize) -> Vec<FaultKind> {
        assert!(lo <= hi && hi <= self.total, "slice {lo}..{hi} out of range");
        (lo..hi).map(|i| self.fault(i)).collect()
    }

    /// Materializes the whole universe — bit-identical to
    /// [`FaultUniverse::enumerate_with`] for this spec and topology.
    pub fn materialize(&self) -> FaultUniverse {
        FaultUniverse {
            geom: self.geom,
            faults: self.iter().collect(),
            topology: self.topology.clone(),
        }
    }
}

fn bit_pairs(m: u32) -> Vec<(u32, u32)> {
    // For BOM this is just (0,0); for WOM include same-bit cross-cell pairs
    // plus a diagonal neighbour to exercise intra-bit-position couplings
    // without exploding the universe (m² pairs per cell pair otherwise).
    if m == 1 {
        vec![(0, 0)]
    } else {
        let mut v: Vec<(u32, u32)> = (0..m).map(|b| (b, b)).collect();
        v.extend((0..m).map(|b| (b, (b + 1) % m)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_universe_counts() {
        let g = Geometry::bom(8);
        let u = FaultUniverse::enumerate(g, &UniverseSpec::single_cell());
        // 8 cells × (2 SAF + 2 TF) = 32
        assert_eq!(u.len(), 32);
        let census = u.census();
        assert!(census.contains(&("SAF", 16)));
        assert!(census.contains(&("TF", 16)));
    }

    #[test]
    fn paper_claim_universe_counts() {
        let g = Geometry::bom(4);
        let u = FaultUniverse::enumerate(g, &UniverseSpec::paper_claim());
        // pairs = 4·3 = 12
        // SAF 8, TF 8, CFin 12·2 = 24, CFid 12·4 = 48, CFst 12·4 = 48,
        // AF: 4 none + 4 extra + shadows (addr where instead != addr).
        let census = u.census();
        assert!(census.contains(&("SAF", 8)));
        assert!(census.contains(&("TF", 8)));
        assert!(census.contains(&("CFin", 24)));
        assert!(census.contains(&("CFid", 48)));
        assert!(census.contains(&("CFst", 48)));
        assert!(census.iter().any(|&(k, c)| k == "AF" && c >= 8));
    }

    #[test]
    fn coupling_radius_limits_pairs() {
        let g = Geometry::bom(16);
        let spec = UniverseSpec { cfin: true, coupling_radius: Some(1), ..Default::default() };
        let u = FaultUniverse::enumerate(g, &spec);
        // adjacent ordered pairs: 2·15 = 30, × 2 triggers = 60
        assert_eq!(u.len(), 60);
    }

    #[test]
    fn instances_are_single_fault_memories() {
        let g = Geometry::bom(4);
        let u = FaultUniverse::enumerate(g, &UniverseSpec::single_cell());
        for (fault, ram) in u.instances() {
            assert_eq!(ram.fault_bank().len(), 1);
            assert_eq!(ram.fault_bank().faults()[0], fault);
        }
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let g = Geometry::bom(16);
        let u1 = FaultUniverse::enumerate(g, &UniverseSpec::paper_claim()).sample(50, 7);
        let u2 = FaultUniverse::enumerate(g, &UniverseSpec::paper_claim()).sample(50, 7);
        assert_eq!(u1.len(), 50);
        assert_eq!(u1.faults(), u2.faults());
    }

    #[test]
    fn wom_universe_includes_intra_bit_pairs() {
        let g = Geometry::wom(4, 4).unwrap();
        let spec = UniverseSpec { cfin: true, coupling_radius: Some(1), ..Default::default() };
        let u = FaultUniverse::enumerate(g, &spec);
        assert!(u
            .faults()
            .iter()
            .any(|f| matches!(f, FaultKind::CouplingInversion { agg_bit: 1, victim_bit: 2, .. })));
    }

    /// Every spec × geometry combination — coupling families included:
    /// the lazy enumerator must reproduce the materialized sequence
    /// index-for-index — the order contract services rely on for sharded
    /// streaming.
    #[test]
    fn lazy_universe_matches_enumerate() {
        let dense_full =
            UniverseSpec { cfin: false, cfid: false, cfst: false, ..UniverseSpec::full() };
        let specs = [
            UniverseSpec::single_cell(),
            UniverseSpec { saf: true, ..UniverseSpec::default() },
            UniverseSpec { af: true, ..UniverseSpec::default() },
            UniverseSpec { sof: true, irf: true, ..UniverseSpec::default() },
            UniverseSpec { rdf: true, drdf: true, irf: true, wdf: true, ..Default::default() },
            dense_full,
            UniverseSpec::paper_claim(),
            UniverseSpec::full(),
            UniverseSpec { cfin: true, ..UniverseSpec::default() },
            UniverseSpec { cfst: true, coupling_radius: Some(0), ..UniverseSpec::default() },
            UniverseSpec {
                cfin: true,
                cfid: true,
                coupling_radius: Some(1),
                ..UniverseSpec::default()
            },
            UniverseSpec {
                cfid: true,
                cfst: true,
                coupling_radius: Some(2),
                intra_word: true,
                ..UniverseSpec::default()
            },
            UniverseSpec { coupling_radius: Some(3), ..UniverseSpec::full() },
        ];
        let geoms =
            [Geometry::bom(1), Geometry::bom(2), Geometry::bom(13), Geometry::wom(6, 4).unwrap()];
        for geom in geoms {
            for spec in specs {
                let lazy = LazyUniverse::new(geom, spec);
                let eager = FaultUniverse::enumerate(geom, &spec);
                assert_eq!(lazy.len(), eager.len(), "{geom:?} {spec:?}");
                let all: Vec<FaultKind> = lazy.iter().collect();
                assert_eq!(all.as_slice(), eager.faults(), "{geom:?} {spec:?}");
                // Random access agrees with iteration.
                for i in [0, lazy.len() / 3, lazy.len().saturating_sub(1)] {
                    if i < lazy.len() {
                        assert_eq!(lazy.fault(i), eager.faults()[i]);
                    }
                }
                // Shard slices tile the universe.
                let mid = lazy.len() / 2;
                let mut tiled = lazy.slice(0, mid);
                tiled.extend(lazy.slice(mid, lazy.len()));
                assert_eq!(tiled.as_slice(), eager.faults());
                assert_eq!(lazy.materialize().faults(), eager.faults());
            }
        }
    }

    /// The pair-coupling blocks stay O(1) in memory at service scale: a
    /// universe far too large to materialize still answers point lookups,
    /// and its tail decodes past the quadratic coupling region correctly.
    #[test]
    fn lazy_universe_coupling_scales_without_materializing() {
        let n = 1 << 16;
        let geom = Geometry::bom(n);
        let spec = UniverseSpec::paper_claim(); // unbounded radius: ~n² pairs
        let lazy = LazyUniverse::new(geom, spec);
        // SAF 2n + TF 2n + (CFin 2 + CFid 4 + CFst 4 per pair) × n(n-1)
        // + AF 3n.
        let pairs = n * (n - 1);
        assert_eq!(lazy.len(), 2 * n + 2 * n + 10 * pairs + 3 * n);
        // First coupling entry: pair (0, 1), Rise.
        assert_eq!(
            lazy.fault(4 * n),
            FaultKind::CouplingInversion {
                agg_cell: 0,
                agg_bit: 0,
                victim_cell: 1,
                victim_bit: 0,
                trigger: CouplingTrigger::Rise,
            }
        );
        // Last coupling entry: pair (n-1, n-2), CFst agg_state 1 force 1.
        assert_eq!(
            lazy.fault(4 * n + 10 * pairs - 1),
            FaultKind::CouplingState {
                agg_cell: n - 1,
                agg_bit: 0,
                agg_state: 1,
                victim_cell: n - 2,
                victim_bit: 0,
                force: 1,
            }
        );
        // First entry after the coupling blocks: the AF block.
        assert_eq!(lazy.fault(4 * n + 10 * pairs), FaultKind::DecoderNoAccess { addr: 0 });
    }

    /// Scrambled enumeration keeps the lazy/eager order contract: for
    /// generated topologies the lazy decode must reproduce the
    /// materialized walk index-for-index, and the identity topology must
    /// be bit-identical to the legacy (topology-free) path.
    #[test]
    fn lazy_universe_matches_enumerate_under_topologies() {
        let specs = [
            UniverseSpec::paper_claim(),
            UniverseSpec::full(),
            UniverseSpec { coupling_radius: Some(2), ..UniverseSpec::full() },
        ];
        let geoms = [Geometry::bom(8), Geometry::bom(13), Geometry::wom(6, 4).unwrap()];
        for geom in geoms {
            for spec in specs {
                for seed in 1u64..4 {
                    let topo = Topology::generate(geom.cells(), seed);
                    let lazy = LazyUniverse::new_with(geom, spec, topo.clone());
                    let eager = FaultUniverse::enumerate_with(geom, &spec, topo.clone());
                    assert_eq!(lazy.len(), eager.len(), "{geom:?} {spec:?} seed {seed}");
                    let all: Vec<FaultKind> = lazy.iter().collect();
                    assert_eq!(all.as_slice(), eager.faults(), "{geom:?} {spec:?} seed {seed}");
                }
                let id =
                    FaultUniverse::enumerate_with(geom, &spec, Topology::identity(geom.cells()));
                assert_eq!(id.faults(), FaultUniverse::enumerate(geom, &spec).faults());
                assert!(id.topology().is_identity());
            }
        }
    }

    /// A pure cell permutation renames addresses without changing what
    /// exists: family censuses (and for radius-free specs, the fault
    /// *sets* of the position-free families) are topology-invariant.
    #[test]
    fn scrambled_universe_is_a_relabelling() {
        let geom = Geometry::bom(16);
        let spec = UniverseSpec::paper_claim();
        let id = FaultUniverse::enumerate(geom, &spec);
        let topo = Topology::identity(16).then_swizzle(Scrambler::reversed(4)).unwrap();
        let scrambled = FaultUniverse::enumerate_with(geom, &spec, topo);
        assert_eq!(id.census(), scrambled.census());
        let set = |u: &FaultUniverse| {
            let mut v: Vec<String> = u.faults().iter().map(|f| format!("{f:?}")).collect();
            v.sort();
            v
        };
        // Radius-free coupling + SAF/TF blocks cover all pairs/cells, so
        // the sets match; only AF pairing depends on physical adjacency.
        let strip_af = |u: &FaultUniverse| {
            let mut v: Vec<String> = u
                .faults()
                .iter()
                .filter(|f| f.mnemonic() != "AF")
                .map(|f| format!("{f:?}"))
                .collect();
            v.sort();
            v
        };
        assert_eq!(strip_af(&id), strip_af(&scrambled));
        assert_ne!(set(&id), set(&scrambled), "AF neighbour pairs are physical");
    }

    use crate::Scrambler;

    #[test]
    #[should_panic(expected = "universe index")]
    fn lazy_universe_index_bounds_are_loud() {
        let lazy = LazyUniverse::new(Geometry::bom(4), UniverseSpec::single_cell());
        let _ = lazy.fault(lazy.len());
    }

    #[test]
    fn full_universe_has_every_mnemonic() {
        let g = Geometry::bom(4);
        let u = FaultUniverse::enumerate(g, &UniverseSpec::full());
        let census = u.census();
        for k in ["SAF", "TF", "CFin", "CFid", "CFst", "AF", "SOF", "RDF", "DRDF", "IRF", "WDF"] {
            assert!(census.iter().any(|&(m, _)| m == k), "missing {k}");
        }
    }
}
