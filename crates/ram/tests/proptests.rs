//! Property-based tests for the RAM simulator: model equivalence and
//! fault-semantics invariants under random operation sequences.

use proptest::prelude::*;
use prt_ram::{FaultKind, Geometry, PortOp, Ram};

#[derive(Debug, Clone)]
enum Action {
    Read(usize),
    Write(usize, u64),
}

fn arb_actions(n: usize, mask: u64) -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        (0usize..n, any::<u64>(), any::<bool>()).prop_map(move |(a, d, is_read)| {
            if is_read {
                Action::Read(a)
            } else {
                Action::Write(a, d & mask)
            }
        }),
        1..80,
    )
}

/// One random single-bit fault on an `n`-cell bit-oriented memory,
/// spanning every steady-state fault family the pooled campaign engine
/// recycles devices across.
fn arb_fault(n: usize) -> impl Strategy<Value = FaultKind> {
    (0usize..10, 0usize..n, 0usize..n, any::<bool>(), any::<bool>()).prop_map(
        move |(kind, a, b, flag, flag2)| {
            let v = (a + 1 + usize::from(a == b)) % n; // distinct second site
            let trigger =
                if flag2 { prt_ram::CouplingTrigger::Rise } else { prt_ram::CouplingTrigger::Fall };
            match kind {
                0 => FaultKind::StuckAt { cell: a, bit: 0, value: u8::from(flag) },
                1 => FaultKind::Transition { cell: a, bit: 0, rising: flag },
                2 => FaultKind::CouplingInversion {
                    agg_cell: a,
                    agg_bit: 0,
                    victim_cell: v,
                    victim_bit: 0,
                    trigger,
                },
                3 => FaultKind::CouplingIdempotent {
                    agg_cell: a,
                    agg_bit: 0,
                    victim_cell: v,
                    victim_bit: 0,
                    trigger,
                    force: u8::from(flag),
                },
                4 => FaultKind::CouplingState {
                    agg_cell: a,
                    agg_bit: 0,
                    agg_state: u8::from(flag2),
                    victim_cell: v,
                    victim_bit: 0,
                    force: u8::from(flag),
                },
                5 => FaultKind::StuckOpen { cell: a },
                6 => FaultKind::ReadDestructive { cell: a, bit: 0 },
                7 => FaultKind::DeceptiveRead { cell: a, bit: 0 },
                8 => FaultKind::WriteDisturb { cell: a, bit: 0 },
                _ => FaultKind::DecoderShadow { addr: a, instead_cell: v },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A fault-free RAM is observationally equivalent to a plain vector
    /// under arbitrary operation sequences (the golden model).
    #[test]
    fn fault_free_ram_equals_vector_model(actions in arb_actions(16, 0xF)) {
        let geom = Geometry::wom(16, 4).unwrap();
        let mut ram = Ram::new(geom);
        let mut model = [0u64; 16];
        for act in &actions {
            match *act {
                Action::Read(a) => prop_assert_eq!(ram.read(a), model[a]),
                Action::Write(a, d) => {
                    ram.write(a, d);
                    model[a] = d;
                }
            }
        }
        // Raw storage matches the model too.
        for (c, &m) in model.iter().enumerate() {
            prop_assert_eq!(ram.peek(c), m);
        }
        prop_assert_eq!(ram.stats().ops(), actions.len() as u64);
    }

    /// A stuck-at bit reads its stuck value after EVERY operation sequence.
    #[test]
    fn stuck_bit_always_stuck(
        actions in arb_actions(8, 1),
        cell in 0usize..8,
        value in 0u8..2,
    ) {
        let mut ram = Ram::new(Geometry::bom(8));
        ram.inject(FaultKind::StuckAt { cell, bit: 0, value }).unwrap();
        for act in &actions {
            match *act {
                Action::Read(a) => {
                    let v = ram.read(a);
                    if a == cell {
                        prop_assert_eq!(v, u64::from(value));
                    }
                }
                Action::Write(a, d) => ram.write(a, d),
            }
        }
        prop_assert_eq!(ram.read(cell), u64::from(value));
    }

    /// An up-transition fault never lets the bit rise via writes, while
    /// falls always succeed.
    #[test]
    fn transition_fault_monotone(actions in arb_actions(8, 1), cell in 0usize..8) {
        let mut ram = Ram::new(Geometry::bom(8));
        ram.inject(FaultKind::Transition { cell, bit: 0, rising: true }).unwrap();
        for act in &actions {
            match *act {
                Action::Read(a) => { let _ = ram.read(a); }
                Action::Write(a, d) => {
                    ram.write(a, d);
                    if a == cell {
                        // Starting from 0, the cell can never become 1.
                        prop_assert_eq!(ram.peek(cell), 0);
                    }
                }
            }
        }
    }

    /// Incorrect-read faults never change storage.
    #[test]
    fn irf_preserves_storage(actions in arb_actions(8, 1), cell in 0usize..8) {
        let mut ram = Ram::new(Geometry::bom(8));
        ram.inject(FaultKind::IncorrectRead { cell, bit: 0 }).unwrap();
        let mut model = [0u64; 8];
        for act in &actions {
            match *act {
                Action::Read(a) => {
                    let v = ram.read(a);
                    if a == cell {
                        prop_assert_eq!(v, model[a] ^ 1, "IRF complements the output");
                    } else {
                        prop_assert_eq!(v, model[a]);
                    }
                }
                Action::Write(a, d) => {
                    ram.write(a, d);
                    model[a] = d;
                }
            }
            prop_assert_eq!(ram.peek(cell), model[cell], "storage must be intact");
        }
    }

    /// Multi-port cycles with disjoint writes equal the same ops issued
    /// sequentially through one port.
    #[test]
    fn dual_port_disjoint_writes_equal_sequential(
        pairs in prop::collection::vec((0usize..8, 8usize..16, 0u64..2, 0u64..2), 1..30),
    ) {
        let geom = Geometry::bom(16);
        let mut dual = Ram::with_ports(geom, 2).unwrap();
        let mut seq = Ram::new(geom);
        for &(a, b, da, db) in &pairs {
            dual.cycle(&[
                PortOp::Write { addr: a, data: da },
                PortOp::Write { addr: b, data: db },
            ]).unwrap();
            seq.write(a, da);
            seq.write(b, db);
        }
        for c in 0..16 {
            prop_assert_eq!(dual.peek(c), seq.peek(c), "cell {}", c);
        }
        // Cycle accounting: one cycle per pair vs two sequential.
        prop_assert_eq!(dual.stats().cycles * 2, seq.stats().cycles);
    }

    /// The pooling contract behind the prt-sim campaign engine: a `Ram`
    /// that has been dirtied by one trial and recycled via
    /// `eject_faults()` + `reset_to(0)` is observationally identical to a
    /// freshly allocated one, for random faults and random op sequences on
    /// both sides of the recycle.
    #[test]
    fn recycled_ram_equals_fresh_ram(
        dirty_fault in arb_fault(8),
        dirty_actions in arb_actions(8, 1),
        fault in arb_fault(8),
        actions in arb_actions(8, 1),
    ) {
        let geom = Geometry::bom(8);
        // Dirty a pooled device with a first trial…
        let mut pooled = Ram::new(geom);
        pooled.inject(dirty_fault).unwrap();
        for act in &dirty_actions {
            match *act {
                Action::Read(a) => { let _ = pooled.read(a); }
                Action::Write(a, d) => pooled.write(a, d),
            }
        }
        // …then recycle it and replay a second trial against a fresh one.
        pooled.eject_faults();
        pooled.reset_to(0);
        let mut fresh = Ram::new(geom);
        pooled.inject(fault.clone()).unwrap();
        fresh.inject(fault).unwrap();
        for act in &actions {
            match *act {
                Action::Read(a) => prop_assert_eq!(pooled.read(a), fresh.read(a)),
                Action::Write(a, d) => {
                    pooled.write(a, d);
                    fresh.write(a, d);
                }
            }
        }
        for c in 0..8 {
            prop_assert_eq!(pooled.peek(c), fresh.peek(c), "cell {}", c);
        }
        prop_assert_eq!(pooled.stats(), fresh.stats());
    }

    /// LANE ≡ SCALAR: under arbitrary operation sequences, a batchable
    /// fault injected into ANY lane of a `LaneRam` behaves bitwise like
    /// the same fault on a scalar `Ram` — every read and the final
    /// storage image agree, and every other lane stays fault-free.
    #[test]
    fn lane_ram_equals_scalar_ram(
        actions in arb_actions(8, 0xF),
        fault_pick in 0usize..100_000,
        lane in 0usize..64,
        witness in 0usize..64,
    ) {
        use prt_ram::{lane_word, LaneRam, UniverseSpec, FaultUniverse};
        let geom = Geometry::wom(8, 4).unwrap();
        let spec = UniverseSpec {
            coupling_radius: Some(3), intra_word: true, ..UniverseSpec::paper_claim()
        };
        // Every enumerated fault is lane-batchable since the scalar remainder
        // was retired — the whole universe is the candidate pool.
        let batchable: Vec<FaultKind> =
            FaultUniverse::enumerate(geom, &spec).faults().to_vec();
        let fault = batchable[fault_pick % batchable.len()].clone();
        let mut scalar = Ram::new(geom);
        scalar.inject(fault.clone()).unwrap();
        let mut healthy = Ram::new(geom);
        let mut lanes: LaneRam = LaneRam::new(geom);
        lanes.inject(fault.clone(), lane).unwrap();
        let pick = lane_word::<1>;
        for act in &actions {
            match *act {
                Action::Read(a) => {
                    let want = scalar.read(a);
                    let clean = healthy.read(a);
                    let planes = lanes.read(a);
                    prop_assert_eq!(pick(planes, lane), want, "{} read @{}", &fault, a);
                    if witness != lane {
                        prop_assert_eq!(
                            pick(planes, witness), clean,
                            "lane {} leaked into lane {}", lane, witness
                        );
                    }
                }
                Action::Write(a, d) => {
                    scalar.write(a, d);
                    healthy.write(a, d);
                    lanes.write_broadcast(a, d);
                }
            }
        }
        for c in 0..8 {
            prop_assert_eq!(lanes.peek_lane(c, lane), scalar.peek(c), "cell {}", c);
            if witness != lane {
                prop_assert_eq!(lanes.peek_lane(c, witness), healthy.peek(c), "cell {}", c);
            }
        }
    }

    /// Decoder shadow faults alias exactly two addresses to one cell.
    #[test]
    fn decoder_shadow_aliasing(addr in 0usize..8, data in 0u64..2, probe in 0u64..2) {
        let instead = (addr + 4) % 8;
        prop_assume!(instead != addr);
        let mut ram = Ram::new(Geometry::bom(8));
        ram.inject(FaultKind::DecoderShadow { addr, instead_cell: instead }).unwrap();
        ram.write(addr, data);
        prop_assert_eq!(ram.read(instead), data, "write went to the shadow cell");
        ram.write(instead, probe);
        prop_assert_eq!(ram.read(addr), probe, "read comes from the shadow cell");
        prop_assert_eq!(ram.peek(addr), 0, "own cell never touched");
    }
}
