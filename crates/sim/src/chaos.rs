//! Chaos injection for resilience testing.
//!
//! Compiled only for tests (`cfg(test)`) and under the `chaos` feature —
//! production campaigns carry no injection sites. A [`ChaosPlan`] is
//! armed on a campaign via `Campaign::with_chaos` and fires deliberate
//! failures at deterministic points:
//!
//! * **worker kills** — a panic in the middle of a scalar chunk at a
//!   chosen universe index ([`ChaosPlan::panic_on_trial`]),
//! * **batch kills** — a panic inside a lane-batch interpreter pass
//!   ([`ChaosPlan::panic_on_batch`]), which must *degrade* to the scalar
//!   oracle, not kill the campaign,
//! * **cancellation** — a [`CancelToken`] fired after a chosen number of
//!   chaos events ([`ChaosPlan::cancel_after`]).
//!
//! Every site fires **once**: a retry or a resumed run sails past it,
//! which is exactly the recovery the resilience suite asserts on. File
//! corruption ([`truncate_file`], [`flip_bit`]) is provided here too so
//! chaos proptests damage checkpoints through one audited helper.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::CancelToken;

/// A deterministic schedule of injected failures (see the module docs).
#[derive(Debug, Default)]
pub struct ChaosPlan {
    /// Universe indices whose scalar trial panics (each fires once).
    panic_trials: Mutex<Vec<usize>>,
    /// First-fault indices of lane batches that panic (each fires once).
    panic_batches: Mutex<Vec<usize>>,
    /// Fire this token when `events` chaos checkpoints have passed.
    cancel: Mutex<Option<(usize, CancelToken)>>,
    /// Chaos checkpoints passed so far (trial + batch events).
    events: AtomicUsize,
}

impl ChaosPlan {
    /// An empty plan: no injections.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Panic when the scalar engine reaches universe index `i` — kills
    /// that worker's chunk. Fires once.
    pub fn panic_on_trial(self, i: usize) -> ChaosPlan {
        self.panic_trials.lock().expect("chaos plan lock").push(i);
        self
    }

    /// Panic inside the lane-batch at schedule position `i` (the batch's
    /// first fault index when assembly is unsorted; locality-sorted
    /// assembly keeps the same width-based positions) — exercises the
    /// batch→scalar degradation path. Fires once.
    pub fn panic_on_batch(self, i: usize) -> ChaosPlan {
        self.panic_batches.lock().expect("chaos plan lock").push(i);
        self
    }

    /// Fire `token` after `events` chaos checkpoints (trial starts and
    /// batch starts) have passed — a cancellation arriving at an
    /// arbitrary point mid-campaign.
    pub fn cancel_after(self, events: usize, token: &CancelToken) -> ChaosPlan {
        *self.cancel.lock().expect("chaos plan lock") = Some((events, token.clone()));
        self
    }

    fn bump_events(&self) {
        let seen = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cancel = self.cancel.lock().expect("chaos plan lock");
        if let Some((after, token)) = cancel.as_ref() {
            if seen >= *after {
                token.cancel();
                *cancel = None;
            }
        }
    }

    /// Chaos checkpoint at the start of the scalar trial for universe
    /// index `i`. Called by the campaign's primary scalar path only —
    /// never by degraded retries, so degradation always succeeds.
    pub(crate) fn trial_event(&self, i: usize) {
        self.bump_events();
        let mut trials = self.panic_trials.lock().expect("chaos plan lock");
        if let Some(pos) = trials.iter().position(|&t| t == i) {
            trials.remove(pos);
            drop(trials);
            std::panic::panic_any(format!("chaos: injected panic at trial {i}"));
        }
    }

    /// Chaos checkpoint at the start of the lane batch at schedule
    /// position `first`.
    pub(crate) fn batch_event(&self, first: usize) {
        self.bump_events();
        let mut batches = self.panic_batches.lock().expect("chaos plan lock");
        if let Some(pos) = batches.iter().position(|&b| b == first) {
            batches.remove(pos);
            drop(batches);
            std::panic::panic_any(format!("chaos: injected panic in batch at fault {first}"));
        }
    }
}

/// Truncates a file to its first `keep` bytes — a crash mid-write (of a
/// non-atomic writer) or a torn copy.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn truncate_file(path: &Path, keep: usize) -> io::Result<()> {
    let bytes = fs::read(path)?;
    fs::write(path, &bytes[..keep.min(bytes.len())])
}

/// Flips one bit of a file in place — silent media corruption.
///
/// # Errors
///
/// Any underlying I/O error, or `InvalidInput` when the file is too
/// short to contain `bit`.
pub fn flip_bit(path: &Path, bit: usize) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    let byte = bit / 8;
    if byte >= bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("bit {bit} is past the {}-byte file", bytes.len()),
        ));
    }
    bytes[byte] ^= 1 << (bit % 8);
    fs::write(path, &bytes)
}
