//! Coverage aggregation: per-class rows, whole-universe reports and the
//! [`ClassTally`] accumulator shared by every campaign consumer.
//!
//! These types lived in `prt-march` historically (they are re-exported
//! from there unchanged); they moved next to the engine so that any runner
//! — March, π-test, PRT scheme or closure — aggregates through one code
//! path instead of five hand-rolled copies of the same row-bumping loop.

use crate::StopCause;

/// The explicit mark a stopped run leaves on its report: how far the
/// campaign got before the deadline or cancellation hit, and why it
/// stopped. Rows of a partial report tally only the evaluated prefix
/// `[0, evaluated)` of the universe — detected-so-far plus a cursor, never
/// a silently wrong total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialCoverage {
    /// Trials evaluated (the contiguous universe prefix — also the
    /// checkpoint cursor when checkpointing is on).
    pub evaluated: usize,
    /// Trials in the whole universe.
    pub total: usize,
    /// Why the run stopped.
    pub cause: StopCause,
}

/// Coverage of one fault class by one test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageRow {
    /// Fault-class mnemonic (`"SAF"`, `"TF"`, …).
    pub class: &'static str,
    /// Instances detected.
    pub detected: usize,
    /// Instances in the universe.
    pub total: usize,
}

impl CoverageRow {
    /// Detection ratio in percent.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }

    /// `true` when every instance was detected.
    pub fn complete(&self) -> bool {
        self.detected == self.total
    }
}

/// Aggregated coverage of a whole universe.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    test_name: String,
    rows: Vec<CoverageRow>,
    partial: Option<PartialCoverage>,
    degraded_batches: usize,
}

impl CoverageReport {
    /// Assembles a report from pre-computed rows. Public so that any test
    /// engine can report coverage in the same format.
    pub fn from_rows(test_name: impl Into<String>, rows: Vec<CoverageRow>) -> CoverageReport {
        CoverageReport { test_name: test_name.into(), rows, partial: None, degraded_batches: 0 }
    }

    pub(crate) fn set_partial(&mut self, partial: PartialCoverage) {
        self.partial = Some(partial);
    }

    pub(crate) fn set_degraded_batches(&mut self, degraded: usize) {
        self.degraded_batches = degraded;
    }

    /// `Some` when the run stopped early (deadline or cancellation): the
    /// rows then cover only the evaluated universe prefix.
    pub fn partial(&self) -> Option<PartialCoverage> {
        self.partial
    }

    /// `true` for a report whose rows cover only part of the universe.
    pub fn is_partial(&self) -> bool {
        self.partial.is_some()
    }

    /// Lane batches that panicked and were retried on the scalar oracle
    /// (graceful degradation). The verdicts behind a degraded report are
    /// still exact — the scalar retry *is* the reference engine — but a
    /// nonzero counter flags that the batch path misbehaved.
    pub fn degraded_batches(&self) -> usize {
        self.degraded_batches
    }

    /// Name of the evaluated test.
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// Per-class rows in first-seen order.
    pub fn rows(&self) -> &[CoverageRow] {
        &self.rows
    }

    /// The row for a class, if present in the universe.
    pub fn class(&self, mnemonic: &str) -> Option<CoverageRow> {
        self.rows.iter().copied().find(|r| r.class == mnemonic)
    }

    /// Overall detection ratio in percent.
    pub fn overall_percent(&self) -> f64 {
        let (d, t) =
            self.rows.iter().fold((0usize, 0usize), |(d, t), r| (d + r.detected, t + r.total));
        if t == 0 {
            100.0
        } else {
            100.0 * d as f64 / t as f64
        }
    }

    /// `true` when every instance of every class was detected — never for
    /// a partial report, whose unevaluated tail is unknown.
    pub fn complete(&self) -> bool {
        self.partial.is_none() && self.rows.iter().all(CoverageRow::complete)
    }
}

/// Accumulates `(class, detected)` observations into [`CoverageRow`]s in
/// first-seen class order — the single home of the row-bumping loop that
/// used to be copy-pasted across the March evaluator, the PRT scheme
/// coverage, the bit-plane coverage and the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct ClassTally {
    rows: Vec<CoverageRow>,
}

impl ClassTally {
    /// An empty tally.
    pub fn new() -> ClassTally {
        ClassTally::default()
    }

    /// Records one fault instance of `class`.
    pub fn record(&mut self, class: &'static str, detected: bool) {
        let row = match self.rows.iter_mut().find(|r| r.class == class) {
            Some(r) => r,
            None => {
                self.rows.push(CoverageRow { class, detected: 0, total: 0 });
                self.rows.last_mut().expect("just pushed")
            }
        };
        row.total += 1;
        if detected {
            row.detected += 1;
        }
    }

    /// The rows accumulated so far, in first-seen class order.
    pub fn rows(&self) -> &[CoverageRow] {
        &self.rows
    }

    /// Finishes the tally into a named report.
    pub fn into_report(self, test_name: impl Into<String>) -> CoverageReport {
        CoverageReport::from_rows(test_name, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_keeps_first_seen_order_and_counts() {
        let mut t = ClassTally::new();
        t.record("SAF", true);
        t.record("TF", false);
        t.record("SAF", false);
        t.record("TF", true);
        t.record("TF", true);
        let report = t.into_report("demo");
        assert_eq!(report.test_name(), "demo");
        let rows = report.rows();
        assert_eq!(rows[0].class, "SAF");
        assert_eq!((rows[0].detected, rows[0].total), (1, 2));
        assert_eq!(rows[1].class, "TF");
        assert_eq!((rows[1].detected, rows[1].total), (2, 3));
        assert!((report.overall_percent() - 60.0).abs() < 1e-12);
        assert!(!report.complete());
    }

    #[test]
    fn empty_report_is_complete() {
        let r = ClassTally::new().into_report("none");
        assert!(r.complete());
        assert!((r.overall_percent() - 100.0).abs() < f64::EPSILON);
        assert!(r.class("SAF").is_none());
    }

    #[test]
    fn row_percentages() {
        let row = CoverageRow { class: "SAF", detected: 3, total: 4 };
        assert!((row.percent() - 75.0).abs() < 1e-12);
        assert!(!row.complete());
        let empty = CoverageRow { class: "TF", detected: 0, total: 0 };
        assert!((empty.percent() - 100.0).abs() < f64::EPSILON);
        assert!(empty.complete());
    }
}
