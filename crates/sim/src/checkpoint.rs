//! Versioned, fingerprinted, atomically-written campaign checkpoints.
//!
//! A checkpoint persists a **contiguous prefix** of per-trial records
//! (campaign verdicts, dictionary observations) plus everything needed to
//! refuse a wrong resume: a format version, a *kind* tag for the record
//! type, a caller-computed **fingerprint** of the run configuration
//! (geometry / universe / program / backgrounds / schedule), the universe
//! size, and a whole-file checksum. Writes go to a sibling temp file and
//! are published with an atomic `rename`, so a crash mid-write can never
//! leave a half-written file at the checkpoint path — the old checkpoint
//! (or no file) survives instead.
//!
//! # File format (version 1)
//!
//! A flat sequence of little-endian `u64` words:
//!
//! | word | content |
//! |------|---------|
//! | 0 | magic `"PRTCKPT1"` (`0x5052_5443_4B50_5431`) |
//! | 1 | `version << 32 \| record kind` |
//! | 2 | run fingerprint |
//! | 3 | `total` — records in a complete run |
//! | 4 | `cursor` — records present (`≤ total`) |
//! | 5… | `cursor × WORDS` payload words |
//! | last | FNV-1a 64 checksum of all preceding words' bytes |
//!
//! Validation on load runs strictest-signal-first: I/O errors surface as
//! [`CheckpointError::Io`], structural damage (size, magic, checksum,
//! truncated or undecodable payload) as [`CheckpointError::Corrupt`], a
//! foreign format version as [`CheckpointError::VersionMismatch`] and a
//! checkpoint of a *different run* as
//! [`CheckpointError::FingerprintMismatch`]. A missing file is not an
//! error — it is simply a cold start ([`load_records`] returns
//! `Ok(None)`).

use std::fmt;
use std::fs;
use std::io::ErrorKind;
use std::path::Path;

pub use crate::error::CheckpointError;

/// `"PRTCKPT1"` as a big-endian word — the first word of every file.
const MAGIC: u64 = 0x5052_5443_4B50_5431;

/// The format version this build reads and writes.
pub const VERSION: u32 = 1;

/// A fixed-width record a checkpoint can carry.
///
/// Implementations declare a `KIND` tag (so a verdict checkpoint is never
/// mistaken for an observation checkpoint) and a fixed word width, and
/// encode/decode themselves as `u64` words. [`bool`] (campaign verdicts)
/// is provided here; `prt-diag` implements it for its observations.
pub trait CheckpointRecord: Sized {
    /// Record-type tag stored in the header (must be nonzero and unique
    /// per record type).
    const KIND: u32;
    /// Words per record.
    const WORDS: usize;
    /// Appends exactly [`CheckpointRecord::WORDS`] words to `out`.
    fn encode(&self, out: &mut Vec<u64>);
    /// Decodes one record from exactly [`CheckpointRecord::WORDS`] words;
    /// `None` marks an undecodable (corrupt) payload.
    fn decode(words: &[u64]) -> Option<Self>;
}

/// Campaign verdicts: one word per trial, `0`/`1`.
impl CheckpointRecord for bool {
    const KIND: u32 = 1;
    const WORDS: usize = 1;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(u64::from(*self));
    }

    fn decode(words: &[u64]) -> Option<bool> {
        match words {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

/// FNV-1a 64 over a word slice's little-endian bytes.
fn fnv1a(words: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Incremental FNV-1a 64 fingerprint of a run configuration.
///
/// Campaigns hash their geometry, universe, compiled programs and
/// schedule discipline through this builder; the resulting fingerprint is
/// stored in every checkpoint and compared on resume, so a checkpoint
/// can never silently seed a *different* run with stale verdicts.
/// Implements [`fmt::Write`], so arbitrary `Debug` representations hash
/// without intermediate allocation.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    hash: u64,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        FingerprintBuilder::new()
    }
}

impl FingerprintBuilder {
    /// A fresh builder at the FNV offset basis.
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder { hash: 0xcbf2_9ce4_8422_2325 }
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Hashes a string (with a terminator, so `"ab"+"c"` ≠ `"a"+"bc"`).
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
        self.push_bytes(&[0xff]);
    }

    /// Hashes a word.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Hashes a value's `Debug` representation (allocation-free).
    pub fn push_debug(&mut self, v: &impl fmt::Debug) {
        use fmt::Write;
        // Writing to the hasher cannot fail.
        let _ = write!(self, "{v:?}");
        self.push_bytes(&[0xff]);
    }

    /// The fingerprint of everything pushed so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl fmt::Write for FingerprintBuilder {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.push_bytes(s.as_bytes());
        Ok(())
    }
}

fn io_err(path: &Path, op: &'static str, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.display().to_string(), op, message: e.to_string() }
}

fn corrupt(path: &Path, reason: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt { path: path.display().to_string(), reason: reason.into() }
}

/// Atomically writes a checkpoint: `records` is the contiguous prefix
/// `[0, cursor)` of a run over `total` records whose configuration hashes
/// to `fingerprint`.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the temp-file write or the publishing
/// rename fails; the previous checkpoint (if any) is left intact.
pub fn save_records<R: CheckpointRecord>(
    path: &Path,
    fingerprint: u64,
    total: usize,
    records: &[R],
) -> Result<(), CheckpointError> {
    debug_assert!(records.len() <= total);
    let mut words: Vec<u64> = Vec::with_capacity(6 + records.len() * R::WORDS);
    words.push(MAGIC);
    words.push((u64::from(VERSION) << 32) | u64::from(R::KIND));
    words.push(fingerprint);
    words.push(total as u64);
    words.push(records.len() as u64);
    for r in records {
        r.encode(&mut words);
    }
    words.push(fnv1a(&words));
    let mut bytes: Vec<u8> = Vec::with_capacity(words.len() * 8);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    // Publish atomically: a crash between write and rename leaves the old
    // checkpoint untouched; rename on the same filesystem replaces it in
    // one step.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, "write", &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, "rename", &e))
}

/// Reads a file as little-endian words.
fn read_words(path: &Path) -> Result<Option<Vec<u64>>, CheckpointError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(path, "read", &e)),
    };
    if bytes.len() % 8 != 0 {
        return Err(corrupt(path, format!("size {} is not a multiple of 8", bytes.len())));
    }
    Ok(Some(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect()))
}

/// Validates everything but the payload; returns
/// `(kind, fingerprint, total, cursor, payload_words)`.
fn validate_header(path: &Path, words: &[u64]) -> Result<(u32, u64, u64, u64), CheckpointError> {
    if words.len() < 6 {
        return Err(corrupt(path, format!("only {} words — header needs 6", words.len())));
    }
    if words[0] != MAGIC {
        return Err(corrupt(path, format!("bad magic {:#018x}", words[0])));
    }
    let (body, checksum) = words.split_at(words.len() - 1);
    if fnv1a(body) != checksum[0] {
        return Err(corrupt(path, "checksum mismatch".to_string()));
    }
    let version = (words[1] >> 32) as u32;
    if version != VERSION {
        return Err(CheckpointError::VersionMismatch {
            path: path.display().to_string(),
            found: version,
            supported: VERSION,
        });
    }
    let kind = (words[1] & 0xffff_ffff) as u32;
    Ok((kind, words[2], words[3], words[4]))
}

/// Reads the run fingerprint out of a checkpoint without knowing which
/// run it belongs to — the inspection hook tools (and tests) use to
/// examine a file before deciding whether to resume from it.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the file cannot be read (including when
/// it does not exist) and [`CheckpointError::Corrupt`] /
/// [`CheckpointError::VersionMismatch`] when it is not a readable
/// checkpoint.
pub fn peek_fingerprint(path: &Path) -> Result<u64, CheckpointError> {
    let words = read_words(path)?.ok_or_else(|| CheckpointError::Io {
        path: path.display().to_string(),
        op: "read",
        message: "no such file".to_string(),
    })?;
    let (_, fingerprint, _, _) = validate_header(path, &words)?;
    Ok(fingerprint)
}

/// Loads the record prefix of a checkpoint, validating structure, format
/// version, record kind, fingerprint and payload. `Ok(None)` means the
/// file does not exist — a cold start, not an error.
///
/// # Errors
///
/// See the module docs for the variant-per-failure mapping. A cursor
/// exceeding `total`, a payload of the wrong length, or a record that
/// fails to decode are all [`CheckpointError::Corrupt`].
pub fn load_records<R: CheckpointRecord>(
    path: &Path,
    fingerprint: u64,
    total: usize,
) -> Result<Option<Vec<R>>, CheckpointError> {
    let Some(words) = read_words(path)? else {
        return Ok(None);
    };
    let (kind, found_fp, file_total, cursor) = validate_header(path, &words)?;
    if kind != R::KIND {
        return Err(corrupt(path, format!("record kind {kind} — expected {}", R::KIND)));
    }
    if found_fp != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            path: path.display().to_string(),
            expected: fingerprint,
            found: found_fp,
        });
    }
    if file_total != total as u64 {
        return Err(corrupt(path, format!("universe size {file_total} — expected {total}")));
    }
    if cursor > file_total {
        return Err(corrupt(path, format!("cursor {cursor} exceeds universe size {file_total}")));
    }
    let cursor = cursor as usize;
    let payload = &words[5..words.len() - 1];
    if payload.len() != cursor * R::WORDS {
        return Err(corrupt(
            path,
            format!(
                "payload is {} words — {cursor} records need {}",
                payload.len(),
                cursor * R::WORDS
            ),
        ));
    }
    let mut records = Vec::with_capacity(cursor);
    for (i, chunk) in payload.chunks_exact(R::WORDS).enumerate() {
        match R::decode(chunk) {
            Some(r) => records.push(r),
            None => return Err(corrupt(path, format!("record {i} does not decode"))),
        }
    }
    Ok(Some(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("prt-sim-ckpt-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_a_verdict_prefix() {
        let path = temp_path("roundtrip");
        let verdicts = vec![true, false, true, true, false];
        save_records(&path, 0xfeed, 9, &verdicts).unwrap();
        let loaded: Vec<bool> = load_records(&path, 0xfeed, 9).unwrap().unwrap();
        assert_eq!(loaded, verdicts);
        assert_eq!(peek_fingerprint(&path).unwrap(), 0xfeed);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let path = temp_path("missing");
        let loaded = load_records::<bool>(&path, 1, 4).unwrap();
        assert_eq!(loaded, None);
    }

    #[test]
    fn wrong_fingerprint_is_rejected() {
        let path = temp_path("fingerprint");
        save_records(&path, 0xaaaa, 3, &[true, false]).unwrap();
        let err = load_records::<bool>(&path, 0xbbbb, 3).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::FingerprintMismatch {
                path: path.display().to_string(),
                expected: 0xbbbb,
                found: 0xaaaa,
            }
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_universe_size_is_corrupt() {
        let path = temp_path("total");
        save_records(&path, 7, 3, &[true]).unwrap();
        assert!(matches!(load_records::<bool>(&path, 7, 4), Err(CheckpointError::Corrupt { .. })));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_and_bitflips_are_corrupt() {
        let path = temp_path("damage");
        save_records(&path, 7, 4, &[true, false, true]).unwrap();
        let pristine = fs::read(&path).unwrap();
        // Truncate to every shorter multiple of 8 and every ragged size.
        for keep in 0..pristine.len() {
            fs::write(&path, &pristine[..keep]).unwrap();
            assert!(
                matches!(load_records::<bool>(&path, 7, 4), Err(CheckpointError::Corrupt { .. })),
                "truncated to {keep} bytes"
            );
        }
        // Flip one bit in each word; the checksum (or, for flips inside
        // the checksum word itself, the mismatch with the body) catches
        // every one.
        for byte in (0..pristine.len()).step_by(8) {
            let mut damaged = pristine.clone();
            damaged[byte] ^= 0x10;
            fs::write(&path, &damaged).unwrap();
            assert!(
                load_records::<bool>(&path, 7, 4).is_err(),
                "bit flip at byte {byte} went unnoticed"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_version_is_version_mismatch() {
        let path = temp_path("version");
        save_records(&path, 7, 2, &[true, true]).unwrap();
        let mut words: Vec<u64> = fs::read(&path)
            .unwrap()
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        words[1] = (99u64 << 32) | 1; // version 99, kind preserved
        let last = words.len() - 1;
        words[last] = fnv1a(&words[..last]); // keep the checksum honest
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            load_records::<bool>(&path, 7, 2),
            Err(CheckpointError::VersionMismatch { found: 99, supported: VERSION, .. })
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_record_kind_is_corrupt() {
        struct Pair(u64, u64);
        impl CheckpointRecord for Pair {
            const KIND: u32 = 77;
            const WORDS: usize = 2;
            fn encode(&self, out: &mut Vec<u64>) {
                out.extend([self.0, self.1]);
            }
            fn decode(words: &[u64]) -> Option<Pair> {
                Some(Pair(words[0], words[1]))
            }
        }
        let path = temp_path("kind");
        save_records(&path, 7, 2, &[Pair(1, 2)]).unwrap();
        assert!(matches!(load_records::<bool>(&path, 7, 2), Err(CheckpointError::Corrupt { .. })));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp() {
        let path = temp_path("replace");
        save_records(&path, 7, 4, &[true]).unwrap();
        save_records(&path, 7, 4, &[true, false, false]).unwrap();
        let loaded: Vec<bool> = load_records(&path, 7, 4).unwrap().unwrap();
        assert_eq!(loaded, vec![true, false, false]);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists(), "temp file must not survive a save");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_builder_separates_fields() {
        let mut a = FingerprintBuilder::new();
        a.push_str("ab");
        a.push_str("c");
        let mut b = FingerprintBuilder::new();
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(a.finish(), b.finish(), "field boundaries must be hashed");
        let mut c = FingerprintBuilder::new();
        c.push_debug(&(1u8, "x"));
        let mut d = FingerprintBuilder::new();
        d.push_debug(&(1u8, "x"));
        assert_eq!(c.finish(), d.finish());
    }
}
