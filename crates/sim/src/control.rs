//! Cooperative run control: deadlines and cancellation.
//!
//! Long campaigns on tester hardware cannot be aborted with `kill -9`
//! without losing everything; they need a *cooperative* stop that yields a
//! partial, explicitly-marked result. The resilient campaign drivers check
//! a [`RunControl`] at **chunk granularity** — between chunks of scalar
//! trials and between lane batches — so a stop costs at most one chunk of
//! extra work and never tears a trial mid-flight.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped before evaluating its whole universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The campaign's [`crate::Campaign::with_deadline`] budget ran out.
    DeadlineExceeded,
    /// A shared [`CancelToken`] was fired.
    Cancelled,
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCause::DeadlineExceeded => write!(f, "deadline exceeded"),
            StopCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shareable, clonable cancellation handle.
///
/// Clones share one flag: any holder (a signal handler, a service's job
/// supervisor, another thread) calls [`CancelToken::cancel`] and every
/// campaign configured with a clone stops claiming work at the next chunk
/// boundary, returning its progress so far. Cancellation is one-way and
/// sticky — there is no reset; build a new token for a new run.
///
/// # Example
///
/// ```
/// use prt_sim::CancelToken;
///
/// let token = CancelToken::new();
/// let handle = token.clone();
/// assert!(!token.is_cancelled());
/// handle.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token: every clone observes the cancellation.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// `true` once any clone has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// The per-run stop conditions the drivers poll between chunks.
#[derive(Debug, Clone)]
pub(crate) struct RunControl {
    started: Instant,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl RunControl {
    /// Arms the control; the deadline clock starts now.
    pub(crate) fn new(deadline: Option<Duration>, cancel: Option<CancelToken>) -> RunControl {
        RunControl { started: Instant::now(), deadline, cancel }
    }

    /// A control that never stops.
    #[cfg(test)]
    pub(crate) fn unlimited() -> RunControl {
        RunControl::new(None, None)
    }

    /// The stop cause, if a stop condition holds right now. Cancellation
    /// wins over the deadline when both hold (it is the more deliberate
    /// signal).
    pub(crate) fn stop_cause(&self) -> Option<StopCause> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopCause::Cancelled);
        }
        if self.deadline.is_some_and(|d| self.started.elapsed() >= d) {
            return Some(StopCause::DeadlineExceeded);
        }
        None
    }

    /// Time spent since the control was armed.
    pub(crate) fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_sticky() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn unlimited_control_never_stops() {
        assert_eq!(RunControl::unlimited().stop_cause(), None);
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let c = RunControl::new(Some(Duration::ZERO), None);
        assert_eq!(c.stop_cause(), Some(StopCause::DeadlineExceeded));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let c = RunControl::new(Some(Duration::ZERO), Some(token));
        assert_eq!(c.stop_cause(), Some(StopCause::Cancelled));
    }
}
